"""Tests for the exact verification stack: LP, MILP, BaB, splitting."""

import numpy as np
import pytest

from repro.domains import Box
from repro.errors import DomainError
from repro.exact import (
    BaBSolver,
    NetworkEncoding,
    check_containment,
    check_containment_split,
    maximize_output,
    minimize_output,
    output_range_exact,
    solve_lp,
    solve_milp,
)
from repro.nn import Dense, LeakyReLU, Network, ReLU, random_relu_network


class TestLP:
    def test_simple_optimum(self):
        # min -x - y st x + y <= 1, x,y >= 0  -> value -1
        res = solve_lp(np.array([-1.0, -1.0]),
                       a_ub=np.array([[1.0, 1.0]]), b_ub=np.array([1.0]),
                       bounds=[(0, None), (0, None)])
        assert res.optimal
        assert res.value == pytest.approx(-1.0)

    def test_infeasible(self):
        res = solve_lp(np.array([1.0]),
                       a_ub=np.array([[1.0], [-1.0]]),
                       b_ub=np.array([-2.0, 1.0]))
        assert res.status == "infeasible"

    def test_unbounded(self):
        res = solve_lp(np.array([-1.0]))
        assert res.status == "unbounded"


class TestEncoding:
    def test_unstable_neuron_detection(self, fig2, enlarged_box2):
        enc = NetworkEncoding(fig2, enlarged_box2)
        pairs = enc.unstable_neurons()
        # All three first-layer neurons cross zero on [-1,1.1]^2.
        assert all(p[0] == 0 for p in pairs[:3])
        assert len(pairs) >= 3

    def test_stability_labels(self, fig2, enlarged_box2):
        enc = NetworkEncoding(fig2, enlarged_box2)
        labels = {enc.neuron_stability(0, i) for i in range(3)}
        assert labels == {"unstable"}

    def test_lp_relaxation_contains_executions(self, fig2, enlarged_box2, rng):
        """Every concrete execution satisfies the LP relaxation rows."""
        enc = NetworkEncoding(fig2, enlarged_box2)
        system = enc.build_lp()
        for x in enlarged_box2.sample(50, rng):
            h = fig2.forward_blocks(x, 1)
            z1 = fig2.blocks()[0].dense.forward(x)
            z2 = fig2.blocks()[1].dense.forward(h)
            a2 = np.maximum(z2, 0)
            full = np.concatenate([x, z1, h, z2, a2])
            if system.a_eq is not None:
                np.testing.assert_allclose(system.a_eq @ full, system.b_eq,
                                           atol=1e-9)
            if system.a_ub is not None:
                assert np.all(system.a_ub @ full <= system.b_ub + 1e-9)

    def test_objective_dim_check(self, fig2, enlarged_box2):
        enc = NetworkEncoding(fig2, enlarged_box2)
        with pytest.raises(DomainError):
            enc.output_objective(np.ones(3))


class TestMILP:
    def test_fig2_equation2(self, fig2, enlarged_box2):
        """The paper's Equation 2: exact max of n4 over [-1,1.1]^2 is 6.2."""
        enc = NetworkEncoding(fig2, enlarged_box2)
        system = enc.build_milp()
        c = enc.output_objective(np.array([1.0]), num_vars=system.num_vars)
        res = solve_milp(c, system, maximize=True)
        assert res.optimal
        assert res.value == pytest.approx(6.2, abs=1e-6)

    def test_milp_matches_bab_on_random_nets(self):
        for seed in range(3):
            net = random_relu_network([2, 4, 3, 1], seed=seed, weight_scale=1.0)
            box = Box(-np.ones(2), np.ones(2))
            enc = NetworkEncoding(net, box)
            system = enc.build_milp()
            c = enc.output_objective(np.array([1.0]), num_vars=system.num_vars)
            milp = solve_milp(c, system, maximize=True)
            bab = maximize_output(net, box, np.array([1.0]))
            assert milp.value == pytest.approx(bab.upper_bound, abs=1e-5)

    def test_infeasible_milp(self):
        from repro.exact.encoding import LinearSystem

        system = LinearSystem(
            num_vars=1,
            a_ub=np.array([[1.0], [-1.0]]), b_ub=np.array([-2.0, 1.0]),
            a_eq=None, b_eq=None, bounds=[(None, None)],
            integer_mask=np.array([False]))
        res = solve_milp(np.array([1.0]), system)
        assert res.status == "infeasible"


class TestBaB:
    def test_fig2_exact_max(self, fig2, enlarged_box2):
        res = maximize_output(fig2, enlarged_box2, np.array([1.0]))
        assert res.status == "optimal"
        assert res.upper_bound == pytest.approx(6.2, abs=1e-6)
        # the witness achieves the optimum
        np.testing.assert_allclose(
            fig2.forward(res.witness)[0], 6.2, atol=1e-6)

    def test_threshold_proved(self, fig2, enlarged_box2):
        res = maximize_output(fig2, enlarged_box2, np.array([1.0]), threshold=12.0)
        assert res.status in ("threshold_proved", "optimal")
        assert res.upper_bound <= 12.0 + 1e-6

    def test_threshold_refuted_with_witness(self, fig2, enlarged_box2):
        res = maximize_output(fig2, enlarged_box2, np.array([1.0]), threshold=5.0)
        assert res.status == "threshold_refuted"
        assert fig2.forward(res.witness)[0] > 5.0

    def test_min_max_bracket_samples(self, rng):
        net = random_relu_network([3, 6, 5, 2], seed=5, weight_scale=0.9)
        box = Box(-0.7 * np.ones(3), 0.7 * np.ones(3))
        c = np.array([1.0, -0.5])
        hi = maximize_output(net, box, c)
        lo = minimize_output(net, box, c)
        vals = net.forward(box.sample(3000, rng)) @ c
        assert vals.max() <= hi.upper_bound + 1e-6
        assert vals.min() >= lo.upper_bound - 1e-6
        # tight: brute force approaches the certified optimum
        assert hi.upper_bound - vals.max() < 0.2
        assert vals.min() - lo.upper_bound < 0.2

    def test_leaky_relu_supported(self, rng):
        net = Network(
            [Dense(2, 5, rng=np.random.default_rng(0)), LeakyReLU(0.2),
             Dense(5, 1, rng=np.random.default_rng(1))], input_dim=2)
        box = Box(-np.ones(2), np.ones(2))
        res = maximize_output(net, box, np.array([1.0]))
        vals = net.forward(box.sample(4000, rng)).reshape(-1)
        assert res.upper_bound >= vals.max() - 1e-6
        assert res.upper_bound - vals.max() < 0.1

    def test_node_limit_reports_valid_bound(self, rng):
        net = random_relu_network([4, 12, 10, 1], seed=2, weight_scale=1.2)
        box = Box(-np.ones(4), np.ones(4))
        solver = BaBSolver(net, box, node_limit=1)
        res = solver.maximize(np.array([1.0]))
        vals = net.forward(box.sample(2000, rng)).reshape(-1)
        assert res.upper_bound >= vals.max() - 1e-6

    def test_output_range_exact_matches_bruteforce(self, rng):
        net = random_relu_network([2, 5, 4, 2], seed=8, weight_scale=1.0)
        box = Box(-np.ones(2), np.ones(2))
        exact = output_range_exact(net, box)
        vals = net.forward(box.sample(20000, rng))
        assert np.all(vals.min(axis=0) >= exact.lower - 1e-6)
        assert np.all(vals.max(axis=0) <= exact.upper + 1e-6)
        assert np.max(exact.upper - vals.max(axis=0)) < 0.1


class TestSplitting:
    def test_safe_verdict(self, fig2, enlarged_box2):
        target = Box(np.array([-1.0]), np.array([7.0]))
        res = check_containment_split(fig2, enlarged_box2, target)
        assert res.status == "safe"

    def test_unsafe_with_counterexample(self, fig2, enlarged_box2):
        target = Box(np.array([0.0]), np.array([3.0]))
        res = check_containment_split(fig2, enlarged_box2, target)
        assert res.status == "unsafe"
        assert not target.contains_point(fig2.forward(res.counterexample))

    def test_unknown_on_budget(self, fig2, enlarged_box2):
        target = Box(np.array([0.0]), np.array([6.21]))  # barely true
        res = check_containment_split(fig2, enlarged_box2, target,
                                      max_boxes=2, max_depth=1)
        assert res.status in ("unknown", "safe")


class TestCheckContainment:
    def test_exact_proves_tight_target(self, fig2, enlarged_box2):
        target = Box(np.array([0.0]), np.array([6.2000001]))
        res = check_containment(fig2, enlarged_box2, target, method="exact")
        assert res.holds is True

    def test_exact_refutes_with_counterexample(self, fig2, enlarged_box2):
        target = Box(np.array([0.0]), np.array([6.0]))
        res = check_containment(fig2, enlarged_box2, target, method="exact")
        assert res.holds is False
        assert res.counterexample is not None
        assert res.violation > 0

    def test_symbolic_inconclusive_on_tight_target(self, fig2, enlarged_box2):
        target = Box(np.array([0.0]), np.array([6.5]))
        res = check_containment(fig2, enlarged_box2, target, method="symbolic")
        assert res.holds is None  # symbolic bound is ~8.8 here

    def test_auto_cascades_to_exact(self, fig2, enlarged_box2):
        target = Box(np.array([0.0]), np.array([6.5]))
        res = check_containment(fig2, enlarged_box2, target, method="auto")
        assert res.holds is True
        assert "exact" in res.method

    def test_dim_mismatch(self, fig2, enlarged_box2):
        with pytest.raises(DomainError):
            check_containment(fig2, enlarged_box2, Box(np.zeros(2), np.ones(2)))

    def test_unknown_method(self, fig2, enlarged_box2):
        with pytest.raises(DomainError):
            check_containment(fig2, enlarged_box2,
                              Box(np.zeros(1), np.ones(1)), method="magic")
