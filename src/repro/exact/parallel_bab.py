"""Parallel frontier branch and bound on the shared sparse encoding.

The scalar search of :mod:`repro.exact.bab` expands one node at a time:
pop the best open node, screen its two children with a batched interval
pass, build each surviving child's LP as *base + phase delta* on the shared
:class:`~repro.exact.encoding.NetworkEncoding`, solve, push.  Every stage of
that loop was built batch-first (PR 1's ``phase_clamped_node_bounds``
screens N regions in one pass; PR 2's encoding composes any node LP from
one read-only base), so the search itself is the last sequential piece.
This module removes it: the **frontier search** expands the top-K open
nodes per synchronous round and solves all surviving child LPs concurrently
on the shared worker pool of :mod:`repro.core.parallel`.

One round
---------
1. *Pop.*  Take up to ``frontier_width`` best-bound nodes off the open
   heap (stopping early when bounds fall to the incumbent).
2. *Branch.*  Each popped node contributes its two phase-split children
   (activation-consistent nodes instead register their LP point as a
   feasible incumbent and settle).
3. *Screen.*  All children of the round are screened with **one**
   :func:`~repro.domains.batch.phase_clamped_node_bounds` call: empty
   regions, incumbent-dominated regions and threshold-closed regions settle
   without an LP.
4. *Solve.*  The survivors' delta-LPs are submitted together to
   :func:`~repro.core.parallel.run_parallel`; each worker composes
   ``base + phase delta`` from the one shared read-only encoding (never
   rebuilding -- the encoding's lazy base assembly is lock-protected) and
   HiGHS releases the GIL, so the solves genuinely overlap.  Idle workers
   pick up whatever task is next in the round's queue (pool-level work
   stealing), so heterogeneous node costs do not serialise the round.
5. *Fold.*  Results are folded back **in submission order** on the
   coordinating thread: incumbents update, surviving children are pushed.

Soundness
---------
The scalar invariant -- the true maximum never exceeds
``max(incumbent, screened_bound, max over open-node bounds)`` -- extends to
the frontier search with one addition: during a round, nodes that have been
popped but whose children are still being screened/solved ("in-flight"
regions) are covered by *their own* LP bounds, which are at least their
children's bounds (a child's feasible set is a subset of its parent's).
Every reported global bound is therefore taken as the max over the heap,
the bounds of the round's popped nodes, the interval-settled regions and
the incumbent -- a sound upper bound at every instant, including early
termination inside a round (node limit).  The covering-leaves invariant is
preserved the same way: every popped node either settles as a leaf or
contributes both children, each of which settles or returns to the heap.

Determinism
-----------
``frontier_width`` is deliberately *independent* of ``workers`` (a fixed
constant by default).  The sequence of rounds -- which nodes are popped,
which children are screened, which LPs are solved, and the order results
are folded -- is then a pure function of the problem, so ``status`` is
byte-identical and ``optimum`` bitwise-identical across worker counts:
``workers`` only changes how many of a round's LPs are in flight at once.
(Raising ``frontier_width`` for very wide pools changes the trajectory,
not soundness: bounds/verdicts agree within ``tol``.)
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.exact.bab import (
    BAB_INFEASIBLE,
    BAB_NODE_LIMIT,
    BAB_OPTIMAL,
    BAB_PROVED,
    BAB_REFUTED,
    BaBResult,
    BaBSolver,
)
from repro.exact.encoding import PhaseMap
from repro.exact.lp import LP_INFEASIBLE, LP_OPTIMAL, LPResult, solve_lp

__all__ = ["FRONTIER_WIDTH", "maximize_frontier"]

#: Nodes expanded per synchronous round.  A fixed default (rather than a
#: multiple of ``workers``) keeps the search trajectory -- and hence the
#: verdict -- identical across worker counts; see the module docstring.
FRONTIER_WIDTH = 8


def maximize_frontier(solver: BaBSolver, c: np.ndarray,
                      threshold: Optional[float] = None,
                      initial_nodes: Optional[List[PhaseMap]] = None,
                      collect_leaves: Optional[List[PhaseMap]] = None,
                      start_screen=None,
                      collect_duals: Optional[dict] = None,
                      ) -> BaBResult:
    """Frontier-parallel ``max c @ f(x)`` with :class:`BaBSolver` semantics.

    Same contract as :meth:`BaBSolver.maximize` (thresholds, warm starts,
    covering leaves); concurrency and per-round batch statistics are
    reported through the extra :class:`BaBResult` fields.
    """
    # Imported lazily: repro.core.parallel pulls in the proposition
    # machinery, which sits *above* the exact layer in the import graph.
    from repro.core.parallel import (available_width, effective_workers,
                                     run_parallel)

    enc = solver.encoding
    tol = solver.tol
    workers = solver.workers
    #: Requests wider than the shared pool can admit (or nested inside a
    #: pool worker) would fall back to a fresh private pool *per round* --
    #: pure churn.  Clamp the in-flight LP concurrency instead; the
    #: trajectory (hence verdict/optimum) never depends on this.
    pool_workers = effective_workers(workers)
    width = FRONTIER_WIDTH if solver.frontier_width is None \
        else int(solver.frontier_width)
    if width < 1:
        raise SolverError(f"frontier_width must be positive, got {width}")
    objective = enc.output_objective(np.asarray(c, dtype=np.float64))
    neg_obj = -objective  # linprog minimises
    c_vec = np.asarray(c, dtype=np.float64).reshape(-1)

    lp_solves = 0
    nodes = 0
    rounds = 0
    batches: List[int] = []
    counter = itertools.count()
    incumbent = -np.inf
    witness: Optional[np.ndarray] = None
    screened_bound = -np.inf
    use_screen = solver.interval_prune or solver.node_tighten

    def screen_nodes(phase_maps: List[PhaseMap]):
        return solver._screen_nodes(phase_maps, c_vec)

    def record_leaf(phases: PhaseMap) -> None:
        if collect_leaves is not None:
            collect_leaves.append(dict(phases))

    def capture_duals(phases: PhaseMap, res: LPResult) -> None:
        # Called on the coordinating thread only (results are folded in
        # submission order after each batch), so the caller's dict needs
        # no locking.
        if collect_duals is not None and res.optimal:
            collect_duals[tuple(sorted(phases.items()))] = (
                res.dual_ub if res.dual_ub is not None else np.zeros(0),
                res.dual_eq if res.dual_eq is not None else np.zeros(0))

    def node_thunk(phases: PhaseMap, tight_pre, label: str
                   ) -> Callable[[], LPResult]:
        """One worker task: compose base + delta, solve.  Reads the shared
        encoding only (its lazy base assembly is internally locked)."""
        def thunk() -> LPResult:
            system = enc.build_lp(phases, form=solver.lp_form,
                                  tight_pre=tight_pre)
            return solve_lp(neg_obj, system.a_ub, system.b_ub,
                            system.a_eq, system.b_eq, system.bounds,
                            label=label,
                            want_duals=collect_duals is not None)
        return thunk

    def solve_batch(items: List[Tuple[PhaseMap, object]],
                    stage: str) -> List[LPResult]:
        """Solve one round's surviving node LPs, order-preserving.

        ``workers > 1`` submits the whole batch to the shared pool in one
        :func:`run_parallel` call; a single worker (or a single task) runs
        inline -- identical results either way, so the sequential path is
        the honest baseline the speedup benchmark compares against.
        """
        nonlocal lp_solves
        lp_solves += len(items)
        batches.append(len(items))
        thunks = [node_thunk(phases, tight, f"{stage} node {j}")
                  for j, (phases, tight) in enumerate(items)]
        # Re-clamp per batch against the width other callers currently
        # hold: while the pool is occupied elsewhere this degrades to
        # inline execution for the round (results identical) rather than
        # constructing a private pool every round.
        run_workers = min(pool_workers, available_width())
        if run_workers <= 1 or len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        tasks = [(f"{stage}-{j}", thunk) for j, thunk in enumerate(thunks)]
        return [value for _, value, _ in
                run_parallel(tasks, workers=run_workers)]

    def register_feasible(x_input: np.ndarray) -> None:
        nonlocal incumbent, witness
        value, x_clipped = solver._feasible_value(c_vec, x_input)
        if value > incumbent:
            incumbent = value
            witness = x_clipped

    # Max-heap on node upper bounds (negate for heapq).
    heap: List[Tuple[float, int, PhaseMap, np.ndarray]] = []

    # Warm-start economics: starts adopted from the caller, and how many
    # of them the batched float64 re-screen settled without an LP.
    nodes_reused = len(initial_nodes) if initial_nodes else 0
    lp_solves_saved = 0

    def result(status: str, bound: float) -> BaBResult:
        return BaBResult(
            status, max(bound, screened_bound), incumbent, witness,
            nodes, lp_solves, rounds=rounds,
            max_batch=max(batches, default=0),
            mean_batch=float(np.mean(batches)) if batches else 0.0,
            workers=workers,
            nodes_reused=nodes_reused,
            lp_solves_saved=lp_solves_saved,
        )

    def finish(status: str, bound: float) -> BaBResult:
        # Whatever remains open is part of the covering certificate.
        for _, __, phases, ___ in heap:
            record_leaf(phases)
        return result(status, bound)

    # ------------------------------------------------------------- warm start
    starts: List[PhaseMap] = (
        [dict(p) for p in initial_nodes] if initial_nodes else [{}]
    )
    start_ubs = start_feasible = start_tights = None
    if use_screen:
        # A caller-supplied screen (certificate reuse's dual-bound screen)
        # applies to the warm-start batch only; branching children below
        # always go through the stock batched screen.
        start_ubs, start_feasible, start_tights = \
            (start_screen or screen_nodes)(starts)
        if solver.interval_prune and threshold is not None and \
                np.all(start_ubs <= threshold + tol):
            for start in starts:
                record_leaf(start)
            lp_solves_saved = nodes_reused
            return result(BAB_PROVED, float(start_ubs.max()))
    surviving: List[Tuple[PhaseMap, object]] = []
    for j, start in enumerate(starts):
        ub_est = float(start_ubs[j]) if solver.interval_prune else None
        # Starts screen against an -inf incumbent: all surviving start LPs
        # solve in one concurrent batch, so no earlier start's incumbent
        # exists yet (the scalar search, solving sequentially, does prune
        # later starts against earlier ones -- same verdicts, more LPs).
        verdict = solver._screen_verdict(
            ub_est, not use_screen or bool(start_feasible[j]),
            -np.inf, threshold)
        if verdict != "open":
            if verdict == "proved":  # region closed below the threshold
                screened_bound = max(screened_bound, ub_est)
            if initial_nodes:
                lp_solves_saved += 1
            record_leaf(start)  # phase constraints emptied the region
            continue
        surviving.append((start, start_tights[j] if start_tights else None))
    any_feasible = False
    if surviving:
        rounds += 1
        for (start, _), res in zip(surviving, solve_batch(surviving, "start")):
            if res.status == LP_INFEASIBLE:
                record_leaf(start)
                continue
            if res.status != LP_OPTIMAL:
                raise SolverError(f"start LP ended with status {res.status}")
            any_feasible = True
            capture_duals(start, res)
            register_feasible(res.x[enc.input_slice])
            heapq.heappush(heap, (res.value, next(counter), start, res.x))
    if not any_feasible:
        if screened_bound > -np.inf:
            # Every LP-checked region was empty, but interval-screened
            # regions cover the rest below the threshold.
            return finish(BAB_PROVED, screened_bound)
        nodes = len(starts)  # scalar-search parity for the infeasible case
        return result(BAB_INFEASIBLE, -np.inf)

    # ---------------------------------------------------------------- rounds
    while heap:
        top_bound = -heap[0][0]
        global_bound = max(top_bound, incumbent)
        if threshold is not None:
            if incumbent > threshold + tol:
                return finish(BAB_REFUTED, global_bound)
            if global_bound <= threshold + tol:
                return finish(BAB_PROVED, global_bound)
        if top_bound <= incumbent + tol:
            # The best remaining node cannot beat the incumbent: optimal.
            return finish(BAB_OPTIMAL, max(incumbent, top_bound))
        budget = solver.node_limit - nodes
        if budget <= 0:
            return finish(BAB_NODE_LIMIT, global_bound)

        # Pop the round's frontier (heap order => bounds non-increasing).
        popped: List[Tuple[float, PhaseMap, np.ndarray]] = []
        while heap and len(popped) < min(width, budget):
            neg_bound, cnt, phases, x_lp = heapq.heappop(heap)
            if -neg_bound <= incumbent + tol:
                # This and every later node is dominated; leave them open
                # (the next round's top-of-heap check settles the search).
                heapq.heappush(heap, (neg_bound, cnt, phases, x_lp))
                break
            popped.append((-neg_bound, phases, x_lp))

        rounds += 1
        children: List[PhaseMap] = []
        for bound, phases, x_lp in popped:
            nodes += 1
            branch_var = solver._most_violated(x_lp, phases)
            if branch_var is None:
                # LP solution is activation-consistent: bound is attained.
                register_feasible(x_lp[enc.input_slice])
                record_leaf(phases)
                continue
            for phase in (1, -1):
                child: PhaseMap = dict(phases)
                child[branch_var] = phase
                children.append(child)
        if not children:
            batches.append(0)
            continue

        # One batched pass screens the whole round's children at once.
        child_ubs = child_feasible = child_tights = None
        if use_screen:
            child_ubs, child_feasible, child_tights = screen_nodes(children)
        surviving = []
        for j, child in enumerate(children):
            ub_est = float(child_ubs[j]) if solver.interval_prune else None
            verdict = solver._screen_verdict(
                ub_est, not use_screen or bool(child_feasible[j]),
                incumbent, threshold)
            if verdict != "open":
                if verdict == "proved":  # closed below the threshold
                    screened_bound = max(screened_bound, ub_est)
                record_leaf(child)  # empty region / dominated bound
                continue
            surviving.append(
                (child, child_tights[j] if child_tights else None))

        # Concurrent delta-LP solves; results folded in submission order.
        for (child, _), res in zip(surviving,
                                   solve_batch(surviving, f"round{rounds}")):
            if res.status == LP_INFEASIBLE:
                record_leaf(child)  # the region is empty: settled
                continue
            if res.status != LP_OPTIMAL:
                # Same status discipline as the scalar search: an unbounded
                # (or otherwise failed) child relaxation must surface, not
                # silently settle as a leaf.
                raise SolverError(f"child LP ended with status {res.status}")
            child_bound = -res.value
            capture_duals(child, res)
            register_feasible(res.x[enc.input_slice])
            if child_bound <= incumbent + tol:
                record_leaf(child)
                continue
            heapq.heappush(heap, (-child_bound, next(counter), child, res.x))

    status, bound = solver._terminal_status(incumbent, screened_bound,
                                            threshold)
    return result(status, bound)
