"""Declarative Specs: what to verify, as frozen JSON-serializable values.

One Spec names one verification request; the
:class:`~repro.api.engine.VerificationEngine` turns it into a
:class:`~repro.api.verdict.Verdict`.  Specs carry *no* solver knobs --
tolerances, budgets and pool widths live in one
:class:`~repro.api.config.VerifyConfig` -- only the problem statement
itself (networks, boxes, objectives, strategy choices).

Every Spec round-trips through plain JSON::

    spec == spec_from_dict(spec_to_dict(spec))
    spec == spec_from_json(spec_to_json(spec))

Equality is *value* equality over the canonical JSON form (networks
compare by structure and exact float64 weights, not identity), which is
what makes Specs usable as request payloads, cache keys in higher layers,
and golden files in tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields as dataclass_fields
from typing import ClassVar, Dict, Optional, Tuple, Type

import numpy as np

from repro.errors import SerializationError
from repro.domains.box import Box
from repro.nn.network import Network
from repro.core.artifacts import ProofArtifacts
from repro.api.serialize import (
    array_from_jsonable,
    array_to_jsonable,
    artifacts_from_jsonable,
    artifacts_to_jsonable,
    box_from_jsonable,
    box_to_jsonable,
    float_to_jsonable,
    network_from_jsonable,
    network_to_jsonable,
)

__all__ = [
    "Spec",
    "ContainmentSpec",
    "OutputRangeSpec",
    "ThresholdSpec",
    "MaximizeSpec",
    "PropositionSpec",
    "ContinuousLoopSpec",
    "SPEC_TYPES",
    "spec_to_dict",
    "spec_from_dict",
    "spec_to_json",
    "spec_from_json",
]

PROPOSITION_KINDS = (1, 2, 3, 4, 5, 6)


def _canonical(payload: Dict) -> str:
    # sort_keys for one deterministic string per value; allow_nan=False
    # asserts the payloads really are strict RFC-8259 JSON (non-finite
    # floats are string-encoded by repro.api.serialize).
    return json.dumps(payload, sort_keys=True, allow_nan=False)


@dataclass(frozen=True, eq=False)
class Spec:
    """Base of the declarative request hierarchy (see module docstring)."""

    spec_type: ClassVar[str] = ""

    # -- canonical form -----------------------------------------------------
    def _payload(self) -> Dict:  # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def _from_payload(cls, data: Dict) -> "Spec":  # pragma: no cover
        raise NotImplementedError

    # -- value semantics ----------------------------------------------------
    def _canonical_form(self) -> str:
        """The canonical JSON string, computed once per instance.

        Specs are frozen and advertised as cache keys, so the O(model
        size) serialisation must not be paid on every hash/eq probe; the
        cache rides on the instance via ``object.__setattr__`` (legal on
        frozen dataclasses, invisible to ``fields()``).
        """
        cached = getattr(self, "_canonical_cache", None)
        if cached is None:
            cached = _canonical(self._payload())
            object.__setattr__(self, "_canonical_cache", cached)
        return cached

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._canonical_form() == other._canonical_form()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._canonical_form()))


@dataclass(frozen=True, eq=False)
class ContainmentSpec(Spec):
    """``∀x ∈ input_box : network(x) ∈ target`` (the paper's local reuse
    condition; legacy :func:`repro.exact.verify.check_containment`)."""

    network: Network
    input_box: Box
    target: Box
    #: Containment method cascade; ``None`` defers to the engine config.
    method: Optional[str] = None

    spec_type: ClassVar[str] = "containment"

    def _payload(self) -> Dict:
        return {
            "network": network_to_jsonable(self.network),
            "input_box": box_to_jsonable(self.input_box),
            "target": box_to_jsonable(self.target),
            "method": self.method,
        }

    @classmethod
    def _from_payload(cls, data: Dict) -> "ContainmentSpec":
        return cls(network=network_from_jsonable(data["network"]),
                   input_box=box_from_jsonable(data["input_box"]),
                   target=box_from_jsonable(data["target"]),
                   method=data.get("method"))


@dataclass(frozen=True, eq=False)
class OutputRangeSpec(Spec):
    """The exact per-output min/max box over ``input_box`` (legacy
    :func:`repro.exact.verify.output_range_exact`)."""

    network: Network
    input_box: Box

    spec_type: ClassVar[str] = "output_range"

    def _payload(self) -> Dict:
        return {
            "network": network_to_jsonable(self.network),
            "input_box": box_to_jsonable(self.input_box),
        }

    @classmethod
    def _from_payload(cls, data: Dict) -> "OutputRangeSpec":
        return cls(network=network_from_jsonable(data["network"]),
                   input_box=box_from_jsonable(data["input_box"]))


@dataclass(frozen=True, eq=False)
class ThresholdSpec(Spec):
    """Prove ``max objective @ network(x) <= threshold`` and keep the
    branching certificate (legacy
    :func:`repro.exact.incremental.certify_threshold`)."""

    network: Network
    input_box: Box
    objective: np.ndarray
    threshold: float

    spec_type: ClassVar[str] = "threshold"

    def _payload(self) -> Dict:
        return {
            "network": network_to_jsonable(self.network),
            "input_box": box_to_jsonable(self.input_box),
            "objective": array_to_jsonable(self.objective),
            "threshold": float_to_jsonable(self.threshold),
        }

    @classmethod
    def _from_payload(cls, data: Dict) -> "ThresholdSpec":
        return cls(network=network_from_jsonable(data["network"]),
                   input_box=box_from_jsonable(data["input_box"]),
                   objective=array_from_jsonable(data["objective"]),
                   threshold=float(data["threshold"]))


@dataclass(frozen=True, eq=False)
class MaximizeSpec(Spec):
    """``max c @ network(x)`` (or ``min`` with ``minimize=True``) over the
    box, optionally in threshold mode (legacy
    :func:`repro.exact.bab.maximize_output` / ``minimize_output``)."""

    network: Network
    input_box: Box
    objective: np.ndarray
    threshold: Optional[float] = None
    minimize: bool = False

    spec_type: ClassVar[str] = "maximize"

    def _payload(self) -> Dict:
        return {
            "network": network_to_jsonable(self.network),
            "input_box": box_to_jsonable(self.input_box),
            "objective": array_to_jsonable(self.objective),
            "threshold": None if self.threshold is None
            else float_to_jsonable(self.threshold),
            "minimize": bool(self.minimize),
        }

    @classmethod
    def _from_payload(cls, data: Dict) -> "MaximizeSpec":
        threshold = data.get("threshold")
        return cls(network=network_from_jsonable(data["network"]),
                   input_box=box_from_jsonable(data["input_box"]),
                   objective=array_from_jsonable(data["objective"]),
                   threshold=None if threshold is None else float(threshold),
                   minimize=bool(data.get("minimize", False)))


@dataclass(frozen=True, eq=False)
class PropositionSpec(Spec):
    """One proof-reuse proposition (paper Section IV), ``kind`` 1..6.

    Kinds 1/2/3 settle a domain enlargement over ``artifacts``; kinds
    4/5 settle a new network version (optionally with an enlargement);
    kind 6 settles a new version over the *original* domain only (the
    enlargement composite lives in :class:`ContinuousLoopSpec`).
    ``method`` of ``None`` keeps each proposition's historical default
    (prop2: ``"exact"``, prop6: ``"symbolic"``, else the config method).
    """

    kind: int
    artifacts: ProofArtifacts
    enlarged_din: Optional[Box] = None
    new_network: Optional[Network] = None
    alphas: Optional[Tuple[int, ...]] = None
    method: Optional[str] = None
    #: Abstract domain for prop2's layerwise rebuild (``None`` = config).
    domain: Optional[str] = None
    #: Prop3's distance norm.
    ord: float = 2.0
    #: Prop4: run every layer check even after a failure (the parallel
    #: execution model; the fixing fallback needs the full pattern).
    stop_on_failure: bool = False
    #: Prop4/5: batched interval pre-screen before exact per-check work.
    prescreen: bool = True
    #: Prop6: re-verify the stored abstraction's safety instead of
    #: trusting the recorded flag.
    recheck_safety: bool = False

    spec_type: ClassVar[str] = "proposition"

    def __post_init__(self):
        if self.kind not in PROPOSITION_KINDS:
            raise SerializationError(
                f"proposition kind must be one of {PROPOSITION_KINDS}, "
                f"got {self.kind}")
        if self.kind in (1, 2, 3) and self.enlarged_din is None:
            raise SerializationError(
                f"proposition {self.kind} needs enlarged_din")
        if self.kind in (4, 5, 6) and self.new_network is None:
            raise SerializationError(
                f"proposition {self.kind} needs new_network")
        if self.kind == 6 and self.enlarged_din is not None:
            # Proposition 6 covers the *original* domain only; silently
            # ignoring the enlargement would return an unsound "holds".
            raise SerializationError(
                "proposition 6 does not take enlarged_din (it covers the "
                "original domain only); use ContinuousLoopSpec with "
                'strategies=("prop6", ...) for the enlargement composite')
        if self.kind == 5 and self.alphas is None:
            raise SerializationError("proposition 5 needs reuse points (alphas)")
        if self.alphas is not None:
            # Normalise to a tuple so the frozen value is hashable/stable.
            object.__setattr__(self, "alphas",
                               tuple(int(a) for a in self.alphas))

    def _payload(self) -> Dict:
        return {
            "kind": int(self.kind),
            "artifacts": artifacts_to_jsonable(self.artifacts),
            "enlarged_din": None if self.enlarged_din is None
            else box_to_jsonable(self.enlarged_din),
            "new_network": None if self.new_network is None
            else network_to_jsonable(self.new_network),
            "alphas": None if self.alphas is None else list(self.alphas),
            "method": self.method,
            "domain": self.domain,
            "ord": float_to_jsonable(self.ord),
            "stop_on_failure": bool(self.stop_on_failure),
            "prescreen": bool(self.prescreen),
            "recheck_safety": bool(self.recheck_safety),
        }

    @classmethod
    def _from_payload(cls, data: Dict) -> "PropositionSpec":
        return cls(
            kind=int(data["kind"]),
            artifacts=artifacts_from_jsonable(data["artifacts"]),
            enlarged_din=None if data.get("enlarged_din") is None
            else box_from_jsonable(data["enlarged_din"]),
            new_network=None if data.get("new_network") is None
            else network_from_jsonable(data["new_network"]),
            alphas=None if data.get("alphas") is None
            else tuple(int(a) for a in data["alphas"]),
            method=data.get("method"),
            domain=data.get("domain"),
            ord=float(data.get("ord", 2.0)),
            stop_on_failure=bool(data.get("stop_on_failure", False)),
            prescreen=bool(data.get("prescreen", True)),
            recheck_safety=bool(data.get("recheck_safety", False)),
        )


@dataclass(frozen=True, eq=False)
class ContinuousLoopSpec(Spec):
    """One continuous-verification round: settle a domain enlargement
    (SVuDC, ``new_network is None``) or a new version (SVbTV) against the
    stored artifacts via the full strategy cascade, fixing and fallback
    included (legacy :class:`repro.core.continuous.ContinuousVerifier`)."""

    artifacts: ProofArtifacts
    enlarged_din: Optional[Box] = None
    new_network: Optional[Network] = None
    #: Strategy cascade override (``None`` = the historical defaults).
    strategies: Optional[Tuple[str, ...]] = None
    prop5_alphas: Optional[Tuple[int, ...]] = None
    with_fixing: bool = True

    spec_type: ClassVar[str] = "continuous"

    def __post_init__(self):
        if self.enlarged_din is None and self.new_network is None:
            raise SerializationError(
                "a continuous round needs an enlarged domain, a new "
                "network version, or both")
        if self.strategies is not None:
            object.__setattr__(self, "strategies",
                               tuple(str(s) for s in self.strategies))
        if self.prop5_alphas is not None:
            object.__setattr__(self, "prop5_alphas",
                               tuple(int(a) for a in self.prop5_alphas))

    def _payload(self) -> Dict:
        return {
            "artifacts": artifacts_to_jsonable(self.artifacts),
            "enlarged_din": None if self.enlarged_din is None
            else box_to_jsonable(self.enlarged_din),
            "new_network": None if self.new_network is None
            else network_to_jsonable(self.new_network),
            "strategies": None if self.strategies is None
            else list(self.strategies),
            "prop5_alphas": None if self.prop5_alphas is None
            else list(self.prop5_alphas),
            "with_fixing": bool(self.with_fixing),
        }

    @classmethod
    def _from_payload(cls, data: Dict) -> "ContinuousLoopSpec":
        return cls(
            artifacts=artifacts_from_jsonable(data["artifacts"]),
            enlarged_din=None if data.get("enlarged_din") is None
            else box_from_jsonable(data["enlarged_din"]),
            new_network=None if data.get("new_network") is None
            else network_from_jsonable(data["new_network"]),
            strategies=None if data.get("strategies") is None
            else tuple(data["strategies"]),
            prop5_alphas=None if data.get("prop5_alphas") is None
            else tuple(data["prop5_alphas"]),
            with_fixing=bool(data.get("with_fixing", True)),
        )


#: Registry keyed by the wire-format ``"type"`` tag.
SPEC_TYPES: Dict[str, Type[Spec]] = {
    cls.spec_type: cls
    for cls in (ContainmentSpec, OutputRangeSpec, ThresholdSpec,
                MaximizeSpec, PropositionSpec, ContinuousLoopSpec)
}


def spec_to_dict(spec: Spec) -> Dict:
    """The JSON-safe wire form: ``{"type": <kind>, ...payload}``."""
    if type(spec) not in SPEC_TYPES.values():
        raise SerializationError(f"not a Spec: {type(spec).__name__}")
    return {"type": spec.spec_type, **spec._payload()}


def spec_from_dict(data: Dict) -> Spec:
    """Inverse of :func:`spec_to_dict`."""
    try:
        tag = data["type"]
    except (TypeError, KeyError):
        raise SerializationError(
            'a spec dict needs a "type" tag '
            f"(one of {sorted(SPEC_TYPES)})") from None
    if tag not in SPEC_TYPES:
        raise SerializationError(
            f"unknown spec type {tag!r}; known: {sorted(SPEC_TYPES)}")
    cls = SPEC_TYPES[tag]
    payload = {k: v for k, v in data.items() if k != "type"}
    # Payload keys mirror the dataclass fields one-to-one; reject typos
    # loudly (a silently dropped "thresold" would change the verdict).
    known = {f.name for f in dataclass_fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise SerializationError(
            f"unknown keys {sorted(unknown)} for spec type {tag!r}; "
            f"known: {sorted(known)}")
    try:
        return cls._from_payload(payload)
    except KeyError as exc:
        raise SerializationError(
            f"spec type {tag!r} is missing required key {exc.args[0]!r}"
        ) from None


def spec_to_json(spec: Spec, **dumps_kwargs) -> str:
    """``json.dumps`` of :func:`spec_to_dict` -- strict RFC-8259 text
    (non-finite floats travel as ``"inf"``/``"-inf"``/``"nan"`` strings,
    so any JSON parser can read the wire form)."""
    return json.dumps(spec_to_dict(spec), allow_nan=False, **dumps_kwargs)


def spec_from_json(text: str) -> Spec:
    """Inverse of :func:`spec_to_json`."""
    return spec_from_dict(json.loads(text))
