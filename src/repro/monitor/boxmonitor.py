"""Abstraction-based runtime monitoring of feature-layer values.

Reproduces the monitoring setup of the paper's experiment (Section V) and
its citations [1], [2]: record, over the training/validation data, the
per-neuron min/max of a designated layer (the output of ``Flatten`` in
Fig. 4) plus an additional buffer -- that box is the verified input domain
``Din``.  In operation every frame's feature vector is checked against the
box; out-of-bound observations are logged and accumulated into the enlarged
domain ``Din ∪ Δin`` that triggers the next (incremental) verification task.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import MonitorError
from repro.domains.box import Box
from repro.monitor.events import EnlargementEvent

__all__ = ["BoxMonitor", "screen_states"]


class BoxMonitor:
    """Per-dimension min/max monitor over a feature space."""

    def __init__(self, buffer: float = 0.0,
                 lower_floor: Optional[float] = None):
        """``buffer`` inflates the recorded bounds on every side;
        ``lower_floor`` clamps the lower bounds from below -- set it to 0.0
        when monitoring post-ReLU features, whose true domain is known to be
        non-negative (keeping ``Din`` inside that domain preserves the
        properties downstream analyses rely on, e.g. network-abstraction
        merging of the first layer)."""
        if buffer < 0:
            raise MonitorError(f"buffer must be non-negative, got {buffer}")
        self.buffer = float(buffer)
        self.lower_floor = None if lower_floor is None else float(lower_floor)
        self._din: Optional[Box] = None
        self._observed_low: Optional[np.ndarray] = None
        self._observed_high: Optional[np.ndarray] = None
        self.events: List[EnlargementEvent] = []
        self._step = 0

    # ------------------------------------------------------------ calibration
    def calibrate(self, features: np.ndarray) -> Box:
        """Fit ``Din`` from in-distribution feature vectors ``(N, d)``.

        The recorded box is the observed min/max per neuron, inflated by the
        configured ``buffer`` (the paper's "additional buffers").
        """
        box = Box.from_samples(features, buffer=self.buffer)
        box = self._apply_floor(box)
        self._din = box
        self._observed_low = box.lower.copy()
        self._observed_high = box.upper.copy()
        self.events.clear()
        self._step = 0
        return box

    @property
    def din(self) -> Box:
        """The calibrated input domain."""
        if self._din is None:
            raise MonitorError("monitor not calibrated; call calibrate() first")
        return self._din

    # -------------------------------------------------------------- operation
    def observe(self, feature: np.ndarray) -> bool:
        """Process one feature vector; returns ``True`` when in-bounds.

        Out-of-bound observations extend the running enlargement record and
        append an :class:`EnlargementEvent`.

        A feature vector containing NaN or ±inf is *rejected*: it counts as
        out-of-bound (sensor fault -- the property monitored for certainly
        does not hold) and is logged with ``nonfinite=True``, but it never
        touches the enlargement record.  Folding a NaN into the running
        min/max would poison ``Din ∪ Δin`` (NaN comparisons silently drop
        the update on some dims and keep it on others), and an inf would
        hand the next verification task an unbounded domain.
        """
        din = self.din
        x = np.asarray(feature, dtype=np.float64).reshape(-1)
        if x.size != din.dim:
            raise MonitorError(f"feature dim {x.size} != monitored dim {din.dim}")
        self._step += 1
        finite = np.isfinite(x)
        if not finite.all():
            self.events.append(EnlargementEvent(
                step=self._step, excess=float("inf"),
                dimensions=np.flatnonzero(~finite).tolist(),
                nonfinite=True))
            return False
        inside = din.contains_point(x, tol=0.0)
        if not inside:
            excess = float(np.max(np.maximum(din.lower - x, x - din.upper)))
            dims = np.flatnonzero((x < din.lower) | (x > din.upper))
            self.events.append(EnlargementEvent(
                step=self._step, excess=excess, dimensions=dims.tolist()))
            self._observed_low = np.minimum(self._observed_low, x)
            self._observed_high = np.maximum(self._observed_high, x)
        return inside

    def observe_batch(self, features: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`observe`: one containment check for the whole
        window, with per-row events only materialised for violations.

        Semantically identical to calling :meth:`observe` row by row (same
        events, step numbers, enlargement record, and non-finite rejection)
        but the common all-in-bounds case costs a single numpy pass instead
        of one Python call per frame.
        """
        din = self.din
        arr = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if arr.ndim != 2 or arr.shape[1] != din.dim:
            raise MonitorError(
                f"feature window shape {arr.shape} != (N, {din.dim})")
        finite = np.isfinite(arr).all(axis=1)
        inside = din.contains_points(arr, tol=0.0) & finite
        base_step = self._step
        self._step += arr.shape[0]
        bad = np.flatnonzero(~inside)
        if bad.size:
            # One vectorised pass for the finite violations (gaps) and one
            # for the non-finite rejections (offending dims); the Python
            # loop below only materialises event objects.
            rows = arr[bad]
            rows_finite = finite[bad]
            gaps = np.maximum(din.lower - rows, rows - din.upper)
            bad_dims = ~np.isfinite(rows)
            for j, offset in enumerate(bad):
                if not rows_finite[j]:
                    # Same rejection as the scalar path: counted, flagged,
                    # excluded from the enlargement record below.
                    self.events.append(EnlargementEvent(
                        step=base_step + int(offset) + 1,
                        excess=float("inf"),
                        dimensions=np.flatnonzero(bad_dims[j]).tolist(),
                        nonfinite=True))
                    continue
                self.events.append(EnlargementEvent(
                    step=base_step + int(offset) + 1,
                    excess=float(np.max(gaps[j])),
                    dimensions=np.flatnonzero(gaps[j] > 0).tolist()))
            record = rows[rows_finite]
            if record.size:
                self._observed_low = np.minimum(self._observed_low,
                                                record.min(axis=0))
                self._observed_high = np.maximum(self._observed_high,
                                                 record.max(axis=0))
        return inside

    def screen_window(self, features: np.ndarray,
                      network=None,
                      states: Optional[Sequence[Box]] = None,
                      tol: float = 0.0) -> np.ndarray:
        """Read-only batched screen of a sample window against the enlarged
        domain ``Din ∪ Δin`` (and, optionally, the per-layer abstractions).

        Returns the per-row mask of samples that stay inside the enlarged
        domain -- and, when ``network``/``states`` are supplied, whose
        per-block activations also stay inside every stored ``S_i`` (the
        condition under which the existing safety proof still covers the
        sample).  Unlike :meth:`observe_batch` this records nothing: it is
        the cheap vectorized pre-check the continuous loop runs over a
        window before deciding whether a verification task is needed.
        """
        if (network is None) != (states is None):
            raise MonitorError(
                "screen_window needs both network and states for the "
                "per-layer check (got only one of them)")
        arr = np.atleast_2d(np.asarray(features, dtype=np.float64))
        mask = self.enlarged_box().contains_points(arr, tol=tol)
        if network is not None:
            mask = mask & screen_states(network, states, arr, tol=tol)
        return mask

    # ---------------------------------------------------------------- results
    @property
    def out_of_bound_count(self) -> int:
        """All rejections, non-finite observations included."""
        return len(self.events)

    @property
    def nonfinite_count(self) -> int:
        """Observations rejected because a feature was NaN or infinite."""
        return sum(1 for e in self.events if e.nonfinite)

    def enlarged_box(self, buffer: Optional[float] = None) -> Box:
        """``Din ∪ Δin``: the calibrated box joined with every out-of-bound
        observation (optionally re-buffered) -- the input domain of the next
        verification problem.

        Only *finite* out-of-bound observations enlarge the domain:
        non-finite rejections carry no usable coordinates, so a run seeing
        nothing but sensor faults keeps ``Din`` unchanged instead of
        inflating it by the buffer around nothing.
        """
        din = self.din
        if self._observed_low is None:
            return din
        extra = self.buffer if buffer is None else float(buffer)
        observed = Box(self._observed_low, self._observed_high)
        if self.out_of_bound_count > self.nonfinite_count:
            observed = self._apply_floor(observed.inflate(extra))
        return din.union(observed)

    def _apply_floor(self, box: Box) -> Box:
        if self.lower_floor is None:
            return box
        lower = np.maximum(box.lower, self.lower_floor)
        return Box(lower, np.maximum(box.upper, lower))

    def delta_box(self) -> Optional[Box]:
        """Bounding box of the enlargement alone (``None`` if nothing
        enlarged -- non-finite rejections carry no coordinates, so a run
        with only those reports no enlargement)."""
        if self.out_of_bound_count <= self.nonfinite_count:
            return None
        return self.enlarged_box()

    def kappa(self, ord: float = 2) -> float:
        """Proposition 3's ``κ`` between ``Din`` and the enlarged domain."""
        from repro.domains.box import box_kappa

        return box_kappa(self.din, self.enlarged_box(), ord=ord)


def screen_states(network, states: Sequence[Box], features: np.ndarray,
                  tol: float = 0.0) -> np.ndarray:
    """Per-sample mask: do all per-block activations stay inside the stored
    state abstractions ``[S_1, ..., S_n]``?

    One batched forward pass through the network with a vectorized
    containment check after every block -- the monitor-side use of the
    batched engine: a window of runtime samples is screened against the
    whole proof chain at the cost of a handful of matmuls.
    """
    arr = np.atleast_2d(np.asarray(features, dtype=np.float64))
    blocks = network.blocks()
    if len(states) != len(blocks):
        raise MonitorError(
            f"{len(states)} state abstractions for {len(blocks)} blocks")
    mask = np.ones(arr.shape[0], dtype=bool)
    values = arr
    for block, state in zip(blocks, states):
        values = block.forward(values)
        mask &= state.contains_points(values, tol=tol)
    return mask
