"""Distributed serving: consistent-hash routing, worker liveness, the
remote executor, the shard-routing coordinator, and the kill-a-worker
end-to-end path (verdicts must stay byte-identical to direct solves)."""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    MaximizeSpec,
    VerificationEngine,
    VerifyConfig,
    canonical_verdict_json,
    config_to_json,
    spec_to_json,
    verdict_from_dict,
)
from repro.api.config import ServeConfig
from repro.domains import Box
from repro.errors import (
    RemoteProtocolError,
    RemoteUnreachableError,
    ServeError,
)
from repro.serve import (
    HashRing,
    RemoteExecutor,
    ServeClient,
    ShardRouter,
    VerificationService,
    WorkerRegistry,
    routing_key,
    serve_http,
)
from repro.serve.resilience import ExecutorUnavailableError, classify_failure

_CONFIG_JSON = config_to_json(VerifyConfig())


def _spec(scale=1.0, fig2=None):
    from repro.nn import fig2_network

    return MaximizeSpec(network=fig2 or fig2_network(),
                        input_box=Box(-np.ones(2), np.array([1.1, 1.1])),
                        objective=np.array([float(scale)]))


def _wire(spec):
    return spec_to_json(spec, sort_keys=True)


# ------------------------------------------------------------- routing key


class TestRoutingKey:
    def test_deterministic(self, fig2):
        spec_json = _wire(_spec(fig2=fig2))
        assert routing_key(spec_json, _CONFIG_JSON) == \
            routing_key(spec_json, _CONFIG_JSON)

    def test_spec_and_config_both_matter(self, fig2):
        a = _wire(_spec(1.0, fig2))
        b = _wire(_spec(2.0, fig2))
        other_config = config_to_json(VerifyConfig(workers=2))
        assert routing_key(a, _CONFIG_JSON) != routing_key(b, _CONFIG_JSON)
        assert routing_key(a, _CONFIG_JSON) != routing_key(a, other_config)

    def test_separator_prevents_boundary_collisions(self):
        # "ab"+"c" must not hash like "a"+"bc".
        assert routing_key("ab", "c") != routing_key("a", "bc")


# --------------------------------------------------------------- hash ring


class TestHashRing:
    def test_empty_ring(self):
        ring = HashRing()
        assert ring.owner("anything") is None
        assert ring.order("anything") == []
        assert len(ring) == 0

    def test_single_node_owns_everything(self):
        ring = HashRing()
        ring.add("http://a:1")
        assert all(ring.owner(f"key{i}") == "http://a:1"
                   for i in range(50))

    def test_owner_is_stable(self):
        ring = HashRing()
        for node in ("http://a:1", "http://b:2", "http://c:3"):
            ring.add(node)
        owners = {f"key{i}": ring.owner(f"key{i}") for i in range(200)}
        assert owners == {k: ring.owner(k) for k in owners}

    def test_order_starts_at_owner_and_covers_all_nodes(self):
        ring = HashRing()
        nodes = ["http://a:1", "http://b:2", "http://c:3"]
        for node in nodes:
            ring.add(node)
        for i in range(50):
            order = ring.order(f"key{i}")
            assert order[0] == ring.owner(f"key{i}")
            assert sorted(order) == sorted(nodes)

    def test_remove_moves_only_the_removed_nodes_keys(self):
        ring = HashRing()
        nodes = ["http://a:1", "http://b:2", "http://c:3"]
        for node in nodes:
            ring.add(node)
        keys = [f"key{i}" for i in range(1000)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("http://b:2")
        after = {k: ring.owner(k) for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        # Every moved key used to belong to the removed node; every key
        # that stayed kept its exact owner.
        assert all(before[k] == "http://b:2" for k in moved)
        assert all(after[k] == before[k]
                   for k in keys if before[k] != "http://b:2")
        # And the removed node owned ~1/3 of the space (loose bounds:
        # 64 virtual nodes leave some imbalance).
        assert 0.15 < len(moved) / len(keys) < 0.55

    def test_add_moves_only_a_slice_to_the_new_node(self):
        ring = HashRing()
        for node in ("http://a:1", "http://b:2"):
            ring.add(node)
        keys = [f"key{i}" for i in range(1000)]
        before = {k: ring.owner(k) for k in keys}
        ring.add("http://c:3")
        after = {k: ring.owner(k) for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        assert all(after[k] == "http://c:3" for k in moved)
        assert 0.15 < len(moved) / len(keys) < 0.55

    def test_readding_a_node_restores_the_exact_mapping(self):
        ring = HashRing()
        for node in ("http://a:1", "http://b:2", "http://c:3"):
            ring.add(node)
        keys = [f"key{i}" for i in range(300)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("http://b:2")
        ring.add("http://b:2")
        assert before == {k: ring.owner(k) for k in keys}

    def test_add_is_idempotent(self):
        ring = HashRing(replicas=8)
        ring.add("http://a:1")
        ring.add("http://a:1")
        assert len(ring._points) == 8

    def test_replicas_validated(self):
        with pytest.raises(ServeError):
            HashRing(replicas=0)


# --------------------------------------------------------- worker registry


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestWorkerRegistry:
    def test_normalize(self):
        assert WorkerRegistry.normalize("host:8717") == "http://host:8717"
        assert WorkerRegistry.normalize("http://host:8717/") == \
            "http://host:8717"

    def test_add_makes_alive_until_ttl_lapses(self):
        clock = _FakeClock()
        registry = WorkerRegistry(worker_ttl=5.0, clock=clock)
        url = registry.add("http://a:1")
        assert registry.is_alive(url)
        clock.advance(4.9)
        assert registry.is_alive(url)
        clock.advance(0.2)
        assert not registry.is_alive(url)

    def test_heartbeat_refreshes_ttl(self):
        clock = _FakeClock()
        registry = WorkerRegistry(worker_ttl=5.0, clock=clock)
        registry.add("http://a:1")
        clock.advance(4.0)
        registry.heartbeat("http://a:1")
        clock.advance(4.0)
        assert registry.is_alive("http://a:1")

    def test_failed_probe_after_ttl_marks_dead(self):
        clock = _FakeClock()
        registry = WorkerRegistry(worker_ttl=5.0, clock=clock)
        registry.add("http://a:1")
        clock.advance(1.0)
        registry.note_probe("http://a:1", ok=False, error="boom")
        # TTL not yet lapsed: one bad probe is not a death sentence.
        assert registry.is_alive("http://a:1")
        clock.advance(5.0)
        registry.note_probe("http://a:1", ok=False, error="boom")
        state = registry.states()[0]
        assert not state["alive"]
        assert state["deaths"] == 1
        assert state["last_error"] == "boom"

    def test_successful_probe_revives_a_dead_worker(self):
        clock = _FakeClock()
        registry = WorkerRegistry(worker_ttl=5.0, clock=clock)
        registry.add("http://a:1")
        registry.mark_unreachable("http://a:1", "refused")
        assert not registry.is_alive("http://a:1")
        registry.note_probe("http://a:1", ok=True)
        assert registry.is_alive("http://a:1")

    def test_mark_unreachable_kills_immediately(self):
        clock = _FakeClock()
        registry = WorkerRegistry(worker_ttl=500.0, clock=clock)
        registry.add("http://a:1")
        registry.mark_unreachable("http://a:1", "connection refused")
        assert not registry.is_alive("http://a:1")
        assert registry.states()[0]["deaths"] == 1

    def test_job_success_is_proof_of_life(self):
        clock = _FakeClock()
        registry = WorkerRegistry(worker_ttl=5.0, clock=clock)
        registry.add("http://a:1")
        clock.advance(4.0)
        registry.note_success("http://a:1")
        clock.advance(4.0)
        assert registry.is_alive("http://a:1")
        assert registry.states()[0]["jobs_ok"] == 1

    def test_states_carries_age_not_monotonic_stamps(self):
        clock = _FakeClock()
        registry = WorkerRegistry(worker_ttl=5.0, clock=clock)
        registry.add("http://a:1")
        clock.advance(2.5)
        state = registry.states()[0]
        assert state["last_seen_age"] == pytest.approx(2.5)
        assert "last_seen" not in state and "registered_at" not in state

    def test_unknown_urls_are_ignored(self):
        registry = WorkerRegistry()
        registry.note_probe("http://ghost:1", ok=True)
        registry.note_success("http://ghost:1")
        registry.mark_unreachable("http://ghost:1", "x")
        assert registry.states() == []


# ------------------------------------------- remote executor (live server)


@pytest.fixture
def worker_server():
    """One in-thread worker: a real VerificationService behind HTTP."""
    service = VerificationService(store=":memory:", executor="inprocess",
                                  workers=2)
    server = serve_http(service, port=0)
    service.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()


class TestRemoteExecutor:
    def test_verdict_byte_identical_to_direct_solve(self, worker_server,
                                                    fig2):
        spec = _spec(fig2=fig2)
        executor = RemoteExecutor(worker_server.url)
        out = executor.execute(_wire(spec), _CONFIG_JSON, timeout=60)
        direct = VerificationEngine(VerifyConfig()).verify(spec)
        assert canonical_verdict_json(verdict_from_dict(out)) == \
            canonical_verdict_json(direct)

    def test_remote_permanent_failure_stays_permanent(self, worker_server,
                                                      fig2):
        from repro.api import ContainmentSpec

        bad = ContainmentSpec(network=fig2,
                              input_box=Box(-np.ones(5), np.ones(5)),
                              target=Box(-np.ones(1), np.ones(1)))
        executor = RemoteExecutor(worker_server.url)
        with pytest.raises(Exception) as excinfo:
            executor.execute(_wire(bad), _CONFIG_JSON, timeout=60)
        _, transient = classify_failure(excinfo.value)
        assert not transient, (
            "a permanently-bad spec must not be retried across the fleet")

    def test_unreachable_endpoint_raises_transient(self):
        executor = RemoteExecutor("http://127.0.0.1:1", request_timeout=0.5)
        with pytest.raises(RemoteUnreachableError) as excinfo:
            executor.execute(_wire(_spec()), _CONFIG_JSON, timeout=5)
        _, transient = classify_failure(excinfo.value)
        assert transient
        assert "127.0.0.1:1" in str(excinfo.value)

    def test_load_shedding_maps_to_unreachable(self):
        # Queue limit 1 on a service that is never started: the first
        # submit fills the queue, the executor's own submit gets the 503.
        service = VerificationService(
            store=":memory:", executor="inprocess", workers=1,
            serve_config=ServeConfig(queue_limit=1))
        server = serve_http(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            ServeClient(server.url).submit(_spec())
            executor = RemoteExecutor(server.url)
            with pytest.raises(RemoteUnreachableError, match="shedding"):
                executor.execute(_wire(_spec(2.0)), _CONFIG_JSON, timeout=5)
        finally:
            server.shutdown()
            server.server_close()
            service.close()


# ----------------------------------------------------- client wait hygiene


class TestServeClientWait:
    def test_wait_survives_transient_blips_then_gives_up(self):
        # A server that vanishes mid-poll: bounded transport retries, then
        # ExecutorUnavailableError with the last failure's context.
        service = VerificationService(store=":memory:",
                                      executor="inprocess", workers=1)
        server = serve_http(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        record = ServeClient(server.url).submit(_spec())  # stays queued
        client = ServeClient(server.url, timeout=0.5)
        server.shutdown()
        server.server_close()
        service.close()
        with pytest.raises(ExecutorUnavailableError,
                           match="consecutive transport failures"):
            client.wait(record["job_id"], timeout=30, poll=0.01,
                        max_poll=0.02, transport_retries=3)

    def test_wait_honours_deadline_on_transport_errors(self):
        client = ServeClient("http://127.0.0.1:1", timeout=0.2)
        started = time.monotonic()
        with pytest.raises((TimeoutError, ExecutorUnavailableError)):
            client.wait("job-x", timeout=0.5, poll=0.01,
                        transport_retries=10 ** 6)
        assert time.monotonic() - started < 10.0

    def test_wait_rejects_stateless_records(self):
        class _Stateless(ServeClient):
            def job(self, job_id):
                return {"foreign": "payload"}

        client = _Stateless("http://127.0.0.1:1")
        with pytest.raises(RemoteProtocolError, match="without a job state"):
            client.wait("job-x", timeout=1)


# ------------------------------------------------- shard router (no HTTP)


class _FakeRemote:
    """Scriptable RemoteExecutor stand-in (per-URL behaviour)."""

    behaviours = {}

    def __init__(self, url):
        self.url = url
        self.name = f"remote({url})"
        self.calls = 0

    def execute(self, spec_json, config_json, timeout=None):
        self.calls += 1
        behaviour = self.behaviours.get(self.url)
        if behaviour is not None:
            raise behaviour
        return {"verdict": "ok", "shard": self.url}


@pytest.fixture
def fake_router():
    _FakeRemote.behaviours = {}
    clock = _FakeClock()
    router = ShardRouter(
        ["http://a:1", "http://b:2", "http://c:3"],
        serve_config=ServeConfig(breaker_threshold=2, breaker_reset=5.0),
        clock=clock, executor_factory=_FakeRemote,
        start_health_checker=False)
    router.clock = clock
    yield router
    router.close()


class TestShardRouter:
    def test_same_key_routes_to_same_shard(self, fake_router):
        spec_json = _wire(_spec())
        first = fake_router.execute(spec_json, _CONFIG_JSON)
        for _ in range(3):
            again = fake_router.execute(spec_json, _CONFIG_JSON)
            assert again["shard"] == first["shard"]
            assert fake_router.last_shard() == first["shard"]

    def test_dead_shard_reroutes_to_ring_successor(self, fake_router):
        spec_json = _wire(_spec())
        owner = fake_router.execute(spec_json, _CONFIG_JSON)["shard"]
        expected = fake_router.ring.order(
            routing_key(spec_json, _CONFIG_JSON))
        fake_router.registry.mark_unreachable(owner, "killed")
        rerouted = fake_router.execute(spec_json, _CONFIG_JSON)["shard"]
        assert rerouted == expected[1]
        assert fake_router.rerouted_jobs == 1

    def test_strict_policy_parks_instead_of_rerouting(self):
        _FakeRemote.behaviours = {}
        router = ShardRouter(
            ["http://a:1", "http://b:2"],
            serve_config=ServeConfig(reroute_policy="strict"),
            clock=_FakeClock(), executor_factory=_FakeRemote,
            start_health_checker=False)
        try:
            spec_json = _wire(_spec())
            owner = router.execute(spec_json, _CONFIG_JSON)["shard"]
            router.registry.mark_unreachable(owner, "killed")
            with pytest.raises(ExecutorUnavailableError):
                router.execute(spec_json, _CONFIG_JSON)
        finally:
            router.close()

    def test_transport_failure_marks_dead_and_propagates(self, fake_router):
        spec_json = _wire(_spec())
        key = routing_key(spec_json, _CONFIG_JSON)
        owner = fake_router.ring.owner(key)
        _FakeRemote.behaviours[owner] = RemoteUnreachableError("refused")
        with pytest.raises(RemoteUnreachableError):
            fake_router.execute(spec_json, _CONFIG_JSON)
        # The failure is visible (attempt accounting upstream), the shard
        # is dead for fast reroute, and the next call lands elsewhere.
        assert not fake_router.registry.is_alive(owner)
        assert fake_router.last_shard() == owner
        rerouted = fake_router.execute(spec_json, _CONFIG_JSON)["shard"]
        assert rerouted != owner

    def test_permanent_failure_propagates_without_killing_shard(
            self, fake_router):
        spec_json = _wire(_spec())
        owner = fake_router.ring.owner(routing_key(spec_json, _CONFIG_JSON))
        _FakeRemote.behaviours[owner] = ValueError("bad spec")
        with pytest.raises(ValueError):
            fake_router.execute(spec_json, _CONFIG_JSON)
        assert fake_router.registry.is_alive(owner)

    def test_breaker_opens_after_repeated_transient_failures(
            self, fake_router):
        spec_json = _wire(_spec())
        owner = fake_router.ring.owner(routing_key(spec_json, _CONFIG_JSON))
        _FakeRemote.behaviours[owner] = RemoteUnreachableError("refused")
        with pytest.raises(RemoteUnreachableError):
            fake_router.execute(spec_json, _CONFIG_JSON)
        stats = fake_router.stats()
        breaker = next(link["breaker"] for link in stats["chain"]
                       if link["name"] == owner)
        assert breaker["consecutive_failures"] == 1

    def test_empty_fleet_is_unavailable(self):
        router = ShardRouter([], executor_factory=_FakeRemote,
                             start_health_checker=False)
        try:
            assert not router.available()
            with pytest.raises(ExecutorUnavailableError,
                               match="no workers registered"):
                router.execute(_wire(_spec()), _CONFIG_JSON)
        finally:
            router.close()

    def test_fully_dead_fleet_is_unavailable(self, fake_router):
        for url in fake_router.registry.urls():
            fake_router.registry.mark_unreachable(url, "killed")
        assert not fake_router.available()
        with pytest.raises(ExecutorUnavailableError):
            fake_router.execute(_wire(_spec()), _CONFIG_JSON)

    def test_add_worker_is_idempotent_heartbeat(self, fake_router):
        before = len(fake_router.ring)
        state = fake_router.add_worker("http://a:1")
        assert len(fake_router.ring) == before
        assert state["heartbeats"] == 1

    def test_stats_shape(self, fake_router):
        stats = fake_router.stats()
        assert stats["ring"]["workers"] == 3
        assert stats["ring"]["alive_workers"] == 3
        assert {link["name"] for link in stats["chain"]} == \
            {"http://a:1", "http://b:2", "http://c:3"}
        for link in stats["chain"]:
            assert {"alive", "breaker", "successes", "failures",
                    "deaths"} <= set(link)


# --------------------------------------- coordinator service (in-process)


@pytest.fixture
def two_worker_fleet():
    """Two in-thread workers + their URLs (each a full service)."""
    fleet = []
    for _ in range(2):
        service = VerificationService(store=":memory:",
                                      executor="inprocess", workers=2)
        server = serve_http(service, port=0)
        service.start()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        fleet.append((service, server))
    try:
        yield [server.url for _, server in fleet]
    finally:
        for service, server in fleet:
            server.shutdown()
            server.server_close()
            service.close()


class TestCoordinatorService:
    def test_routes_jobs_and_records_shards(self, two_worker_fleet, fig2):
        router = ShardRouter(two_worker_fleet,
                             start_health_checker=False)
        router.check_now()
        service = VerificationService(store=":memory:", executor=router,
                                      workers=2)
        with service:
            specs = [_spec(scale, fig2) for scale in (1.0, 2.0, 3.0, 4.0)]
            jobs = [service.submit(spec) for spec in specs]
            for job, spec in zip(jobs, specs):
                record = service.wait(job.job_id, timeout=120)
                assert record.state == "done"
                direct = VerificationEngine(VerifyConfig()).verify(spec)
                assert canonical_verdict_json(service.verdict(job.job_id)) \
                    == canonical_verdict_json(direct)
                log = service.attempt_log(job.job_id)
                assert log and log[-1].outcome == "ok"
                assert log[-1].shard in two_worker_fleet
        assert router.routed_jobs == len(specs)

    def test_worker_endpoints_over_http(self, two_worker_fleet):
        router = ShardRouter([two_worker_fleet[0]],
                             start_health_checker=False)
        service = VerificationService(store=":memory:", executor=router,
                                      workers=1)
        coordinator = serve_http(service, port=0)
        thread = threading.Thread(target=coordinator.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            client = ServeClient(coordinator.url)
            # Late registration over the wire == joining the ring.
            reply = client.register_worker(two_worker_fleet[1])
            assert reply["worker"]["url"] == two_worker_fleet[1]
            workers = client.workers()
            assert {w["url"] for w in workers} == set(two_worker_fleet)
            health = client.health()
            assert set(health["shards"]) == set(two_worker_fleet)
            assert health["ring"]["workers"] == 2
        finally:
            coordinator.shutdown()
            coordinator.server_close()
            service.close()
            router.close()

    def test_non_coordinator_rejects_worker_endpoints(self, worker_server):
        client = ServeClient(worker_server.url)
        with pytest.raises(ServeError, match="not a coordinator"):
            client.workers()
        with pytest.raises(ServeError, match="not a coordinator"):
            client.register_worker("http://a:1")


# --------------------------------------------- kill a worker mid-job (e2e)


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_worker(port, tmp_path, tag):
    src_dir = str(Path(__file__).resolve().parent.parent / "src")
    env = os.environ.copy()
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--db", str(tmp_path / f"worker-{tag}.sqlite"),
         "--service-workers", "2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _await_healthy(url, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if ServeClient(url, timeout=1.0).health().get("ok"):
                return
        except Exception:
            time.sleep(0.1)
    raise AssertionError(f"worker at {url} never became healthy")


class TestKillAWorkerEndToEnd:
    def test_jobs_survive_worker_death(self, tmp_path, fig2):
        ports = [_free_port(), _free_port()]
        urls = [f"http://127.0.0.1:{port}" for port in ports]
        procs = [_spawn_worker(port, tmp_path, i)
                 for i, port in enumerate(ports)]
        router = None
        service = None
        try:
            for url in urls:
                _await_healthy(url)
            serve_config = ServeConfig(
                heartbeat_interval=0.2, worker_ttl=1.0,
                retry_attempts=8, retry_base_delay=0.05,
                retry_max_delay=0.5, breaker_threshold=3,
                breaker_reset=0.5)
            router = ShardRouter(urls, serve_config=serve_config)
            router.check_now()
            service = VerificationService(store=":memory:",
                                          executor=router, workers=2,
                                          serve_config=serve_config)
            service.start()
            specs = [_spec(0.5 + 0.25 * i, fig2) for i in range(8)]
            jobs = [service.submit(spec) for spec in specs]
            # Pick the victim by what it owns: kill the shard that owns
            # at least one submitted job, so its jobs *must* reroute.
            owners = {}
            for job in jobs:
                record = service.job(job.job_id)
                key = routing_key(record.spec_json, record.config_json)
                owners[job.job_id] = router.ring.owner(key)
            victims = [url for url in urls if url in owners.values()]
            assert victims, "no shard owns any job (hash ring broken?)"
            victim = victims[0]
            victim_jobs = [job_id for job_id, owner in owners.items()
                           if owner == victim]
            procs[urls.index(victim)].send_signal(signal.SIGKILL)
            procs[urls.index(victim)].wait(timeout=10)
            # Every job must still complete, byte-identical to a direct
            # solve -- the dead shard's range reroutes, its in-flight
            # jobs requeue through the store's crash-recovery path.
            for job, spec in zip(jobs, specs):
                record = service.wait(job.job_id, timeout=180)
                assert record.state == "done", \
                    f"job {job.job_id} ended {record.state}: {record.error}"
                direct = VerificationEngine(VerifyConfig()).verify(spec)
                assert canonical_verdict_json(service.verdict(job.job_id)) \
                    == canonical_verdict_json(direct)
            # The death is visible in the books: the registry marked the
            # victim dead, and at least one of its jobs carries a
            # transient requeue entry naming the dead shard (unless every
            # victim job finished before the kill landed -- then the
            # reroute count stands in as evidence).
            states = {s["url"]: s for s in router.registry.states()}
            assert not states[victim]["alive"]
            requeued = [
                attempt
                for job_id in victim_jobs
                for attempt in service.attempt_log(job_id)
                if attempt.shard == victim and attempt.outcome != "ok"]
            finished_before_kill = all(
                any(a.shard == victim and a.outcome == "ok"
                    for a in service.attempt_log(job_id))
                for job_id in victim_jobs)
            assert requeued or finished_before_kill
            for attempt in requeued:
                assert attempt.transient, \
                    "a dead shard must be a *transient* failure"
        finally:
            if service is not None:
                service.close()
            if router is not None:
                router.close()
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=10)


# ----------------------------------------------------------- CLI surface


class TestServeCLI:
    def test_coordinator_and_worker_are_mutually_exclusive(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["serve", "--coordinator", "--worker"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_coordinator_rejects_fault_injection(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["serve", "--coordinator", "--fault-rate", "0.5"])
        assert code == 2
        assert "fault" in capsys.readouterr().err

    def test_worker_requires_coordinator_url(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["serve", "--worker"])
        assert code == 2
        assert "coordinator-url" in capsys.readouterr().err

    def test_workers_flag_is_pool_width_without_coordinator(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["serve", "--workers", "http://a:1,http://b:2"])
        assert code == 2
        assert "integer pool width" in capsys.readouterr().err
