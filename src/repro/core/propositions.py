"""Propositions 1-6: sufficient conditions for proof reuse (Section IV).

Each checker is *sound but incomplete*: a ``True`` verdict proves the new
property; ``False``/``None`` only means this particular reuse strategy does
not apply (the orchestrator then tries the next one, or falls back to full
re-verification).  Every checker returns a :class:`PropositionResult`
carrying a per-subproblem breakdown with wall-clock timings, because the
paper's Table I metric is precisely the (max-)subproblem time relative to
the original verification time.

Block indexing: paper layer ``g_i`` is block ``i-1``; the state abstraction
``S_i`` is ``states.layer(i-1)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


from repro.errors import ArtifactError
from repro.api.config import (
    DEFAULT_DOMAIN,
    DEFAULT_METHOD,
    DEFAULT_NODE_LIMIT,
    DEFAULT_WORKERS,
    VerifyConfig,
    warn_legacy,
)
from repro.domains.batch import screen_containments
from repro.domains.box import Box, box_kappa
from repro.domains.propagate import get_propagator
from repro.exact.verify import ContainmentResult, _check_containment
from repro.nn.network import Network
from repro.core.artifacts import ProofArtifacts

__all__ = [
    "SubproblemReport",
    "PropositionResult",
    "check_prop1",
    "check_prop2",
    "check_prop3",
    "check_prop4",
    "check_prop5",
    "check_prop6",
]


@dataclass
class SubproblemReport:
    """One independent local check (a unit of parallelisable work)."""

    name: str
    holds: Optional[bool]
    elapsed: float
    detail: str = ""
    lp_solves: int = 0

    @staticmethod
    def from_containment(name: str, result: ContainmentResult) -> "SubproblemReport":
        return SubproblemReport(
            name=name,
            holds=result.holds,
            elapsed=result.elapsed,
            detail=result.detail or result.method,
            lp_solves=result.lp_solves,
        )


@dataclass
class PropositionResult:
    """Verdict of one proposition attempt.

    ``holds`` semantics: ``True`` -- new property proved; ``False`` -- the
    sufficient condition demonstrably fails (not a safety refutation!);
    ``None`` -- inconclusive (e.g. solver budget exhausted).
    """

    proposition: str
    holds: Optional[bool]
    subproblems: List[SubproblemReport] = field(default_factory=list)
    elapsed: float = 0.0
    detail: str = ""

    @property
    def max_subproblem_time(self) -> float:
        """Table I's parallel metric: the slowest independent subproblem."""
        if not self.subproblems:
            return self.elapsed
        return max(s.elapsed for s in self.subproblems)

    @property
    def total_subproblem_time(self) -> float:
        return sum(s.elapsed for s in self.subproblems)


def _timed(proposition: str, started: float, holds: Optional[bool],
           subproblems: List[SubproblemReport], detail: str = "") -> PropositionResult:
    return PropositionResult(
        proposition=proposition,
        holds=holds,
        subproblems=subproblems,
        elapsed=time.perf_counter() - started,
        detail=detail,
    )


def _states_premise(artifacts: ProofArtifacts) -> Optional[str]:
    """Propositions 1/2/4/5 reuse the *proof* S_1..S_n; they require that
    the stored abstraction actually established ``S_n ⊆ Dout``.

    Returns an explanation string when the premise is missing (the checker
    then reports ``holds=None`` so the orchestrator can move on), ``None``
    when everything is in place.
    """
    if artifacts.states is None:
        return "state-abstraction artifact not available"
    if not artifacts.states.matches(artifacts.problem.network):
        return "state abstractions do not match the network"
    if not artifacts.states_prove_safety:
        return ("stored state abstractions did not establish S_n ⊆ Dout; "
                "they cannot be reused as a safety proof")
    return None


def _batched_prescreen(triples, enabled: bool):
    """Screen ``(subnetwork, source, target)`` containment subproblems in one
    batched stacked-interval pass (see
    :func:`repro.domains.batch.screen_containments`).

    Returns the per-subproblem verdict list (``True`` / ``None``) and the
    per-subproblem share of the screen's wall-clock time.  Every report --
    screened *and* surviving -- carries its share, so summed subproblem
    times keep accounting for the whole batched call (Table I fidelity).
    """
    if not enabled or not triples:
        return [None] * len(triples), 0.0
    t0 = time.perf_counter()
    verdicts = screen_containments(triples)
    elapsed = time.perf_counter() - t0
    return verdicts, elapsed / len(triples)


# --------------------------------------------------------------------- SVuDC
def _check_prop1(artifacts: ProofArtifacts, enlarged_din: Box,
                 method: str = DEFAULT_METHOD,
                 config: Optional[VerifyConfig] = None) -> PropositionResult:
    """Proposition 1 (proof reuse at layers 1 and 2) -- engine path.

    Checks ``∀x ∈ Din ∪ Δin : g2(g1(x)) ∈ S2`` with an exact (or cascaded)
    method on the two-layer head only.  The two-layer depth is deliberate:
    abstract interpretation typically loses precision after two nonlinear
    layers, leaving room for exact local solving (paper footnote 1).
    """
    config = config or VerifyConfig()
    started = time.perf_counter()
    premise_gap = _states_premise(artifacts)
    if premise_gap:
        return _timed("prop1", started, None, [], premise_gap)
    network = artifacts.problem.network
    if network.num_blocks < 3:
        return _timed("prop1", started, None, [],
                      "network has fewer than 3 blocks; S2 does not cover a tail")
    head = network.subnetwork(0, 2)
    s2 = artifacts.states.layer(1)
    res = _check_containment(head, enlarged_din, s2, method=method,
                             config=config)
    report = SubproblemReport.from_containment("g2∘g1 ⊆ S2", res)
    return _timed("prop1", started, res.holds, [report],
                  f"two-layer head vs S2 ({res.method})")


def _check_prop2(artifacts: ProofArtifacts, enlarged_din: Box,
                 domain: str = DEFAULT_DOMAIN, method: str = "exact",
                 config: Optional[VerifyConfig] = None) -> PropositionResult:
    """Proposition 2 (proof reuse at layer ``j+1``) -- engine path.

    Builds fresh abstractions ``S'_1 … S'_j`` over the enlarged domain
    layer by layer; after each one, checks exactly whether
    ``∀x_j ∈ S'_j : g_{j+1}(x_j) ∈ S_{j+1}``.  The first success re-enters
    the old proof and guarantees safety for the whole network.
    """
    config = config or VerifyConfig()
    started = time.perf_counter()
    premise_gap = _states_premise(artifacts)
    if premise_gap:
        return _timed("prop2", started, None, [], premise_gap)
    network = artifacts.problem.network
    n = network.num_blocks
    propagator = get_propagator(domain)
    subproblems: List[SubproblemReport] = []

    current = enlarged_din
    for j in range(1, n - 1):  # paper's j in {2, .., n-1}, 1-based
        t0 = time.perf_counter()
        current = propagator.propagate(network.subnetwork(j - 1, j), current)[-1]
        build_time = time.perf_counter() - t0
        layer = network.subnetwork(j, j + 1)
        res = _check_containment(layer, current, artifacts.states.layer(j),
                                 method=method, config=config)
        report = SubproblemReport(
            name=f"S'_{j} -> S_{j + 1}",
            holds=res.holds,
            elapsed=build_time + res.elapsed,
            detail=res.detail or res.method,
            lp_solves=res.lp_solves,
        )
        subproblems.append(report)
        if res.holds:
            return _timed("prop2", started, True, subproblems,
                          f"re-entered old proof at layer {j + 1}")
    return _timed("prop2", started, False, subproblems,
                  "no layer re-entry point found")


def check_prop3(artifacts: ProofArtifacts, enlarged_din: Box,
                ord: float = 2) -> PropositionResult:
    """Proposition 3 (Lipschitz-based proof reuse).

    With ``κ`` bounding the distance from any point of ``Δin`` to ``Din``
    and ``ℓ`` the global Lipschitz constant, safety transfers when the
    ``ℓκ``-inflation of ``S_n`` stays inside ``Dout``.  Pure arithmetic --
    no solver involved.
    """
    started = time.perf_counter()
    lipschitz = artifacts.require_lipschitz()
    t0 = time.perf_counter()
    kappa = box_kappa(artifacts.problem.din, enlarged_din, ord=ord)
    inflation = lipschitz.output_change_bound(kappa)
    # S_n here is any stored box containing f(Din); the exact certified
    # range (when available) is much tighter than the layered S_n.
    inflated = artifacts.tightest_output_abstraction().inflate(inflation)
    holds = artifacts.problem.dout.contains_box(inflated)
    report = SubproblemReport(
        name="inflate(S_n, ℓκ) ⊆ Dout",
        holds=holds,
        elapsed=time.perf_counter() - t0,
        detail=f"kappa={kappa:.6g} ell={lipschitz.ell:.6g} "
               f"inflation={inflation:.6g}",
    )
    return _timed("prop3", started, holds, [report], report.detail)


# --------------------------------------------------------------------- SVbTV
def _check_prop4(artifacts: ProofArtifacts, new_network: Network,
                 enlarged_din: Optional[Box] = None,
                 method: str = DEFAULT_METHOD,
                 stop_on_failure: bool = False,
                 prescreen: bool = True,
                 config: Optional[VerifyConfig] = None) -> PropositionResult:
    """Proposition 4 (reusing state abstraction, single layer) -- engine path.

    ``n`` independent one-layer checks on the *new* network:

    * ``Din ∪ Δin --g'_1--> S_1``,
    * ``S_i --g'_{i+1}--> S_{i+1}`` for ``i = 1 … n-2``,
    * ``S_{n-1} --g'_n--> Dout``.

    With ``prescreen`` on (the default), all ``n`` subproblem boxes are
    first screened in one batched stacked-interval pass
    (:func:`~repro.domains.batch.screen_containments`); only the survivors
    fall back to per-subproblem exact checks.  The screen is sound (and, for
    single-block subproblems, its interval bound is exact), so verdicts are
    unchanged -- passing layers just stop paying one propagator run each.

    With ``stop_on_failure=False`` every subproblem runs (the parallel
    execution model); the per-subproblem reports feed both the max-time
    metric and the incremental-fixing fallback, which needs the full
    failure pattern.
    """
    config = config or VerifyConfig()
    started = time.perf_counter()
    premise_gap = _states_premise(artifacts)
    if premise_gap:
        return _timed("prop4", started, None, [], premise_gap)
    states = artifacts.states
    n = new_network.num_blocks
    din = enlarged_din if enlarged_din is not None else artifacts.problem.din
    triples = []
    for i in range(n):
        source = din if i == 0 else states.layer(i - 1)
        target = artifacts.problem.dout if i == n - 1 else states.layer(i)
        triples.append((new_network.subnetwork(i, i + 1), source, target))
    screened, screen_share = _batched_prescreen(triples, prescreen)
    subproblems: List[SubproblemReport] = []
    holds = True
    for i, (layer, source, target) in enumerate(triples):
        name = ("Din∪Δin -> S_1" if i == 0
                else f"S_{n - 1} -> Dout" if i == n - 1
                else f"S_{i} -> S_{i + 1}")
        if screened[i] is True:
            subproblems.append(SubproblemReport(
                name=name, holds=True, elapsed=screen_share,
                detail="batched box pre-screen"))
            continue
        res = _check_containment(layer, source, target, method=method,
                                 config=config)
        report = SubproblemReport.from_containment(name, res)
        report.elapsed += screen_share
        subproblems.append(report)
        if res.holds is not True:
            # A definite refutation must survive later inconclusive checks.
            if res.holds is False:
                holds = False
            elif holds is True:
                holds = None
            if stop_on_failure:
                break
    verdict = True if holds is True else holds
    return _timed("prop4", started, verdict, subproblems,
                  f"{sum(1 for s in subproblems if s.holds) }/{len(subproblems)} "
                  "layer checks passed")


def _check_prop5(artifacts: ProofArtifacts, new_network: Network,
                 alphas: Sequence[int], enlarged_din: Optional[Box] = None,
                 method: str = DEFAULT_METHOD,
                 prescreen: bool = True,
                 config: Optional[VerifyConfig] = None) -> PropositionResult:
    """Proposition 5 (reusing state abstraction, multiple layers) -- engine
    path.

    ``alphas`` are the reused boundaries in paper numbering
    (``1 < α_1 < … < α_l < n-1``... given 1-based layers; here: block
    indices ``0 < α < n``, the boundary *after* block ``α``).  Each segment
    between consecutive reuse points is one independent multi-block check.

    Like :func:`check_prop4`, all segments are pre-screened in one batched
    interval pass before any exact per-segment check runs.
    """
    config = config or VerifyConfig()
    started = time.perf_counter()
    premise_gap = _states_premise(artifacts)
    if premise_gap:
        return _timed("prop5", started, None, [], premise_gap)
    states = artifacts.states
    n = new_network.num_blocks
    din = enlarged_din if enlarged_din is not None else artifacts.problem.din
    alphas = sorted(int(a) for a in alphas)
    if any(a <= 0 or a >= n for a in alphas) or len(set(alphas)) != len(alphas):
        raise ArtifactError(
            f"reuse points must be distinct block boundaries in (0, {n}), "
            f"got {alphas}"
        )
    cuts = [0] + alphas + [n]
    triples = []
    for seg_start, seg_end in zip(cuts[:-1], cuts[1:]):
        source = din if seg_start == 0 else states.layer(seg_start - 1)
        target = artifacts.problem.dout if seg_end == n else states.layer(seg_end - 1)
        triples.append((new_network.subnetwork(seg_start, seg_end), source, target))
    screened, screen_share = _batched_prescreen(triples, prescreen)
    subproblems: List[SubproblemReport] = []
    holds = True
    for j, (seg_start, seg_end) in enumerate(zip(cuts[:-1], cuts[1:])):
        segment, source, target = triples[j]
        name = (f"blocks[{seg_start}:{seg_end}] -> "
                + ("Dout" if seg_end == n else f"S_{seg_end}"))
        if screened[j] is True:
            subproblems.append(SubproblemReport(
                name=name, holds=True, elapsed=screen_share,
                detail="batched box pre-screen"))
            continue
        res = _check_containment(segment, source, target, method=method,
                                 config=config)
        report = SubproblemReport.from_containment(name, res)
        report.elapsed += screen_share
        subproblems.append(report)
        if res.holds is not True:
            # A definite refutation must survive later inconclusive checks.
            if res.holds is False:
                holds = False
            elif holds is True:
                holds = None
    return _timed("prop5", started, True if holds is True else holds, subproblems,
                  f"reuse points {alphas}")


# ------------------------------------------------------------- legacy shims
def check_prop1(artifacts: ProofArtifacts, enlarged_din: Box,
                method: str = DEFAULT_METHOD,
                node_limit: int = DEFAULT_NODE_LIMIT,
                workers: int = DEFAULT_WORKERS) -> PropositionResult:
    """Deprecated shim: use :class:`repro.api.PropositionSpec` (kind=1)."""
    warn_legacy("check_prop1", "PropositionSpec(kind=1)")
    return _engine_proposition(1, artifacts, enlarged_din=enlarged_din,
                               method=method, node_limit=node_limit,
                               workers=workers)


def check_prop2(artifacts: ProofArtifacts, enlarged_din: Box,
                domain: str = DEFAULT_DOMAIN, method: str = "exact",
                node_limit: int = DEFAULT_NODE_LIMIT,
                workers: int = DEFAULT_WORKERS) -> PropositionResult:
    """Deprecated shim: use :class:`repro.api.PropositionSpec` (kind=2)."""
    warn_legacy("check_prop2", "PropositionSpec(kind=2)")
    return _engine_proposition(2, artifacts, enlarged_din=enlarged_din,
                               method=method, domain=domain,
                               node_limit=node_limit, workers=workers)


def check_prop4(artifacts: ProofArtifacts, new_network: Network,
                enlarged_din: Optional[Box] = None,
                method: str = DEFAULT_METHOD,
                node_limit: int = DEFAULT_NODE_LIMIT,
                stop_on_failure: bool = False,
                prescreen: bool = True,
                workers: int = DEFAULT_WORKERS) -> PropositionResult:
    """Deprecated shim: use :class:`repro.api.PropositionSpec` (kind=4)."""
    warn_legacy("check_prop4", "PropositionSpec(kind=4)")
    return _engine_proposition(4, artifacts, new_network=new_network,
                               enlarged_din=enlarged_din, method=method,
                               stop_on_failure=stop_on_failure,
                               prescreen=prescreen, node_limit=node_limit,
                               workers=workers)


def check_prop5(artifacts: ProofArtifacts, new_network: Network,
                alphas: Sequence[int], enlarged_din: Optional[Box] = None,
                method: str = DEFAULT_METHOD,
                node_limit: int = DEFAULT_NODE_LIMIT,
                prescreen: bool = True,
                workers: int = DEFAULT_WORKERS) -> PropositionResult:
    """Deprecated shim: use :class:`repro.api.PropositionSpec` (kind=5)."""
    warn_legacy("check_prop5", "PropositionSpec(kind=5)")
    return _engine_proposition(5, artifacts, new_network=new_network,
                               alphas=tuple(int(a) for a in alphas),
                               enlarged_din=enlarged_din, method=method,
                               prescreen=prescreen, node_limit=node_limit,
                               workers=workers)


def _engine_proposition(kind: int, artifacts: ProofArtifacts, *,
                        node_limit: int, workers: int,
                        domain: Optional[str] = None,
                        **spec_fields) -> PropositionResult:
    """Shared shim body: one PropositionSpec through a fresh engine."""
    from repro.api.engine import VerificationEngine
    from repro.api.specs import PropositionSpec

    config = VerifyConfig(node_limit=node_limit, workers=workers)
    spec = PropositionSpec(kind=kind, artifacts=artifacts, domain=domain,
                           **spec_fields)
    return VerificationEngine(config).verify(spec).result


def check_prop6(artifacts: ProofArtifacts, new_network: Network,
                recheck_safety: bool = False,
                method: str = "symbolic") -> PropositionResult:
    """Proposition 6 (reusing network abstraction).

    If the stored abstraction ``f̂`` (whose verification established
    ``{f̂(x) : x ∈ Din} ⊆ Dout``) also abstracts the new network --
    ``f' --Din--> f̂``, checked syntactically -- then ``φ^{f'}_{Din,Dout}``
    holds.  Note: Proposition 6 covers the *original* domain only; the
    orchestrator combines it with Propositions 1/3 for enlargements.

    ``recheck_safety`` re-verifies ``f̂(Din) ⊆ Dout`` instead of trusting the
    stored flag (useful in tests and when artifacts were edited).
    """
    started = time.perf_counter()
    absn = artifacts.require_network_abstraction()
    subproblems: List[SubproblemReport] = []

    t0 = time.perf_counter()
    check = absn.abstracts(new_network)
    subproblems.append(SubproblemReport(
        name="f' -> f̂ (domination)",
        holds=check.holds,
        elapsed=time.perf_counter() - t0,
        detail=check.reason,
    ))
    if not check.holds:
        return _timed("prop6", started, False, subproblems, check.reason)

    safety_ok = bool(artifacts.notes.get("netabs_proves_safety", False))
    if recheck_safety or not safety_ok:
        t0 = time.perf_counter()
        bounds = absn.output_bounds(artifacts.problem.din, method=method)
        safety_ok = artifacts.problem.dout.contains_box(bounds)
        subproblems.append(SubproblemReport(
            name="f̂(Din) ⊆ Dout",
            holds=safety_ok,
            elapsed=time.perf_counter() - t0,
            detail=f"abstract output bounds {bounds}",
        ))
    if not safety_ok:
        return _timed("prop6", started, False, subproblems,
                      "abstraction does not prove Dout containment")
    return _timed("prop6", started, True, subproblems,
                  "abstraction transfers to the new network")
