"""The certificate artifact: what a proved threshold solve leaves behind.

A :class:`Certificate` extends the solver-level
:class:`~repro.exact.incremental.BranchCertificate` (a bare covering set
of phase-map leaves) with everything a *store* needs to hand it to a
future, slightly different problem:

* per-leaf bounds and verdicts from the batched float64 screen at record
  time (provenance -- the reuse path re-derives them, never trusts them);
* per-leaf LP **dual multipliers**, the delta-verification workhorse: on
  reuse they re-certify leaves against the *new* weights via one LP-free
  Lagrangian evaluation each, sound for any multipliers (weak duality);
* a **structural** network fingerprint (architecture only, no weights) so
  lookups tolerate weight-only changes -- the whole point of delta
  verification -- plus the **content** fingerprint of the exact network
  that was proved, for provenance;
* the solver-config digest and the from-scratch ``lp_solves`` baseline
  the savings are measured against.

Keys and fingerprints are plain sha256 hex strings over canonical
RFC-8259 JSON, so any JSON-speaking peer can compute them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import CertificateError, ReproError
from repro.nn.network import Network
from repro.api.serialize import (
    array_to_jsonable,
    box_to_jsonable,
    float_to_jsonable,
    network_to_jsonable,
)

__all__ = [
    "CERT_VERSION",
    "Certificate",
    "certificate_key",
    "content_fingerprint",
    "leaves_cover",
    "load_certificate",
    "structural_fingerprint",
    "validate_certificate",
]

#: Wire/key version: bump when the certificate payload or the key recipe
#: changes incompatibly (old entries then simply miss, never mislead).
CERT_VERSION = 1

#: Split budget of the covering check: an adversarial leaf set can force
#: exponential work, so the check gives up (rejecting the certificate --
#: the sound direction) after this many recursive splits.
_COVER_SPLIT_BUDGET = 100_000


def _sha256(payload: Dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, allow_nan=False).encode("utf-8")
    ).hexdigest()


def structural_fingerprint(network: Network) -> str:
    """Architecture-only fingerprint: dims and activations, **no weights**.

    Two networks that differ only in their Dense parameters -- the
    retrain/fine-tune case delta verification targets -- share this
    fingerprint, so a certificate recorded for one is *found* for the
    other (and then re-validated against the actual weights).
    """
    payload = {
        "input_dim": int(network.input_dim),
        "blocks": [
            {
                "out_dim": int(blk.out_dim),
                "activation": None if blk.activation is None
                else type(blk.activation).__name__,
                "alpha": None if blk.activation is None
                else float(getattr(blk.activation, "alpha", 0.0)),
            }
            for blk in network.blocks()
        ],
    }
    return _sha256(payload)


def content_fingerprint(network: Network) -> str:
    """Exact-weights fingerprint of the canonical wire form -- identifies
    the one network a certificate was actually proved on (provenance
    only; lookups key on :func:`structural_fingerprint`)."""
    return _sha256(network_to_jsonable(network))


def certificate_key(network: Network, input_box, objective: np.ndarray,
                    threshold: float, config) -> str:
    """The store key of a threshold certificate.

    ``(structural network fingerprint, spec, config)``: the network enters
    only through its architecture so weight-only updates hit the same
    slot, while box / objective / threshold / solver config changes miss
    (a certificate proves one property under one solver configuration).
    The :attr:`~repro.api.config.VerifyConfig.certs` policy field is
    excluded -- whether a run records or reuses must not change *which*
    certificate it finds.
    """
    config_dict = {k: v for k, v in config.to_dict().items() if k != "certs"}
    payload = {
        "v": CERT_VERSION,
        "network": structural_fingerprint(network),
        "input_box": box_to_jsonable(input_box),
        "objective": array_to_jsonable(np.asarray(objective,
                                                  dtype=np.float64)),
        "threshold": float_to_jsonable(threshold),
        "config": config_dict,
    }
    return _sha256(payload)


@dataclass
class Certificate:
    """A persistable, re-checkable record of one proved threshold solve.

    ``leaves`` is the covering frontier of settled phase maps (the same
    invariant as :class:`~repro.exact.incremental.BranchCertificate`);
    ``leaf_bounds`` / ``leaf_verdicts`` are the batched-screen results at
    record time.  All of it is advisory: the reuse path re-screens every
    leaf in float64 against the network it is actually given.
    """

    objective: np.ndarray
    threshold: float
    leaves: List[Dict] = field(default_factory=list)
    #: Screened objective upper bound per leaf at record time.
    leaf_bounds: List[float] = field(default_factory=list)
    #: Screen verdict per leaf at record time: "proved" (closed below the
    #: threshold on intervals alone), "empty", or "open" (needed its LP).
    leaf_verdicts: List[str] = field(default_factory=list)
    #: Optimal LP dual multipliers per leaf, ``(dual_ub, dual_eq)`` arrays
    #: or ``None`` -- the delta-verification workhorse.  On reuse they are
    #: evaluated as a Lagrangian bound against the *new* network's
    #: constraint data, which is sound for **any** multipliers (weak
    #: duality): corrupt or stale duals loosen the bound and cost an LP,
    #: never an unsound verdict.
    leaf_duals: List[Optional[tuple]] = field(default_factory=list)
    block_dims: List[int] = field(default_factory=list)
    #: Architecture fingerprint lookups key on (weight-tolerant).
    structural_fp: str = ""
    #: Exact-weights fingerprint of the proved network (provenance).
    content_fp: str = ""
    #: sha256 of the recording config (minus the cert policy field).
    config_digest: str = ""
    #: BaB status / sound bound of the recording solve.
    status: str = ""
    upper_bound: float = 0.0
    #: From-scratch LP count of the recording solve -- the denominator
    #: ``lp_solves_saved`` is compared against.
    lp_solves: int = 0
    version: int = CERT_VERSION

    @property
    def num_leaves(self) -> int:
        return len(self.leaves)

    def compatible_with(self, network: Network) -> bool:
        return network.block_dims() == list(self.block_dims)


def config_digest(config) -> str:
    """Digest of a :class:`~repro.api.config.VerifyConfig` minus the cert
    policy field (same exclusion rule as :func:`certificate_key`)."""
    return _sha256({k: v for k, v in config.to_dict().items()
                    if k != "certs"})


def leaves_cover(leaves: List[Dict], max_splits: int = _COVER_SPLIT_BUDGET
                 ) -> bool:
    """Do these partial phase assignments jointly cover the whole space?

    The warm-start contract of :meth:`BaBSolver.maximize` requires
    ``initial_nodes`` to cover the search space -- a certificate with a
    *gap* could prove a threshold while a violation hides in the uncovered
    region.  Since stored certificates are untrusted input, the covering
    property is re-derived here before any reuse.

    Recursive partition check: an empty assignment covers its region;
    otherwise split on one constrained neuron and require both sides
    covered (assignments not mentioning the neuron cover both).  The
    split budget bounds adversarial blow-up -- exhausting it returns
    ``False``, which merely rejects the certificate (sound direction).
    """
    budget = max_splits

    def covers(maps: List[Dict]) -> bool:
        nonlocal budget
        if any(not m for m in maps):
            return True
        if not maps or budget <= 0:
            return False
        budget -= 1
        # Split on the first leaf's first constrained neuron: every map
        # either constrains it (one side) or covers both sides as-is.
        var = next(iter(maps[0]))
        for side in (1, -1):
            sub: List[Dict] = []
            for m in maps:
                phase = m.get(var)
                if phase is None:
                    sub.append(m)
                elif phase == side:
                    sub.append({k: v for k, v in m.items() if k != var})
            if not covers(sub):
                return False
        return True

    # Dedupe first: repeated leaves are legal output of the solver but
    # pure waste for the partition recursion.
    unique = {tuple(sorted(m.items())): m for m in leaves}
    return covers([dict(m) for m in unique.values()])


def validate_certificate(cert: Certificate, network: Network,
                         objective: np.ndarray, threshold: float,
                         config) -> None:
    """Reject a certificate that does not match the problem at hand.

    Raises :class:`~repro.errors.CertificateError` on any mismatch; the
    caller falls back to a from-scratch solve.  Passing validation does
    *not* make the stored bounds trusted -- it only establishes that the
    leaves are a well-formed covering partition for this architecture, so
    they are safe to hand to the solver as warm starts.
    """
    if int(cert.version) != CERT_VERSION:
        raise CertificateError(
            f"certificate version {cert.version} != {CERT_VERSION}")
    if cert.structural_fp != structural_fingerprint(network):
        raise CertificateError(
            "certificate was recorded for a different architecture "
            "(structural fingerprint mismatch)")
    dims = network.block_dims()
    if list(cert.block_dims) != dims:
        raise CertificateError(
            f"certificate block dims {cert.block_dims} != network {dims}")
    if cert.config_digest != config_digest(config):
        raise CertificateError(
            "certificate was recorded under a different solver config")
    obj = np.asarray(objective, dtype=np.float64).reshape(-1)
    if not np.array_equal(np.asarray(cert.objective,
                                     dtype=np.float64).reshape(-1), obj):
        raise CertificateError("certificate objective differs")
    if float(cert.threshold) != float(threshold):
        raise CertificateError(
            f"certificate threshold {cert.threshold} != {threshold}")
    if not cert.leaves:
        raise CertificateError("certificate has no leaves")
    n_blocks = len(dims) - 1
    for leaf in cert.leaves:
        for (block, unit), phase in leaf.items():
            if phase not in (1, -1):
                raise CertificateError(f"leaf phase {phase!r} is not +/-1")
            if not (0 <= block < n_blocks and 0 <= unit < dims[block + 1]):
                raise CertificateError(
                    f"leaf names neuron ({block}, {unit}) outside the "
                    f"architecture {dims}")
    if cert.leaf_duals and len(cert.leaf_duals) != len(cert.leaves):
        raise CertificateError(
            f"{len(cert.leaf_duals)} dual entries for "
            f"{len(cert.leaves)} leaves")
    if not leaves_cover(cert.leaves):
        raise CertificateError(
            "certificate leaves do not cover the search space "
            "(gap or covering check budget exhausted)")


def load_certificate(cert_json: str) -> Certificate:
    """Parse an *untrusted* certificate wire string.

    Every malformation -- garbage bytes, wrong shapes, missing keys --
    surfaces as one :class:`~repro.errors.CertificateError`, so callers
    have a single rejection path (and the taxonomy stays visible: the
    original error rides along as the cause).
    """
    from repro.api.serialize import certificate_from_json

    try:
        return certificate_from_json(cert_json)
    except (ReproError, ValueError, TypeError, KeyError) as exc:
        raise CertificateError(
            f"unreadable certificate payload: {type(exc).__name__}: {exc}"
        ) from exc
