"""Solver-level proof reuse (Section VI): branching certificates + presolve.

The paper's concluding remarks ask how exact solvers can be engineered to
enable proof reuse, observing that MILP *cuts* lose validity upon domain
enlargement.  Branching decisions, unlike cuts, are partitions -- they
survive both fine-tuning and enlargement.  This bench measures:

* **cold vs warm threshold proofs**: LP count and wall time of a full
  branch-and-bound proof vs re-proving the fine-tuned network from the
  stored branching certificate;
* **LP bound tightening**: the node-count reduction exact search gains from
  optimisation-based presolve, against its LP cost.
"""

import numpy as np
import pytest

from repro.domains import Box
from repro.exact import (
    BaBSolver,
    certify_threshold,
    maximize_output,
    prove_with_certificate,
    tighten_preactivation_bounds,
)
from repro.exact.encoding import NetworkEncoding
from repro.nn import random_relu_network


@pytest.fixture(scope="module")
def hard_instance():
    """An instance whose threshold proof needs a non-trivial tree."""
    net = random_relu_network([5, 14, 12, 1], seed=11, weight_scale=0.9)
    box = Box(-0.8 * np.ones(5), 0.8 * np.ones(5))
    opt = maximize_output(net, box, np.array([1.0]), node_limit=20000)
    threshold = opt.upper_bound + 1e-3  # tight: forces real bounding work
    return net, box, threshold


def test_certificate_roundtrip(hard_instance):
    net, box, threshold = hard_instance
    res, cert = certify_threshold(net, box, np.array([1.0]), threshold)
    assert cert is not None
    tuned = net.perturb(1e-5, np.random.default_rng(0))
    warm = prove_with_certificate(tuned, box, cert)
    assert warm.status in ("threshold_proved", "optimal")


def test_report_cold_vs_warm(hard_instance, capsys):
    net, box, threshold = hard_instance
    cold_res, cert = certify_threshold(net, box, np.array([1.0]), threshold)
    tuned = net.perturb(1e-5, np.random.default_rng(0))
    cold_again, _ = certify_threshold(tuned, box, np.array([1.0]), threshold)
    warm = prove_with_certificate(tuned, box, cert)
    with capsys.disabled():
        print("\nBranching-certificate reuse (fine-tuned network, "
              f"threshold {threshold:.4g})")
        print(f"  cold proof : {cold_again.lp_solves:>5} LPs, "
              f"{cold_again.nodes:>4} nodes")
        print(f"  warm proof : {warm.lp_solves:>5} LPs, "
              f"{warm.nodes:>4} nodes  "
              f"(certificate: {cert.num_leaves} leaves)")
    assert warm.status in ("threshold_proved", "optimal")
    # Warm re-proof never *branches* more than the cold proof did.
    assert warm.nodes <= max(cold_again.nodes, 1)


def test_report_tightening(hard_instance, capsys):
    net, box, _ = hard_instance
    plain = BaBSolver(net, box, node_limit=20000).maximize(np.array([1.0]))
    tightened, stats = tighten_preactivation_bounds(net, box)
    enc = NetworkEncoding(net, box, pre_boxes=tightened)
    boosted = BaBSolver(net, box, encoding=enc,
                        node_limit=20000).maximize(np.array([1.0]))
    with capsys.disabled():
        print("\nLP bound tightening (presolve) on exact optimisation")
        print(f"  presolve   : {stats.lp_solves} LPs, "
              f"{stats.neurons_stabilized} neurons stabilised, "
              f"{stats.width_reduction:.1%} width removed")
        print(f"  plain BaB  : {plain.nodes:>4} nodes, {plain.lp_solves:>5} LPs")
        print(f"  boosted BaB: {boosted.nodes:>4} nodes, "
              f"{boosted.lp_solves:>5} LPs")
    assert boosted.upper_bound == pytest.approx(plain.upper_bound, abs=1e-5)
    # Node counts are not monotone (tightened bounds change the branching
    # order); the invariant is identical optima from fewer *unstable*
    # neurons to ever branch on.
    assert stats.neurons_stabilized >= 0


def test_benchmark_cold_proof(hard_instance, benchmark):
    net, box, threshold = hard_instance
    benchmark.pedantic(
        lambda: certify_threshold(net, box, np.array([1.0]), threshold),
        rounds=3, iterations=1)


def test_benchmark_warm_proof(hard_instance, benchmark):
    net, box, threshold = hard_instance
    _, cert = certify_threshold(net, box, np.array([1.0]), threshold)
    tuned = net.perturb(1e-5, np.random.default_rng(0))
    benchmark.pedantic(
        lambda: prove_with_certificate(tuned, box, cert),
        rounds=3, iterations=1)


def test_benchmark_tightening_pass(hard_instance, benchmark):
    net, box, _ = hard_instance
    benchmark.pedantic(
        lambda: tighten_preactivation_bounds(net, box, max_lp_solves=200),
        rounds=3, iterations=1)
