"""Unit tests for network serialization and the builder constructors."""

import numpy as np
import pytest

from repro.errors import SerializationError, ShapeError
from repro.nn import (
    fig2_network,
    load_network,
    network_from_bytes,
    network_to_bytes,
    random_relu_network,
    regression_head,
    save_network,
)


class TestSerialize:
    def test_roundtrip_file(self, tmp_path, small_net, rng):
        path = tmp_path / "net.npz"
        save_network(small_net, path)
        loaded = load_network(path)
        x = rng.normal(size=(10, 3))
        np.testing.assert_array_equal(loaded.forward(x), small_net.forward(x))

    def test_roundtrip_bytes(self, small_net, rng):
        blob = network_to_bytes(small_net)
        loaded = network_from_bytes(blob)
        x = rng.normal(size=3)
        np.testing.assert_array_equal(loaded.forward(x), small_net.forward(x))

    def test_preserves_structure(self, tmp_path):
        net = fig2_network()
        path = tmp_path / "fig2.npz"
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.num_blocks == net.num_blocks
        assert loaded.input_dim == net.input_dim

    def test_corrupt_payload_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(SerializationError):
            load_network(path)


class TestBuilders:
    def test_fig2_values_match_paper(self):
        """The worked example: f(1, -1) passes n1=3, n3=2, n4=ReLU(6-2)=4."""
        net = fig2_network()
        hidden = net.forward_blocks(np.array([1.0, -1.0]), 1)
        np.testing.assert_allclose(hidden, [3.0, 0.0, 2.0])
        out = net.forward(np.array([1.0, -1.0]))
        np.testing.assert_allclose(out, [4.0])

    def test_random_network_deterministic(self):
        a = random_relu_network([3, 5, 2], seed=11)
        b = random_relu_network([3, 5, 2], seed=11)
        assert a.max_weight_delta(b) == 0.0

    def test_random_network_weight_scale(self):
        net = random_relu_network([4, 6, 2], seed=0, weight_scale=0.1)
        for blk in net.blocks():
            assert np.max(np.abs(blk.dense.weight)) <= 0.1

    def test_random_network_final_activation(self):
        net = random_relu_network([2, 3, 1], seed=0, final_activation=True)
        assert net.blocks()[-1].activation is not None
        assert net.forward(np.array([-10.0, -10.0]))[0] >= 0.0

    def test_random_network_needs_two_dims(self):
        with pytest.raises(ShapeError):
            random_relu_network([3], seed=0)

    def test_regression_head_shape(self):
        head = regression_head(27, [24, 16], seed=0)
        assert head.input_dim == 27
        assert head.output_dim == 1
        assert head.num_blocks == 3

    def test_regression_head_sigmoid_output(self):
        head = regression_head(5, [4], sigmoid_output=True, seed=0)
        y = head.forward(np.zeros(5))
        assert 0.0 <= y[0] <= 1.0
