"""The unified repro.api engine: Specs, VerifyConfig, engine, shims.

Four contracts under test:

1. *Equivalence*: every Spec run through :class:`VerificationEngine`
   produces byte-identical verdicts/optima to the legacy entry points, on
   the fig2 network and across the worker matrix {1, 2, 8}.
2. *JSON round-trip*: ``spec == spec_from_dict(spec_to_dict(spec))`` for
   every Spec type (and through ``json.dumps`` text).
3. *One source of defaults*: no legacy entry point overrides the
   ``tol`` / ``node_limit`` / ``workers`` defaults independently of
   :class:`VerifyConfig`.
4. *Migration gate*: the legacy free functions each warn exactly once per
   call site, and nothing inside ``src/`` triggers such a warning (all
   internal callers are fully migrated to the engine path).
"""

import json
import warnings

import numpy as np
import pytest

from repro.api import (
    ContainmentSpec,
    ContinuousLoopSpec,
    LegacyEntryPointWarning,
    MaximizeSpec,
    OutputRangeSpec,
    PropositionSpec,
    SPEC_TYPES,
    ThresholdSpec,
    VerificationEngine,
    VerifyConfig,
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    spec_to_json,
)
from repro.api.verdict import RangeVerdict
from repro.errors import ReproError, SerializationError
from repro.domains import Box
from repro.domains.propagate import inductive_states
from repro.nn import fine_tune, random_relu_network

WORKER_MATRIX = (1, 2, 8)


def _engine(workers: int = 1, **overrides) -> VerificationEngine:
    return VerificationEngine(VerifyConfig(workers=workers, **overrides))


@pytest.fixture(scope="module")
def setup():
    """A verified baseline with artifacts, plus a small fine-tuned version."""
    net = random_relu_network([4, 10, 8, 6, 1], seed=3, weight_scale=0.6)
    din = Box(np.zeros(4), 0.8 * np.ones(4))
    sn = inductive_states(net, din, 0.02)[-1]
    dout = sn.inflate(0.25 * sn.widths.max() + 0.1)
    from repro.core import VerificationProblem

    problem = VerificationProblem(net, din, dout)
    baseline = VerificationEngine().baseline(
        problem, with_network_abstraction=True, netabs_groups=3,
        netabs_margin=0.05)
    assert baseline.holds
    rng = np.random.default_rng(0)
    x = din.sample(200, rng)
    y = net.forward(x)
    tuned = fine_tune(net, x, y + rng.normal(0, 1e-3, size=y.shape),
                      learning_rate=5e-4, epochs=1)
    return baseline.artifacts, problem, tuned


def _assert_bab_equal(a, b):
    assert a.status == b.status
    assert a.upper_bound == b.upper_bound          # bitwise
    assert a.incumbent == b.incumbent
    assert a.nodes == b.nodes
    assert a.lp_solves == b.lp_solves
    if a.witness is None or b.witness is None:
        assert a.witness is None and b.witness is None
    else:
        assert np.array_equal(a.witness, b.witness)


def _assert_containment_equal(a, b):
    assert a.holds == b.holds
    assert a.method == b.method
    assert a.violation == b.violation
    assert a.lp_solves == b.lp_solves
    assert a.nodes == b.nodes
    if a.counterexample is None or b.counterexample is None:
        assert a.counterexample is None and b.counterexample is None
    else:
        assert np.array_equal(a.counterexample, b.counterexample)


def _assert_proposition_equal(a, b):
    assert a.proposition == b.proposition
    assert a.holds == b.holds
    assert a.detail == b.detail
    assert len(a.subproblems) == len(b.subproblems)
    for sa, sb in zip(a.subproblems, b.subproblems):
        assert (sa.name, sa.holds, sa.lp_solves) == (sb.name, sb.holds,
                                                     sb.lp_solves)


def _legacy(callable_, *args, **kwargs):
    """Run a legacy entry point with its deprecation warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", LegacyEntryPointWarning)
        return callable_(*args, **kwargs)


# ======================================================== engine equivalence
class TestEngineLegacyEquivalence:
    @pytest.mark.parametrize("workers", WORKER_MATRIX)
    def test_maximize(self, fig2, enlarged_box2, workers):
        from repro.exact import maximize_output

        c = np.array([1.0])
        verdict = _engine(workers).verify(MaximizeSpec(
            network=fig2, input_box=enlarged_box2, objective=c))
        legacy = _legacy(maximize_output, fig2, enlarged_box2, c,
                         workers=workers)
        _assert_bab_equal(verdict.result, legacy)
        assert verdict.optimum == legacy.optimum

    @pytest.mark.parametrize("workers", WORKER_MATRIX)
    def test_minimize(self, fig2, enlarged_box2, workers):
        from repro.exact import minimize_output

        c = np.array([1.0])
        verdict = _engine(workers).verify(MaximizeSpec(
            network=fig2, input_box=enlarged_box2, objective=c,
            minimize=True))
        legacy = _legacy(minimize_output, fig2, enlarged_box2, c,
                         workers=workers)
        _assert_bab_equal(verdict.result, legacy)

    @pytest.mark.parametrize("workers", WORKER_MATRIX)
    def test_maximize_threshold_modes(self, fig2, enlarged_box2, workers):
        from repro.exact import maximize_output

        c = np.array([1.0])
        for threshold, expect_holds in ((12.0, True), (5.0, False)):
            verdict = _engine(workers).verify(MaximizeSpec(
                network=fig2, input_box=enlarged_box2, objective=c,
                threshold=threshold))
            legacy = _legacy(maximize_output, fig2, enlarged_box2, c,
                             threshold=threshold, workers=workers)
            _assert_bab_equal(verdict.result, legacy)
            assert verdict.holds is expect_holds
        # A threshold solve that happens to terminate 'optimal' still
        # settles the question (optimum 6.2 <= 6.3).
        at_optimal = _engine(workers).verify(MaximizeSpec(
            network=fig2, input_box=enlarged_box2, objective=c,
            threshold=6.3))
        assert at_optimal.holds is not None

    @pytest.mark.parametrize("workers", WORKER_MATRIX)
    def test_containment(self, fig2, enlarged_box2, workers):
        from repro.exact import check_containment

        for target in (Box(np.array([-1.0]), np.array([7.0])),
                       Box(np.array([-1.0]), np.array([5.0]))):
            verdict = _engine(workers).verify(ContainmentSpec(
                network=fig2, input_box=enlarged_box2, target=target,
                method="exact"))
            legacy = _legacy(check_containment, fig2, enlarged_box2, target,
                             method="exact", workers=workers)
            _assert_containment_equal(verdict.result, legacy)

    @pytest.mark.parametrize("workers", WORKER_MATRIX)
    def test_output_range(self, fig2, enlarged_box2, workers):
        from repro.exact import output_range_exact

        verdict = _engine(workers).verify(OutputRangeSpec(
            network=fig2, input_box=enlarged_box2))
        legacy = _legacy(output_range_exact, fig2, enlarged_box2,
                         workers=workers)
        assert np.array_equal(verdict.output_range.lower, legacy.lower)
        assert np.array_equal(verdict.output_range.upper, legacy.upper)

    @pytest.mark.parametrize("workers", WORKER_MATRIX)
    def test_threshold_certificate(self, fig2, enlarged_box2, workers):
        from repro.exact import certify_threshold

        c = np.array([1.0])
        verdict = _engine(workers).verify(ThresholdSpec(
            network=fig2, input_box=enlarged_box2, objective=c,
            threshold=12.0))
        legacy_res, legacy_cert = _legacy(certify_threshold, fig2,
                                          enlarged_box2, c, 12.0,
                                          workers=workers)
        _assert_bab_equal(verdict.result, legacy_res)
        assert verdict.holds is True and verdict.certified
        assert verdict.certificate.num_leaves == legacy_cert.num_leaves
        assert verdict.certificate.block_dims == legacy_cert.block_dims
        for la, lb in zip(verdict.certificate.leaves, legacy_cert.leaves):
            assert la == lb

    @pytest.mark.parametrize("workers", WORKER_MATRIX)
    @pytest.mark.parametrize("kind", [1, 2, 3, 4, 5, 6])
    def test_propositions(self, setup, kind, workers):
        from repro.core import (check_prop1, check_prop2, check_prop3,
                                check_prop4, check_prop5, check_prop6)

        artifacts, problem, tuned = setup
        enlarged = problem.din.inflate(0.01)
        engine = _engine(workers)
        n = tuned.num_blocks
        if kind == 1:
            verdict = engine.verify(PropositionSpec(
                kind=1, artifacts=artifacts, enlarged_din=enlarged))
            legacy = _legacy(check_prop1, artifacts, enlarged,
                             workers=workers)
        elif kind == 2:
            verdict = engine.verify(PropositionSpec(
                kind=2, artifacts=artifacts, enlarged_din=enlarged))
            legacy = _legacy(check_prop2, artifacts, enlarged,
                             workers=workers)
        elif kind == 3:
            verdict = engine.verify(PropositionSpec(
                kind=3, artifacts=artifacts, enlarged_din=enlarged))
            legacy = check_prop3(artifacts, enlarged)  # not deprecated
        elif kind == 4:
            verdict = engine.verify(PropositionSpec(
                kind=4, artifacts=artifacts, new_network=tuned))
            legacy = _legacy(check_prop4, artifacts, tuned, workers=workers)
        elif kind == 5:
            verdict = engine.verify(PropositionSpec(
                kind=5, artifacts=artifacts, new_network=tuned,
                alphas=tuple(range(1, n))))
            legacy = _legacy(check_prop5, artifacts, tuned,
                             alphas=list(range(1, n)), workers=workers)
        else:
            verdict = engine.verify(PropositionSpec(
                kind=6, artifacts=artifacts, new_network=tuned))
            legacy = check_prop6(artifacts, tuned)  # not deprecated
        _assert_proposition_equal(verdict.result, legacy)

    @pytest.mark.parametrize("workers", (1, 2))
    def test_continuous_loop_svudc(self, setup, workers):
        from repro.core import ContinuousVerifier, SVuDC

        artifacts, problem, _ = setup
        enlarged = problem.din.inflate(0.01)
        verdict = _engine(workers).verify(ContinuousLoopSpec(
            artifacts=artifacts, enlarged_din=enlarged))
        legacy = ContinuousVerifier(artifacts, workers=workers) \
            .verify_domain_change(SVuDC(problem, enlarged))
        assert verdict.holds == legacy.holds
        assert verdict.strategy == legacy.strategy
        assert len(verdict.result.attempts) == len(legacy.attempts)

    def test_continuous_loop_svbtv(self, setup):
        from repro.core import ContinuousVerifier, SVbTV

        artifacts, problem, tuned = setup
        verdict = _engine().verify(ContinuousLoopSpec(
            artifacts=artifacts, new_network=tuned))
        legacy = ContinuousVerifier(artifacts).verify_new_version(
            SVbTV(problem, tuned))
        assert verdict.holds == legacy.holds
        assert verdict.strategy == legacy.strategy

    def test_baseline_matches_verify_from_scratch(self, setup):
        from repro.core import verify_from_scratch

        _, problem, _ = setup
        engine_outcome = VerificationEngine().baseline(problem)
        legacy = _legacy(verify_from_scratch, problem)
        assert engine_outcome.holds == legacy.holds
        # rigor="range" runs per-output BaB: the effort must be accounted
        assert engine_outcome.provenance.lp_solves > 0
        assert engine_outcome.provenance.lp_solves == legacy.lp_solves
        assert engine_outcome.result.detail == legacy.detail
        a, b = engine_outcome.artifacts, legacy.artifacts
        assert a.states_prove_safety == b.states_prove_safety
        assert a.lipschitz.ell == b.lipschitz.ell
        for box_a, box_b in zip(a.states.boxes, b.states.boxes):
            assert np.array_equal(box_a.lower, box_b.lower)
            assert np.array_equal(box_a.upper, box_b.upper)
        assert np.array_equal(a.output_range.lower, b.output_range.lower)
        assert np.array_equal(a.output_range.upper, b.output_range.upper)

    def test_provenance_populated(self, fig2, enlarged_box2):
        verdict = _engine(workers=2).verify(MaximizeSpec(
            network=fig2, input_box=enlarged_box2, objective=np.array([1.0])))
        prov = verdict.provenance
        assert prov.elapsed > 0
        assert prov.lp_solves == verdict.result.lp_solves
        assert prov.workers == 2
        assert set(prov.encoding_reuse) == {"hits", "misses"}


# ================================================================== submit
class TestSubmit:
    def _bag(self, fig2, enlarged_box2):
        return [
            MaximizeSpec(network=fig2, input_box=enlarged_box2,
                         objective=np.array([1.0])),
            ContainmentSpec(network=fig2, input_box=enlarged_box2,
                            target=Box(np.array([-1.0]), np.array([7.0])),
                            method="exact"),
            OutputRangeSpec(network=fig2, input_box=enlarged_box2),
            ThresholdSpec(network=fig2, input_box=enlarged_box2,
                          objective=np.array([1.0]), threshold=12.0),
        ]

    @pytest.mark.parametrize("workers", (1, 4))
    def test_submit_matches_sequential_verify(self, fig2, enlarged_box2,
                                              workers):
        engine = _engine(workers)
        bag = self._bag(fig2, enlarged_box2)
        batched = engine.submit(bag)
        assert len(batched) == len(bag)
        for spec, verdict in zip(bag, batched):
            solo = _engine(workers).verify(spec)
            assert verdict.spec_type == solo.spec_type
            assert verdict.holds == solo.holds
            if isinstance(verdict, RangeVerdict):
                assert np.array_equal(verdict.output_range.lower,
                                      solo.output_range.lower)
            else:
                assert verdict.result.lp_solves == solo.result.lp_solves

    def test_submit_preserves_order(self, fig2, enlarged_box2):
        bag = self._bag(fig2, enlarged_box2) * 3
        verdicts = _engine(4).submit(bag)
        assert [v.spec_type for v in verdicts] == [s.spec_type for s in bag]

    @pytest.mark.parametrize("workers", (1, 2, 8))
    def test_mixed_good_bad_batch_yields_failed_verdicts(self, fig2,
                                                         enlarged_box2,
                                                         workers):
        """Satellite: per-spec errors become FailedVerdict entries in
        their slots instead of losing the rest of the batch."""
        from repro.api import FailedVerdict

        bad = ContainmentSpec(network=fig2,
                              input_box=Box(-np.ones(5), np.ones(5)),
                              target=Box(-np.ones(1), np.ones(1)))
        bag = self._bag(fig2, enlarged_box2)
        mixed = [bag[0], bad, bag[1], bad, bag[2]]
        verdicts = _engine(workers).submit(mixed)
        assert len(verdicts) == len(mixed)
        for i in (1, 3):
            assert isinstance(verdicts[i], FailedVerdict)
            assert verdicts[i].holds is None
            assert verdicts[i].error_type == "ShapeError"
            assert verdicts[i].spec_type == "containment"
        for i in (0, 2, 4):
            assert not isinstance(verdicts[i], FailedVerdict)
            solo = _engine(workers).verify(mixed[i])
            assert verdicts[i].holds == solo.holds

    @pytest.mark.parametrize("workers", (1, 2, 8))
    def test_expired_timeout_fails_whole_batch(self, fig2, enlarged_box2,
                                               workers):
        from repro.api import FailedVerdict

        bag = self._bag(fig2, enlarged_box2)
        verdicts = _engine(workers).submit(bag, timeout=-1.0)
        assert len(verdicts) == len(bag)
        for spec, verdict in zip(bag, verdicts):
            assert isinstance(verdict, FailedVerdict)
            assert verdict.error_type == "TimeoutError"
            assert verdict.spec_type == spec.spec_type

    @pytest.mark.parametrize("workers", (1, 2, 8))
    def test_generous_timeout_changes_nothing(self, fig2, enlarged_box2,
                                              workers):
        from repro.api import FailedVerdict

        bag = self._bag(fig2, enlarged_box2)
        verdicts = _engine(workers).submit(bag, timeout=600.0)
        assert [v.spec_type for v in verdicts] == [s.spec_type for s in bag]
        assert not any(isinstance(v, FailedVerdict) for v in verdicts)


# ========================================================== JSON round-trip
class TestSpecRoundTrip:
    def _specs(self, setup, fig2, enlarged_box2):
        artifacts, problem, tuned = setup
        enlarged = problem.din.inflate(0.01)
        return [
            ContainmentSpec(network=fig2, input_box=enlarged_box2,
                            target=Box(np.array([-1.0]), np.array([7.0])),
                            method="exact"),
            OutputRangeSpec(network=fig2, input_box=enlarged_box2),
            ThresholdSpec(network=fig2, input_box=enlarged_box2,
                          objective=np.array([1.0]), threshold=12.0),
            MaximizeSpec(network=fig2, input_box=enlarged_box2,
                         objective=np.array([1.0]), minimize=True),
            PropositionSpec(kind=5, artifacts=artifacts, new_network=tuned,
                            alphas=(1, 2), enlarged_din=enlarged),
            ContinuousLoopSpec(artifacts=artifacts, new_network=tuned,
                               enlarged_din=enlarged,
                               strategies=("prop4", "prop5"),
                               prop5_alphas=(2,)),
        ]

    def test_every_spec_type_round_trips(self, setup, fig2, enlarged_box2):
        specs = self._specs(setup, fig2, enlarged_box2)
        assert {type(s) for s in specs} == set(SPEC_TYPES.values())
        for spec in specs:
            again = spec_from_dict(spec_to_dict(spec))
            assert again == spec, type(spec).__name__
            # and through actual JSON text (the wire format)
            text = spec_to_json(spec)
            assert spec_from_json(text) == spec
            # the round-tripped spec is a genuinely equal *value*, byte-wise
            assert json.dumps(spec_to_dict(again), sort_keys=True) == \
                json.dumps(spec_to_dict(spec), sort_keys=True)

    def test_round_tripped_spec_verifies_identically(self, fig2,
                                                     enlarged_box2):
        spec = MaximizeSpec(network=fig2, input_box=enlarged_box2,
                            objective=np.array([1.0]))
        again = spec_from_json(spec_to_json(spec))
        a = _engine().verify(spec).result
        b = _engine().verify(again).result
        _assert_bab_equal(a, b)

    def test_nonfinite_bounds_survive_strict_json(self, fig2, enlarged_box2):
        # Unbounded target sides are legitimate; the wire form must stay
        # strict RFC-8259 (no Infinity/NaN tokens) so non-Python executors
        # can parse it.
        target = Box(np.array([-np.inf]), np.array([np.inf]))
        spec = ContainmentSpec(network=fig2, input_box=enlarged_box2,
                               target=target)
        text = spec_to_json(spec)

        def reject(token):  # json.loads calls this only for non-RFC tokens
            raise AssertionError(f"non-RFC token {token!r} in wire form")

        again = spec_from_dict(json.loads(text, parse_constant=reject))
        assert again == spec
        assert np.array_equal(again.target.lower, target.lower)
        assert np.array_equal(again.target.upper, target.upper)

    def test_inequality_on_value_change(self, fig2, enlarged_box2):
        spec = OutputRangeSpec(network=fig2, input_box=enlarged_box2)
        other = OutputRangeSpec(network=fig2,
                                input_box=enlarged_box2.inflate(1e-9))
        assert spec != other
        assert hash(spec) != hash(other)

    def test_unknown_type_rejected(self):
        with pytest.raises(SerializationError):
            spec_from_dict({"type": "frobnicate"})
        with pytest.raises(SerializationError):
            spec_from_dict({"no": "tag"})

    def test_unknown_payload_keys_rejected(self, fig2, enlarged_box2):
        # A typoed knob must fail loudly, not silently change the verdict
        # (e.g. "thresold" turning a threshold proof into a plain max).
        doc = spec_to_dict(MaximizeSpec(network=fig2, input_box=enlarged_box2,
                                        objective=np.array([1.0])))
        doc["thresold"] = 5.0
        with pytest.raises(SerializationError, match="thresold"):
            spec_from_dict(doc)

    def test_missing_required_key_rejected_cleanly(self):
        with pytest.raises(SerializationError, match="network"):
            spec_from_dict({"type": "containment"})

    def test_proposition_spec_validation(self, setup):
        artifacts, problem, tuned = setup
        with pytest.raises(SerializationError):
            PropositionSpec(kind=7, artifacts=artifacts)
        with pytest.raises(SerializationError):
            PropositionSpec(kind=1, artifacts=artifacts)  # no enlarged_din
        with pytest.raises(SerializationError):
            PropositionSpec(kind=4, artifacts=artifacts)  # no new_network
        with pytest.raises(SerializationError):
            PropositionSpec(kind=5, artifacts=artifacts, new_network=tuned)
        with pytest.raises(SerializationError):
            # prop6 covers the original domain only: an enlargement must
            # not be silently dropped (use ContinuousLoopSpec instead).
            PropositionSpec(kind=6, artifacts=artifacts, new_network=tuned,
                            enlarged_din=problem.din.inflate(0.01))
        with pytest.raises(SerializationError):
            ContinuousLoopSpec(artifacts=artifacts)


# ===================================================== one source of defaults
class TestDefaultsUnified:
    """No entry point overrides tol/node_limit/workers independently.

    The signature-level half of this gate is now *static*: the
    ``no-restated-defaults`` rule of ``repro lint`` flags any knob-named
    parameter or dataclass field restating a canonical default literal
    (enforced tree-wide by ``tests/test_analysis.py`` and the CI lint
    job).  What remains here is the runtime behaviour the linter cannot
    see: that configs actually *fold* correctly through the verifiers.
    """

    def test_continuous_verifier_resolves_from_config(self, setup):
        from repro.core.continuous import ContinuousVerifier

        artifacts, _, _ = setup
        reference = VerifyConfig()
        verifier = ContinuousVerifier(artifacts)
        assert verifier.config == reference
        assert (verifier.method, verifier.node_limit, verifier.workers) == (
            reference.method, reference.node_limit, reference.workers)
        # per-knob overrides still fold into the config
        tuned = ContinuousVerifier(artifacts, workers=3, node_limit=99)
        assert (tuned.config.workers, tuned.config.node_limit) == (3, 99)

    def test_engineering_loop_honours_supplied_config(self, setup):
        from repro.core import EngineeringLoop

        _, problem, _ = setup
        custom = VerifyConfig(method="exact", node_limit=500, workers=2)
        loop = EngineeringLoop(problem, config=custom)
        assert loop._config() == custom  # field defaults must not clobber
        # explicit field overrides still win over the config
        assert EngineeringLoop(problem, config=custom,
                               node_limit=50)._config().node_limit == 50
        # and with no config at all, the historical full budget applies
        assert EngineeringLoop(problem)._config().node_limit == \
            VerifyConfig().full_node_limit
        # a config tweaking only *other* knobs keeps the full budget too
        assert EngineeringLoop(
            problem, config=VerifyConfig(workers=2))._config().node_limit == \
            VerifyConfig().full_node_limit

    def test_config_validation_and_round_trip(self):
        config = VerifyConfig(workers=4, node_tighten=True,
                              frontier_width=16, encoding_cache="private")
        assert VerifyConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ReproError):
            VerifyConfig(workers=0)
        with pytest.raises(ReproError):
            VerifyConfig(tol=0.0)
        with pytest.raises(ReproError):
            VerifyConfig(method="frobnicate")
        with pytest.raises(ReproError):
            VerifyConfig(domain="nonsense")
        with pytest.raises(ReproError):
            VerifyConfig(lp_form="sprase")
        with pytest.raises(ReproError):
            VerifyConfig(encoding_cache="maybe")
        with pytest.raises(ReproError):
            VerifyConfig.from_dict({"frobnicate": 1})

    def test_config_domains_mirror_propagator_registry(self):
        from repro.api.config import _DOMAINS
        from repro.domains.propagate import PROPAGATORS

        assert set(_DOMAINS) == set(PROPAGATORS)

    def test_private_encoding_cache_bypasses_shared_cache(self, fig2,
                                                          enlarged_box2):
        from repro.exact import encoding_cache_stats

        spec = OutputRangeSpec(network=fig2, input_box=enlarged_box2)
        _engine().verify(spec)  # ensure the shared entry exists
        before = encoding_cache_stats()
        verdict = _engine(encoding_cache="private").verify(spec)
        after = encoding_cache_stats()
        assert after == before  # neither hit nor miss: cache untouched
        assert verdict.provenance.encoding_reuse == {"hits": 0, "misses": 0}


# ========================================================== deprecation gate
class TestDeprecationShims:
    def test_every_legacy_entry_point_warns(self, fig2, enlarged_box2,
                                            setup):
        from repro.core import (check_prop1, check_prop2, check_prop4,
                                check_prop5, verify_from_scratch)
        from repro.exact import (certify_threshold, check_containment,
                                 maximize_output, minimize_output,
                                 output_range_exact)

        artifacts, problem, tuned = setup
        enlarged = problem.din.inflate(0.01)
        target = Box(np.array([-1.0]), np.array([7.0]))
        c = np.array([1.0])
        calls = [
            lambda: maximize_output(fig2, enlarged_box2, c),
            lambda: minimize_output(fig2, enlarged_box2, c),
            lambda: check_containment(fig2, enlarged_box2, target),
            lambda: output_range_exact(fig2, enlarged_box2),
            lambda: certify_threshold(fig2, enlarged_box2, c, 12.0),
            lambda: check_prop1(artifacts, enlarged),
            lambda: check_prop2(artifacts, enlarged),
            lambda: check_prop4(artifacts, tuned),
            lambda: check_prop5(artifacts, tuned, alphas=[1]),
            lambda: verify_from_scratch(problem, rigor="abstract"),
        ]
        for call in calls:
            with pytest.warns(LegacyEntryPointWarning):
                call()

    def test_src_internal_paths_trigger_no_legacy_warning(self, fig2,
                                                          enlarged_box2,
                                                          setup):
        """The CI gate: internal callers must be fully migrated.

        Everything below exercises src/ end to end -- the engine over every
        Spec type, the continuous loop with fixing and fallback, the
        engineering loop, and the CLI worked examples -- with the legacy
        warning escalated to an error.  Any un-migrated internal call site
        fails here.
        """
        from repro.cli import main as cli_main
        from repro.core import (ContinuousVerifier, EngineeringLoop, SVbTV,
                                SVuDC)

        artifacts, problem, tuned = setup
        enlarged = problem.din.inflate(0.01)
        with warnings.catch_warnings():
            warnings.simplefilter("error", LegacyEntryPointWarning)
            engine = _engine(workers=2)
            engine.verify(MaximizeSpec(network=fig2, input_box=enlarged_box2,
                                       objective=np.array([1.0])))
            engine.verify(ContainmentSpec(
                network=fig2, input_box=enlarged_box2,
                target=Box(np.array([-1.0]), np.array([7.0]))))
            engine.verify(OutputRangeSpec(network=fig2,
                                          input_box=enlarged_box2))
            engine.verify(ThresholdSpec(network=fig2, input_box=enlarged_box2,
                                        objective=np.array([1.0]),
                                        threshold=12.0))
            for kind in (1, 2, 3):
                engine.verify(PropositionSpec(kind=kind, artifacts=artifacts,
                                              enlarged_din=enlarged))
            for kind in (4, 6):
                engine.verify(PropositionSpec(kind=kind, artifacts=artifacts,
                                              new_network=tuned))
            engine.verify(ContinuousLoopSpec(artifacts=artifacts,
                                             enlarged_din=enlarged))
            engine.verify(ContinuousLoopSpec(artifacts=artifacts,
                                             new_network=tuned))
            baseline = engine.baseline(problem, rigor="abstract")
            verifier = ContinuousVerifier(artifacts)
            verifier.verify_domain_change(SVuDC(problem, enlarged))
            verifier.verify_new_version(SVbTV(problem, tuned))
            loop = EngineeringLoop(problem, rigor="abstract")
            loop.initial_verification()
            loop.on_domain_enlarged(problem.din.inflate(0.005))
            assert cli_main(["fig2"]) == 0
            assert cli_main(["prop3"]) == 0
            assert baseline.holds is not False


# ================================================================== CLI
class TestVerifySpecCLI:
    def test_verify_spec_roundtrip_through_file(self, tmp_path, fig2,
                                                enlarged_box2, capsys):
        from repro.cli import main as cli_main

        spec = ContainmentSpec(network=fig2, input_box=enlarged_box2,
                               target=Box(np.array([-1.0]), np.array([7.0])),
                               method="exact")
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"spec": spec_to_dict(spec),
                                    "config": {"workers": 2}}))
        assert cli_main(["verify-spec", str(path), "--json"]) == 0
        record = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert record["holds"] is True
        assert record["spec_type"] == "containment"
        assert record["workers"] == 2

    def test_verify_spec_flag_overrides_file_config(self, tmp_path, fig2,
                                                    enlarged_box2, capsys):
        from repro.cli import main as cli_main

        spec = OutputRangeSpec(network=fig2, input_box=enlarged_box2)
        path = tmp_path / "spec.json"
        path.write_text(spec_to_json(spec))
        assert cli_main(["verify-spec", str(path), "--json",
                         "--workers", "2"]) == 0
        record = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert record["workers"] == 2
        assert record["output_range"]["upper"][0] == pytest.approx(6.2)

    def test_verify_spec_null_config_is_clean(self, tmp_path, fig2,
                                              enlarged_box2, capsys):
        from repro.cli import main as cli_main

        spec = OutputRangeSpec(network=fig2, input_box=enlarged_box2)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"spec": spec_to_dict(spec),
                                    "config": None}))
        assert cli_main(["verify-spec", str(path), "--json"]) == 0

    def test_verify_spec_pure_optimisation_is_a_success(self, tmp_path, fig2,
                                                        enlarged_box2,
                                                        capsys):
        from repro.cli import main as cli_main

        spec = MaximizeSpec(network=fig2, input_box=enlarged_box2,
                            objective=np.array([1.0]))
        path = tmp_path / "spec.json"
        path.write_text(spec_to_json(spec))
        # holds is None (a value query), but computing the optimum is the
        # success: exit code 0 and the value in the record.
        assert cli_main(["verify-spec", str(path), "--json"]) == 0
        record = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert record["status"] == "optimal"
        assert record["optimum"] == pytest.approx(6.2)

    def test_verify_spec_failing_spec_exits_nonzero(self, tmp_path, fig2,
                                                    enlarged_box2):
        from repro.cli import main as cli_main

        spec = ContainmentSpec(network=fig2, input_box=enlarged_box2,
                               target=Box(np.array([-1.0]), np.array([5.0])),
                               method="exact")
        path = tmp_path / "spec.json"
        path.write_text(spec_to_json(spec))
        assert cli_main(["verify-spec", str(path)]) == 1
