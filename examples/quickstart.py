"""Quickstart: verify a network once, then reuse the proof twice.

Demonstrates the library's core loop through the unified :mod:`repro.api`
engine in under a minute:

1. build and verify a small ReLU network (``engine.baseline`` produces
   the reusable proof artifacts);
2. the input domain grows (as if a runtime monitor reported new inputs) --
   settle the SVuDC problem by proof reuse (``ContinuousLoopSpec``);
3. the network is fine-tuned -- settle the SVbTV problem by proof reuse.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import ContinuousLoopSpec, VerificationEngine, VerifyConfig
from repro.core import VerificationProblem, format_continuous_result
from repro.domains import Box
from repro.domains.propagate import inductive_states
from repro.nn import TrainConfig, fine_tune, random_relu_network, train


def main() -> None:
    rng = np.random.default_rng(0)

    # A 4-16-12-1 ReLU regressor trained on a toy task.
    net = random_relu_network([4, 16, 12, 1], seed=0)
    x = rng.uniform(size=(300, 4))
    y = (np.sin(3 * x[:, 0]) + x[:, 1] * x[:, 2])[:, None]
    train(net, x, y, TrainConfig(epochs=40, learning_rate=3e-3,
                                 optimizer="adam"))

    # The safety property: outputs stay in a band wide enough for the
    # layered abstraction to close (how one picks provable properties).
    din = Box(np.zeros(4), np.ones(4))
    sn = inductive_states(net, din, buffer_rel=0.03)[-1]
    dout = sn.inflate(0.25 * float(sn.widths.max()) + 0.1)
    problem = VerificationProblem(net, din, dout)

    # One engine, one config: every knob in a single place.
    engine = VerificationEngine(VerifyConfig(workers=1))

    print("== original verification (from scratch) ==")
    baseline = engine.baseline(problem, state_buffer=0.03)
    artifacts = baseline.artifacts
    print(f"safe: {baseline.holds}   time: {baseline.provenance.elapsed:.3f}s   "
          f"artifacts: states={artifacts.states is not None}, "
          f"lipschitz={artifacts.lipschitz.ell:.3g}")

    print("\n== SVuDC: the input domain grew ==")
    enlarged = din.inflate(0.02)
    verdict = engine.verify(ContinuousLoopSpec(artifacts=artifacts,
                                               enlarged_din=enlarged))
    print(format_continuous_result(verdict.result, baseline.result.elapsed))

    print("\n== SVbTV: the network was fine-tuned ==")
    tuned = fine_tune(net, x, y + rng.normal(0, 0.01, size=y.shape),
                      learning_rate=1e-3, epochs=1)
    print(f"max weight delta: {net.max_weight_delta(tuned):.2e}")
    verdict = engine.verify(ContinuousLoopSpec(artifacts=artifacts,
                                               new_network=tuned))
    print(format_continuous_result(verdict.result, baseline.result.elapsed))
    print(f"encoding reuse this round: {verdict.provenance.encoding_reuse}")


if __name__ == "__main__":
    main()
