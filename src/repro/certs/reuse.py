"""Recording and replaying certificates: the delta-verification core.

:func:`extract_certificate` turns one proved threshold solve (its
covering leaves) into a :class:`~repro.certs.certificate.Certificate`,
annotating every leaf with its node-LP bound, verdict, and -- the
delta-verification workhorse -- the LP's optimal **dual multipliers** at
record time.  :func:`reverify_with_certificate` is the other direction:
given a (possibly perturbed) network, warm-start the solver from the
stored leaves, settling them with :func:`dual_start_screen` -- one
batched float64 re-screen against the new weights that combines the
phase-clamped interval/affine bounds with a per-leaf Lagrangian
evaluation of the stored duals.  Only the leaves whose bounds actually
moved past the threshold pay a delta-LP (and, if needed, further
branching).

Why duals, and why this is sound
--------------------------------
A leaf the solver settled by *LP* bound sits far below the depth where
any forward/backward propagation pass closes it (the relaxation honours
the phase constraints as half-spaces cutting the input region; no
interval or affine pass does).  Weak duality bridges the gap: for the
node LP ``min c'x  s.t.  A_ub x <= b_ub, A_eq x = b_eq, l <= x <= u``,
*any* multipliers ``lambda >= 0``/``mu`` give the bound

    ``min >= -lambda' b_ub - mu' b_eq + min_{l<=x<=u} (c' + lambda' A_ub
    + mu' A_eq) x``

evaluated in closed form.  The matrices, right-hand sides, and variable
bounds are rebuilt in float64 from the network actually being verified;
only the multipliers come from the store.  At the recorded weights the
optimal duals reproduce the LP bound exactly (strong duality), and under
a small weight perturbation the bound moves by O(perturbation) -- so
almost every stored leaf re-certifies LP-free.  A corrupt, stale, or
adversarial certificate can only supply *worse* multipliers, which
loosen the bound and cost an LP, never flip a verdict.

Branching decisions are weights-independent partitions, which is why
they transfer across weight perturbations at all: a covering set of
phase regions for the old network covers the new one verbatim
("partitions survive, consequences do not" --
:mod:`repro.exact.incremental`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.api.config import VerifyConfig
from repro.certs.certificate import (
    CERT_VERSION,
    Certificate,
    config_digest,
    content_fingerprint,
    structural_fingerprint,
)
from repro.domains.batch import _block_slope, phase_clamped_affine_bounds
from repro.domains.box import Box
from repro.exact.bab import BaBResult, BaBSolver
from repro.exact.encoding import PhaseMap
from repro.exact.incremental import BranchCertificate
from repro.nn.network import Network

__all__ = ["extract_certificate", "reverify_with_certificate",
           "dual_start_screen"]


def _screen_batch(solver: BaBSolver, phase_maps: List[PhaseMap],
                  c_vec: np.ndarray):
    """One batched interval+affine pass: uppers, feasibility, per-block
    pre-activation bounds, and the ``tight_pre`` lists both the node LPs
    and the Lagrangian evaluation feed on."""
    upper, feasible, pre_lo, pre_hi = phase_clamped_affine_bounds(
        solver.network, solver.input_box, phase_maps, c_vec)
    tights = [[(pre_lo[k][j], pre_hi[k][j]) for k in range(len(pre_lo))]
              for j in range(len(phase_maps))]
    return upper, feasible, tights


def _finite_var_bounds(solver: BaBSolver, tight: List[Tuple[np.ndarray,
                                                            np.ndarray]],
                       system) -> Tuple[np.ndarray, np.ndarray]:
    """Finite ``[lo, hi]`` per LP variable, from the leaf's phase-clamped
    bounds (``x`` from the box, ``z`` from the pre-activation intervals,
    ``a`` from the activation image), intersected with the system's own.
    Finiteness everywhere is what keeps the Lagrangian's box-minimisation
    term finite when perturbed reduced costs drift off exact zero."""
    enc = solver.encoding
    lo = np.full(enc.num_continuous, -np.inf)
    hi = np.full(enc.num_continuous, np.inf)
    lo[enc.input_slice] = solver.input_box.lower
    hi[enc.input_slice] = solver.input_box.upper
    for k, block in enumerate(solver.network.blocks()):
        zl, zu = tight[k]
        lo[enc.z_slices[k]] = zl
        hi[enc.z_slices[k]] = zu
        if block.activation is not None:
            s = _block_slope(block.activation)
            # y = max(z, s*z) is nondecreasing for s in [0, 1].
            lo[enc.a_slices[k]] = np.maximum(zl, s * zl)
            hi[enc.a_slices[k]] = np.maximum(zu, s * zu)
    for i, (sys_lo, sys_hi) in enumerate(system.bounds):
        if sys_lo is not None:
            lo[i] = max(lo[i], sys_lo)
        if sys_hi is not None:
            hi[i] = min(hi[i], sys_hi)
    return lo, hi


def _lagrangian_upper(system, neg_obj: np.ndarray, lo: np.ndarray,
                      hi: np.ndarray, dual) -> float:
    """Weak-duality upper bound on the node *maximum* from stored
    multipliers -- sound for any ``dual`` (negative ``lambda`` entries are
    clipped; shape mismatches and non-finite inputs return ``+inf``, i.e.
    "screen says nothing", the leaf just pays its LP)."""
    if dual is None:
        return np.inf
    lam, mu = dual
    lam = np.asarray(lam, dtype=np.float64).reshape(-1)
    mu = np.asarray(mu, dtype=np.float64).reshape(-1)
    n_ub = 0 if system.b_ub is None else len(system.b_ub)
    n_eq = 0 if system.b_eq is None else len(system.b_eq)
    if lam.size != n_ub or mu.size != n_eq:
        return np.inf
    if not (np.isfinite(lam).all() and np.isfinite(mu).all()):
        return np.inf
    lam = np.maximum(lam, 0.0)  # lambda >= 0 is what makes any value sound
    g = neg_obj.copy()
    rhs = 0.0
    if n_ub:
        g = g + system.a_ub.T @ lam
        rhs += float(lam @ system.b_ub)
    if n_eq:
        g = g + system.a_eq.T @ mu
        rhs += float(mu @ system.b_eq)
    g = np.asarray(g).reshape(-1)
    term = np.where(g > 0, g * lo, g * hi)  # min of g'x over the var box
    if not np.isfinite(term).all():
        return np.inf
    return rhs - float(term.sum())


def dual_start_screen(solver: BaBSolver, cert: Certificate,
                      objective: np.ndarray) -> Callable:
    """The warm-start re-screen of certificate reuse, shaped like
    :meth:`BaBSolver._screen_nodes` so :meth:`BaBSolver.maximize` can use
    it verbatim for its ``initial_nodes`` batch.

    Everything is recomputed in float64 from ``solver``'s actual network:
    feasibility and pre-activation bounds by the batched phase-clamped
    pass, the per-leaf upper bound as the minimum of the interval/affine
    bound and the Lagrangian evaluation of the stored duals against the
    freshly built node-LP data.  The certificate contributes multipliers
    only -- hints whose worst case is a loose bound.
    """
    c_vec = np.asarray(objective, dtype=np.float64).reshape(-1)

    def screen(phase_maps: List[PhaseMap]):
        if not solver.interval_prune:
            # Without pruning the solver ignores screen bounds entirely;
            # keep its stock behaviour byte-identical.
            return solver._screen_nodes(phase_maps, c_vec)
        upper, feasible, tights = _screen_batch(solver, phase_maps, c_vec)
        duals = cert.leaf_duals
        if len(duals) == len(phase_maps):
            enc = solver.encoding
            neg_obj = -enc.output_objective(c_vec)
            threshold = float(cert.threshold) + solver.tol
            for j, leaf in enumerate(phase_maps):
                if not bool(feasible[j]) or duals[j] is None or \
                        float(upper[j]) <= threshold:
                    continue  # already settled, or nothing stored
                system = enc.build_lp(leaf, form=solver.lp_form,
                                      tight_pre=tights[j])
                lo, hi = _finite_var_bounds(solver, tights[j], system)
                upper[j] = min(float(upper[j]), _lagrangian_upper(
                    system, neg_obj, lo, hi, duals[j]))
        return upper, feasible, tights if solver.node_tighten else None

    return screen


def _leaf_key(leaf: PhaseMap) -> tuple:
    return tuple(sorted(leaf.items()))


def extract_certificate(network: Network, input_box: Box,
                        objective: np.ndarray, threshold: float,
                        result: BaBResult, leaves: List[PhaseMap],
                        config: Optional[VerifyConfig] = None,
                        lp_baseline: Optional[int] = None,
                        duals: Optional[dict] = None) -> Certificate:
    """Package a proved solve's covering leaves as a store-ready artifact.

    ``duals`` is the ``collect_duals`` capture of the proving solve (each
    node LP's optimal multipliers, keyed by canonical phase-map items, as
    carried by ``BranchCertificate.leaf_duals``).  Recording costs **zero
    extra LP solves**: every leaf that was settled by an LP already has
    its multipliers captured, and each is annotated here with one LP-free
    Lagrangian evaluation (which at the recording weights reproduces the
    LP bound exactly -- strong duality).  Leaves settled without an LP
    (screen-closed) carry no duals; if a future perturbation drifts one
    open, it pays a single delta-LP whose duals the re-record then picks
    up -- lazy, self-healing refresh.

    ``lp_baseline`` overrides the stored from-scratch LP count (the
    savings denominator): when a *warm-started* solve re-records, the
    original cold baseline is carried forward instead of the warm run's
    own, smaller count.
    """
    config = config or VerifyConfig()
    c_vec = np.asarray(objective, dtype=np.float64).reshape(-1)
    solver = BaBSolver.from_config(network, input_box, config)
    enc = solver.encoding
    neg_obj = -enc.output_objective(c_vec)
    upper, feasible, tights = _screen_batch(solver, leaves, c_vec)
    duals = duals or {}
    bounds: List[float] = []
    verdicts: List[str] = []
    stored: List[Optional[tuple]] = []
    for j, leaf in enumerate(leaves):
        if not bool(feasible[j]):
            bounds.append(-np.inf)
            verdicts.append("empty")
            stored.append(None)
            continue
        dual = duals.get(_leaf_key(leaf))
        bound = float(upper[j])
        if dual is not None:
            system = enc.build_lp(leaf, form=solver.lp_form,
                                  tight_pre=tights[j])
            lo, hi = _finite_var_bounds(solver, tights[j], system)
            bound = min(bound, _lagrangian_upper(
                system, neg_obj, lo, hi, dual))
            dual = (np.asarray(dual[0], dtype=np.float64),
                    np.asarray(dual[1], dtype=np.float64))
        bounds.append(bound)
        verdicts.append("proved" if bound <= float(threshold) + config.tol
                        else "open")
        stored.append(dual)
    return Certificate(
        objective=c_vec.copy(),
        threshold=float(threshold),
        leaves=[dict(leaf) for leaf in leaves],
        leaf_bounds=bounds,
        leaf_verdicts=verdicts,
        leaf_duals=stored,
        block_dims=network.block_dims(),
        structural_fp=structural_fingerprint(network),
        content_fp=content_fingerprint(network),
        config_digest=config_digest(config),
        status=result.status,
        upper_bound=float(result.upper_bound),
        lp_solves=int(result.lp_solves if lp_baseline is None
                      else lp_baseline),
        version=CERT_VERSION,
    )


def reverify_with_certificate(network: Network, input_box: Box,
                              objective: np.ndarray, threshold: float,
                              cert: Certificate,
                              config: Optional[VerifyConfig] = None,
                              ) -> Tuple[BaBResult,
                                         Optional[BranchCertificate]]:
    """Threshold solve warm-started from a validated certificate.

    Mirrors :func:`repro.exact.incremental._certify_threshold` exactly --
    full node budget, covering-leaf collection, same proof condition --
    except the search starts from ``cert.leaves`` instead of the root,
    and the start batch is settled by :func:`dual_start_screen`.  The
    returned :class:`BranchCertificate` (``None`` unless proved) carries
    the *new* covering frontier, which the caller re-records so the store
    always warm-starts from the latest proved version.

    Soundness: the screen re-derives every bound in float64 against
    ``network``'s actual weights before settling a leaf, and the solver
    completes the search for any leaf left open -- the stored payload is
    hints, not evidence.  ``result.nodes_reused`` / ``lp_solves_saved``
    report how much of the warm start paid off.
    """
    config = config or VerifyConfig()
    solver = BaBSolver.from_config(
        network, input_box,
        config.replace(node_limit=config.effective_full_node_limit))
    new_leaves: List[PhaseMap] = []
    new_duals: dict = {}
    result = solver.maximize(
        np.asarray(objective, dtype=np.float64), threshold=float(threshold),
        initial_nodes=[dict(leaf) for leaf in cert.leaves],
        collect_leaves=new_leaves,
        start_screen=dual_start_screen(solver, cert, objective),
        collect_duals=new_duals)
    # Leaves the screen settled LP-free keep their stored multipliers for
    # the re-record (still the freshest available); leaves the search
    # re-solved get this run's (setdefault: fresh captures win).
    for j, leaf in enumerate(cert.leaves):
        if j < len(cert.leaf_duals) and cert.leaf_duals[j] is not None:
            new_duals.setdefault(_leaf_key(leaf), cert.leaf_duals[j])
    if result.status not in ("threshold_proved", "optimal") or \
            result.upper_bound > float(threshold) + config.tol:
        return result, None
    certificate = BranchCertificate(
        objective=np.asarray(objective, dtype=np.float64).copy(),
        threshold=float(threshold),
        leaves=new_leaves,
        block_dims=network.block_dims(),
        leaf_duals=new_duals,
    )
    return result, certificate
