"""Proposition 6: network-abstraction reuse on the vehicle head.

Measures the three costs of the abstraction route -- building ``f̂``,
verifying safety *of* ``f̂``, and the syntactic ``f' -> f̂`` transfer check
(the only thing SVbTV pays per tuning step) -- plus the precision/size
trade-off of the merge granularity, and how much fine-tuning the stored
margin absorbs before the transfer check starts rejecting.
"""

import numpy as np
import pytest

from repro.netabs import build_abstraction


@pytest.fixture(scope="module")
def abstraction(vehicle_bundle):
    return build_abstraction(vehicle_bundle.nets[0], vehicle_bundle.din,
                             num_groups=4, margin=0.02)


def test_abstraction_sound_on_tuned_versions(vehicle_bundle, abstraction):
    """Whenever the transfer check accepts a tuned version, the abstract
    networks really do sandwich it."""
    rng = np.random.default_rng(0)
    xs = vehicle_bundle.din.sample(400, rng)
    accepted = 0
    for net in vehicle_bundle.nets[1:]:
        if not abstraction.abstracts(net).holds:
            continue
        accepted += 1
        y = net.forward(xs).reshape(-1)
        assert np.all(abstraction.upper.forward(xs).reshape(-1) >= y - 1e-9)
        assert np.all(abstraction.lower.forward(xs).reshape(-1) <= y + 1e-9)
    assert accepted >= 1


def test_report_group_sweep(vehicle_bundle, capsys):
    """Merged size vs abstract output-bound width per granularity."""
    head = vehicle_bundle.nets[0]
    lines = ["\nNetwork abstraction granularity (vehicle head)",
             f"  {'groups':>6} | {'neurons':>7} | {'bound width':>11}"]
    widths = []
    for groups in (1, 2, 4, 8):
        absn = build_abstraction(head, vehicle_bundle.din, num_groups=groups)
        bounds = absn.output_bounds(vehicle_bundle.din)
        size = absn.abstraction_sizes()["merged"]
        widths.append(float(bounds.widths[0]))
        lines.append(f"  {groups:>6} | {size:>7} | {bounds.widths[0]:>11.4g}")
    with capsys.disabled():
        print("\n".join(lines))
    assert widths == sorted(widths, reverse=True)  # finer = tighter


def test_report_margin_frontier(vehicle_bundle, capsys):
    """How far fine-tuning can drift before the Prop-6 check rejects."""
    head = vehicle_bundle.nets[0]
    lines = ["\nProposition-6 transfer vs tuning magnitude (margin=0.02)",
             "  perturbation  accepted"]
    absn = build_abstraction(head, vehicle_bundle.din, num_groups=4,
                             margin=0.02)
    accepted_small = None
    for scale in (1e-4, 1e-3, 5e-3, 2e-2, 1e-1):
        tuned = head.perturb(scale, np.random.default_rng(7))
        ok = absn.abstracts(tuned).holds
        if accepted_small is None:
            accepted_small = ok
        lines.append(f"  {scale:>11.0e}  {'yes' if ok else 'no'}")
    with capsys.disabled():
        print("\n".join(lines))
    assert accepted_small  # tiny tunes must transfer


def test_benchmark_build(vehicle_bundle, benchmark):
    benchmark.pedantic(
        lambda: build_abstraction(vehicle_bundle.nets[0], vehicle_bundle.din,
                                  num_groups=4, margin=0.02),
        rounds=3, iterations=1)


def test_benchmark_transfer_check(vehicle_bundle, abstraction, benchmark):
    tuned = vehicle_bundle.nets[1]
    benchmark(lambda: abstraction.abstracts(tuned))


def test_benchmark_abstract_output_bounds(vehicle_bundle, abstraction,
                                          benchmark):
    benchmark(lambda: abstraction.output_bounds(vehicle_bundle.din))
