"""Executors: how one claimed job becomes one verdict wire dict.

Both executors speak the wire forms only (Spec JSON in, Verdict JSON
out), so the scheduler never needs to know where the solve happened:

* :class:`InProcessExecutor` -- deserializes and runs the job on the
  :class:`~repro.api.engine.VerificationEngine` inside the worker thread.
  LP solving releases the GIL, so several in-process workers genuinely
  overlap; per-job timeouts are *post-hoc* (threads cannot be killed --
  an overrunning job is failed and its late verdict discarded).
* :class:`SubprocessExecutor` -- ships the job to a fresh
  ``python -m repro verify-spec - --wire`` child over stdin/stdout: the
  exact JSON protocol a remote executor on another machine would speak,
  with real preemption (timeout kills the child) and full memory/fault
  isolation at the cost of interpreter startup per job.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import (
    ExecutorCrashError,
    JobTimeoutError,
    MalformedWireError,
    ServeError,
)

__all__ = ["InProcessExecutor", "SubprocessExecutor", "make_executor"]


class InProcessExecutor:
    """Run jobs on the engine inside the calling (worker) thread.

    ``certs`` (settable, default ``None``) is handed to the engine as its
    certificate provider -- any object with ``cert_get(key)`` /
    ``cert_put(key, cert_json)``, in practice the scheduler's own
    :class:`~repro.serve.store.JobStore`.  Only meaningful when the job
    config's ``certs`` policy is not ``"off"``.
    """

    name = "inprocess"

    def __init__(self, certs=None):
        self.certs = certs

    def execute(self, spec_json: str, config_json: str,
                timeout: Optional[float] = None) -> Dict:
        from repro.api.engine import VerificationEngine
        from repro.api.serialize import config_from_json, verdict_to_dict
        from repro.api.specs import spec_from_json

        spec = spec_from_json(spec_json)
        config = config_from_json(config_json)
        started = time.monotonic()
        verdict = VerificationEngine(config, certs=self.certs).verify(spec)
        if timeout is not None and time.monotonic() - started > timeout:
            # In-process work cannot be preempted; enforce the budget by
            # discarding the late result (never cached, job fails).
            raise JobTimeoutError(
                f"job exceeded its {timeout:g}s budget (in-process "
                "execution cannot be preempted; late verdict discarded)")
        return verdict_to_dict(verdict)


class SubprocessExecutor:
    """Run jobs in a fresh interpreter over the verify-spec wire form.

    The child is spawned in its own session (= its own process group), so
    a timed-out job is reaped *with its descendants*: first SIGTERM to the
    group, then -- after ``kill_grace`` seconds -- SIGKILL.  Without the
    group kill, a wedged HiGHS solve forked below the child would survive
    as an orphan eating a core forever.

    Certificate reuse does not cross the process boundary: the ``certs``
    policy travels in the config wire form, but the child has no provider
    handle, so it solves from scratch (sound, just never warm-started).
    """

    name = "subprocess"

    def __init__(self, python: Optional[str] = None,
                 kill_grace: float = 2.0):
        self.python = python or sys.executable
        if kill_grace < 0:
            raise ServeError(f"kill_grace must be >= 0, got {kill_grace}")
        self.kill_grace = float(kill_grace)

    def _child_env(self) -> Dict[str, str]:
        # The child must import the same repro tree as this process,
        # wherever the server was launched from.
        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = os.environ.copy()
        existing = env.get("PYTHONPATH", "")
        if src_dir not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (src_dir + os.pathsep + existing
                                 if existing else src_dir)
        return env

    def execute(self, spec_json: str, config_json: str,
                timeout: Optional[float] = None) -> Dict:
        bundle = json.dumps({"spec": json.loads(spec_json),
                             "config": json.loads(config_json)},
                            allow_nan=False)
        proc = subprocess.Popen(
            [self.python, "-m", "repro", "verify-spec", "-", "--wire"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=self._child_env(),
            start_new_session=True)
        try:
            out, err = proc.communicate(bundle, timeout=timeout)
        except subprocess.TimeoutExpired:
            self._reap(proc)
            raise JobTimeoutError(
                f"job exceeded its {timeout:g}s budget "
                "(executor subprocess killed)") from None
        # verify-spec exit codes are the *verdict* (0 holds / 1 fails /
        # 2 inconclusive), not health -- but an uncaught exception in the
        # child *also* exits 1 (with an empty stdout), so the real success
        # test is whether a verdict document came back; on failure the
        # child's stderr carries the actual diagnosis.
        try:
            verdict = json.loads(out)
        except json.JSONDecodeError:
            diagnosis = err.strip()[-500:] or "(no stderr)"
            if not out.strip():
                # Nothing came back at all: the child crashed (uncaught
                # exception, OOM kill, signal) before writing a verdict.
                raise ExecutorCrashError(
                    f"executor subprocess exited {proc.returncode} without "
                    f"a verdict document: {diagnosis}") from None
            # Something came back but it is not a verdict document:
            # truncated/garbage stdout from a child that died mid-write.
            raise MalformedWireError(
                f"executor subprocess exited {proc.returncode} with an "
                f"unparseable verdict document "
                f"(stdout starts {out.strip()[:120]!r}): {diagnosis}"
            ) from None
        if not isinstance(verdict, dict):
            raise MalformedWireError(
                "executor subprocess replied with JSON that is not a "
                f"verdict document: {type(verdict).__name__}")
        return verdict

    def _reap(self, proc: subprocess.Popen) -> None:
        """Terminate a timed-out child and its whole process group:
        SIGTERM first (a chance to exit cleanly), SIGKILL to the group
        after ``kill_grace`` seconds, then reap the zombie."""
        def _signal_group(sig) -> None:
            if not hasattr(os, "killpg"):
                return  # no process groups on this platform
            try:
                # The child is its own session leader, so its pid is the
                # process-group id; signalling the group catches any
                # grandchildren a wedged solve may have forked.
                os.killpg(proc.pid, sig)
            except (ProcessLookupError, PermissionError, OSError):
                pass  # already gone, or a platform without process groups

        proc.terminate()
        _signal_group(signal.SIGTERM)
        try:
            proc.communicate(timeout=self.kill_grace)
        except subprocess.TimeoutExpired:
            # It ignored SIGTERM (wedged in native code): no more grace.
            proc.kill()
            _signal_group(signal.SIGKILL)
            proc.communicate()


ExecutorLike = Union[InProcessExecutor, SubprocessExecutor]

_EXECUTORS = {
    InProcessExecutor.name: InProcessExecutor,
    SubprocessExecutor.name: SubprocessExecutor,
}


def make_executor(executor: Union[str, ExecutorLike]) -> ExecutorLike:
    """Resolve an executor name (or pass an instance through).
    ``"remote:URL"`` builds a :class:`~repro.serve.remote.RemoteExecutor`
    shipping jobs to another machine's ``repro serve``."""
    if isinstance(executor, str):
        if executor.startswith("remote:"):
            from repro.serve.remote import RemoteExecutor

            url = executor[len("remote:"):]
            if not url:
                raise ServeError(
                    "remote executor needs a URL: remote:http://host:port")
            return RemoteExecutor(url)
        if executor not in _EXECUTORS:
            raise ServeError(
                f"unknown executor {executor!r}; "
                f"known: {sorted(_EXECUTORS)} or remote:URL")
        return _EXECUTORS[executor]()
    if not hasattr(executor, "execute"):
        raise ServeError(
            f"not an executor: {type(executor).__name__} "
            "(needs an .execute(spec_json, config_json, timeout) method)")
    return executor
