"""DeepPoly-style polyhedral domain with back-substitution.

Implements the abstract domain of Singh et al. (POPL 2019), the
"polyhedron" line of work the paper cites for state abstraction: every
neuron keeps one lower and one upper *relational* affine bound in terms of
the immediately preceding layer, and concrete bounds are obtained by
back-substituting these relations layer by layer all the way to the input
box.  Back-substitution re-associates the linear algebra per query, which
preserves correlations that plain symbolic intervals lose after each ReLU
relaxation -- usually the tightest of the library's one-shot domains.

Transformers:

* affine steps are exact (``y = W x + b`` both as lower and upper bound);
* (leaky-)ReLU steps use the DeepPoly relaxation per unstable neuron with
  pre-activation bounds ``l < 0 < u``: upper bound the chord
  ``λ (x - l) + slope·l`` with ``λ = (u - slope·l)/(u - l)``; lower bound
  the steeper of the two linear pieces (``x`` if ``u >= -l`` else
  ``slope·x``), the classic area-minimising choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ShapeError, UnsupportedLayerError
from repro.domains.box import Box
from repro.nn.layers import LeakyReLU, ReLU
from repro.nn.network import Network

__all__ = ["DeepPolyPropagator"]


@dataclass
class _Step:
    """One relational layer: bounds on its output in terms of its input."""

    low_w: np.ndarray
    low_b: np.ndarray
    up_w: np.ndarray
    up_b: np.ndarray


def _substitute(c_w: np.ndarray, c_b: np.ndarray, step: _Step,
                upper: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Rewrite ``c_w @ x_out + c_b`` over ``x_in`` using the step's bounds.

    For an *upper* query, positive coefficients take the step's upper
    relation and negative ones the lower relation (mirrored for lower).
    """
    pos = np.maximum(c_w, 0.0)
    neg = np.minimum(c_w, 0.0)
    if upper:
        w = pos @ step.up_w + neg @ step.low_w
        b = c_b + pos @ step.up_b + neg @ step.low_b
    else:
        w = pos @ step.low_w + neg @ step.up_w
        b = c_b + pos @ step.low_b + neg @ step.up_b
    return w, b


class DeepPolyPropagator:
    """Network-level DeepPoly analysis."""

    name = "deeppoly"

    # ------------------------------------------------------------- internals
    def _concrete_bounds(self, steps: List[_Step], dim: int,
                         input_box: Box) -> Tuple[np.ndarray, np.ndarray]:
        """Concrete bounds of the last step's outputs via back-substitution."""
        upper_w, upper_b = np.eye(dim), np.zeros(dim)
        lower_w, lower_b = np.eye(dim), np.zeros(dim)
        for step in reversed(steps):
            upper_w, upper_b = _substitute(upper_w, upper_b, step, upper=True)
            lower_w, lower_b = _substitute(lower_w, lower_b, step, upper=False)
        center, radius = input_box.center, input_box.radius
        hi = upper_w @ center + np.abs(upper_w) @ radius + upper_b
        lo = lower_w @ center - np.abs(lower_w) @ radius + lower_b
        return np.minimum(lo, hi), hi

    @staticmethod
    def _affine_step(weight: np.ndarray, bias: np.ndarray) -> _Step:
        return _Step(weight.copy(), bias.copy(), weight.copy(), bias.copy())

    @staticmethod
    def _relu_step(lo: np.ndarray, hi: np.ndarray, slope: float) -> _Step:
        d = lo.size
        low_w = np.zeros((d, d))
        up_w = np.zeros((d, d))
        low_b = np.zeros(d)
        up_b = np.zeros(d)
        for i in range(d):
            l, u = lo[i], hi[i]
            if l >= 0.0:
                low_w[i, i] = up_w[i, i] = 1.0
            elif u <= 0.0:
                low_w[i, i] = up_w[i, i] = slope
            else:
                lam = (u - slope * l) / (u - l)
                up_w[i, i] = lam
                up_b[i] = slope * l - lam * l
                # Area-minimising lower choice between the two pieces.
                low_w[i, i] = 1.0 if u >= -l else slope
        return _Step(low_w, low_b, up_w, up_b)

    # ------------------------------------------------------------------- API
    def propagate_with_preact(self, network: Network,
                              input_box: Box) -> Tuple[List[Box], List[Box]]:
        """Per-block (pre-activation, post-activation) concrete boxes."""
        if input_box.dim != network.input_dim:
            raise ShapeError(
                f"input box dim {input_box.dim} != network input "
                f"{network.input_dim}")
        steps: List[_Step] = []
        pre_boxes: List[Box] = []
        post_boxes: List[Box] = []
        for block in network.blocks():
            steps.append(self._affine_step(block.dense.weight,
                                           block.dense.bias))
            lo, hi = self._concrete_bounds(steps, block.out_dim, input_box)
            pre_boxes.append(Box(lo, hi))
            act = block.activation
            if act is None:
                post_boxes.append(pre_boxes[-1])
                continue
            if isinstance(act, ReLU):
                slope = 0.0
            elif isinstance(act, LeakyReLU):
                slope = act.alpha
            else:
                raise UnsupportedLayerError(
                    f"deeppoly supports ReLU/LeakyReLU, not "
                    f"{type(act).__name__}")
            steps.append(self._relu_step(lo, hi, slope))
            plo, phi = self._concrete_bounds(steps, block.out_dim, input_box)
            # Meet with the activation's own output floor: back-substituted
            # lower relations can dip below what y = max(x, slope*x) ever
            # produces on the known pre-activation range.
            floor = np.where(lo >= 0.0, lo, slope * lo)
            plo = np.maximum(plo, floor)
            phi = np.maximum(phi, plo)
            post_boxes.append(Box(plo, phi))
        return pre_boxes, post_boxes

    def propagate(self, network: Network, input_box: Box) -> List[Box]:
        """Concretised per-block boxes ``[S_1, ..., S_n]``."""
        return self.propagate_with_preact(network, input_box)[1]

    def preactivation_boxes(self, network: Network, input_box: Box) -> List[Box]:
        """Pre-activation bounds (drop-in for the exact encodings)."""
        return self.propagate_with_preact(network, input_box)[0]
