"""Fig. 2 / Equation 2: the paper's worked Proposition 1 example.

Replays the exact numbers printed in the figure:

* box abstraction bounds ``n4`` by ``[0, 12]`` on ``[-1, 1]^2``;
* on the enlarged ``[-1, 1.1]^2`` the box bound degrades to ``[0, 12.4]``,
  so abstraction alone cannot reuse the proof;
* the exact encodings (big-M MILP of Equation 2, and ReLU branch-and-bound)
  prove ``max n4 = 6.2 < 12``, so Proposition 1 applies.

Benchmarked: box propagation, the MILP solve, and the BaB solve.
"""

import numpy as np
import pytest

from repro.domains import Box, output_box
from repro.exact import NetworkEncoding, maximize_output, solve_milp
from repro.nn import fig2_network

ORIGINAL = Box(-np.ones(2), np.ones(2))
ENLARGED = Box(-np.ones(2), np.array([1.1, 1.1]))


@pytest.fixture(scope="module")
def fig2():
    return fig2_network()


def test_box_bound_original_domain(fig2):
    out = output_box(fig2, ORIGINAL, "box")
    np.testing.assert_allclose([out.lower[0], out.upper[0]], [0.0, 12.0])


def test_box_bound_enlarged_domain(fig2):
    out = output_box(fig2, ENLARGED, "box")
    np.testing.assert_allclose(out.upper[0], 12.4)


def test_exact_max_is_6_2(fig2):
    res = maximize_output(fig2, ENLARGED, np.array([1.0]))
    assert res.upper_bound == pytest.approx(6.2, abs=1e-6)


def test_equation2_milp_infeasible_above_12(fig2):
    """The paper encodes ``n4 >= 12`` and asks for feasibility: the MILP
    must be infeasible (max is 6.2)."""
    enc = NetworkEncoding(fig2, ENLARGED)
    system = enc.build_milp()
    # add n4 >= 12 as -n4 <= -12 (sparse-safe row append)
    row = np.zeros(system.num_vars)
    row[enc.output_slice] = -1.0
    constrained = system.with_extra_ub(row, -12.0)
    res = solve_milp(np.zeros(system.num_vars), constrained)
    assert res.status == "infeasible"


def test_benchmark_box_propagation(fig2, benchmark):
    benchmark(lambda: output_box(fig2, ENLARGED, "box"))


def test_benchmark_bab_exact_max(fig2, benchmark):
    benchmark(lambda: maximize_output(fig2, ENLARGED, np.array([1.0])))


def test_benchmark_milp_exact_max(fig2, benchmark):
    enc = NetworkEncoding(fig2, ENLARGED)
    system = enc.build_milp()
    c = enc.output_objective(np.array([1.0]), num_vars=system.num_vars)

    benchmark(lambda: solve_milp(c, system, maximize=True))


def test_report_fig2(fig2, capsys):
    box_orig = output_box(fig2, ORIGINAL, "box")
    box_enl = output_box(fig2, ENLARGED, "box")
    exact = maximize_output(fig2, ENLARGED, np.array([1.0]))
    with capsys.disabled():
        print("\nFig. 2 worked example")
        print(f"  box bound, original domain : n4 in [{box_orig.lower[0]:.1f}, "
              f"{box_orig.upper[0]:.1f}]   (paper: [0, 12])")
        print(f"  box bound, enlarged domain : n4 in [{box_enl.lower[0]:.1f}, "
              f"{box_enl.upper[0]:.1f}] (paper: [0, 12.4])")
        print(f"  exact max (Equation 2)     : {exact.upper_bound:.4g}"
              "          (paper: 6.2 < 12 -> Prop 1 reusable)")
