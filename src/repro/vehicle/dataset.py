"""Auto-labelled datasets: the stand-in for the paper's manual labelling.

The paper trains the waypoint head on a manually labelled set collected on
the race track.  The synthetic substrate knows the true geometry, so labels
come for free: render frames from randomised driving poses and record each
frame's ground-truth ``vout``.  Scenario knobs (brightness drift, wider
pose dispersion) generate the out-of-distribution data that the runtime
monitor later flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.vehicle.camera import Camera
from repro.vehicle.perception import FeatureExtractor
from repro.vehicle.track import Track

__all__ = ["ScenarioConfig", "Dataset", "generate_dataset", "feature_dataset"]


@dataclass
class ScenarioConfig:
    """Data-collection scenario parameters.

    ``brightness`` scales the scene lighting (1.0 = nominal);
    ``lateral_std`` / ``heading_std`` control pose dispersion around the
    centerline.  The *drift* scenarios of the experiments widen these.
    """

    brightness: float = 1.0
    lateral_std: float = 0.08
    heading_std: float = 0.10
    seed: int = 0


@dataclass
class Dataset:
    """Rendered frames ``(N, 3, H, W)`` with labels ``vout (N,)``."""

    frames: np.ndarray
    vout: np.ndarray

    def __len__(self) -> int:
        return self.frames.shape[0]


def generate_dataset(track: Track, camera: Camera, n: int,
                     scenario: Optional[ScenarioConfig] = None) -> Dataset:
    """Render ``n`` labelled frames from randomised poses on ``track``."""
    scenario = scenario or ScenarioConfig()
    rng = np.random.default_rng(scenario.seed)
    _, poses = track.sample_poses(
        n, rng, lateral_std=scenario.lateral_std, heading_std=scenario.heading_std)
    frames = np.empty((n, 3, camera.frame_size, camera.frame_size))
    vout = np.empty(n)
    for i, pose in enumerate(poses):
        rendered = camera.render(track, pose, brightness=scenario.brightness)
        frames[i] = rendered.image
        vout[i] = rendered.vout
    return Dataset(frames=frames, vout=vout)


def feature_dataset(extractor: FeatureExtractor, dataset: Dataset,
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Extract head-training pairs ``(features (N, d), vout (N, 1))``."""
    features = extractor.extract(dataset.frames)
    return features, dataset.vout[:, None]
