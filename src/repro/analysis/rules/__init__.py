"""The rule registry: one instance of every shipped rule.

Order here is presentation order for ``repro lint --list-rules``; the
engine sorts findings by location, so registry order never changes
output diffs.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.core import Rule
from repro.analysis.rules.certs import CertDisciplineRule
from repro.analysis.rules.defaults import NoRestatedDefaultsRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.legacy import NoLegacyEntrypointsRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.precision import Float64SoundnessRule
from repro.analysis.rules.storage import StoreDisciplineRule
from repro.analysis.rules.taxonomy import NoSwallowedTaxonomyRule
from repro.analysis.rules.wire import WireDisciplineRule

__all__ = [
    "ALL_RULES",
    "CertDisciplineRule",
    "DeterminismRule",
    "Float64SoundnessRule",
    "LockDisciplineRule",
    "NoLegacyEntrypointsRule",
    "NoRestatedDefaultsRule",
    "NoSwallowedTaxonomyRule",
    "StoreDisciplineRule",
    "WireDisciplineRule",
]

ALL_RULES: Tuple[Rule, ...] = (
    NoLegacyEntrypointsRule(),
    NoRestatedDefaultsRule(),
    WireDisciplineRule(),
    DeterminismRule(),
    LockDisciplineRule(),
    Float64SoundnessRule(),
    NoSwallowedTaxonomyRule(),
    StoreDisciplineRule(),
    CertDisciplineRule(),
)
