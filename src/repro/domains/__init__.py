"""Abstract domains: boxes, ReluVal-style symbolic intervals, zonotopes --
scalar propagators plus the batched engine vectorizing each over N boxes."""

from repro.domains.box import Box, BoxPropagator, affine_bounds, box_kappa
from repro.domains.batch import (
    BATCHED_PROPAGATORS,
    BatchedBoxPropagator,
    BatchedSymbolicPropagator,
    BatchedZonotopePropagator,
    BoxBatch,
    SymbolicBatch,
    ZonotopeBatch,
    get_batched_propagator,
    phase_clamped_node_bounds,
    phase_clamped_objective_bounds,
    propagate_batch,
    screen_containments,
)
from repro.domains.symbolic import SymbolicInterval, SymbolicPropagator
from repro.domains.zonotope import Zonotope, ZonotopePropagator
from repro.domains.backward import BackwardRefinement, refine_input_box
from repro.domains.deeppoly import DeepPolyPropagator
from repro.domains.propagate import (
    inductive_states,
    PROPAGATORS,
    get_propagator,
    output_box,
    output_box_batch,
    propagate_network,
    propagate_network_batch,
)

__all__ = [
    "BackwardRefinement",
    "BATCHED_PROPAGATORS",
    "BatchedBoxPropagator",
    "BatchedSymbolicPropagator",
    "BatchedZonotopePropagator",
    "Box",
    "BoxBatch",
    "DeepPolyPropagator",
    "inductive_states",
    "refine_input_box",
    "BoxPropagator",
    "PROPAGATORS",
    "SymbolicBatch",
    "SymbolicInterval",
    "SymbolicPropagator",
    "Zonotope",
    "ZonotopeBatch",
    "ZonotopePropagator",
    "affine_bounds",
    "box_kappa",
    "get_batched_propagator",
    "get_propagator",
    "output_box",
    "output_box_batch",
    "phase_clamped_node_bounds",
    "phase_clamped_objective_bounds",
    "propagate_batch",
    "propagate_network",
    "propagate_network_batch",
    "screen_containments",
]
