"""Abstraction-based runtime monitoring of feature-layer values.

Reproduces the monitoring setup of the paper's experiment (Section V) and
its citations [1], [2]: record, over the training/validation data, the
per-neuron min/max of a designated layer (the output of ``Flatten`` in
Fig. 4) plus an additional buffer -- that box is the verified input domain
``Din``.  In operation every frame's feature vector is checked against the
box; out-of-bound observations are logged and accumulated into the enlarged
domain ``Din ∪ Δin`` that triggers the next (incremental) verification task.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import MonitorError
from repro.domains.box import Box
from repro.monitor.events import EnlargementEvent

__all__ = ["BoxMonitor"]


class BoxMonitor:
    """Per-dimension min/max monitor over a feature space."""

    def __init__(self, buffer: float = 0.0,
                 lower_floor: Optional[float] = None):
        """``buffer`` inflates the recorded bounds on every side;
        ``lower_floor`` clamps the lower bounds from below -- set it to 0.0
        when monitoring post-ReLU features, whose true domain is known to be
        non-negative (keeping ``Din`` inside that domain preserves the
        properties downstream analyses rely on, e.g. network-abstraction
        merging of the first layer)."""
        if buffer < 0:
            raise MonitorError(f"buffer must be non-negative, got {buffer}")
        self.buffer = float(buffer)
        self.lower_floor = None if lower_floor is None else float(lower_floor)
        self._din: Optional[Box] = None
        self._observed_low: Optional[np.ndarray] = None
        self._observed_high: Optional[np.ndarray] = None
        self.events: List[EnlargementEvent] = []
        self._step = 0

    # ------------------------------------------------------------ calibration
    def calibrate(self, features: np.ndarray) -> Box:
        """Fit ``Din`` from in-distribution feature vectors ``(N, d)``.

        The recorded box is the observed min/max per neuron, inflated by the
        configured ``buffer`` (the paper's "additional buffers").
        """
        box = Box.from_samples(features, buffer=self.buffer)
        box = self._apply_floor(box)
        self._din = box
        self._observed_low = box.lower.copy()
        self._observed_high = box.upper.copy()
        self.events.clear()
        self._step = 0
        return box

    @property
    def din(self) -> Box:
        """The calibrated input domain."""
        if self._din is None:
            raise MonitorError("monitor not calibrated; call calibrate() first")
        return self._din

    # -------------------------------------------------------------- operation
    def observe(self, feature: np.ndarray) -> bool:
        """Process one feature vector; returns ``True`` when in-bounds.

        Out-of-bound observations extend the running enlargement record and
        append an :class:`EnlargementEvent`.
        """
        din = self.din
        x = np.asarray(feature, dtype=np.float64).reshape(-1)
        if x.size != din.dim:
            raise MonitorError(f"feature dim {x.size} != monitored dim {din.dim}")
        self._step += 1
        inside = din.contains_point(x, tol=0.0)
        if not inside:
            excess = float(np.max(np.maximum(din.lower - x, x - din.upper)))
            dims = np.flatnonzero((x < din.lower) | (x > din.upper))
            self.events.append(EnlargementEvent(
                step=self._step, excess=excess, dimensions=dims.tolist()))
            self._observed_low = np.minimum(self._observed_low, x)
            self._observed_high = np.maximum(self._observed_high, x)
        return inside

    def observe_batch(self, features: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`observe`; returns the per-row in-bound mask."""
        arr = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return np.array([self.observe(row) for row in arr])

    # ---------------------------------------------------------------- results
    @property
    def out_of_bound_count(self) -> int:
        return len(self.events)

    def enlarged_box(self, buffer: Optional[float] = None) -> Box:
        """``Din ∪ Δin``: the calibrated box joined with every out-of-bound
        observation (optionally re-buffered) -- the input domain of the next
        verification problem."""
        din = self.din
        if self._observed_low is None:
            return din
        extra = self.buffer if buffer is None else float(buffer)
        observed = Box(self._observed_low, self._observed_high)
        if self.out_of_bound_count:
            observed = self._apply_floor(observed.inflate(extra))
        return din.union(observed)

    def _apply_floor(self, box: Box) -> Box:
        if self.lower_floor is None:
            return box
        lower = np.maximum(box.lower, self.lower_floor)
        return Box(lower, np.maximum(box.upper, lower))

    def delta_box(self) -> Optional[Box]:
        """Bounding box of the enlargement alone (``None`` if no events)."""
        if not self.out_of_bound_count:
            return None
        return self.enlarged_box()

    def kappa(self, ord: float = 2) -> float:
        """Proposition 3's ``κ`` between ``Din`` and the enlarged domain."""
        from repro.domains.box import box_kappa

        return box_kappa(self.din, self.enlarged_box(), ord=ord)
