"""Sequential feed-forward network and its block structure.

The paper models a DNN as ``f = g_n ∘ ... ∘ g_1`` where each ``g_k`` is an
affine transformation followed by a nonlinearity.  We store layers flat
(``Dense``, ``ReLU``, ...) and expose the paper's view through
:meth:`Network.blocks`: each :class:`Block` is one ``g_k`` (a ``Dense`` plus
an optional activation).  Every verification routine in the library indexes
the network by *block*, so "reuse state abstraction ``S_i``" and "check layer
``g_{i+1}``" translate directly to block indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import LayerError, ShapeError
from repro.nn.layers import (
    ACTIVATION_LAYERS,
    Dense,
    Flatten,
    Layer,
)

__all__ = ["Block", "Network"]


@dataclass
class Block:
    """One paper-layer ``g_k``: an affine map plus an optional activation.

    ``activation`` is ``None`` for a purely linear output layer (common for
    regression heads such as the vehicle waypoint network).
    """

    dense: Dense
    activation: Optional[Layer]

    @property
    def in_dim(self) -> int:
        return self.dense.in_dim

    @property
    def out_dim(self) -> int:
        return self.dense.out_dim_

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = self.dense.forward(x)
        if self.activation is not None:
            y = self.activation.forward(y)
        return y

    def layers(self) -> List[Layer]:
        if self.activation is None:
            return [self.dense]
        return [self.dense, self.activation]


class Network:
    """An ordered sequence of layers forming a feed-forward network.

    Parameters
    ----------
    layers:
        The layer sequence.  Leading ``Flatten`` layers are allowed (they are
        identities on flat input); after optional flattening the network must
        alternate ``Dense`` and activation layers (activations may be
        omitted, e.g. for a linear output block).
    input_dim:
        Dimensionality of the flat input vector.  Required so that shape
        validation and block extraction work without running data through the
        network.
    """

    def __init__(self, layers: Sequence[Layer], input_dim: int):
        if input_dim <= 0:
            raise ShapeError(f"input_dim must be positive, got {input_dim}")
        if not layers:
            raise LayerError("a Network needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.input_dim = int(input_dim)
        self._blocks = self._build_blocks()

    # ------------------------------------------------------------------ build
    def _build_blocks(self) -> List[Block]:
        blocks: List[Block] = []
        i = 0
        dim = self.input_dim
        # Skip (identity) flatten layers at the head.
        while i < len(self.layers) and isinstance(self.layers[i], Flatten):
            i += 1
        while i < len(self.layers):
            layer = self.layers[i]
            if not isinstance(layer, Dense):
                raise LayerError(
                    f"expected Dense at layer index {i}, got {type(layer).__name__}; "
                    "Network blocks must alternate Dense and activation layers"
                )
            dim = layer.out_dim(dim)
            activation: Optional[Layer] = None
            if i + 1 < len(self.layers) and isinstance(self.layers[i + 1], ACTIVATION_LAYERS):
                activation = self.layers[i + 1]
                i += 1
            blocks.append(Block(dense=layer, activation=activation))
            i += 1
        if not blocks:
            raise LayerError("a Network needs at least one Dense block")
        self._output_dim = dim
        return blocks

    # ------------------------------------------------------------- properties
    @property
    def output_dim(self) -> int:
        """Dimensionality of the network output."""
        return self._output_dim

    @property
    def num_blocks(self) -> int:
        """Number of paper-layers ``n`` (affine + activation groups)."""
        return len(self._blocks)

    def blocks(self) -> List[Block]:
        """The paper-layer view ``[g_1, ..., g_n]`` (shared parameters)."""
        return list(self._blocks)

    def block(self, k: int) -> Block:
        """``g_{k+1}`` in paper terms -- zero-based block index ``k``."""
        return self._blocks[k]

    def block_dims(self) -> List[int]:
        """``[d_0, d_1, ..., d_n]``: input dim followed by every block's
        output dim, so ``block_dims()[i+1]`` is the dimension of ``S_{i+1}``."""
        dims = [self.input_dim]
        for blk in self._blocks:
            dims.append(blk.out_dim)
        return dims

    # ------------------------------------------------------------- evaluation
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the network on a sample ``(d,)`` or batch ``(N, d)``."""
        y = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            y = layer.forward(y)
        return y

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def forward_blocks(self, x: np.ndarray, upto: Optional[int] = None) -> np.ndarray:
        """Evaluate the first ``upto`` blocks (all blocks if ``None``).

        ``forward_blocks(x, k)`` computes ``g_k(...g_1(x))`` -- the value
        whose reachable set the state abstraction ``S_k`` over-approximates.
        """
        n = self.num_blocks if upto is None else int(upto)
        if not 0 <= n <= self.num_blocks:
            raise ShapeError(f"upto must be in [0, {self.num_blocks}], got {n}")
        y = np.asarray(x, dtype=np.float64)
        for blk in self._blocks[:n]:
            y = blk.forward(y)
        return y

    def activations(self, x: np.ndarray) -> List[np.ndarray]:
        """Post-activation value after every block: ``[g_1(x), g_2(g_1(x)), ...]``."""
        values = []
        y = np.asarray(x, dtype=np.float64)
        for blk in self._blocks:
            y = blk.forward(y)
            values.append(y)
        return values

    # ------------------------------------------------------------ subnetworks
    def subnetwork(self, start: int, stop: Optional[int] = None) -> "Network":
        """Network computing blocks ``g_{start+1} .. g_{stop}`` (zero-based,
        half-open like slicing).  Shares no parameters with ``self``.

        ``subnetwork(0, 2)`` is the two-layer head used by Proposition 1;
        ``subnetwork(j, j + 1)`` is the single layer ``g_{j+1}`` checked by
        Propositions 2 and 4.
        """
        stop = self.num_blocks if stop is None else int(stop)
        if not 0 <= start < stop <= self.num_blocks:
            raise ShapeError(
                f"invalid block range [{start}, {stop}) for {self.num_blocks} blocks"
            )
        layers: List[Layer] = []
        for blk in self._blocks[start:stop]:
            for layer in blk.layers():
                layers.append(layer.copy())
        in_dim = self.block_dims()[start]
        return Network(layers, input_dim=in_dim)

    # ---------------------------------------------------------------- editing
    def copy(self) -> "Network":
        """Deep copy with freshly-copied parameters."""
        return Network([layer.copy() for layer in self.layers], input_dim=self.input_dim)

    def perturb(self, scale: float, rng: Optional[np.random.Generator] = None,
                frozen_blocks: Iterable[int] = ()) -> "Network":
        """Return a copy whose Dense parameters received Gaussian noise.

        A cheap stand-in for fine-tuning when generating SVbTV test cases;
        ``frozen_blocks`` lists block indices left untouched (the paper
        freezes the convolutional front -- in our flat nets, any block can
        play that role).
        """
        rng = rng or np.random.default_rng()
        frozen = set(int(i) for i in frozen_blocks)
        new = self.copy()
        for k, blk in enumerate(new.blocks()):
            if k in frozen:
                continue
            blk.dense.weight = blk.dense.weight + rng.normal(
                0.0, scale, size=blk.dense.weight.shape
            )
            blk.dense.bias = blk.dense.bias + rng.normal(
                0.0, scale, size=blk.dense.bias.shape
            )
        return new

    def max_weight_delta(self, other: "Network") -> float:
        """Largest absolute parameter difference between two same-shaped nets.

        Useful for asserting that a fine-tuned ``f'`` is a *small* change of
        ``f`` (the setting Propositions 4-6 target).
        """
        if self.num_blocks != other.num_blocks:
            raise ShapeError("networks have different block counts")
        delta = 0.0
        for a, b in zip(self.blocks(), other.blocks()):
            if a.dense.weight.shape != b.dense.weight.shape:
                raise ShapeError("networks have different layer shapes")
            delta = max(delta, float(np.max(np.abs(a.dense.weight - b.dense.weight))))
            delta = max(delta, float(np.max(np.abs(a.dense.bias - b.dense.bias))))
        return delta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "-".join(str(d) for d in self.block_dims())
        acts = ",".join(
            type(b.activation).__name__ if b.activation else "linear"
            for b in self._blocks
        )
        return f"Network({dims}; activations=[{acts}])"
