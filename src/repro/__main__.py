"""``python -m repro`` dispatches to the CLI."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pipe (e.g. ``repro lint --list-rules | head``)
        # closed early; exit quietly instead of dumping a traceback.
        # Re-point stdout at devnull so interpreter shutdown does not
        # trip over the same broken descriptor while flushing.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
