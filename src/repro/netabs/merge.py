"""Merging: the second phase of network abstraction.

Neurons of the categorised split with the same category are merged, layer by
layer, with the saturation rules of Elboher et al.:

* a group that must be **over-approximated** takes the elementwise **max**
  of its members' incoming weights and biases;
* a group that must be **under-approximated** takes the **min**;
* a target's incoming weight from a merged source group is computed on the
  group-summed columns (equivalently: outgoing weights of a group are the
  sums of its members' outgoing weights).

Which rule applies depends on the abstraction *direction*: the **upper**
network over-approximates the output (INC groups take max, DEC take min);
the **lower** network mirrors it.  An optional ``margin`` widens the stored
weights so that small fine-tuning of the concrete network stays inside the
abstraction -- the mechanism that makes Proposition 6 reusable in the
continuous-engineering loop.

Soundness requires the inputs of a merged layer to be non-negative; that is
automatic for layers fed by ReLU outputs and holds for the first hidden
layer iff the input domain is non-negative (checked by the caller, who
passes ``merge_first_layer`` accordingly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ArtifactError
from repro.netabs.classify import DEC, INC, SplitStructure

__all__ = ["UPPER", "LOWER", "LayerGrouping", "MergePlan", "MergedWeights",
           "make_merge_plan", "merge_weights", "group_reduce"]

UPPER = "upper"
LOWER = "lower"


@dataclass
class LayerGrouping:
    """Partition of one split layer's neurons into merge groups.

    ``assignment[j]`` is the group index of split neuron ``j``;
    ``group_cat[g]`` the (shared) category of group ``g``.
    """

    assignment: np.ndarray
    group_cat: np.ndarray

    @property
    def num_groups(self) -> int:
        return self.group_cat.size


@dataclass
class MergePlan:
    """Groupings for every block boundary (entry ``k`` groups the outputs of
    block ``k``; the final boundary -- the network output -- is always
    singleton groups)."""

    groupings: List[LayerGrouping]
    direction: str
    margin: float


@dataclass
class MergedWeights:
    """The abstract network's parameters plus the rule bookkeeping."""

    weights: List[np.ndarray]
    biases: List[np.ndarray]
    #: per boundary: +1 where the group rule is max, -1 where it is min
    rule_sign: List[np.ndarray]


def _rule_signs(categories: np.ndarray, direction: str) -> np.ndarray:
    """+1 (max rule / over-approximate) or -1 (min rule) per group."""
    if direction == UPPER:
        return np.where(categories == INC, 1, -1)
    if direction == LOWER:
        return np.where(categories == INC, -1, 1)
    raise ArtifactError(f"unknown abstraction direction {direction!r}")


def make_merge_plan(structure: SplitStructure, direction: str,
                    num_groups: int, margin: float,
                    split_weights: Sequence[np.ndarray],
                    merge_first_layer: bool) -> MergePlan:
    """Partition each hidden layer into at most ``num_groups`` groups per
    category (INC and DEC separately, so a layer shrinks to <= 2*num_groups
    neurons).

    Grouping heuristic: within a category, neurons are ordered by the norm
    of their incoming split-weight rows and chunked into equally-sized
    groups -- deterministic, and neighbours in that order tend to have
    comparable magnitudes, keeping the max/min envelopes tight.
    """
    if num_groups < 1:
        raise ArtifactError(f"num_groups must be >= 1, got {num_groups}")
    groupings: List[LayerGrouping] = []
    n = len(structure.blocks)
    for k in range(n):
        cats = structure.blocks[k].row_cat
        d = cats.size
        last = k == n - 1
        mergeable = not last and (k > 0 or merge_first_layer)
        if not mergeable:
            groupings.append(LayerGrouping(
                assignment=np.arange(d), group_cat=cats.copy()))
            continue
        row_norms = np.linalg.norm(split_weights[k], axis=1)
        assignment = np.full(d, -1, dtype=int)
        group_cat: List[int] = []
        for cat in (INC, DEC):
            members = np.flatnonzero(cats == cat)
            if members.size == 0:
                continue
            order = members[np.argsort(row_norms[members], kind="stable")]
            chunks = np.array_split(order, min(num_groups, members.size))
            for chunk in chunks:
                gid = len(group_cat)
                group_cat.append(cat)
                assignment[chunk] = gid
        groupings.append(LayerGrouping(
            assignment=assignment, group_cat=np.asarray(group_cat, dtype=int)))
    return MergePlan(groupings=groupings, direction=direction, margin=float(margin))


def group_reduce(w_split: np.ndarray, source_grouping: LayerGrouping) -> np.ndarray:
    """Sum split-weight columns over source groups -> (d_out_split, groups)."""
    g = source_grouping.num_groups
    reduced = np.zeros((w_split.shape[0], g))
    for j, gid in enumerate(source_grouping.assignment):
        reduced[:, gid] += w_split[:, j]
    return reduced


def merge_weights(structure: SplitStructure, plan: MergePlan,
                  split_weights: Sequence[np.ndarray],
                  split_biases: Sequence[np.ndarray],
                  input_grouping: Optional[LayerGrouping] = None) -> MergedWeights:
    """Build the abstract network's weight matrices under ``plan``.

    ``input_grouping`` defaults to singleton groups on the network input
    (the input is never abstracted).  The stored weights include the plan's
    ``margin`` pushed in each rule's direction.
    """
    n = len(structure.blocks)
    weights, biases, rules = [], [], []
    for k in range(n):
        target = plan.groupings[k]
        if k == 0:
            d_in = structure.blocks[0].col_orig.size
            source = input_grouping or LayerGrouping(
                assignment=np.arange(d_in),
                group_cat=np.zeros(d_in, dtype=int),
            )
        else:
            source = plan.groupings[k - 1]
        reduced = group_reduce(split_weights[k], source)
        rule = _rule_signs(target.group_cat, plan.direction)
        g_out = target.num_groups
        # Margin scales with the source-group size: the dominance condition
        # compares against *sums* over source members, so per-edge slack of
        # ``margin`` needs ``margin * |group|`` on the merged weight.
        source_sizes = np.bincount(source.assignment,
                                   minlength=source.num_groups).astype(float)
        w_margin = plan.margin * np.maximum(source_sizes, 1.0)
        w_merged = np.zeros((g_out, reduced.shape[1]))
        b_merged = np.zeros(g_out)
        for gid in range(g_out):
            members = np.flatnonzero(target.assignment == gid)
            if members.size == 0:
                raise ArtifactError(f"empty merge group {gid} at boundary {k}")
            block_rows = reduced[members]
            member_biases = split_biases[k][members]
            if rule[gid] > 0:
                w_merged[gid] = block_rows.max(axis=0) + w_margin
                b_merged[gid] = member_biases.max() + plan.margin
            else:
                w_merged[gid] = block_rows.min(axis=0) - w_margin
                b_merged[gid] = member_biases.min() - plan.margin
        weights.append(w_merged)
        biases.append(b_merged)
        rules.append(rule)
    return MergedWeights(weights=weights, biases=biases, rule_sign=rules)
