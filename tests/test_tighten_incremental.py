"""Tests for LP bound tightening and warm-started branch and bound."""

import numpy as np
import pytest

from repro.domains import Box
from repro.domains.symbolic import SymbolicPropagator
from repro.errors import ArtifactError
from repro.exact import (
    BaBSolver,
    certify_threshold,
    maximize_output,
    prove_with_certificate,
    tighten_preactivation_bounds,
)
from repro.nn import random_relu_network


@pytest.fixture(scope="module")
def net_and_box():
    net = random_relu_network([4, 12, 10, 1], seed=2, weight_scale=0.8)
    return net, Box(-0.6 * np.ones(4), 0.6 * np.ones(4))


class TestTightening:
    def test_never_loosens(self, net_and_box):
        net, box = net_and_box
        before = SymbolicPropagator().preactivation_boxes(net, box)
        after, _ = tighten_preactivation_bounds(net, box)
        for b, a in zip(before, after):
            assert b.contains_box(a)

    def test_sound_against_samples(self, net_and_box, rng):
        net, box = net_and_box
        tightened, _ = tighten_preactivation_bounds(net, box)
        values = box.sample(1500, rng)
        for k, blk in enumerate(net.blocks()):
            z = values @ blk.dense.weight.T + blk.dense.bias
            assert np.all(z >= tightened[k].lower - 1e-7)
            assert np.all(z <= tightened[k].upper + 1e-7)
            values = blk.forward(values)

    def test_reports_progress(self, net_and_box):
        net, box = net_and_box
        _, stats = tighten_preactivation_bounds(net, box)
        assert stats.lp_solves > 0
        assert stats.neurons_tightened > 0
        assert 0.0 <= stats.width_reduction < 1.0

    def test_budget_respected(self, net_and_box):
        net, box = net_and_box
        _, stats = tighten_preactivation_bounds(net, box, max_lp_solves=4)
        assert stats.lp_solves <= 4

    def test_tightened_bounds_preserve_exactness(self, net_and_box):
        """BaB on tightened bounds finds the identical optimum (node counts
        may differ either way -- tightening changes the branching order)."""
        net, box = net_and_box
        from repro.exact.encoding import NetworkEncoding

        plain = BaBSolver(net, box).maximize(np.array([1.0]))
        tightened, _ = tighten_preactivation_bounds(net, box)
        enc = NetworkEncoding(net, box, pre_boxes=tightened)
        warm = BaBSolver(net, box, encoding=enc).maximize(np.array([1.0]))
        assert warm.upper_bound == pytest.approx(plain.upper_bound, abs=1e-5)


class TestBranchCertificate:
    def test_certificate_reproves_same_problem(self, net_and_box):
        net, box = net_and_box
        opt = maximize_output(net, box, np.array([1.0]))
        threshold = opt.upper_bound + 0.1
        res, cert = certify_threshold(net, box, np.array([1.0]), threshold)
        assert cert is not None and cert.num_leaves >= 1
        again = prove_with_certificate(net, box, cert)
        assert again.status in ("threshold_proved", "optimal")
        assert again.upper_bound <= threshold + 1e-6

    def test_warm_start_transfers_to_tuned_network(self, net_and_box):
        net, box = net_and_box
        opt = maximize_output(net, box, np.array([1.0]))
        threshold = opt.upper_bound + 0.5
        _, cert = certify_threshold(net, box, np.array([1.0]), threshold)
        tuned = net.perturb(1e-4, np.random.default_rng(0))
        res = prove_with_certificate(tuned, box, cert)
        assert res.status in ("threshold_proved", "optimal")
        # soundness: brute force respects the re-proved threshold
        vals = tuned.forward(box.sample(3000, np.random.default_rng(1)))
        assert vals.max() <= threshold + 1e-6

    def test_warm_start_transfers_to_enlarged_domain(self, net_and_box):
        net, box = net_and_box
        opt = maximize_output(net, box, np.array([1.0]))
        threshold = opt.upper_bound + 1.0
        _, cert = certify_threshold(net, box, np.array([1.0]), threshold)
        bigger = box.inflate(0.01)
        res = prove_with_certificate(net, bigger, cert)
        if res.status in ("threshold_proved", "optimal"):
            vals = net.forward(bigger.sample(3000, np.random.default_rng(2)))
            assert vals.max() <= threshold + 1e-6

    def test_refutes_when_threshold_violated(self, net_and_box):
        net, box = net_and_box
        opt = maximize_output(net, box, np.array([1.0]))
        _, cert = certify_threshold(net, box, np.array([1.0]),
                                    opt.upper_bound + 0.5)
        res = prove_with_certificate(net, box, cert,
                                     threshold=opt.upper_bound - 0.5)
        assert res.status == "threshold_refuted"

    def test_no_certificate_on_failed_proof(self, net_and_box):
        net, box = net_and_box
        opt = maximize_output(net, box, np.array([1.0]))
        res, cert = certify_threshold(net, box, np.array([1.0]),
                                      opt.upper_bound - 1.0)
        assert cert is None
        assert res.status == "threshold_refuted"

    def test_architecture_mismatch_rejected(self, net_and_box):
        net, box = net_and_box
        opt = maximize_output(net, box, np.array([1.0]))
        _, cert = certify_threshold(net, box, np.array([1.0]),
                                    opt.upper_bound + 1.0)
        other = random_relu_network([4, 6, 1], seed=0)
        with pytest.raises(ArtifactError):
            prove_with_certificate(other, box, cert)

    def test_leaves_cover_space(self, net_and_box, rng):
        """Every input point satisfies some leaf's phase constraints."""
        net, box = net_and_box
        opt = maximize_output(net, box, np.array([1.0]))
        _, cert = certify_threshold(net, box, np.array([1.0]),
                                    opt.upper_bound + 0.05)
        blocks = net.blocks()
        for x in box.sample(200, rng):
            pre = []
            v = x
            for blk in blocks:
                z = blk.dense.forward(v)
                pre.append(z)
                v = blk.forward(v)
            covered = False
            for leaf in cert.leaves:
                ok = True
                for (k, i), phase in leaf.items():
                    z = pre[k][i]
                    if phase == 1 and z < -1e-9:
                        ok = False
                        break
                    if phase == -1 and z > 1e-9:
                        ok = False
                        break
                if ok:
                    covered = True
                    break
            assert covered
