"""Runtime monitoring: feature-space box monitor and enlargement events."""

from repro.monitor.boxmonitor import BoxMonitor
from repro.monitor.events import EnlargementEvent, summarize_events

__all__ = ["BoxMonitor", "EnlargementEvent", "summarize_events"]
