"""Stdlib HTTP front end for the verification service.

A thin JSON/REST skin over :class:`~repro.serve.scheduler
.VerificationService` on ``http.server.ThreadingHTTPServer`` (one thread
per connection; the actual solving happens on the service's own worker
pool, so slow solves never block the listener):

====== =================== ==============================================
Method Path                Meaning
====== =================== ==============================================
POST   ``/jobs``           submit ``{"spec": ..., "config"?, "priority"?,
                           "timeout"?, "deadline"?}``; 201 + the job
                           record; 503 + ``Retry-After`` when the queue
                           is full
GET    ``/jobs/{id}``      one job record (verdict included when done,
                           ``attempt_log`` always)
GET    ``/jobs``           all records (``?state=queued`` filters;
                           verdicts elided for brevity)
DELETE ``/jobs/{id}``      cancel; 200 + resulting state
GET    ``/healthz``        liveness + queue counts + breaker states +
                           certificate-store counters (+ per-shard
                           liveness in coordinator mode)
GET    ``/stats``          full scheduler/store/cache/certificate/
                           resilience stats
POST   ``/workers``        register/heartbeat a worker shard
                           (coordinator mode; body ``{"url": ...}``)
GET    ``/workers``        the shard registry (coordinator mode)
====== =================== ==============================================

Error responses carry a structured JSON payload: ``{"error": <message>,
"error_type": <taxonomy class name>}`` (plus ``retry_after`` seconds on
503).  The exact request/response schemas are specified in
``docs/wire_protocol.md``.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    QueueFullError,
    ReproError,
    SerializationError,
    ServeError,
)

__all__ = ["ServeAPIServer", "serve_http"]

_MAX_BODY = 256 * 1024 * 1024  # a spec carries full float64 weights


class ServeAPIServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to one :class:`VerificationService`.

    ``port=0`` binds an ephemeral port (read ``server_address`` back).
    The server only *routes*; it owns neither the service's workers nor
    its store -- callers start/close the service themselves.
    """

    daemon_threads = True

    def __init__(self, service, host: str = "127.0.0.1", port: int = 8717):
        super().__init__((host, port), _Handler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve_http(service, host: str = "127.0.0.1",
               port: int = 8717) -> ServeAPIServer:
    """Bind (but do not start) the HTTP server for ``service``."""
    return ServeAPIServer(service, host=host, port=port)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------ plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # route logging to the caller's logger, not stderr

    @property
    def service(self):
        return self.server.service

    def _send_json(self, status: int, payload: Dict,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               error_type: Optional[str] = None,
               extra: Optional[Dict] = None,
               headers: Optional[Dict[str, str]] = None) -> None:
        # A rejected request may have an unread body; on a keep-alive
        # connection those bytes would be parsed as the next request
        # line, so error responses always close the connection.
        self.close_connection = True
        payload: Dict = {"error": message}
        if error_type is not None:
            payload["error_type"] = error_type
        if extra:
            payload.update(extra)
        self._send_json(status, payload, headers=headers)

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServeError("request body required")
        if length > _MAX_BODY:
            raise ServeError(f"request body over {_MAX_BODY} bytes")
        raw = self.rfile.read(length)

        def _reject_constant(token):
            # The wire protocol is strict RFC 8259: non-finite floats
            # travel as "inf"/"-inf"/"nan" *strings*, never as the
            # Infinity/NaN tokens Python's json would otherwise accept.
            raise ServeError(
                f"non-standard JSON token {token!r}; encode non-finite "
                'floats as the strings "inf"/"-inf"/"nan"')

        try:
            data = json.loads(raw, parse_constant=_reject_constant)
        except json.JSONDecodeError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") \
                from None
        if not isinstance(data, dict):
            raise ServeError("request body must be a JSON object")
        return data

    def _route(self) -> Tuple[str, Optional[str], Dict]:
        parts = urlsplit(self.path)
        segments = [s for s in parts.path.split("/") if s]
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        if not segments:
            return "", None, query
        if len(segments) == 1:
            return segments[0], None, query
        if len(segments) == 2 and segments[0] == "jobs":
            return "jobs", segments[1], query
        return "/".join(segments), None, query

    # ------------------------------------------------------------ endpoints
    def do_GET(self) -> None:  # noqa: N802 - stdlib contract
        head, job_id, query = self._route()
        if head == "healthz":
            stats = self.service.stats()
            executor_stats = stats["resilience"]["executor"]
            payload = {
                "ok": True,
                "workers": stats["workers"],
                "executor": stats["executor"],
                "executor_available": executor_stats.get("available", True),
                "breakers": {
                    link["name"]: link["breaker"]["state"]
                    for link in executor_stats.get("chain", [])
                },
                "jobs": stats["jobs"],
                "certificates": stats["certificates"],
            }
            if "ring" in executor_stats:  # coordinator: per-shard state
                payload["ring"] = executor_stats["ring"]
                payload["shards"] = {
                    link["name"]: {
                        "alive": link.get("alive", False),
                        "breaker": link["breaker"]["state"],
                    }
                    for link in executor_stats.get("chain", [])
                }
            self._send_json(200, payload)
        elif head == "stats":
            self._send_json(200, self.service.stats())
        elif head == "workers":
            try:
                states = self.service.worker_states()
            except ServeError as exc:
                self._error(404, str(exc))  # not a coordinator
                return
            self._send_json(200, {"workers": states})
        elif head == "jobs" and job_id is not None:
            try:
                record = self.service.job(job_id)
            except ServeError as exc:
                self._error(404, str(exc))  # only "unknown job" raises here
                return
            payload = record.to_public_dict()
            payload["attempt_log"] = [
                attempt.to_public_dict()
                for attempt in self.service.attempt_log(job_id)]
            self._send_json(200, payload)
        elif head == "jobs":
            try:
                limit = query.get("limit")
                records = self.service.jobs(
                    state=query.get("state"),
                    limit=None if limit is None else int(limit))
            except (ServeError, ValueError) as exc:
                self._error(400, str(exc))  # malformed state/limit filter
                return
            self._send_json(200, {
                "jobs": [r.to_public_dict(include_verdict=False)
                         for r in records]})
        else:
            self._error(404, f"unknown path {self.path!r}")

    @staticmethod
    def _job_fields(body: Dict) -> Tuple[int, Optional[float],
                                         Optional[float]]:
        """Validate the scheduling fields (reject junk at the door: a bad
        timeout must fail the submit, not the job hours later)."""
        priority = body.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServeError(
                f"priority must be a JSON integer, got {priority!r}")
        budgets = {}
        for name in ("timeout", "deadline"):
            value = body.get(name)
            if value is not None:
                # Finiteness matters beyond taste: 1e999 parses to inf,
                # which would poison the stored record (strict JSON cannot
                # re-emit it) and mean different things to the two
                # executors.
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool) or value <= 0 \
                        or not math.isfinite(value):
                    raise ServeError(
                        f"{name} must be a positive finite JSON number, "
                        f"got {value!r}")
                value = float(value)
            budgets[name] = value
        return priority, budgets["timeout"], budgets["deadline"]

    def do_POST(self) -> None:  # noqa: N802 - stdlib contract
        head, job_id, _ = self._route()
        if head == "workers" and job_id is None:
            self._register_worker()
            return
        if head != "jobs" or job_id is not None:
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            body = self._read_body()
            if "spec" not in body:
                raise ServeError('a job document needs a "spec" key '
                                 '(see docs/wire_protocol.md)')
            unknown = set(body) - {"spec", "config", "priority", "timeout",
                                   "deadline"}
            if unknown:
                raise ServeError(f"unknown job keys {sorted(unknown)}")
            priority, timeout, deadline = self._job_fields(body)
            record = self.service.submit(
                body["spec"],
                config=body.get("config"),
                priority=priority,
                timeout=timeout,
                deadline=deadline)
        except QueueFullError as exc:
            # Backpressure, not a client mistake: 503 + Retry-After tells
            # a well-behaved client exactly when to come back.
            self._error(503, str(exc), error_type="QueueFullError",
                        extra={"retry_after": exc.retry_after},
                        headers={"Retry-After":
                                 f"{max(exc.retry_after, 0):g}"})
            return
        except (ServeError, SerializationError, ReproError,
                ValueError, TypeError, KeyError) as exc:
            # ValueError/TypeError/KeyError: structurally-plausible specs
            # that still explode during deserialization (ragged weight
            # arrays, wrong scalar kinds) must be a 400, not a dropped
            # connection from a crashed handler.
            self._error(400, f"{type(exc).__name__}: {exc}")
            return
        self._send_json(201, record.to_public_dict())

    def _register_worker(self) -> None:
        """``POST /workers`` -- register (or heartbeat) a worker shard.
        Idempotent by design: a worker's periodic re-registration *is*
        its heartbeat, refreshing the coordinator's liveness TTL."""
        try:
            body = self._read_body()
            url = body.get("url")
            if not isinstance(url, str) or not url:
                raise ServeError(
                    'worker registration needs a "url" string '
                    '(the worker\'s own repro serve endpoint)')
            state = self.service.register_worker(url)
        except ServeError as exc:
            # Either a malformed document or "not a coordinator".
            self._error(400, str(exc))
            return
        self._send_json(200, {"worker": state})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib contract
        head, job_id, _ = self._route()
        if head != "jobs" or job_id is None:
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            state = self.service.cancel(job_id)
        except ServeError as exc:
            self._error(404, str(exc))
            return
        self._send_json(200, {"job_id": job_id, "state": state})
