"""Verdict/config wire serialization: every Verdict type round-trips the
JSON wire form exactly (non-finite bounds included), and the canonical
form strips only run bookkeeping."""

import json

import numpy as np
import pytest

from repro.api import (
    ContainmentSpec,
    MaximizeSpec,
    OutputRangeSpec,
    PropositionSpec,
    ThresholdSpec,
    VerificationEngine,
    VerifyConfig,
    canonical_verdict_json,
    config_from_json,
    config_to_json,
    verdict_from_dict,
    verdict_from_json,
    verdict_to_dict,
    verdict_to_json,
)
from repro.api.verdict import (
    ContainmentVerdict,
    FailedVerdict,
    MaximizeVerdict,
    Provenance,
    RangeVerdict,
    ThresholdVerdict,
)
from repro.core import (
    LipschitzCertificate,
    ProofArtifacts,
    StateAbstractions,
    VerificationProblem,
)
from repro.domains import Box
from repro.errors import SerializationError


def _roundtrip(verdict):
    """Assert the wire form is a fixed point and return the clone."""
    wire = verdict_to_json(verdict)
    clone = verdict_from_json(wire)
    assert type(clone) is type(verdict)
    assert verdict_to_json(clone) == wire
    assert canonical_verdict_json(clone) == canonical_verdict_json(verdict)
    return clone


@pytest.fixture
def engine():
    return VerificationEngine(VerifyConfig())


class TestSolvedVerdictRoundTrips:
    """Round-trips of verdicts produced by real engine runs."""

    def test_maximize(self, engine, fig2, enlarged_box2):
        verdict = engine.verify(MaximizeSpec(
            network=fig2, input_box=enlarged_box2,
            objective=np.array([1.0])))
        clone = _roundtrip(verdict)
        assert clone.result.status == verdict.result.status
        assert clone.result.upper_bound == verdict.result.upper_bound
        assert np.array_equal(clone.result.witness, verdict.result.witness)

    def test_containment(self, engine, fig2, enlarged_box2):
        verdict = engine.verify(ContainmentSpec(
            network=fig2, input_box=enlarged_box2,
            target=Box(-50 * np.ones(1), 50 * np.ones(1))))
        clone = _roundtrip(verdict)
        assert clone.holds is verdict.holds
        assert clone.result.method == verdict.result.method

    def test_containment_counterexample(self, engine, fig2, enlarged_box2):
        verdict = engine.verify(ContainmentSpec(
            network=fig2, input_box=enlarged_box2,
            target=Box(np.array([100.0]), np.array([200.0])),
            method="exact"))
        assert verdict.holds is False
        clone = _roundtrip(verdict)
        assert np.array_equal(clone.counterexample, verdict.counterexample)
        assert clone.violation == verdict.violation

    def test_output_range(self, engine, fig2, enlarged_box2):
        verdict = engine.verify(OutputRangeSpec(network=fig2,
                                                input_box=enlarged_box2))
        clone = _roundtrip(verdict)
        assert np.array_equal(clone.output_range.lower,
                              verdict.output_range.lower)
        assert np.array_equal(clone.output_range.upper,
                              verdict.output_range.upper)

    def test_threshold_with_certificate(self, engine, fig2, enlarged_box2):
        verdict = engine.verify(ThresholdSpec(
            network=fig2, input_box=enlarged_box2,
            objective=np.array([1.0]), threshold=12.0))
        assert verdict.certified
        clone = _roundtrip(verdict)
        assert clone.certificate.num_leaves == verdict.certificate.num_leaves
        assert clone.certificate.block_dims == verdict.certificate.block_dims
        assert clone.certificate.leaves == verdict.certificate.leaves
        assert clone.certificate.compatible_with(fig2)

    def test_proposition(self, engine, fig2, unit_box2, enlarged_box2):
        problem = VerificationProblem(
            fig2, unit_box2, Box(np.array([-12.0]), np.array([12.0])))
        artifacts = ProofArtifacts(
            problem=problem,
            states=StateAbstractions(boxes=[
                Box(np.zeros(3), 8 * np.ones(3)),
                Box(np.array([0.0]), np.array([12.0]))]),
            lipschitz=LipschitzCertificate(ell=20.0),
            states_prove_safety=True,
            original_time=1.0)
        verdict = engine.verify(PropositionSpec(
            kind=3, artifacts=artifacts, enlarged_din=enlarged_box2))
        clone = _roundtrip(verdict)
        assert clone.result.proposition == verdict.result.proposition
        assert len(clone.subproblems) == len(verdict.subproblems)


class TestConstructedVerdictRoundTrips:
    """Hand-built verdicts exercise the corners solves rarely hit."""

    def test_nonfinite_bounds(self):
        from repro.exact.bab import BaBResult

        verdict = MaximizeVerdict(
            spec_type="maximize", holds=None,
            provenance=Provenance(elapsed=0.25, lp_solves=3),
            detail="status=node_limit",
            result=BaBResult(status="node_limit", upper_bound=float("inf"),
                             incumbent=float("-inf"), witness=None,
                             nodes=7, lp_solves=3))
        clone = _roundtrip(verdict)
        assert clone.result.upper_bound == float("inf")
        assert clone.result.incumbent == float("-inf")
        # The wire text itself stays strict RFC 8259: no Infinity tokens.
        wire = verdict_to_json(verdict)
        assert "Infinity" not in wire and '"inf"' in wire

    def test_nonfinite_violation_and_nan(self):
        from repro.exact.verify import ContainmentResult

        verdict = ContainmentVerdict(
            spec_type="containment", holds=None, provenance=Provenance(),
            detail="", result=ContainmentResult(
                holds=None, method="symbolic", violation=float("inf"),
                counterexample=np.array([1.0, float("nan")])))
        clone = _roundtrip(verdict)
        assert clone.result.violation == float("inf")
        assert np.isnan(clone.result.counterexample[1])

    def test_range_with_infinite_box(self):
        verdict = RangeVerdict(
            spec_type="output_range", holds=None, provenance=Provenance(),
            detail="", output_range=Box(np.array([-np.inf, 0.0]),
                                        np.array([np.inf, 1.0])))
        clone = _roundtrip(verdict)
        assert clone.output_range.lower[0] == -np.inf
        assert clone.output_range.upper[0] == np.inf

    def test_failed_verdict(self):
        verdict = FailedVerdict(
            spec_type="containment", holds=None,
            provenance=Provenance(workers=4),
            detail="ShapeError: boom", error="boom",
            error_type="ShapeError")
        clone = _roundtrip(verdict)
        assert clone.error == "boom"
        assert clone.error_type == "ShapeError"

    def test_cached_provenance_flag(self):
        verdict = FailedVerdict(
            spec_type="maximize", holds=None,
            provenance=Provenance(cached=True), detail="")
        clone = _roundtrip(verdict)
        assert clone.provenance.cached is True


class TestCanonicalForm:
    def test_canonical_strips_only_run_bookkeeping(self, engine, fig2,
                                                   enlarged_box2):
        spec = MaximizeSpec(network=fig2, input_box=enlarged_box2,
                            objective=np.array([1.0]))
        first = engine.verify(spec)
        second = engine.verify(spec)
        # Wall clocks differ run to run; the canonical value must not.
        assert first.provenance.elapsed != second.provenance.elapsed
        assert canonical_verdict_json(first) == canonical_verdict_json(second)
        data = json.loads(canonical_verdict_json(first))
        assert "provenance" not in data
        assert data["result"]["upper_bound"] == first.result.upper_bound

    def test_canonical_strips_nested_elapsed(self):
        from repro.exact.verify import ContainmentResult

        verdict = ContainmentVerdict(
            spec_type="containment", holds=True,
            provenance=Provenance(elapsed=1.0), detail="",
            result=ContainmentResult(holds=True, method="exact",
                                     elapsed=123.0))
        data = json.loads(canonical_verdict_json(verdict))
        assert "elapsed" not in data["result"]

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError, match="unknown verdict"):
            verdict_from_dict({"verdict": "nope"})
        with pytest.raises(SerializationError, match="verdict.*tag"):
            verdict_from_dict({"holds": True})

    def test_missing_common_keys_rejected(self):
        # Missing envelope fields surface as SerializationError too, not
        # a raw KeyError (callers catch one error type for wire input).
        with pytest.raises(SerializationError, match="spec_type"):
            verdict_from_dict({"verdict": "failed"})
        with pytest.raises(SerializationError, match="provenance"):
            verdict_from_dict({"verdict": "failed", "spec_type": "x",
                               "holds": None})

    def test_not_a_verdict_rejected(self):
        with pytest.raises(SerializationError, match="not a wire"):
            verdict_to_dict(object())


class TestConfigWire:
    def test_roundtrip(self):
        config = VerifyConfig(workers=3, tol=1e-7, node_tighten=True,
                              frontier_width=9)
        assert config_from_json(config_to_json(config)) == config

    def test_canonical_bytes(self):
        config = VerifyConfig()
        assert config_to_json(config) == config_to_json(VerifyConfig())
        data = json.loads(config_to_json(config))
        assert list(data) == sorted(data)

    def test_unknown_keys_rejected(self):
        with pytest.raises(Exception, match="unknown"):
            config_from_json('{"tol": 1e-6, "warp_speed": true}')

    def test_non_object_rejected(self):
        with pytest.raises(SerializationError, match="object"):
            config_from_json("[1, 2]")
