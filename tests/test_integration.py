"""End-to-end integration test: the paper's full continuous-engineering
loop on a miniature vehicle stack (Section V, shrunk for CI speed).

Train -> verify -> deploy -> monitor flags OOD -> SVuDC -> fine-tune ->
SVbTV -> save/load artifacts -> verify again.
"""

import numpy as np
import pytest

from repro.core import (
    ContinuousVerifier,
    SVbTV,
    SVuDC,
    VerificationProblem,
    load_artifacts,
    save_artifacts,
    verify_from_scratch,
)
from repro.domains import Box
from repro.monitor import BoxMonitor
from repro.nn import TrainConfig, fine_tune, train
from repro.vehicle import (
    Camera,
    DriveConfig,
    Perception,
    PerceptionConfig,
    ScenarioConfig,
    Track,
    VehiclePlatform,
    feature_dataset,
    generate_dataset,
)


@pytest.fixture(scope="module")
def pipeline():
    track = Track(radius=3.0, width=0.6)
    camera = Camera(frame_size=24)
    perception = Perception.build(
        PerceptionConfig(frame_size=24, hidden_dims=(10, 8)))
    data = generate_dataset(track, camera, 250, ScenarioConfig(seed=0))
    x, y = feature_dataset(perception.extractor, data)
    train(perception.head, x, y,
          TrainConfig(epochs=60, learning_rate=3e-3, optimizer="adam"))
    return track, camera, perception, x, y


def test_full_continuous_engineering_loop(pipeline, tmp_path):
    track, camera, perception, x, y = pipeline
    head = perception.head

    # --- original verification problem -----------------------------------
    monitor = BoxMonitor(buffer=0.05)
    din = monitor.calibrate(x)
    # The safety property: the head's output stays in a bounded waypoint
    # band.  As in the paper, the band is wide enough that the layered
    # abstraction can close the proof (plus slack for later enlargement).
    from repro.domains.propagate import inductive_states

    sn = inductive_states(head, din, buffer_rel=0.05)[-1]
    dout = sn.inflate(0.25 * sn.widths.max() + 0.1)
    problem = VerificationProblem(head, din, dout)
    baseline = verify_from_scratch(problem, state_buffer=0.05, rigor="range")
    assert baseline.holds is True
    assert baseline.artifacts.states_prove_safety

    # --- operation: drift produces Delta_in -------------------------------
    platform = VehiclePlatform(track, camera, perception)
    platform.drive(DriveConfig(steps=60, brightness=1.8, disturbance_std=0.8),
                   monitor=monitor)
    assert monitor.out_of_bound_count > 0
    enlarged = monitor.enlarged_box()

    # --- SVuDC -------------------------------------------------------------
    cv = ContinuousVerifier(baseline.artifacts)
    svudc = cv.verify_domain_change(SVuDC(problem, enlarged))
    assert svudc.holds is not None
    if svudc.holds:
        xs = enlarged.sample(1500, np.random.default_rng(0))
        vals = head.forward(xs).reshape(-1)
        assert vals.min() >= dout.lower[0] - 1e-9
        assert vals.max() <= dout.upper[0] + 1e-9

    # --- fine-tune and SVbTV ----------------------------------------------
    tuned = fine_tune(head, x, y, learning_rate=1e-3, epochs=2)
    assert head.max_weight_delta(tuned) < 0.05
    svbtv = cv.verify_new_version(SVbTV(problem, tuned))
    assert svbtv.holds is not None
    if svbtv.holds:
        xs = din.sample(1500, np.random.default_rng(1))
        vals = tuned.forward(xs).reshape(-1)
        assert vals.min() >= dout.lower[0] - 1e-9
        assert vals.max() <= dout.upper[0] + 1e-9

    # --- persistence round trip --------------------------------------------
    path = tmp_path / "artifacts.npz"
    save_artifacts(baseline.artifacts, path)
    loaded = load_artifacts(path)
    cv2 = ContinuousVerifier(loaded)
    again = cv2.verify_new_version(SVbTV(loaded.problem, tuned))
    assert again.holds == svbtv.holds

    # --- incremental must beat from-scratch -------------------------------
    assert svbtv.winning_time < baseline.elapsed
    assert svudc.winning_time < baseline.elapsed


def test_closed_loop_stays_on_track(pipeline):
    track, camera, perception, _, _ = pipeline
    platform = VehiclePlatform(track, camera, perception)
    log = platform.drive(DriveConfig(steps=150))
    assert log.mean_abs_lateral_error < track.width / 2
    feats = log.feature_matrix()
    assert feats.shape[0] == 150
    assert np.all(feats >= 0.0)
