"""ReluVal-style symbolic interval analysis.

This is the abstraction the paper's evaluation uses to build the per-layer
state abstractions (via the ReluVal tool): every neuron carries a *lower*
and an *upper* affine bound expressed over the network's input variables.
Affine layers transform both bounds exactly; ReLU introduces the standard
linear relaxation for unstable neurons.  Concretising the affine bounds over
the input box yields per-neuron intervals -- usually much tighter than plain
interval arithmetic because correlations between neurons are preserved
through the linear parts.

Representation: for a layer with ``d`` neurons over an input of dimension
``m``, the state holds ``low_w (d, m), low_b (d,), up_w (d, m), up_b (d,)``
meaning ``low_w x + low_b  <=  neuron(x)  <=  up_w x + up_b`` for every
``x`` in the input box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ShapeError, UnsupportedLayerError
from repro.domains.box import Box
from repro.nn.layers import LeakyReLU, ReLU
from repro.nn.network import Network

__all__ = ["SymbolicInterval", "SymbolicPropagator"]


def _affine_range(weight: np.ndarray, bias: np.ndarray, box: Box) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise min/max of ``W x + b`` over ``x`` in ``box``."""
    center = weight @ box.center + bias
    radius = np.abs(weight) @ box.radius
    return center - radius, center + radius


@dataclass
class SymbolicInterval:
    """Affine lower/upper bounds of one layer's neurons over an input box."""

    input_box: Box
    low_w: np.ndarray
    low_b: np.ndarray
    up_w: np.ndarray
    up_b: np.ndarray

    @staticmethod
    def identity(box: Box) -> "SymbolicInterval":
        """The input layer's symbolic state: each variable bounds itself."""
        eye = np.eye(box.dim)
        zero = np.zeros(box.dim)
        return SymbolicInterval(box, eye.copy(), zero.copy(), eye.copy(), zero.copy())

    @property
    def dim(self) -> int:
        return self.low_b.size

    def concretize(self) -> Box:
        """Tightest box implied by the affine bounds over the input box."""
        lo, _ = _affine_range(self.low_w, self.low_b, self.input_box)
        _, hi = _affine_range(self.up_w, self.up_b, self.input_box)
        # Relaxations can make the lower bound exceed the upper by rounding
        # noise on stable neurons; clamp to keep the box well-formed.
        return Box.unsafe(np.minimum(lo, hi), hi)

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        box = self.concretize()
        return box.lower, box.upper


class SymbolicPropagator:
    """Network-level symbolic interval propagation (ReluVal style)."""

    name = "symbolic"

    def propagate_block(self, block, state: SymbolicInterval) -> SymbolicInterval:
        state = self._affine(block.dense.weight, block.dense.bias, state)
        act = block.activation
        if act is None:
            return state
        if isinstance(act, ReLU):
            return self._relu(state, slope_neg=0.0)
        if isinstance(act, LeakyReLU):
            return self._relu(state, slope_neg=act.alpha)
        raise UnsupportedLayerError(
            f"symbolic intervals support ReLU/LeakyReLU, not {type(act).__name__}"
        )

    @staticmethod
    def _affine(weight: np.ndarray, bias: np.ndarray,
                state: SymbolicInterval) -> SymbolicInterval:
        """Exact affine transformer: route positive weights through the same
        bound and negative weights through the opposite bound."""
        w_pos = np.maximum(weight, 0.0)
        w_neg = np.minimum(weight, 0.0)
        low_w = w_pos @ state.low_w + w_neg @ state.up_w
        low_b = w_pos @ state.low_b + w_neg @ state.up_b + bias
        up_w = w_pos @ state.up_w + w_neg @ state.low_w
        up_b = w_pos @ state.up_b + w_neg @ state.low_b + bias
        return SymbolicInterval(state.input_box, low_w, low_b, up_w, up_b)

    @staticmethod
    def _relu(state: SymbolicInterval, slope_neg: float) -> SymbolicInterval:
        """(Leaky-)ReLU transformer with per-neuron case split.

        For each neuron, concretise both equations; three cases:

        * definitely inactive (``u <= 0``): output is ``slope_neg * eq``;
        * definitely active (``l >= 0``): equations pass through unchanged;
        * unstable: relax.  The upper equation is scaled by
          ``λ = (u - slope_neg*l) / (u - l)`` and shifted so it dominates
          both linear pieces; the lower equation keeps the sound flat bound
          (``slope_neg * eq`` if its own range stays non-positive, else the
          constant ``min(0, slope_neg * l)``), matching ReluVal's
          concretise-on-instability strategy.
        """
        box = state.input_box
        low_lo, low_hi = _affine_range(state.low_w, state.low_b, box)
        up_lo, up_hi = _affine_range(state.up_w, state.up_b, box)
        lo = low_lo  # guaranteed lower bound of the neuron value
        hi = up_hi   # guaranteed upper bound

        low_w = state.low_w.copy()
        low_b = state.low_b.copy()
        up_w = state.up_w.copy()
        up_b = state.up_b.copy()

        for i in range(state.dim):
            l, u = lo[i], hi[i]
            if u <= 0.0:
                low_w[i] *= slope_neg
                low_b[i] *= slope_neg
                up_w[i] *= slope_neg
                up_b[i] *= slope_neg
            elif l >= 0.0:
                continue
            else:
                # Unstable neuron. Upper equation: chord relaxation of the
                # piecewise map y = max(x, slope_neg * x) over [l, u].
                lam = (u - slope_neg * l) / (u - l)
                mu = u - lam * u  # chord passes through (u, u)
                # The chord must upper-bound the *upper equation's* range;
                # applying it to the upper equation keeps soundness because
                # lam >= slope_neg >= 0 and the chord dominates the function.
                up_w[i] = lam * up_w[i]
                up_b[i] = lam * up_b[i] + mu
                # Lower equation: if the lower equation itself can be
                # positive we lose its symbolic form; fall back to the sound
                # affine bound slope_neg * eq when slope_neg pieces apply,
                # which is <= y everywhere (y >= slope_neg * x and the lower
                # equation under-approximates x).
                low_w[i] *= slope_neg
                low_b[i] *= slope_neg
                if slope_neg == 0.0:
                    low_b[i] = 0.0
        return SymbolicInterval(box, low_w, low_b, up_w, up_b)

    def propagate_states(self, network: Network, input_box: Box) -> List[SymbolicInterval]:
        """Symbolic state after every block."""
        if input_box.dim != network.input_dim:
            raise ShapeError(
                f"input box dim {input_box.dim} != network input {network.input_dim}"
            )
        states = []
        state = SymbolicInterval.identity(input_box)
        for block in network.blocks():
            state = self.propagate_block(block, state)
            states.append(state)
        return states

    def propagate(self, network: Network, input_box: Box) -> List[Box]:
        """Concretised per-block boxes ``[S_1, ..., S_n]`` -- the state
        abstractions the paper stores as proof artifacts."""
        return [s.concretize() for s in self.propagate_states(network, input_box)]

    def preactivation_boxes(self, network: Network, input_box: Box) -> List[Box]:
        """Sound bounds on every block's *pre-activation* values.

        These are the ``[l, u]`` intervals the exact encodings need to decide
        neuron stability and to size the big-M / triangle relaxations.
        """
        if input_box.dim != network.input_dim:
            raise ShapeError(
                f"input box dim {input_box.dim} != network input {network.input_dim}"
            )
        pre_boxes = []
        state = SymbolicInterval.identity(input_box)
        for block in network.blocks():
            pre = self._affine(block.dense.weight, block.dense.bias, state)
            pre_boxes.append(pre.concretize())
            act = block.activation
            if act is None:
                state = pre
            elif isinstance(act, ReLU):
                state = self._relu(pre, slope_neg=0.0)
            elif isinstance(act, LeakyReLU):
                state = self._relu(pre, slope_neg=act.alpha)
            else:
                raise UnsupportedLayerError(
                    f"symbolic intervals support ReLU/LeakyReLU, not {type(act).__name__}"
                )
        return pre_boxes
