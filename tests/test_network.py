"""Unit tests for repro.nn.network: blocks, slicing, evaluation."""

import numpy as np
import pytest

from repro.errors import LayerError, ShapeError
from repro.nn import Dense, Flatten, Network, ReLU, Sigmoid, random_relu_network


class TestBlockStructure:
    def test_blocks_group_dense_and_activation(self, small_net):
        blocks = small_net.blocks()
        assert len(blocks) == 3
        assert blocks[0].activation is not None
        assert blocks[-1].activation is None  # linear output block

    def test_block_dims(self, small_net):
        assert small_net.block_dims() == [3, 16, 8, 2]
        assert small_net.output_dim == 2

    def test_leading_flatten_allowed(self):
        net = Network([Flatten(), Dense(4, 2, rng=np.random.default_rng(0))],
                      input_dim=4)
        assert net.num_blocks == 1
        y = net.forward(np.ones(4))
        assert y.shape == (2,)

    def test_rejects_activation_first(self):
        with pytest.raises(LayerError):
            Network([ReLU(), Dense(2, 2, rng=np.random.default_rng(0))], input_dim=2)

    def test_rejects_empty(self):
        with pytest.raises(LayerError):
            Network([], input_dim=2)

    def test_rejects_bad_input_dim(self):
        with pytest.raises(ShapeError):
            Network([Dense(2, 2, rng=np.random.default_rng(0))], input_dim=0)


class TestEvaluation:
    def test_forward_composes_blocks(self, small_net, rng):
        x = rng.normal(size=3)
        y = x
        for blk in small_net.blocks():
            y = blk.forward(y)
        np.testing.assert_allclose(small_net.forward(x), y)

    def test_forward_blocks_prefix(self, small_net, rng):
        x = rng.normal(size=3)
        v1 = small_net.forward_blocks(x, 1)
        assert v1.shape == (16,)
        v3 = small_net.forward_blocks(x, 3)
        np.testing.assert_allclose(v3, small_net.forward(x))

    def test_activations_list(self, small_net, rng):
        x = rng.normal(size=3)
        acts = small_net.activations(x)
        assert [a.shape[0] for a in acts] == [16, 8, 2]
        np.testing.assert_allclose(acts[-1], small_net.forward(x))

    def test_callable(self, small_net, rng):
        x = rng.normal(size=3)
        np.testing.assert_allclose(small_net(x), small_net.forward(x))

    def test_forward_blocks_range_check(self, small_net):
        with pytest.raises(ShapeError):
            small_net.forward_blocks(np.zeros(3), 5)


class TestSubnetwork:
    def test_subnetwork_composition(self, small_net, rng):
        head = small_net.subnetwork(0, 2)
        tail = small_net.subnetwork(2)
        x = rng.normal(size=3)
        np.testing.assert_allclose(
            tail.forward(head.forward(x)), small_net.forward(x))

    def test_subnetwork_shares_nothing(self, small_net):
        head = small_net.subnetwork(0, 1)
        head.blocks()[0].dense.weight[:] = 0.0
        assert np.any(small_net.blocks()[0].dense.weight != 0.0)

    def test_invalid_range(self, small_net):
        with pytest.raises(ShapeError):
            small_net.subnetwork(2, 2)
        with pytest.raises(ShapeError):
            small_net.subnetwork(-1, 2)


class TestEditing:
    def test_copy_independent(self, small_net, rng):
        clone = small_net.copy()
        x = rng.normal(size=3)
        np.testing.assert_allclose(clone.forward(x), small_net.forward(x))
        clone.blocks()[0].dense.bias += 10.0
        assert not np.allclose(clone.forward(x), small_net.forward(x))

    def test_perturb_moves_weights(self, small_net):
        noisy = small_net.perturb(0.1, np.random.default_rng(0))
        assert small_net.max_weight_delta(noisy) > 0.0

    def test_perturb_respects_frozen_blocks(self, small_net):
        noisy = small_net.perturb(0.1, np.random.default_rng(0), frozen_blocks=[0])
        np.testing.assert_array_equal(
            noisy.blocks()[0].dense.weight, small_net.blocks()[0].dense.weight)

    def test_max_weight_delta_zero_for_copy(self, small_net):
        assert small_net.max_weight_delta(small_net.copy()) == 0.0

    def test_max_weight_delta_shape_mismatch(self, small_net):
        other = random_relu_network([3, 4, 2], seed=0)
        with pytest.raises(ShapeError):
            small_net.max_weight_delta(other)

    def test_sigmoid_output_block(self):
        net = Network(
            [Dense(2, 3, rng=np.random.default_rng(0)), ReLU(),
             Dense(3, 1, rng=np.random.default_rng(1)), Sigmoid()],
            input_dim=2)
        assert net.num_blocks == 2
        assert isinstance(net.blocks()[1].activation, Sigmoid)
