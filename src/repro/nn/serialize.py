"""Save / load networks as a single ``.npz`` file.

Layout: one JSON document (stored under the key ``__structure__``) records
the ordered layer classes and their JSON-safe configs; each layer's arrays
are stored as ``layer{i}.{name}``.  Round-tripping is exact (float64).
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import SerializationError
from repro.nn import layers as layers_mod
from repro.nn.network import Network

__all__ = ["save_network", "load_network", "network_to_bytes", "network_from_bytes"]

_LAYER_CLASSES = {
    name: getattr(layers_mod, name)
    for name in layers_mod.__all__
    if isinstance(getattr(layers_mod, name), type)
}


def _pack(network: Network) -> dict:
    structure = {
        "input_dim": network.input_dim,
        "layers": [
            {"class": type(layer).__name__, "config": layer.config()}
            for layer in network.layers
        ],
    }
    payload = {"__structure__": np.frombuffer(
        json.dumps(structure).encode("utf-8"), dtype=np.uint8)}
    for i, layer in enumerate(network.layers):
        for name, arr in layer.arrays().items():
            payload[f"layer{i}.{name}"] = arr
    return payload


def _unpack(data) -> Network:
    try:
        raw = bytes(data["__structure__"].tobytes())
        structure = json.loads(raw.decode("utf-8"))
    except Exception as exc:
        raise SerializationError(f"missing or corrupt structure record: {exc}") from exc
    layers = []
    for i, spec in enumerate(structure["layers"]):
        cls_name = spec["class"]
        if cls_name not in _LAYER_CLASSES:
            raise SerializationError(f"unknown layer class {cls_name!r}")
        cls = _LAYER_CLASSES[cls_name]
        arrays = {
            key.split(".", 1)[1]: data[key]
            for key in data.files
            if key.startswith(f"layer{i}.")
        }
        layers.append(cls._from_parts(spec["config"], arrays))
    return Network(layers, input_dim=int(structure["input_dim"]))


def save_network(network: Network, path: Union[str, Path]) -> None:
    """Persist ``network`` to ``path`` (conventionally ``*.npz``)."""
    np.savez(str(path), **_pack(network))


def load_network(path: Union[str, Path]) -> Network:
    """Load a network previously written by :func:`save_network`."""
    with np.load(str(path)) as data:
        return _unpack(data)


def network_to_bytes(network: Network) -> bytes:
    """Serialize to an in-memory byte string (for artifact bundles)."""
    buf = io.BytesIO()
    np.savez(buf, **_pack(network))
    return buf.getvalue()


def network_from_bytes(blob: bytes) -> Network:
    """Inverse of :func:`network_to_bytes`."""
    with np.load(io.BytesIO(blob)) as data:
        return _unpack(data)
