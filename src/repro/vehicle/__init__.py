"""Vehicle substrate: track geometry, camera, perception, closed-loop sim."""

from repro.vehicle.track import CarPose, Track
from repro.vehicle.camera import Camera, RenderedFrame
from repro.vehicle.perception import FeatureExtractor, Perception, PerceptionConfig
from repro.vehicle.dataset import (
    Dataset,
    ScenarioConfig,
    feature_dataset,
    generate_dataset,
)
from repro.vehicle.platform import DriveConfig, DriveLog, VehiclePlatform

__all__ = [
    "Camera",
    "CarPose",
    "Dataset",
    "DriveConfig",
    "DriveLog",
    "FeatureExtractor",
    "Perception",
    "PerceptionConfig",
    "RenderedFrame",
    "ScenarioConfig",
    "Track",
    "VehiclePlatform",
    "feature_dataset",
    "generate_dataset",
]
