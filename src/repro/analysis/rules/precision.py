"""``float64-soundness``: certification math stays in double precision.

The exact pipeline's claim is *soundness*: when it says a property
holds, the bound arithmetic proved it.  That proof is carried out in
float64 end to end; a ``float32`` cast inside a certification module
silently shrinks the mantissa under a soundness comparison.  The
ROADMAP's mixed-precision item will eventually let *propagation* drop
precision for speed -- but the gate comparisons never may, so this rule
draws the line now, while the tree is clean, rather than after a
low-precision cast slips into ``exact/``.

Flagged inside ``repro.exact`` and ``repro.core.propositions``: any
reference to ``numpy.float32``/``float16``/``half``/``single``, and the
strings ``"float32"``/``"float16"`` used as ``dtype=``/``astype``
arguments.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

__all__ = ["Float64SoundnessRule"]

_NARROW_ATTRS = frozenset({"float32", "float16", "half", "single"})
_NARROW_STRINGS = frozenset({"float32", "float16", "f4", "f2", "<f4",
                             "<f2"})


class Float64SoundnessRule(Rule):
    name = "float64-soundness"
    description = ("certification modules must not narrow below "
                   "float64")
    scope = ("repro.exact", "repro.core.propositions")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_attribute(self, ctx: ModuleContext,
                         node: ast.Attribute) -> Iterator[Finding]:
        if node.attr not in _NARROW_ATTRS:
            return
        qual = ctx.qualname(node)
        if qual is None or not qual.startswith("numpy."):
            return
        yield self.finding(
            ctx, node,
            f"{qual} in a certification module: soundness comparisons "
            "require float64; keep narrow dtypes out of repro.exact")

    def _check_call(self, ctx: ModuleContext,
                    node: ast.Call) -> Iterator[Finding]:
        # dtype="float32" keyword anywhere, or astype("float32").
        is_astype = isinstance(node.func, ast.Attribute) \
            and node.func.attr == "astype"
        candidates = [kw.value for kw in node.keywords
                      if kw.arg == "dtype"]
        if is_astype and node.args:
            candidates.append(node.args[0])
        for value in candidates:
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, str) \
                    and value.value in _NARROW_STRINGS:
                yield self.finding(
                    ctx, value,
                    f"dtype {value.value!r} in a certification module: "
                    "soundness comparisons require float64")
