"""repro.api: the unified, job-oriented verification API.

Declarative :mod:`Specs <repro.api.specs>` describe *what* to verify; one
:class:`~repro.api.config.VerifyConfig` holds every solver knob; the
:class:`~repro.api.engine.VerificationEngine` executes Specs (singly or
batched on the shared pool) and returns uniform
:class:`~repro.api.verdict.Verdict` objects with provenance.

Quick start::

    import numpy as np
    from repro.api import (ContainmentSpec, VerificationEngine, VerifyConfig)
    from repro.domains import Box
    from repro.nn import random_relu_network

    net = random_relu_network([4, 16, 2], seed=0)
    engine = VerificationEngine(VerifyConfig(workers=4))
    verdict = engine.verify(ContainmentSpec(
        network=net,
        input_box=Box(-np.ones(4), np.ones(4)),
        target=Box(-50 * np.ones(2), 50 * np.ones(2))))
    assert verdict.holds

This ``__init__`` resolves its exports lazily (PEP 562).  That is load-
bearing, not cosmetic: the low-level solver modules (``repro.exact.bab``
and friends) import their keyword defaults from ``repro.api.config``, so
importing this package must not eagerly pull the engine -- which sits
*above* those modules -- back in while they are still initialising.
"""

from __future__ import annotations

_EXPORTS = {
    # config
    "VerifyConfig": "repro.api.config",
    "ServeConfig": "repro.api.config",
    "LegacyEntryPointWarning": "repro.api.config",
    "DEFAULT_CERT_POLICY": "repro.api.config",
    "CERT_POLICIES": "repro.api.config",
    # specs
    "Spec": "repro.api.specs",
    "ContainmentSpec": "repro.api.specs",
    "OutputRangeSpec": "repro.api.specs",
    "ThresholdSpec": "repro.api.specs",
    "MaximizeSpec": "repro.api.specs",
    "PropositionSpec": "repro.api.specs",
    "ContinuousLoopSpec": "repro.api.specs",
    "SPEC_TYPES": "repro.api.specs",
    "spec_to_dict": "repro.api.specs",
    "spec_from_dict": "repro.api.specs",
    "spec_to_json": "repro.api.specs",
    "spec_from_json": "repro.api.specs",
    # wire serialization (the remote-executor JSON forms)
    "config_to_json": "repro.api.serialize",
    "config_from_json": "repro.api.serialize",
    "verdict_to_dict": "repro.api.serialize",
    "verdict_from_dict": "repro.api.serialize",
    "verdict_to_json": "repro.api.serialize",
    "verdict_from_json": "repro.api.serialize",
    "canonical_verdict_json": "repro.api.serialize",
    "verdict_decision_json": "repro.api.serialize",
    "certificate_to_json": "repro.api.serialize",
    "certificate_from_json": "repro.api.serialize",
    # verdicts
    "Provenance": "repro.api.verdict",
    "Verdict": "repro.api.verdict",
    "ContainmentVerdict": "repro.api.verdict",
    "RangeVerdict": "repro.api.verdict",
    "ThresholdVerdict": "repro.api.verdict",
    "MaximizeVerdict": "repro.api.verdict",
    "PropositionVerdict": "repro.api.verdict",
    "ContinuousVerdict": "repro.api.verdict",
    "BaselineVerdict": "repro.api.verdict",
    "FailedVerdict": "repro.api.verdict",
    # engine
    "VerificationEngine": "repro.api.engine",
    "verify": "repro.api.engine",
    "submit": "repro.api.engine",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}") \
            from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
