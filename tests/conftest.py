"""Shared fixtures: small, fast, deterministic networks and domains."""

import numpy as np
import pytest

from repro.domains import Box
from repro.nn import fig2_network, random_relu_network


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def fig2():
    """The paper's Fig. 2 network."""
    return fig2_network()


@pytest.fixture
def unit_box2():
    """[-1, 1]^2: the Fig. 2 original domain."""
    return Box(-np.ones(2), np.ones(2))


@pytest.fixture
def enlarged_box2():
    """[-1, 1.1]^2: the Fig. 2 enlarged domain."""
    return Box(-np.ones(2), np.array([1.1, 1.1]))


@pytest.fixture
def small_net():
    """3-16-8-2 ReLU net with linear output, bounded weights."""
    return random_relu_network([3, 16, 8, 2], seed=7, weight_scale=0.8)


@pytest.fixture
def deep_scalar_net():
    """4-block single-output net used by proposition tests."""
    return random_relu_network([4, 10, 8, 6, 1], seed=3, weight_scale=0.6)


@pytest.fixture
def nonneg_box4():
    return Box(np.zeros(4), 0.8 * np.ones(4))
