"""Unit tests for repro.nn.layers: forward/backward semantics and shapes."""

import numpy as np
import pytest

from repro.errors import LayerError, ShapeError
from repro.nn import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
)


class TestDense:
    def test_forward_matches_matmul(self):
        w = np.array([[1.0, 2.0], [3.0, -4.0], [0.0, 1.0]])
        b = np.array([0.5, -0.5, 0.0])
        layer = Dense(2, 3, weight=w, bias=b)
        x = np.array([1.0, -1.0])
        np.testing.assert_allclose(layer.forward(x), w @ x + b)

    def test_batched_forward(self):
        layer = Dense(3, 2, rng=np.random.default_rng(0))
        xs = np.random.default_rng(1).normal(size=(5, 3))
        ys = layer.forward(xs)
        assert ys.shape == (5, 2)
        np.testing.assert_allclose(ys[2], layer.forward(xs[2]))

    def test_rejects_bad_weight_shape(self):
        with pytest.raises(ShapeError):
            Dense(2, 3, weight=np.zeros((2, 3)))

    def test_rejects_bad_input_dim(self):
        layer = Dense(2, 3, rng=np.random.default_rng(0))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros(4))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(LayerError):
            Dense(0, 3)

    def test_backward_gradients_numerically(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        y, cache = layer.forward(x, return_cache=True)
        grad_out = rng.normal(size=y.shape)
        grad_in, pgrads = layer.backward(grad_out, cache)

        eps = 1e-6
        # d(sum(grad_out * y))/dW numerically
        for i in range(2):
            for j in range(3):
                layer.weight[i, j] += eps
                up = np.sum(grad_out * layer.forward(x))
                layer.weight[i, j] -= 2 * eps
                down = np.sum(grad_out * layer.forward(x))
                layer.weight[i, j] += eps
                np.testing.assert_allclose(
                    pgrads["weight"][i, j], (up - down) / (2 * eps), rtol=1e-5)
        # input gradient
        num_grad_in = np.zeros_like(x)
        for n in range(4):
            for j in range(3):
                xp = x.copy()
                xp[n, j] += eps
                xm = x.copy()
                xm[n, j] -= eps
                num_grad_in[n, j] = (
                    np.sum(grad_out * layer.forward(xp))
                    - np.sum(grad_out * layer.forward(xm))
                ) / (2 * eps)
        np.testing.assert_allclose(grad_in, num_grad_in, rtol=1e-5, atol=1e-8)

    def test_copy_is_deep(self):
        layer = Dense(2, 2, rng=np.random.default_rng(0))
        clone = layer.copy()
        clone.weight[0, 0] += 1.0
        assert layer.weight[0, 0] != clone.weight[0, 0]


class TestActivations:
    @pytest.mark.parametrize("layer,fn", [
        (ReLU(), lambda x: np.maximum(x, 0)),
        (LeakyReLU(0.1), lambda x: np.where(x > 0, x, 0.1 * x)),
        (Tanh(), np.tanh),
    ])
    def test_forward_values(self, layer, fn):
        x = np.linspace(-3, 3, 13)
        np.testing.assert_allclose(layer.forward(x), fn(x))

    def test_sigmoid_range_and_stability(self):
        s = Sigmoid()
        x = np.array([-1000.0, 0.0, 1000.0])
        y = s.forward(x)
        assert np.all((y >= 0) & (y <= 1))
        np.testing.assert_allclose(y[1], 0.5)
        assert np.isfinite(y).all()

    def test_leaky_relu_rejects_bad_alpha(self):
        with pytest.raises(LayerError):
            LeakyReLU(alpha=1.5)

    @pytest.mark.parametrize("layer", [ReLU(), LeakyReLU(0.05), Sigmoid(), Tanh()])
    def test_backward_matches_numeric(self, layer):
        rng = np.random.default_rng(3)
        x = rng.normal(size=7)
        y, cache = layer.forward(x, return_cache=True)
        grad_out = rng.normal(size=y.shape)
        grad_in, pgrads = layer.backward(grad_out, cache)
        assert pgrads == {}
        eps = 1e-6
        num = np.array([
            (np.sum(grad_out * layer.forward(x + eps * e))
             - np.sum(grad_out * layer.forward(x - eps * e))) / (2 * eps)
            for e in np.eye(7)
        ])
        np.testing.assert_allclose(grad_in, num, rtol=1e-4, atol=1e-8)

    def test_shape_preserved(self):
        for layer in (ReLU(), LeakyReLU(), Sigmoid(), Tanh()):
            assert layer.out_dim(17) == 17


class TestFlatten:
    def test_identity_on_vectors(self):
        f = Flatten()
        x = np.arange(6.0)
        np.testing.assert_array_equal(f.forward(x), x)

    def test_flattens_single_image(self):
        f = Flatten()
        x = np.arange(24.0).reshape(2, 3, 4)
        assert f.forward(x).shape == (24,)

    def test_flattens_batch(self):
        f = Flatten()
        x = np.arange(48.0).reshape(2, 2, 3, 4)
        assert f.forward(x).shape == (2, 24)

    def test_backward_restores_shape(self):
        f = Flatten()
        x = np.arange(24.0).reshape(2, 3, 4)
        y, cache = f.forward(x, return_cache=True)
        grad, _ = f.backward(np.ones_like(y), cache)
        assert grad.shape == x.shape


class TestConv2D:
    def test_output_shape(self):
        conv = Conv2D(3, 5, 3, stride=2, rng=np.random.default_rng(0))
        x = np.zeros((3, 11, 11))
        assert conv.forward(x).shape == (5, 5, 5)
        assert conv.out_shape((3, 11, 11)) == (5, 5, 5)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(4)
        conv = Conv2D(2, 3, 3, stride=1, rng=rng)
        x = rng.normal(size=(2, 6, 6))
        y = conv.forward(x)
        # naive reference
        for o in range(3):
            for i in range(4):
                for j in range(4):
                    ref = np.sum(conv.weight[o] * x[:, i:i + 3, j:j + 3]) + conv.bias[o]
                    np.testing.assert_allclose(y[o, i, j], ref)

    def test_rejects_small_input(self):
        conv = Conv2D(1, 1, 5, rng=np.random.default_rng(0))
        with pytest.raises(ShapeError):
            conv.forward(np.zeros((1, 3, 3)))

    def test_backward_is_unsupported(self):
        conv = Conv2D(1, 1, 2, rng=np.random.default_rng(0))
        with pytest.raises(LayerError):
            conv.backward(np.zeros((1, 1, 1)), {})


class TestAvgPool2D:
    def test_pooling_values(self):
        pool = AvgPool2D(2)
        x = np.arange(16.0).reshape(1, 4, 4)
        y = pool.forward(x)
        np.testing.assert_allclose(y[0, 0, 0], np.mean([0, 1, 4, 5]))
        assert y.shape == (1, 2, 2)

    def test_trims_ragged_edges(self):
        pool = AvgPool2D(2)
        x = np.ones((1, 5, 5))
        assert pool.forward(x).shape == (1, 2, 2)

    def test_rejects_pool_larger_than_input(self):
        pool = AvgPool2D(8)
        with pytest.raises(ShapeError):
            pool.forward(np.ones((1, 4, 4)))
