"""Sparse incremental LP kernel: equivalence with the dense builder.

The sparse path (cached COO/CSR base + per-node delta) must produce the
*same feasible set* as the historical dense per-neuron builder -- identical
LP/MILP statuses and optimal values -- across ReLU and LeakyReLU networks,
fully-stable networks (no inequality rows at all), forced-phase deltas, and
the contradictory-phase bugfix.  Plus the solver-side regressions: one
encoding (and one base assembly) per branch-and-bound solve, and the
fingerprint-keyed encoding cache.
"""

import numpy as np
import pytest

from repro.domains import Box
from repro.exact import (
    BaBSolver,
    LinearSystem,
    NetworkEncoding,
    clear_encoding_cache,
    encoding_cache_stats,
    solve_milp,
    solve_system,
)
from repro.nn import Dense, LeakyReLU, Network, ReLU, random_relu_network


def _random_net(dims, seed, weight_scale=1.0, leaky_alpha=None):
    """Random ReLU or LeakyReLU net with a linear output block."""
    rng = np.random.default_rng(seed)
    layers = []
    for i in range(len(dims) - 1):
        din, dout = dims[i], dims[i + 1]
        layers.append(Dense(
            din, dout,
            weight=rng.uniform(-weight_scale, weight_scale, size=(dout, din)),
            bias=rng.uniform(-weight_scale, weight_scale, size=dout)))
        if i < len(dims) - 2:
            layers.append(ReLU() if leaky_alpha is None
                          else LeakyReLU(leaky_alpha))
    return Network(layers, input_dim=dims[0])


def _random_phase_maps(enc, rng, count=4):
    """A few branch-and-bound-style phase maps over the unstable neurons."""
    unstable = enc.unstable_neurons()
    maps = [{}]
    for _ in range(count):
        if not unstable:
            break
        size = int(rng.integers(1, min(len(unstable), 6) + 1))
        picks = rng.choice(len(unstable), size=size, replace=False)
        maps.append({unstable[int(j)]: int(rng.choice((-1, 1)))
                     for j in picks})
    return maps


def _assert_equivalent(enc, phases, objectives):
    dense = enc.build_lp(phases, form="dense")
    sparse = enc.build_lp(phases, form="sparse")
    assert sparse.is_sparse or sparse.a_ub is None and sparse.a_eq is None
    assert not dense.is_sparse
    for c in objectives:
        res_d = solve_system(c, dense)
        res_s = solve_system(c, sparse)
        assert res_d.status == res_s.status
        if res_d.optimal:
            assert res_s.value == pytest.approx(res_d.value, abs=1e-9)


class TestSparseDenseLP:
    @pytest.mark.parametrize("dims,act,seed", [
        ([3, 12, 8, 2], "relu", 0),
        ([4, 10, 10, 3], "relu", 1),
        ([3, 14, 6, 2], "leaky", 2),
        ([2, 8, 8, 8, 1], "leaky", 3),
    ])
    def test_lp_equivalence_random_nets(self, dims, act, seed):
        rng = np.random.default_rng(seed)
        net = _random_net(dims, seed,
                          leaky_alpha=0.1 if act == "leaky" else None)
        box = Box(-np.ones(dims[0]), np.ones(dims[0]))
        enc = NetworkEncoding(net, box)
        objectives = [enc.output_objective(rng.normal(size=dims[-1]))
                      for _ in range(2)]
        for phases in _random_phase_maps(enc, rng):
            _assert_equivalent(enc, phases, objectives)

    def test_lp_matrices_match_exactly(self, fig2, enlarged_box2):
        """Phase-free base: same rows as the dense build, sparsely stored."""
        enc = NetworkEncoding(fig2, enlarged_box2)
        dense = enc.build_lp(form="dense")
        sparse = enc.build_lp(form="sparse")
        np.testing.assert_allclose(sparse.a_eq.toarray(), dense.a_eq)
        np.testing.assert_allclose(sparse.b_eq, dense.b_eq)
        np.testing.assert_allclose(sparse.a_ub.toarray(), dense.a_ub)
        np.testing.assert_allclose(sparse.b_ub, dense.b_ub)
        assert sparse.bounds == dense.bounds
        assert sparse.nnz == dense.nnz

    def test_fully_stable_net_has_no_inequalities(self):
        """All neurons stable: empty ``a_ub`` in both forms."""
        net = Network([
            Dense(2, 2, weight=np.array([[1.0, 0.5], [-0.5, 1.0]]),
                  bias=np.array([4.0, 5.0])),
            ReLU(),
            Dense(2, 1, weight=np.array([[1.0, 1.0]]), bias=np.array([0.0])),
        ], input_dim=2)
        box = Box(-np.ones(2), np.ones(2))
        enc = NetworkEncoding(net, box)
        assert enc.unstable_neurons() == []
        dense = enc.build_lp(form="dense")
        sparse = enc.build_lp(form="sparse")
        assert dense.a_ub is None and sparse.a_ub is None
        c = enc.output_objective(np.array([1.0]))
        assert solve_system(c, sparse).value == \
            pytest.approx(solve_system(c, dense).value, abs=1e-9)

    def test_forced_phase_removes_triangle_rows(self, fig2, enlarged_box2):
        enc = NetworkEncoding(fig2, enlarged_box2)
        base = enc.build_lp(form="sparse")
        forced = enc.build_lp({(0, 0): 1}, form="sparse")
        # 3 triangle rows out, 1 sign row in.
        assert forced.a_ub.shape[0] == base.a_ub.shape[0] - 2
        assert forced.a_eq.shape[0] == base.a_eq.shape[0] + 1

    def test_contradictory_phase_is_infeasible(self):
        """A forced phase fighting static stability must not be silently
        dropped (the historical dense builder took the stable branch)."""
        net = Network([
            Dense(2, 3, weight=np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]),
                  bias=np.array([3.0, -3.0, 0.0])),
            ReLU(),
            Dense(3, 1, weight=np.array([[1.0, 1.0, 1.0]]),
                  bias=np.array([0.0])),
        ], input_dim=2)
        box = Box(-np.ones(2), np.ones(2))
        enc = NetworkEncoding(net, box)
        assert enc.neuron_stability(0, 0) == "active"
        assert enc.neuron_stability(0, 1) == "inactive"
        assert enc.neuron_stability(0, 2) == "unstable"
        c = enc.output_objective(np.array([1.0]))
        for phases in ({(0, 0): -1}, {(0, 1): 1},
                       {(0, 0): -1, (0, 2): 1}):
            for form in ("dense", "sparse"):
                res = solve_system(c, enc.build_lp(phases, form=form))
                assert res.status == "infeasible", (phases, form)
        # Consistent phases on stable neurons remain no-ops.
        for phases in ({(0, 0): 1}, {(0, 1): -1}):
            _assert_equivalent(enc, phases, [c])


class TestSparseDenseMILP:
    @pytest.mark.parametrize("dims,seed", [([3, 8, 2], 0), ([2, 6, 4, 1], 4)])
    def test_milp_equivalence(self, dims, seed):
        net = random_relu_network(dims, seed=seed, weight_scale=1.1)
        box = Box(-np.ones(dims[0]), np.ones(dims[0]))
        enc = NetworkEncoding(net, box)
        dense = enc.build_milp(form="dense")
        sparse = enc.build_milp(form="sparse")
        assert sparse.is_sparse and not dense.is_sparse
        np.testing.assert_array_equal(sparse.integer_mask, dense.integer_mask)
        assert sparse.bounds == dense.bounds
        c = enc.output_objective(np.ones(dims[-1]), num_vars=dense.num_vars)
        res_d = solve_milp(c, dense, maximize=True)
        res_s = solve_milp(c, sparse, maximize=True)
        assert res_d.status == res_s.status
        assert res_s.value == pytest.approx(res_d.value, abs=1e-9)

    def test_milp_matrices_match_exactly(self, fig2, enlarged_box2):
        enc = NetworkEncoding(fig2, enlarged_box2)
        dense = enc.build_milp(form="dense")
        sparse = enc.build_milp(form="sparse")
        np.testing.assert_allclose(sparse.a_eq.toarray(), dense.a_eq)
        np.testing.assert_allclose(sparse.a_ub.toarray(), dense.a_ub)
        np.testing.assert_allclose(sparse.b_ub, dense.b_ub)


class TestLinearSystemHelpers:
    def test_integer_mask_default_normalises(self):
        system = LinearSystem(3, None, None, None, None,
                              [(None, None)] * 3)
        assert system.integer_mask.dtype == bool
        assert not system.integer_mask.any()
        with pytest.raises(Exception):
            LinearSystem(3, None, None, None, None, [(None, None)] * 3,
                         integer_mask=np.zeros(2, dtype=bool))

    def test_nnz_and_is_sparse(self, fig2, enlarged_box2):
        enc = NetworkEncoding(fig2, enlarged_box2)
        sparse = enc.build_lp(form="sparse")
        dense = sparse.to_dense()
        assert sparse.is_sparse and not dense.is_sparse
        assert sparse.nnz == dense.nnz > 0
        assert sparse.num_constraints == dense.num_constraints

    def test_with_extra_ub_both_forms(self, fig2, enlarged_box2):
        enc = NetworkEncoding(fig2, enlarged_box2)
        for system in (enc.build_lp(form="sparse"),
                       enc.build_lp(form="dense")):
            row = np.zeros(system.num_vars)
            row[enc.output_slice] = -1.0
            bigger = system.with_extra_ub(row, -100.0)
            assert bigger.a_ub.shape[0] == system.a_ub.shape[0] + 1
            c = enc.output_objective(np.array([1.0]))
            assert solve_system(c, bigger).status == "infeasible"


class TestEncodingReuse:
    def test_bab_builds_encoding_exactly_once_per_solve(self):
        """The counter hook: one encoding construction and one base
        assembly serve every node of a multi-node search."""
        clear_encoding_cache()
        net = random_relu_network([4, 24, 16, 2], seed=0, weight_scale=1.2)
        box = Box(-np.ones(4), np.ones(4))
        before = NetworkEncoding.builds
        solver = BaBSolver(net, box, node_limit=50)
        result = solver.maximize(np.array([1.0, -0.5]))
        assert NetworkEncoding.builds - before == 1
        assert solver.encoding.base_builds == 1
        assert solver.encoding.lp_builds == result.lp_solves

    def test_for_problem_cache_hits_on_equal_weights(self):
        clear_encoding_cache()
        net = random_relu_network([3, 8, 2], seed=9, weight_scale=0.7)
        twin = net.copy()  # equal weights, different object
        box = Box(-np.ones(3), np.ones(3))
        before = encoding_cache_stats()
        first = NetworkEncoding.for_problem(net, box)
        again = NetworkEncoding.for_problem(net, box)
        from_twin = NetworkEncoding.for_problem(twin, box)
        after = encoding_cache_stats()
        assert first is again is from_twin
        assert after["misses"] - before["misses"] == 1
        assert after["hits"] - before["hits"] == 2

    def test_for_problem_distinguishes_weights_and_boxes(self):
        clear_encoding_cache()
        net = random_relu_network([3, 8, 2], seed=9, weight_scale=0.7)
        box = Box(-np.ones(3), np.ones(3))
        other_box = Box(-np.ones(3), 1.5 * np.ones(3))
        perturbed = net.perturb(0.05, np.random.default_rng(0))
        encodings = {
            id(NetworkEncoding.for_problem(net, box)),
            id(NetworkEncoding.for_problem(net, other_box)),
            id(NetworkEncoding.for_problem(perturbed, box)),
        }
        assert len(encodings) == 3


class TestBaBFormEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bab_identical_across_forms(self, seed):
        """The acceptance gate: sparse incremental deltas change nothing
        about the search -- same verdict, bound (<= 1e-9), nodes, and
        lp_solves as the dense rebuild."""
        net = random_relu_network([4, 16, 12, 2], seed=seed, weight_scale=1.1)
        box = Box(-np.ones(4), np.ones(4))
        c = np.array([1.0, -0.5])
        results = {}
        for form in ("dense", "sparse"):
            solver = BaBSolver(net, box, node_limit=120, lp_form=form,
                               encoding=NetworkEncoding(net, box))
            results[form] = solver.maximize(c)
        dense, sparse = results["dense"], results["sparse"]
        assert sparse.status == dense.status
        assert sparse.nodes == dense.nodes
        assert sparse.lp_solves == dense.lp_solves
        assert sparse.upper_bound == pytest.approx(dense.upper_bound, abs=1e-9)
        assert sparse.incumbent == pytest.approx(dense.incumbent, abs=1e-9)

    def test_node_tighten_stays_sound(self):
        net = random_relu_network([3, 12, 8, 1], seed=4, weight_scale=1.3)
        box = Box(-np.ones(3), np.ones(3))
        plain = BaBSolver(net, box, node_limit=200).maximize(np.ones(1))
        tight = BaBSolver(net, box, node_limit=200,
                          node_tighten=True).maximize(np.ones(1))
        # Tightened node LPs can only shrink upper bounds, never lose the
        # true optimum.
        assert tight.upper_bound <= plain.upper_bound + 1e-9
        if plain.status == tight.status == "optimal":
            assert tight.optimum == pytest.approx(plain.optimum, abs=1e-6)
