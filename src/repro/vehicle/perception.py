"""The perception pipeline of the paper's Fig. 4.

A frozen convolutional feature extractor (standing in for the CIFAR10
transfer-learned convolution front the paper keeps fixed during fine-
tuning) followed by the trainable dense *head* -- the sub-network that is
actually verified.  The extractor ends in ReLU before ``Flatten``, so head
inputs are non-negative: exactly the feature space the runtime monitor
boxes and the input domain `Din` of every verification problem, and the
property that lets network abstraction merge the head's first layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import VehicleError
from repro.nn.builders import regression_head
from repro.nn.layers import AvgPool2D, Conv2D, Flatten, ReLU
from repro.nn.network import Network

__all__ = ["PerceptionConfig", "FeatureExtractor", "Perception"]


@dataclass
class PerceptionConfig:
    """Shapes of the perception stack.

    The default is a laptop-scale stand-in (32x32 frames, 27 features);
    :meth:`paper_scale` returns the 224x224 geometry of the paper.  The
    verified head is ``feature_dim -> hidden_dims -> 1``.
    """

    frame_size: int = 32
    conv_channels: Tuple[int, int] = (4, 3)
    conv_kernels: Tuple[int, int] = (5, 3)
    conv_strides: Tuple[int, int] = (2, 2)
    pool_size: int = 2
    hidden_dims: Sequence[int] = (24, 16)
    #: fixed post-Flatten gain keeping features O(1) (random-He conv outputs
    #: on [0,1] images are tiny; an O(1) feature scale keeps monitor buffers
    #: and verification tolerances meaningful).
    feature_scale: float = 30.0
    seed: int = 7

    @staticmethod
    def paper_scale() -> "PerceptionConfig":
        """224x224 RGB geometry matching the paper's deployed network."""
        return PerceptionConfig(
            frame_size=224,
            conv_channels=(6, 8),
            conv_kernels=(7, 3),
            conv_strides=(4, 2),
            pool_size=4,
            hidden_dims=(64, 32),
            feature_scale=30.0,
            seed=7,
        )


class FeatureExtractor:
    """Frozen convolution front: Conv-ReLU-Pool-Conv-ReLU-Flatten."""

    def __init__(self, config: PerceptionConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        c1, c2 = config.conv_channels
        k1, k2 = config.conv_kernels
        s1, s2 = config.conv_strides
        self.layers = [
            Conv2D(3, c1, k1, stride=s1, rng=rng),
            ReLU(),
            AvgPool2D(config.pool_size),
            Conv2D(c1, c2, k2, stride=s2, rng=rng),
            ReLU(),
            Flatten(),
        ]
        shape = (3, config.frame_size, config.frame_size)
        for layer in self.layers[:-1]:
            if hasattr(layer, "out_shape"):
                shape = layer.out_shape(shape)
        self.feature_shape = shape
        self.feature_dim = int(np.prod(shape))
        if self.feature_dim < 4:
            raise VehicleError(
                f"degenerate feature dim {self.feature_dim}; enlarge the frame"
            )

    def extract(self, frames: np.ndarray) -> np.ndarray:
        """Features for one ``(3, H, W)`` frame or a batch ``(N, 3, H, W)``.

        Output is ``(feature_dim,)`` or ``(N, feature_dim)``, non-negative.
        """
        y = np.asarray(frames, dtype=np.float64)
        for layer in self.layers:
            y = layer.forward(y)
        return y * self.config.feature_scale

    def __call__(self, frames: np.ndarray) -> np.ndarray:
        return self.extract(frames)


@dataclass
class Perception:
    """Extractor + trainable head; ``predict`` maps frames to ``vout``."""

    extractor: FeatureExtractor
    head: Network

    @staticmethod
    def build(config: PerceptionConfig | None = None) -> "Perception":
        config = config or PerceptionConfig()
        extractor = FeatureExtractor(config)
        head = regression_head(extractor.feature_dim, config.hidden_dims,
                               seed=config.seed + 1)
        return Perception(extractor=extractor, head=head)

    def predict(self, frames: np.ndarray) -> np.ndarray:
        """End-to-end ``vout`` prediction, clipped to the valid [0, 1]."""
        features = self.extractor.extract(frames)
        raw = np.atleast_1d(self.head.forward(features)).reshape(-1)
        return np.clip(raw, 0.0, 1.0)

    def with_head(self, head: Network) -> "Perception":
        """Same frozen extractor, different (e.g. fine-tuned) head."""
        return Perception(extractor=self.extractor, head=head)

    def waypoint_pixels(self, frames: np.ndarray) -> List[Tuple[int, int]]:
        """The paper's waypoint reconstruction
        ``(x, y) = (int(S * vout), int(S/3))`` per frame (``S`` = frame size;
        the paper uses 224 and row 75 ≈ 224/3)."""
        size = self.extractor.config.frame_size
        return [(int(size * v), int(size / 3)) for v in self.predict(frames)]
