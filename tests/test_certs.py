"""Delta-verification certificates (PR 9): wire round-trips, validation,
warm-started byte-identical verdicts, soundness under corruption, and the
reuse counters flowing through the continuous loop.

The invariant every test here circles: a certificate is a *hint*.  It may
make re-verification cheaper (and the perturbation tests assert it does);
corrupted, stale, or adversarial payloads may make it slower -- but the
decision must be byte-identical to a from-scratch solve in every case.
"""

import json

import numpy as np
import pytest

from repro.api import (
    ContinuousLoopSpec,
    MaximizeSpec,
    ThresholdSpec,
    VerificationEngine,
    VerifyConfig,
    certificate_from_json,
    certificate_to_json,
    verdict_decision_json,
)
from repro.certs import (
    certificate_key,
    load_certificate,
    structural_fingerprint,
    validate_certificate,
)
from repro.domains import Box
from repro.errors import CertificateError
from repro.nn.builders import random_relu_network


class MemCerts:
    """Minimal in-memory certificate provider (wire strings only)."""

    def __init__(self):
        self.entries = {}
        self.gets = 0

    def cert_get(self, cert_key):
        self.gets += 1
        return self.entries.get(cert_key)

    def cert_put(self, cert_key, cert_json):
        self.entries[cert_key] = cert_json


@pytest.fixture(scope="module")
def threshold_problem():
    """A provable threshold instance with a non-trivial BaB search."""
    net = random_relu_network([3, 10, 6, 1], seed=3)
    box = Box(-np.ones(3), np.ones(3))
    c = np.ones(1)
    opt = VerificationEngine(VerifyConfig()).verify(
        MaximizeSpec(network=net, input_box=box,
                     objective=c)).result.upper_bound
    threshold = opt + 0.1 * abs(opt) + 0.05
    return net, box, c, threshold


def _spec(net, box, c, threshold):
    return ThresholdSpec(network=net, input_box=box, objective=c,
                         threshold=threshold)


def _record(threshold_problem, store, workers=1):
    """Prove once under ``certs='record'``; returns the recorded wire."""
    net, box, c, thr = threshold_problem
    cfg = VerifyConfig(certs="record", workers=workers)
    verdict = VerificationEngine(cfg, certs=store).verify(
        _spec(net, box, c, thr))
    assert verdict.holds is True
    assert len(store.entries) == 1
    return next(iter(store.entries.values()))


class TestWire:
    def test_round_trip_preserves_payload(self, threshold_problem):
        store = MemCerts()
        cert_json = _record(threshold_problem, store)
        cert = certificate_from_json(cert_json)
        again = certificate_from_json(certificate_to_json(cert))
        assert again.structural_fp == cert.structural_fp
        assert again.content_fp == cert.content_fp
        assert again.leaves == cert.leaves
        assert again.leaf_bounds == cert.leaf_bounds
        assert again.leaf_verdicts == cert.leaf_verdicts
        assert again.lp_solves == cert.lp_solves
        assert len(again.leaf_duals) == len(cert.leaf_duals)
        for a, b in zip(again.leaf_duals, cert.leaf_duals):
            if a is None or b is None:
                assert a is b
            else:
                for xa, xb in zip(a, b):
                    np.testing.assert_array_equal(xa, xb)

    def test_duals_survive_the_store(self, threshold_problem):
        store = MemCerts()
        cert = load_certificate(_record(threshold_problem, store))
        assert cert.leaf_duals and any(d is not None
                                       for d in cert.leaf_duals)


class TestValidation:
    def test_garbage_payload_is_certificate_error(self):
        with pytest.raises(CertificateError, match="unreadable"):
            load_certificate("{not json")
        with pytest.raises(CertificateError, match="unreadable"):
            load_certificate(json.dumps({"version": 1}))

    def test_structural_fingerprint_ignores_weights(self, threshold_problem):
        net = threshold_problem[0]
        perturbed = net.perturb(0.01, rng=np.random.default_rng(0))
        assert structural_fingerprint(net) == \
            structural_fingerprint(perturbed)
        other = random_relu_network([3, 9, 6, 1], seed=3)
        assert structural_fingerprint(net) != structural_fingerprint(other)

    def test_weight_change_keeps_key_other_changes_miss(
            self, threshold_problem):
        net, box, c, thr = threshold_problem
        cfg = VerifyConfig()
        key = certificate_key(net, box, c, thr, cfg)
        perturbed = net.perturb(0.01, rng=np.random.default_rng(1))
        assert certificate_key(perturbed, box, c, thr, cfg) == key
        assert certificate_key(net, box, c, thr + 1.0, cfg) != key
        assert certificate_key(net, box, c, thr,
                               cfg.replace(tol=1e-7)) != key
        # The record/reuse policy knob must not move the slot.
        assert certificate_key(net, box, c, thr,
                               cfg.replace(certs="reuse")) == key

    def test_stale_architecture_is_rejected(self, threshold_problem):
        net, box, c, thr = threshold_problem
        store = MemCerts()
        cert = load_certificate(_record(threshold_problem, store))
        other = random_relu_network([3, 9, 6, 1], seed=5)
        with pytest.raises(CertificateError, match="fingerprint"):
            validate_certificate(cert, other, c, thr, VerifyConfig())
        with pytest.raises(CertificateError, match="config"):
            validate_certificate(cert, net, c, thr,
                                 VerifyConfig(tol=1e-7))
        with pytest.raises(CertificateError, match="threshold"):
            validate_certificate(cert, net, c, thr + 1.0, VerifyConfig())

    def test_dual_count_mismatch_is_rejected(self, threshold_problem):
        net, _box, c, thr = threshold_problem
        store = MemCerts()
        cert = load_certificate(_record(threshold_problem, store))
        cert.leaf_duals.append(None)
        with pytest.raises(CertificateError, match="dual"):
            validate_certificate(cert, net, c, thr, VerifyConfig())


class TestWarmStart:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_verdict_byte_identical_to_scratch(self, threshold_problem,
                                               workers):
        net, box, c, thr = threshold_problem
        store = MemCerts()
        rng = np.random.default_rng(7)
        current = net
        recorder = VerificationEngine(
            VerifyConfig(certs="reuse", workers=workers), certs=store)
        for _ in range(3):
            current = current.perturb(0.002, rng=rng)
            spec = _spec(current, box, c, thr)
            warm = recorder.verify(spec)
            cold = VerificationEngine(
                VerifyConfig(workers=workers)).verify(spec)
            assert verdict_decision_json(warm) == \
                verdict_decision_json(cold)

    def test_reuse_saves_lp_solves(self, threshold_problem):
        net, box, c, thr = threshold_problem
        store = MemCerts()
        engine = VerificationEngine(VerifyConfig(certs="reuse"),
                                    certs=store)
        first = engine.verify(_spec(net, box, c, thr))
        assert first.provenance.cert_hit is False
        perturbed = net.perturb(0.002, rng=np.random.default_rng(7))
        warm = engine.verify(_spec(perturbed, box, c, thr))
        assert warm.provenance.cert_hit is True
        assert warm.provenance.nodes_reused > 0
        assert warm.provenance.lp_solves_saved > 0
        assert warm.result.lp_solves < first.result.lp_solves

    def test_policy_off_never_touches_the_store(self, threshold_problem):
        net, box, c, thr = threshold_problem
        store = MemCerts()
        VerificationEngine(VerifyConfig(certs="off"),
                           certs=store).verify(_spec(net, box, c, thr))
        assert store.gets == 0 and store.entries == {}


class TestSoundness:
    def test_corrupted_payload_falls_back_to_scratch(self,
                                                     threshold_problem):
        net, box, c, thr = threshold_problem
        store = MemCerts()
        key = certificate_key(net, box, c, thr,
                              VerifyConfig(certs="reuse"))
        store.entries[key] = "{corrupt"
        engine = VerificationEngine(VerifyConfig(certs="reuse"),
                                    certs=store)
        verdict = engine.verify(_spec(net, box, c, thr))
        cold = VerificationEngine(VerifyConfig()).verify(
            _spec(net, box, c, thr))
        assert verdict.provenance.cert_hit is False
        assert verdict_decision_json(verdict) == verdict_decision_json(cold)
        # The failed reuse re-recorded a *valid* certificate in its place.
        load_certificate(store.entries[key])

    def test_adversarial_duals_cannot_flip_the_verdict(
            self, threshold_problem):
        """Stored multipliers feed a weak-duality bound: ANY values are
        sound, so sabotaging them may cost LPs but never the decision."""
        net, box, c, thr = threshold_problem
        store = MemCerts()
        cert_json = _record(threshold_problem, store)
        key = next(iter(store.entries))
        cert = load_certificate(cert_json)
        rng = np.random.default_rng(0)
        cert.leaf_duals[:] = [
            None if d is None else tuple(
                rng.normal(scale=1e6, size=part.shape) for part in d)
            for d in cert.leaf_duals]
        store.entries[key] = certificate_to_json(cert)
        perturbed = net.perturb(0.002, rng=np.random.default_rng(7))
        warm = VerificationEngine(VerifyConfig(certs="reuse"),
                                  certs=store).verify(
            _spec(perturbed, box, c, thr))
        cold = VerificationEngine(VerifyConfig()).verify(
            _spec(perturbed, box, c, thr))
        assert verdict_decision_json(warm) == verdict_decision_json(cold)

    def test_shrunken_leaf_cover_is_rejected(self, threshold_problem):
        """A certificate whose leaves no longer cover the input region
        must be rejected at validation, not silently half-searched."""
        net, box, c, thr = threshold_problem
        store = MemCerts()
        key_json = _record(threshold_problem, store)
        key = next(iter(store.entries))
        cert = load_certificate(key_json)
        if len(cert.leaves) < 2:
            pytest.skip("frontier collapsed to one leaf")
        del cert.leaves[0]
        del cert.leaf_bounds[0]
        del cert.leaf_verdicts[0]
        del cert.leaf_duals[0]
        store.entries[key] = certificate_to_json(cert)
        warm = VerificationEngine(VerifyConfig(certs="reuse"),
                                  certs=store).verify(
            _spec(net, box, c, thr))
        cold = VerificationEngine(VerifyConfig()).verify(
            _spec(net, box, c, thr))
        assert warm.provenance.cert_hit is False
        assert verdict_decision_json(warm) == verdict_decision_json(cold)


class TestContinuousLoop:
    """The reuse counters ride the continuous path end to end."""

    @pytest.fixture(scope="class")
    def baseline(self):
        from repro.core.problem import VerificationProblem
        from repro.core.verifier import _verify_from_scratch

        net = random_relu_network([3, 8, 6, 2], seed=5)
        din = Box(-np.ones(3), np.ones(3))
        xs = np.random.default_rng(0).uniform(-1, 1, size=(500, 3))
        ys = np.array([net.forward(x) for x in xs])
        dout = Box(ys.min(axis=0) - 2.0, ys.max(axis=0) + 2.0)
        problem = VerificationProblem(net, din, dout)
        outcome = _verify_from_scratch(problem,
                                       config=VerifyConfig(certs="reuse"))
        assert outcome.holds
        return net, problem, outcome.artifacts

    def test_fallback_warm_starts_across_versions(self, baseline):
        from repro.core.continuous import ContinuousVerifier
        from repro.core.problem import SVbTV

        net, problem, artifacts = baseline
        store = MemCerts()
        verifier = ContinuousVerifier(artifacts,
                                      config=VerifyConfig(certs="reuse"),
                                      certs=store)
        rng = np.random.default_rng(11)
        current = net.perturb(0.002, rng=rng)
        first = verifier.verify_new_version(
            SVbTV(problem, current, None), strategies=(), with_fixing=False)
        assert first.holds is True and first.nodes_reused == 0
        current = current.perturb(0.002, rng=rng)
        second = verifier.verify_new_version(
            SVbTV(problem, current, None), strategies=(), with_fixing=False)
        assert second.holds is True
        assert second.nodes_reused > 0
        assert second.lp_solves_saved > 0

    def test_spec_path_reports_reuse_in_provenance(self, baseline):
        net, _problem, artifacts = baseline
        store = MemCerts()
        engine = VerificationEngine(VerifyConfig(certs="reuse"),
                                    certs=store)
        rng = np.random.default_rng(11)
        current = net.perturb(0.002, rng=rng)
        spec = ContinuousLoopSpec(artifacts=artifacts, new_network=current,
                                  strategies=(), with_fixing=False)
        first = engine.verify(spec)
        assert first.holds is True
        current = current.perturb(0.002, rng=rng)
        second = engine.verify(
            ContinuousLoopSpec(artifacts=artifacts, new_network=current,
                               strategies=(), with_fixing=False))
        assert second.holds is True
        assert second.provenance.nodes_reused > 0
        assert second.provenance.lp_solves_saved > 0
        assert second.provenance.cert_hit is True
        assert second.result.nodes_reused == second.provenance.nodes_reused

    def test_loop_summary_prints_reuse(self):
        from repro.core.loop import EngineeringLoop, LoopStep
        from repro.core.problem import VerificationProblem

        net = random_relu_network([2, 3, 1], seed=0)
        problem = VerificationProblem(net, Box(-np.ones(2), np.ones(2)),
                                      Box(-np.ones(1) * 99, np.ones(1) * 99))
        loop = EngineeringLoop(problem)
        loop.history.append(LoopStep(kind="version", holds=True,
                                     strategy="full re-verification",
                                     elapsed=0.1, reverified=True,
                                     nodes_reused=4, lp_solves_saved=7))
        text = loop.summary()
        assert "reused 4 nodes" in text
        assert "saved 7 LPs" in text
        assert "certificate reuse saved 7 LP solves" in text
