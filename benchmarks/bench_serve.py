"""The repro.serve service: submit throughput, latency, cache speedup.

Four questions about the asynchronous verification service (PR 5):

1. *Service overhead* -- a job travels submit -> store -> claim ->
   executor -> store -> wait; how much end-to-end latency does that add
   over a direct ``engine.verify`` on the same spec (measured on the fig2
   network, where the solve is microseconds: the worst case for relative
   overhead)?
2. *Submit throughput* -- distinct jobs drained per second at several
   service worker counts (fresh in-memory store per count, so the verdict
   cache never short-circuits the measurement).
3. *Cache-hit speedup* -- resubmitting an identical ``(spec, config)``
   must be answered from the verdict cache: no new solve, provenance
   marked ``cached``, and typically orders of magnitude faster.
4. *HTTP identity* -- a spec submitted over a real HTTP socket must yield
   the canonical verdict byte string of the direct engine call (asserted,
   not just reported).

A fifth, opt-in question (PR 7): *fleet throughput* -- ``--workers N``
boots N real worker processes plus an in-process consistent-hash
coordinator (:class:`~repro.serve.remote.ShardRouter`), drains the same
distinct-job bag through fleets of size 1 and N, and reports submit
throughput per fleet plus per-shard job counts -- gating byte-identical
verdicts and zero lost jobs, reporting (not gating) the speedup.

Run standalone for the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_serve.py [output.json] [--smoke]
    PYTHONPATH=src python benchmarks/bench_serve.py --workers 2 [--smoke]
"""

import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone: make src/ and repo root importable
    _ROOT = Path(__file__).resolve().parent.parent
    for entry in (str(_ROOT / "src"), str(_ROOT)):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from repro.api import (
    MaximizeSpec,
    VerificationEngine,
    VerifyConfig,
    canonical_verdict_json,
)
from repro.domains import Box
from repro.nn import fig2_network, random_relu_network
from repro.serve import ServeClient, VerificationService, serve_http

from benchmarks.common import emit_json

LATENCY_CALLS = 60
SMOKE_LATENCY_CALLS = 10
THROUGHPUT_JOBS = 24
SMOKE_THROUGHPUT_JOBS = 8
WORKER_COUNTS = (1, 2, 4)
CACHE_CALLS = 50
SMOKE_CACHE_CALLS = 10


def _fig2_spec(scale=1.0):
    return MaximizeSpec(network=fig2_network(),
                        input_box=Box(-np.ones(2), np.array([1.1, 1.1])),
                        objective=np.array([float(scale)]))


def _distinct_specs(n, seed=11):
    """n distinct jobs over one small network (distinct objectives, so
    the verdict cache never collapses the workload)."""
    network = random_relu_network([4, 12, 8, 2], seed=seed, weight_scale=0.4)
    box = Box(-np.ones(4), np.ones(4))
    rng = np.random.default_rng(seed)
    return [MaximizeSpec(network=network, input_box=box,
                         objective=rng.normal(size=2))
            for _ in range(n)]


def bench_service_latency(calls=LATENCY_CALLS):
    """End-to-end submit->wait latency vs a direct engine.verify call."""
    spec_factory = [_fig2_spec(1.0 + i * 1e-9) for i in range(calls)]
    engine = VerificationEngine(VerifyConfig())
    engine.verify(spec_factory[0])  # warm the encoding cache

    direct_s = []
    for spec in spec_factory:
        start = time.perf_counter()
        engine.verify(spec)
        direct_s.append(time.perf_counter() - start)

    served_s = []
    with VerificationService(workers=1) as service:
        for spec in spec_factory:
            start = time.perf_counter()
            job = service.submit(spec)
            service.wait(job.job_id, timeout=120)
            served_s.append(time.perf_counter() - start)
    direct_med = sorted(direct_s)[len(direct_s) // 2]
    served_med = sorted(served_s)[len(served_s) // 2]
    return {
        "calls": calls,
        "direct_median_ms": direct_med * 1e3,
        "served_median_ms": served_med * 1e3,
        "overhead_ms": (served_med - direct_med) * 1e3,
    }


def bench_submit_throughput(jobs=THROUGHPUT_JOBS):
    """Distinct jobs drained per second at each service worker count."""
    specs = _distinct_specs(jobs)
    engine = VerificationEngine(VerifyConfig())
    reference = [canonical_verdict_json(engine.verify(s)) for s in specs]
    sweep = []
    for workers in WORKER_COUNTS:
        with VerificationService(workers=workers) as service:
            start = time.perf_counter()
            ids = [service.submit(spec).job_id for spec in specs]
            for job_id in ids:
                service.wait(job_id, timeout=300)
            elapsed = time.perf_counter() - start
            served = [canonical_verdict_json(service.verdict(j))
                      for j in ids]
            assert served == reference, (
                f"served verdicts diverged at workers={workers}")
        sweep.append({
            "workers": workers,
            "jobs": jobs,
            "elapsed_s": elapsed,
            "jobs_per_s": jobs / elapsed,
        })
    base = sweep[0]["elapsed_s"]
    for row in sweep:
        row["speedup_vs_one_worker"] = base / row["elapsed_s"]
    return {"sweep": sweep, "verdicts_identical": True}


def bench_cache_hit_speedup(calls=CACHE_CALLS):
    """Resubmission of an identical request vs its first (solved) run."""
    spec = _fig2_spec()
    with VerificationService(workers=1) as service:
        start = time.perf_counter()
        job = service.submit(spec)
        service.wait(job.job_id, timeout=120)
        miss_s = time.perf_counter() - start

        hit_s = []
        for _ in range(calls):
            start = time.perf_counter()
            record = service.submit(spec)
            hit_s.append(time.perf_counter() - start)
            assert record.cache_hit, "resubmission missed the verdict cache"
        hit_med = sorted(hit_s)[len(hit_s) // 2]
        verdict = service.verdict(record.job_id)
        assert verdict.provenance.cached is True
        executed = service.stats()["executed_jobs"]
    assert executed == 1, f"cache hits re-executed ({executed} solves)"
    return {
        "calls": calls,
        "miss_ms": miss_s * 1e3,
        "hit_median_ms": hit_med * 1e3,
        "speedup": miss_s / hit_med,
        "no_new_solves": True,
    }


def bench_http_identity():
    """One spec over a real HTTP socket == the direct engine call."""
    spec = _fig2_spec()
    direct = canonical_verdict_json(
        VerificationEngine(VerifyConfig()).verify(spec))
    service = VerificationService(workers=1).start()
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServeClient(server.url)
        start = time.perf_counter()
        job = client.submit(spec)
        client.wait(job["job_id"], timeout=120)
        elapsed = time.perf_counter() - start
        served = canonical_verdict_json(client.verdict(job["job_id"]))
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    assert served == direct, "HTTP verdict diverged from direct engine call"
    return {"http_roundtrip_ms": elapsed * 1e3, "byte_identical": True}


# ------------------------------------------------------- fleet throughput

FLEET_JOBS = 24
SMOKE_FLEET_JOBS = 8


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_worker(port, db_path):
    src_dir = str(Path(__file__).resolve().parent.parent / "src")
    env = os.environ.copy()
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--db", str(db_path), "--service-workers", "2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _await_healthy(url, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if ServeClient(url, timeout=1.0).health().get("ok"):
                return
        except Exception:
            time.sleep(0.1)
    raise AssertionError(f"worker at {url} never became healthy")


def _drain_through_fleet(n_workers, specs, reference, tmp_dir):
    """Boot n real worker processes + an in-process coordinator, drain
    the job bag, and return throughput + per-shard counts."""
    from repro.serve import ShardRouter

    ports = [_free_port() for _ in range(n_workers)]
    urls = [f"http://127.0.0.1:{port}" for port in ports]
    procs = [_spawn_worker(port, Path(tmp_dir) / f"w{port}.sqlite")
             for port in ports]
    router = None
    service = None
    try:
        for url in urls:
            _await_healthy(url)
        router = ShardRouter(urls)
        router.check_now()
        service = VerificationService(store=":memory:", executor=router,
                                      workers=2 * n_workers)
        service.start()
        start = time.perf_counter()
        ids = [service.submit(spec).job_id for spec in specs]
        for job_id in ids:
            record = service.wait(job_id, timeout=600)
            assert record.state == "done", (
                f"job {job_id} lost to the fleet: "
                f"{record.state}: {record.error}")
        elapsed = time.perf_counter() - start
        served = [canonical_verdict_json(service.verdict(j)) for j in ids]
        assert served == reference, (
            f"fleet verdicts diverged at {n_workers} workers")
        per_shard = {
            link["name"]: {
                "jobs_ok": link["successes"],
                "jobs_per_s": link["successes"] / elapsed,
            }
            for link in router.stats()["chain"]}
        assert sum(s["jobs_ok"] for s in per_shard.values()) == len(specs)
    finally:
        if service is not None:
            service.close()
        if router is not None:
            router.close()
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
    return {
        "workers": n_workers,
        "jobs": len(specs),
        "elapsed_s": elapsed,
        "jobs_per_s": len(specs) / elapsed,
        "shards": per_shard,
    }


def bench_fleet_throughput(n_workers, jobs=FLEET_JOBS):
    """Submit throughput through real worker fleets of size 1 and N."""
    specs = _distinct_specs(jobs)
    engine = VerificationEngine(VerifyConfig())
    reference = [canonical_verdict_json(engine.verify(s)) for s in specs]
    sweep = []
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp_dir:
        for size in sorted({1, n_workers}):
            sweep.append(_drain_through_fleet(size, specs, reference,
                                              tmp_dir))
    base = sweep[0]["elapsed_s"]
    for row in sweep:
        row["speedup_vs_one_worker"] = base / row["elapsed_s"]
    return {"sweep": sweep, "verdicts_identical": True,
            "jobs_lost": 0}


def main(argv):
    smoke = "--smoke" in argv
    argv = [a for a in argv if a != "--smoke"]
    if "--workers" in argv:
        index = argv.index("--workers")
        n_workers = int(argv[index + 1])
        del argv[index:index + 2]
        out = argv[0] if argv else None
        results = {
            "smoke": smoke,
            "cpu_count": os.cpu_count(),
            "fleet_throughput": bench_fleet_throughput(
                n_workers,
                SMOKE_FLEET_JOBS if smoke else FLEET_JOBS),
        }
        emit_json("bench_serve_fleet", results, out)
        return 0
    out = argv[0] if argv else None
    results = {
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "service_latency": bench_service_latency(
            SMOKE_LATENCY_CALLS if smoke else LATENCY_CALLS),
        "submit_throughput": bench_submit_throughput(
            SMOKE_THROUGHPUT_JOBS if smoke else THROUGHPUT_JOBS),
        "cache_hit_speedup": bench_cache_hit_speedup(
            SMOKE_CACHE_CALLS if smoke else CACHE_CALLS),
        "http_identity": bench_http_identity(),
    }
    emit_json("bench_serve", results, out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
