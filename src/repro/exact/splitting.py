"""ReluVal-style input splitting: iterative refinement of symbolic intervals.

The paper's evaluation derives its state abstractions with ReluVal, whose
core loop this module reproduces: propagate symbolic intervals over the
input box; if the output over-approximation violates the target, bisect the
widest input dimension and recurse, looking for concrete counterexamples
along the way.  The procedure is sound always, and complete in the limit for
properties violated on open sets; a work budget turns the remaining cases
into an explicit ``"unknown"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.api.config import DEFAULT_MAX_BOXES
from repro.domains.box import Box
from repro.domains.symbolic import SymbolicPropagator
from repro.nn.network import Network

__all__ = ["SplitResult", "check_containment_split"]

SPLIT_SAFE = "safe"
SPLIT_UNSAFE = "unsafe"
SPLIT_UNKNOWN = "unknown"


@dataclass
class SplitResult:
    """Verdict of the splitting procedure.

    ``counterexample`` is a concrete input violating the property when
    ``status == "unsafe"``.  ``boxes_processed`` counts symbolic propagations
    (the work measure used by the benchmarks).
    """

    status: str
    counterexample: Optional[np.ndarray]
    boxes_processed: int
    max_depth_reached: int

    @property
    def safe(self) -> bool:
        return self.status == SPLIT_SAFE


def _concrete_violation(network: Network, box: Box, target: Box,
                        samples: int, rng: np.random.Generator) -> Optional[np.ndarray]:
    """Probe box center + a few uniform samples for a real violation."""
    candidates = [box.center]
    if samples > 0:
        candidates.append(box.sample(samples, rng))
    points = np.vstack([np.atleast_2d(p) for p in candidates])
    outputs = np.atleast_2d(network.forward(points))
    for x, y in zip(points, outputs):
        if not target.contains_point(y):
            return x
    return None


def check_containment_split(network: Network, input_box: Box, target: Box,
                            max_boxes: int = DEFAULT_MAX_BOXES,
                            max_depth: int = 30,
                            probe_samples: int = 4,
                            seed: int = 0) -> SplitResult:
    """Check ``∀x ∈ input_box : f(x) ∈ target`` by symbolic + bisection.

    Returns ``safe`` when every leaf box's symbolic output is contained in
    ``target``; ``unsafe`` with a witness when a concrete violation is found;
    ``unknown`` when the work budget is exhausted first.
    """
    propagator = SymbolicPropagator()
    rng = np.random.default_rng(seed)
    stack: List[Tuple[Box, int]] = [(input_box, 0)]
    processed = 0
    deepest = 0
    exhausted = False

    while stack:
        box, depth = stack.pop()
        deepest = max(deepest, depth)
        processed += 1
        if processed > max_boxes:
            exhausted = True
            break
        out = propagator.propagate(network, box)[-1]
        if target.contains_box(out):
            continue
        witness = _concrete_violation(network, box, target, probe_samples, rng)
        if witness is not None:
            return SplitResult(SPLIT_UNSAFE, witness, processed, deepest)
        if depth >= max_depth or np.max(box.widths) <= 1e-12:
            exhausted = True
            continue
        left, right = box.split()
        stack.append((left, depth + 1))
        stack.append((right, depth + 1))

    if exhausted:
        return SplitResult(SPLIT_UNKNOWN, None, processed, deepest)
    return SplitResult(SPLIT_SAFE, None, processed, deepest)
