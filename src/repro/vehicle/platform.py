"""Closed-loop lane following: the substitute for the 1/10-scale car.

Couples the camera, perception stack, and a unicycle motion model into the
continuous-operation loop of Section V: at each tick the car renders a
frame, predicts the visual waypoint ``vout``, steers toward it, advances,
and (optionally) feeds the frame's feature vector to the runtime monitor.
Scenario drift (brightness, disturbances) pushes features out of the
calibrated ``Din`` exactly the way newly encountered conditions do on the
physical track, producing the ``Δin`` for the next verification problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import VehicleError
from repro.monitor.boxmonitor import BoxMonitor
from repro.vehicle.camera import Camera
from repro.vehicle.perception import Perception
from repro.vehicle.track import CarPose, Track

__all__ = ["DriveConfig", "DriveLog", "VehiclePlatform"]


@dataclass
class DriveConfig:
    """Closed-loop simulation parameters."""

    steps: int = 200
    dt: float = 0.05
    speed: float = 1.0
    steering_gain: float = 2.5
    brightness: float = 1.0
    disturbance_std: float = 0.0
    seed: int = 0


@dataclass
class DriveLog:
    """Per-step telemetry of one closed-loop run."""

    poses: List[CarPose] = field(default_factory=list)
    vout: List[float] = field(default_factory=list)
    vout_true: List[float] = field(default_factory=list)
    lateral_error: List[float] = field(default_factory=list)
    features: List[np.ndarray] = field(default_factory=list)
    monitor_flags: List[bool] = field(default_factory=list)

    @property
    def max_abs_lateral_error(self) -> float:
        return float(np.max(np.abs(self.lateral_error))) if self.lateral_error else 0.0

    @property
    def mean_abs_lateral_error(self) -> float:
        return float(np.mean(np.abs(self.lateral_error))) if self.lateral_error else 0.0

    def feature_matrix(self) -> np.ndarray:
        return np.vstack(self.features)


class VehiclePlatform:
    """The simulated car: track + camera + perception + motion model."""

    def __init__(self, track: Track, camera: Camera, perception: Perception):
        self.track = track
        self.camera = camera
        self.perception = perception

    def drive(self, config: Optional[DriveConfig] = None,
              monitor: Optional[BoxMonitor] = None,
              start_pose: Optional[CarPose] = None) -> DriveLog:
        """Run the closed loop for ``config.steps`` ticks.

        When ``monitor`` is given, every frame's feature vector is checked
        against the calibrated domain and the flag recorded in the log.
        """
        config = config or DriveConfig()
        if config.steps <= 0:
            raise VehicleError("steps must be positive")
        rng = np.random.default_rng(config.seed)
        pose = start_pose or self.track.pose(0.0)
        log = DriveLog()

        for _ in range(config.steps):
            rendered = self.camera.render(self.track, pose,
                                          brightness=config.brightness)
            features = self.perception.extractor.extract(rendered.image)
            vout = float(self.perception.predict(rendered.image[np.newaxis])[0])

            log.poses.append(pose)
            log.vout.append(vout)
            log.vout_true.append(rendered.vout)
            log.lateral_error.append(self.track.lateral_error(pose.position))
            log.features.append(features)
            if monitor is not None:
                log.monitor_flags.append(monitor.observe(features))

            # Steer toward the predicted waypoint: vout > 0.5 means the
            # waypoint is to the right of the image center.
            steer = -config.steering_gain * (vout - 0.5)
            if config.disturbance_std > 0:
                steer += float(rng.normal(0.0, config.disturbance_std))
            theta = pose.theta + steer * config.dt
            x = pose.x + config.speed * np.cos(theta) * config.dt
            y = pose.y + config.speed * np.sin(theta) * config.dt
            pose = CarPose(float(x), float(y), float(theta))

        return log
