"""The continuous-engineering loop: artifact lifecycle across versions.

`ContinuousVerifier` settles one modified problem against one artifact set;
real continuous engineering is a *sequence* of monitor enlargements and
fine-tuning steps.  :class:`EngineeringLoop` owns that sequence:

* it keeps the current verified problem and its proof artifacts;
* every accepted change *advances the baseline* -- the enlarged domain or
  the new version becomes the problem the next change is compared against;
* when proof reuse fails, it transparently re-verifies from scratch and
  refreshes the artifacts (recording that the expensive path was taken);
* the full history, with per-step strategies and timings, feeds reports.

This is the programmatic embodiment of the paper's workflow: "it is a
realistic expectation to encounter multiple domain enlargement and
fine-tuning activities".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.api.config import VerifyConfig
from repro.domains.box import Box
from repro.nn.network import Network
from repro.core.artifacts import ProofArtifacts
from repro.core.continuous import ContinuousResult, ContinuousVerifier
from repro.core.problem import SVbTV, SVuDC, VerificationProblem
from repro.core.verifier import _verify_from_scratch

__all__ = ["LoopStep", "EngineeringLoop"]


@dataclass
class LoopStep:
    """One accepted (or rejected) change in the loop history."""

    kind: str                      # "initial" | "domain" | "version"
    holds: Optional[bool]
    strategy: str
    elapsed: float
    reverified: bool = False       # did this step pay a from-scratch run?
    detail: str = ""
    #: Certificate warm-start economics of this step's exact legs
    #: (:mod:`repro.certs`): frontier leaves seeded from a stored
    #: certificate and LP solves the batched re-screen made unnecessary.
    nodes_reused: int = 0
    lp_solves_saved: int = 0


@dataclass
class EngineeringLoop:
    """Stateful continuous-verification driver."""

    problem: VerificationProblem
    state_buffer: float = 0.03
    rigor: str = "range"
    with_network_abstraction: bool = False
    netabs_groups: int = 4
    netabs_margin: float = 0.02
    #: Per-knob overrides folded over ``config`` at run time; ``None``
    #: keeps the config's value (so a caller-supplied ``config`` is never
    #: silently clobbered by field defaults).
    method: Optional[str] = None
    node_limit: Optional[int] = None
    #: Engine configuration for every exact leg.
    config: Optional[VerifyConfig] = None
    #: Optional certificate provider (``cert_get``/``cert_put`` of JSON
    #: wire strings) handed to every :class:`ContinuousVerifier`; with a
    #: ``certs="record"``/``"reuse"`` config policy the full-fallback legs
    #: persist and warm-start from stored frontiers across iterations.
    certs: Optional[object] = None

    artifacts: Optional[ProofArtifacts] = None
    history: List[LoopStep] = field(default_factory=list)

    def _config(self) -> VerifyConfig:
        base = self.config or VerifyConfig()
        resolved = base.with_overrides(method=self.method,
                                       node_limit=self.node_limit)
        if self.node_limit is None and \
                base.node_limit == VerifyConfig().node_limit:
            # Historical loop behaviour: unless the caller chose a budget
            # (via the field or a non-default config value), the
            # proposition checks also run under the *full* node budget,
            # not the local-check default.  A caller wanting the loop at a
            # genuinely small budget sets node_limit (and full_node_limit)
            # explicitly.
            resolved = resolved.replace(
                node_limit=resolved.effective_full_node_limit)
        return resolved

    # ----------------------------------------------------------------- setup
    def initial_verification(self) -> LoopStep:
        """Verify the starting problem from scratch and store artifacts."""
        outcome = _verify_from_scratch(
            self.problem, state_buffer=self.state_buffer, rigor=self.rigor,
            with_network_abstraction=self.with_network_abstraction,
            netabs_groups=self.netabs_groups, netabs_margin=self.netabs_margin,
            config=self._config())
        self.artifacts = outcome.artifacts
        step = LoopStep(kind="initial", holds=outcome.holds,
                        strategy="from scratch", elapsed=outcome.elapsed,
                        reverified=True, detail=outcome.detail)
        self.history.append(step)
        return step

    def _verifier(self) -> ContinuousVerifier:
        if self.artifacts is None:
            raise RuntimeError("call initial_verification() first")
        return ContinuousVerifier(self.artifacts, config=self._config(),
                                  certs=self.certs)

    def _refresh(self, problem: VerificationProblem) -> ProofArtifacts:
        outcome = _verify_from_scratch(
            problem, state_buffer=self.state_buffer, rigor=self.rigor,
            with_network_abstraction=self.with_network_abstraction,
            netabs_groups=self.netabs_groups, netabs_margin=self.netabs_margin,
            config=self._config())
        if outcome.holds:
            self.artifacts = outcome.artifacts
        return outcome.artifacts

    # ----------------------------------------------------------------- steps
    def on_domain_enlarged(self, enlarged_din: Box) -> LoopStep:
        """The monitor reported new inputs: settle SVuDC and advance."""
        started = time.perf_counter()
        result: ContinuousResult = self._verifier().verify_domain_change(
            SVuDC(self.problem, enlarged_din))
        reverified = False
        if result.holds:
            new_problem = VerificationProblem(
                self.problem.network, enlarged_din, self.problem.dout)
            # Proof reuse settled safety but the artifacts still describe
            # the old Din; refresh them so the *next* change compares
            # against the enlarged baseline.
            self._refresh(new_problem)
            self.problem = new_problem
            reverified = True
        step = LoopStep(kind="domain", holds=result.holds,
                        strategy=result.strategy,
                        elapsed=time.perf_counter() - started,
                        reverified=reverified, detail=result.strategy,
                        nodes_reused=result.nodes_reused,
                        lp_solves_saved=result.lp_solves_saved)
        self.history.append(step)
        return step

    def on_new_version(self, new_network: Network,
                       enlarged_din: Optional[Box] = None) -> LoopStep:
        """A fine-tuned version arrived: settle SVbTV and advance."""
        started = time.perf_counter()
        result = self._verifier().verify_new_version(
            SVbTV(self.problem, new_network, enlarged_din))
        reverified = False
        if result.holds:
            din = enlarged_din if enlarged_din is not None else self.problem.din
            new_problem = VerificationProblem(new_network, din,
                                              self.problem.dout)
            if result.strategy.startswith(("prop6", "full", "fixing")):
                # Either we already paid a full run, or the accepted
                # strategy does not yield fresh layered artifacts: refresh.
                self._refresh(new_problem)
                reverified = True
            else:
                # State-abstraction reuse succeeded: the stored S_i remain
                # valid for the new network (that is what was just proved),
                # so only swap the problem's network.
                self.artifacts.problem = new_problem
            self.problem = new_problem
        step = LoopStep(kind="version", holds=result.holds,
                        strategy=result.strategy,
                        elapsed=time.perf_counter() - started,
                        reverified=reverified, detail=result.strategy,
                        nodes_reused=result.nodes_reused,
                        lp_solves_saved=result.lp_solves_saved)
        self.history.append(step)
        return step

    # ---------------------------------------------------------------- report
    def summary(self) -> str:
        lines = ["Engineering-loop history"]
        for i, step in enumerate(self.history):
            verdict = {True: "safe", False: "NOT PROVED", None: "unknown"}[step.holds]
            flag = " (re-verified)" if step.reverified else ""
            if step.nodes_reused or step.lp_solves_saved:
                flag += (f" [reused {step.nodes_reused} nodes, "
                         f"saved {step.lp_solves_saved} LPs]")
            lines.append(f"  {i:>2} {step.kind:>8}: {verdict:<10} via "
                         f"{step.strategy:<24} {step.elapsed * 1e3:9.2f} ms{flag}")
        cheap = sum(1 for s in self.history if not s.reverified)
        lines.append(f"  {cheap}/{len(self.history)} steps settled by proof "
                     "reuse alone")
        saved = sum(s.lp_solves_saved for s in self.history)
        if saved:
            lines.append(f"  certificate reuse saved {saved} LP solves "
                         "across the loop")
        return "\n".join(lines)
