"""Tests for the DeepPoly back-substitution domain."""

import numpy as np
import pytest

from repro.domains import Box, DeepPolyPropagator, propagate_network
from repro.errors import UnsupportedLayerError
from repro.nn import Dense, LeakyReLU, Network, ReLU, Sigmoid, random_relu_network


class TestSoundness:
    @pytest.mark.parametrize("seed", range(4))
    def test_contains_samples(self, seed, rng):
        net = random_relu_network([4, 10, 8, 2], seed=seed, weight_scale=0.9)
        box = Box(-np.ones(4), np.ones(4))
        outs = propagate_network(net, box, "deeppoly")
        values = box.sample(1200, rng)
        for k, blk in enumerate(net.blocks()):
            values = np.stack([blk.forward(v) for v in values])
            assert np.all(values >= outs[k].lower - 1e-8)
            assert np.all(values <= outs[k].upper + 1e-8)

    def test_leaky_relu(self, rng):
        net = Network(
            [Dense(3, 6, rng=np.random.default_rng(0)), LeakyReLU(0.1),
             Dense(6, 2, rng=np.random.default_rng(1))], input_dim=3)
        box = Box(-np.ones(3), np.ones(3))
        out = propagate_network(net, box, "deeppoly")[-1]
        ys = net.forward(box.sample(2000, rng))
        assert np.all(ys >= out.lower - 1e-8)
        assert np.all(ys <= out.upper + 1e-8)

    def test_preactivation_boxes_sound(self, small_net, rng):
        box = Box(-np.ones(3), np.ones(3))
        pre = DeepPolyPropagator().preactivation_boxes(small_net, box)
        values = box.sample(800, rng)
        for k, blk in enumerate(small_net.blocks()):
            z = values @ blk.dense.weight.T + blk.dense.bias
            assert np.all(z >= pre[k].lower - 1e-8)
            assert np.all(z <= pre[k].upper + 1e-8)
            values = blk.forward(values)

    def test_sigmoid_unsupported(self):
        net = Network(
            [Dense(2, 3, rng=np.random.default_rng(0)), Sigmoid(),
             Dense(3, 1, rng=np.random.default_rng(1))], input_dim=2)
        with pytest.raises(UnsupportedLayerError):
            propagate_network(net, Box(-np.ones(2), np.ones(2)), "deeppoly")


class TestPrecision:
    def test_never_looser_than_box_on_output(self):
        """Back-substitution through exact affine steps plus clamped ReLU
        outputs keeps DeepPoly at or below interval arithmetic widths on
        these instances."""
        worse = 0
        for seed in range(6):
            net = random_relu_network([4, 10, 8, 1], seed=seed,
                                      weight_scale=0.8)
            box = Box(-np.ones(4), np.ones(4))
            dp = propagate_network(net, box, "deeppoly")[-1]
            bx = propagate_network(net, box, "box")[-1]
            if dp.widths.sum() > bx.widths.sum() + 1e-9:
                worse += 1
        assert worse == 0

    def test_relu_output_floor(self, fig2, enlarged_box2):
        """Post-ReLU bounds never report negative reachability."""
        outs = propagate_network(fig2, enlarged_box2, "deeppoly")
        for box in outs:
            assert np.all(box.lower >= -1e-12)

    def test_exact_on_single_affine(self, rng):
        net = Network([Dense(3, 4, rng=np.random.default_rng(5))], input_dim=3)
        box = Box(-np.ones(3), np.ones(3))
        dp = propagate_network(net, box, "deeppoly")[-1]
        bx = propagate_network(net, box, "box")[-1]
        np.testing.assert_allclose(dp.lower, bx.lower, atol=1e-9)
        np.testing.assert_allclose(dp.upper, bx.upper, atol=1e-9)

    def test_registered_in_propagators(self):
        from repro.domains import PROPAGATORS

        assert "deeppoly" in PROPAGATORS
