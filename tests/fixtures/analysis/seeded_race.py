"""A deliberately racy module: the PR-7 ShardRouter bug, distilled.

``Router.pick`` reads ``self._backends`` *outside* ``self._lock`` while
``add``/``remove`` mutate it under the lock from other threads -- the
exact unguarded-read shape ``repro lint`` caught (and this PR fixed) in
``repro.serve.remote.ShardRouter.execute``.  The lock-discipline test
asserts the checker flags lines 27 and 32 and nothing else.
"""

import threading


class Router:
    def __init__(self):
        self._lock = threading.Lock()
        self._backends = {}  # guarded-by: self._lock

    def add(self, url, backend):
        with self._lock:
            self._backends[url] = backend

    def remove(self, url):
        with self._lock:
            self._backends.pop(url, None)

    def pick(self, url):
        return self._backends[url]  # RACY: no lock held

    def describe(self):
        with self._lock:
            count = len(self._backends)
        return f"{count} backends, first={min(self._backends, default=None)}"
