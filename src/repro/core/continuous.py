"""The continuous-verification orchestrator.

Given the proof artifacts of the old problem and an SVuDC or SVbTV change,
:class:`ContinuousVerifier` runs a cascade of reuse strategies -- cheapest
artifact first -- and falls back to incremental fixing and finally full
re-verification, reporting exactly what was reused, the verdict, and both
timing conventions (sequential and max-subproblem).

Strategy cascades (defaults, override per call):

* SVuDC: Proposition 3 (arithmetic) -> Proposition 1 (two-layer exact)
  -> Proposition 2 (layerwise rebuild with re-entry).
* SVbTV: Proposition 6 (syntactic network-abstraction check; combined with
  Propositions 1/3 when the domain also grew) -> Proposition 4 (parallel
  single-layer checks) -> Proposition 5 -> incremental fixing -> full.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ArtifactError
from repro.api.config import VerifyConfig
from repro.domains.box import Box
from repro.exact.encoding import encoding_cache_stats
from repro.exact.verify import _check_containment
from repro.nn.network import Network
from repro.core.artifacts import ProofArtifacts
from repro.core.fixing import FixingResult, incremental_fix
from repro.core.problem import SVbTV, SVuDC
from repro.core.propositions import (
    PropositionResult,
    SubproblemReport,
    _check_prop1,
    _check_prop2,
    _check_prop4,
    _check_prop5,
    check_prop3,
    check_prop6,
)

__all__ = ["ContinuousResult", "ContinuousVerifier"]


def _cache_delta(snapshot: Dict[str, int]) -> Dict[str, int]:
    """Encoding-cache hits/misses accrued since ``snapshot``."""
    now = encoding_cache_stats()
    return {key: now[key] - snapshot.get(key, 0) for key in now}


@dataclass
class ContinuousResult:
    """Outcome of one continuous-verification run."""

    holds: Optional[bool]
    strategy: str
    attempts: List[PropositionResult] = field(default_factory=list)
    fixing: Optional[FixingResult] = None
    elapsed: float = 0.0
    #: max-subproblem time of the *successful* strategy (Table I metric)
    winning_max_subproblem_time: float = 0.0
    winning_time: float = 0.0
    #: ``{"hits": .., "misses": ..}`` delta of the exact-layer encoding
    #: cache over this run -- how much LP base assembly the loop reused
    #: instead of rebuilding (paper Sec. VI proof-reuse engineering).
    #: The counters are process-wide, so attribute the delta to this run
    #: only when verifier runs do not overlap in time.
    encoding_reuse: Dict[str, int] = field(default_factory=dict)
    #: Warm-start economics of the exact legs (:mod:`repro.certs`): leaves
    #: seeded from a stored certificate frontier and the LP solves the
    #: batched re-screen rendered unnecessary.  Zero unless the verifier
    #: was handed a certificate provider and the config enables reuse.
    nodes_reused: int = 0
    lp_solves_saved: int = 0

    def speedup_vs(self, original_time: float, parallel: bool = True) -> float:
        """Table I ratio: incremental time / original time (in percent)."""
        inc = self.winning_max_subproblem_time if parallel else self.winning_time
        if original_time <= 0:
            return float("nan")
        return 100.0 * inc / original_time


class ContinuousVerifier:
    """Reuses ``artifacts`` to settle modified verification problems."""

    def __init__(self, artifacts: ProofArtifacts,
                 method: Optional[str] = None, domain: Optional[str] = None,
                 node_limit: Optional[int] = None,
                 workers: Optional[int] = None,
                 config: Optional[VerifyConfig] = None,
                 certs=None):
        self.artifacts = artifacts
        #: Optional certificate provider (``cert_get``/``cert_put`` of JSON
        #: wire strings, :mod:`repro.certs`).  When set and the config's
        #: ``certs`` policy is not ``"off"``, the full re-verification
        #: fallback runs through the engine's certificate-aware threshold
        #: path, so repeated fallbacks across fine-tuning steps warm-start
        #: from the stored frontier instead of re-searching.
        self.certs = certs
        #: One :class:`VerifyConfig` drives every exact leg of the cascade
        #: (the engine path).  The loose keywords remain as per-knob
        #: overrides for compatibility; their defaults live in the config.
        self.config = (config or VerifyConfig()).with_overrides(
            method=method, domain=domain, node_limit=node_limit,
            workers=workers)

    # The historical loose attributes stay *live*: reads come from the
    # config and assignment folds back into it, so pre-existing callers
    # that mutate e.g. ``verifier.node_limit`` keep affecting every
    # subsequent exact leg instead of silently updating a dead mirror.
    @property
    def method(self) -> str:
        return self.config.method

    @method.setter
    def method(self, value: str) -> None:
        self.config = self.config.replace(method=value)

    @property
    def domain(self) -> str:
        return self.config.domain

    @domain.setter
    def domain(self, value: str) -> None:
        self.config = self.config.replace(domain=value)

    @property
    def node_limit(self) -> int:
        return self.config.node_limit

    @node_limit.setter
    def node_limit(self, value: int) -> None:
        self.config = self.config.replace(node_limit=value)

    @property
    def workers(self) -> int:
        """Worker-pool width handed to every exact branch-and-bound leg
        (the parallel frontier search of :mod:`repro.exact.parallel_bab`);
        verdicts are worker-count independent by construction."""
        return self.config.workers

    @workers.setter
    def workers(self, value: int) -> None:
        self.config = self.config.replace(workers=value)

    # ------------------------------------------------------------------ SVuDC
    def verify_domain_change(self, problem: SVuDC,
                             strategies: Sequence[str] = ("prop3", "prop1", "prop2"),
                             ) -> ContinuousResult:
        """Settle an SVuDC instance by artifact reuse."""
        snapshot = encoding_cache_stats()
        result = self._verify_domain_change(problem, strategies)
        result.encoding_reuse = _cache_delta(snapshot)
        return result

    def _verify_domain_change(self, problem: SVuDC,
                              strategies: Sequence[str]) -> ContinuousResult:
        started = time.perf_counter()
        attempts: List[PropositionResult] = []
        for strategy in strategies:
            result = self._run_svudc_strategy(strategy, problem.enlarged_din)
            attempts.append(result)
            if result.holds:
                return self._finish(started, result.proposition, attempts,
                                    winner=result)
        return self._fallback_full(problem.new_problem.network,
                                   problem.enlarged_din, started, attempts)

    def _run_svudc_strategy(self, strategy: str, enlarged: Box) -> PropositionResult:
        if strategy == "prop1":
            return _check_prop1(self.artifacts, enlarged, method=self.method,
                                config=self.config)
        if strategy == "prop2":
            return _check_prop2(self.artifacts, enlarged, domain=self.domain,
                                method=self.method, config=self.config)
        if strategy == "prop3":
            return check_prop3(self.artifacts, enlarged)
        raise ArtifactError(f"unknown SVuDC strategy {strategy!r}")

    # ------------------------------------------------------------------ SVbTV
    def verify_new_version(self, problem: SVbTV,
                           strategies: Sequence[str] = ("prop6", "prop4", "prop5"),
                           prop5_alphas: Optional[Sequence[int]] = None,
                           with_fixing: bool = True) -> ContinuousResult:
        """Settle an SVbTV instance by artifact reuse.

        The exact layer underneath every strategy draws its encodings from
        the fingerprint-keyed cache: re-checking the same (sub)network over
        the same box -- across strategies, fixing, and repeated loop
        iterations where only phases/thresholds changed -- reuses the sparse
        LP base instead of rebuilding it; the achieved reuse is reported in
        :attr:`ContinuousResult.encoding_reuse`.
        """
        snapshot = encoding_cache_stats()
        result = self._verify_new_version(problem, strategies, prop5_alphas,
                                          with_fixing)
        result.encoding_reuse = _cache_delta(snapshot)
        return result

    def _verify_new_version(self, problem: SVbTV,
                            strategies: Sequence[str],
                            prop5_alphas: Optional[Sequence[int]],
                            with_fixing: bool) -> ContinuousResult:
        started = time.perf_counter()
        attempts: List[PropositionResult] = []
        new_network = problem.new_network
        enlarged = problem.enlarged_din
        prop4_result: Optional[PropositionResult] = None

        for strategy in strategies:
            if strategy == "prop6":
                if self.artifacts.network_abstraction is None:
                    continue
                result = self._prop6_composite(new_network, enlarged)
            elif strategy == "prop4":
                result = _check_prop4(self.artifacts, new_network,
                                      enlarged_din=enlarged,
                                      method=self.method, config=self.config)
                prop4_result = result
            elif strategy == "prop5":
                alphas = list(prop5_alphas) if prop5_alphas is not None else \
                    self._default_alphas(new_network)
                if not alphas:
                    continue
                result = _check_prop5(self.artifacts, new_network, alphas,
                                      enlarged_din=enlarged,
                                      method=self.method, config=self.config)
            else:
                raise ArtifactError(f"unknown SVbTV strategy {strategy!r}")
            attempts.append(result)
            if result.holds:
                return self._finish(started, result.proposition, attempts,
                                    winner=result)

        if with_fixing and prop4_result is not None:
            fix = incremental_fix(self.artifacts, new_network, prop4_result,
                                  enlarged_din=enlarged, domain=self.domain,
                                  method=self.method, config=self.config)
            if fix.holds is not None:
                elapsed = time.perf_counter() - started
                return ContinuousResult(
                    holds=fix.holds,
                    strategy=f"fixing: {fix.strategy}",
                    attempts=attempts,
                    fixing=fix,
                    elapsed=elapsed,
                    winning_max_subproblem_time=fix.max_subproblem_time,
                    winning_time=fix.elapsed,
                )
        din = enlarged if enlarged is not None else self.artifacts.problem.din
        return self._fallback_full(new_network, din, started, attempts)

    def _prop6_composite(self, new_network: Network,
                         enlarged: Optional[Box]) -> PropositionResult:
        """Proposition 6, extended to domain enlargement per Section IV.B:
        first transfer the abstraction on the original Din, then cover Δin
        with Proposition 3 (reusing the old Lipschitz/output artifacts) or,
        failing that, Proposition 1 on the new network's head."""
        result = check_prop6(self.artifacts, new_network)
        if not result.holds or enlarged is None or \
                enlarged == self.artifacts.problem.din:
            return result
        tail = check_prop3(self.artifacts, enlarged)
        if not tail.holds:
            # Proposition 1 applied to the *new* network's two-layer head.
            new_artifacts = ProofArtifacts(
                problem=self.artifacts.problem,
                states=self.artifacts.states,
                lipschitz=self.artifacts.lipschitz,
                states_prove_safety=self.artifacts.states_prove_safety,
            )
            head_check = _check_prop1(new_artifacts, enlarged,
                                      method=self.method, config=self.config)
            # Soundness: prop1 on f' needs every S_i->S_{i+1} step of f' for
            # i >= 2, which prop6 alone does not give; require prop4's tail
            # checks for blocks 1..n.
            tail_checks = _check_prop4(self.artifacts, new_network,
                                       enlarged_din=None, method=self.method,
                                       config=self.config)
            combined_holds = bool(head_check.holds and tail_checks.holds)
            subproblems = (result.subproblems + head_check.subproblems
                           + tail_checks.subproblems)
            return PropositionResult(
                proposition="prop6+prop1",
                holds=combined_holds,
                subproblems=subproblems,
                elapsed=result.elapsed + head_check.elapsed + tail_checks.elapsed,
                detail="abstraction transfer + exact head check on Δin",
            )
        return PropositionResult(
            proposition="prop6+prop3",
            holds=True,
            subproblems=result.subproblems + tail.subproblems,
            elapsed=result.elapsed + tail.elapsed,
            detail="abstraction transfer + Lipschitz enlargement cover",
        )

    @staticmethod
    def _default_alphas(network: Network) -> List[int]:
        """Every second boundary: the 6-layer example of the paper picks
        ``α = (2, 4)``; generalised to ``2, 4, 6, …`` (block boundaries)."""
        return [a for a in range(2, network.num_blocks - 1, 2)]

    # ----------------------------------------------------------------- shared
    def _finish(self, started: float, strategy: str,
                attempts: List[PropositionResult],
                winner: PropositionResult) -> ContinuousResult:
        return ContinuousResult(
            holds=True,
            strategy=strategy,
            attempts=attempts,
            elapsed=time.perf_counter() - started,
            winning_max_subproblem_time=winner.max_subproblem_time,
            winning_time=winner.elapsed,
        )

    def _fallback_full(self, network: Network, din: Box, started: float,
                       attempts: List[PropositionResult]) -> ContinuousResult:
        nodes_reused = lp_solves_saved = 0
        if self.certs is not None and self.config.certs != "off":
            res, nodes_reused, lp_solves_saved = \
                self._full_with_certificates(network, din)
            detail = "full re-verification (certificate warm start)"
        else:
            res = _check_containment(
                network, din, self.artifacts.problem.dout, method="exact",
                config=self.config.replace(
                    node_limit=self.config.effective_full_node_limit))
            detail = "no reuse possible"
        report = SubproblemReport.from_containment("full re-verification", res)
        fallback = PropositionResult(
            proposition="full", holds=res.holds, subproblems=[report],
            elapsed=res.elapsed, detail=detail,
        )
        attempts.append(fallback)
        return ContinuousResult(
            holds=res.holds,
            strategy="full re-verification",
            attempts=attempts,
            elapsed=time.perf_counter() - started,
            winning_max_subproblem_time=res.elapsed,
            winning_time=res.elapsed,
            nodes_reused=nodes_reused,
            lp_solves_saved=lp_solves_saved,
        )

    def _full_with_certificates(self, network: Network, din: Box):
        """Full re-verification through the certificate-aware engine path.

        Output containment decomposes into one threshold proof per output
        bound (``max e_i f <= hi_i`` and ``max -e_i f <= -lo_i``); each is
        a :class:`~repro.api.specs.ThresholdSpec`, so the engine records a
        certificate on first fallback and warm-starts every later fallback
        whose network kept its structural fingerprint (weight-only
        fine-tuning).  Returns ``(ContainmentResult, nodes_reused,
        lp_solves_saved)`` summed over the bound proofs.
        """
        from repro.api.engine import VerificationEngine
        from repro.api.specs import ThresholdSpec
        from repro.exact.verify import ContainmentResult

        cfg = self.config.replace(
            node_limit=self.config.effective_full_node_limit)
        engine = VerificationEngine(cfg, certs=self.certs)
        dout = self.artifacts.problem.dout
        t0 = time.perf_counter()
        reused = saved = lp_total = node_total = 0
        holds: Optional[bool] = True
        counterexample = None
        violation = 0.0
        checks = []
        dim = dout.lower.size
        for i in range(dim):
            unit = np.zeros(dim)
            unit[i] = 1.0
            checks.append((unit, float(dout.upper[i])))
            checks.append((-unit, -float(dout.lower[i])))
        for c, threshold in checks:
            verdict = engine.verify(ThresholdSpec(
                network=network, input_box=din, objective=c,
                threshold=threshold))
            lp_total += verdict.result.lp_solves
            node_total += verdict.result.nodes
            reused += verdict.provenance.nodes_reused
            saved += verdict.provenance.lp_solves_saved
            if verdict.holds is not True:
                holds = verdict.holds
                if verdict.holds is False:
                    counterexample = verdict.result.witness
                    violation = float(verdict.result.incumbent - threshold)
                break
        res = ContainmentResult(
            holds=holds, method="exact", counterexample=counterexample,
            violation=violation, elapsed=time.perf_counter() - t0,
            lp_solves=lp_total, nodes=node_total,
            detail="certificate-warmed full re-verification")
        return res, reused, saved
