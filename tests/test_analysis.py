"""The static-analysis engine and its rule catalogue.

Every rule is exercised three ways -- a true positive, a true negative,
and an inline suppression -- against small in-memory fixture modules
whose *virtual* dotted names put them inside each rule's scope.  The
lock-discipline checker additionally runs against an on-disk fixture
distilling the PR-7 ShardRouter race, and the whole suite closes with
the acceptance gate: ``repro lint`` over the real ``src/repro`` tree is
clean.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    UNUSED_SUPPRESSION,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.core import ModuleContext, module_name_for
from repro.analysis.rules import ALL_RULES
from repro.cli import main as cli_main
from repro.errors import AnalysisError

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"


def lint(source: str, module: str, rule: str, *, with_suppression_check=False):
    """Findings of one rule over one in-memory fixture module."""
    select = [rule] + ([UNUSED_SUPPRESSION] if with_suppression_check else [])
    return lint_source(textwrap.dedent(source), module=module,
                       select=select).findings


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# Rule fixtures: (rule, module, positive, negative, suppressed)
# The suppressed variant is the positive with an inline disable comment on
# the offending line; it must lint clean under the same rule.
# ---------------------------------------------------------------------------

CASES = [
    (
        "no-legacy-entrypoints", "repro.core.fixture",
        """
        from repro.exact.verify import check_containment

        def refresh(net, box, target):
            return check_containment(net, box, target)
        """,
        """
        from repro.api import ContainmentSpec, VerificationEngine

        def refresh(net, box, target):
            spec = ContainmentSpec(network=net, input_box=box, target=target)
            return VerificationEngine().verify(spec)
        """,
        """
        from repro.exact.verify import check_containment

        def refresh(net, box, target):
            return check_containment(net, box, target)  # repro: disable=no-legacy-entrypoints
        """,
    ),
    (
        "no-restated-defaults", "repro.exact.fixture",
        """
        def solve(problem, workers: int = 1, tol: float = 1e-6):
            return problem
        """,
        """
        from repro.api.config import DEFAULT_TOL, DEFAULT_WORKERS

        def solve(problem, workers: int = DEFAULT_WORKERS,
                  tol: float = DEFAULT_TOL, method: str = "exact"):
            # method="exact" is a deliberate override of the canonical
            # "auto", not a restated default -- must stay legal.
            return problem
        """,
        """
        def solve(problem, workers: int = 1):  # repro: disable=no-restated-defaults
            return problem
        """,
    ),
    (
        "wire-discipline", "repro.serve.fixture",
        """
        class BadExecutor:
            def execute(self, spec, config_json, timeout=None):
                return {}

        def run(executor, spec_obj, config_json):
            return executor.execute(spec_obj, config_json)
        """,
        """
        class GoodExecutor:
            def execute(self, spec_json, config_json, timeout=None):
                return {}

        def run(executor, spec, config):
            spec_json = spec.to_json()
            return executor.execute(spec_json, config.to_json(), timeout=3)
        """,
        """
        class BadExecutor:
            def execute(self, spec, config_json, timeout=None):  # repro: disable=wire-discipline
                return {}

        def run(executor, spec_obj, config_json):
            return executor.execute(spec_obj, config_json)  # repro: disable=wire-discipline
        """,
    ),
    (
        "determinism", "repro.exact.fixture",
        """
        import time

        def stamp(verdict):
            verdict["at"] = time.time()
            for branch in {"upper", "lower"}:
                verdict[branch] = 0.0
            return verdict
        """,
        """
        import time
        import numpy as np

        def stamp(verdict, seed):
            t0 = time.monotonic()
            rng = np.random.default_rng(seed)
            for branch in ("upper", "lower"):
                verdict[branch] = float(rng.uniform())
            verdict["elapsed"] = time.monotonic() - t0
            return verdict

        class Key:
            def __hash__(self):
                return hash(("key", 1))
        """,
        """
        import time

        def stamp(verdict):
            verdict["at"] = time.time()  # repro: disable=determinism
            for branch in {"upper", "lower"}:  # repro: disable=determinism
                verdict[branch] = 0.0
            return verdict
        """,
    ),
    (
        "lock-discipline", "repro.serve.fixture",
        """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._workers = {}  # guarded-by: self._lock

            def get(self, url):
                return self._workers.get(url)
        """,
        """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._workers = {}  # guarded-by: self._lock

            def get(self, url):
                with self._lock:
                    return self._workers.get(url)
        """,
        """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._workers = {}  # guarded-by: self._lock

            def get(self, url):
                return self._workers.get(url)  # repro: disable=lock-discipline
        """,
    ),
    (
        "float64-soundness", "repro.exact.fixture",
        """
        import numpy as np

        def bound(values):
            return np.asarray(values, dtype=np.float32).max()
        """,
        """
        import numpy as np

        def bound(values):
            return np.asarray(values, dtype=np.float64).max()
        """,
        """
        import numpy as np

        def bound(values):
            return np.asarray(values, dtype=np.float32).max()  # repro: disable=float64-soundness
        """,
    ),
    (
        "no-swallowed-taxonomy", "repro.serve.fixture",
        """
        def probe(client):
            try:
                return client.health()
            except Exception:
                pass
        """,
        """
        def probe(client, registry):
            try:
                return client.health()
            except OSError:
                pass  # narrow catch: a decision, not amnesia
            except Exception as exc:
                registry.note_probe(ok=False, error=str(exc))
        """,
        """
        def probe(client):
            try:
                return client.health()
            except Exception:  # repro: disable=no-swallowed-taxonomy
                pass
        """,
    ),
    (
        "store-discipline", "repro.serve.fixture",
        """
        import sqlite3

        def peek(conn):
            return conn.execute("SELECT COUNT(*) FROM jobs").fetchone()
        """,
        """
        def peek(store, executor, spec_json, config_json):
            executor.execute(spec_json, config_json)
            return store.counts()
        """,
        """
        import sqlite3  # repro: disable=store-discipline

        def peek(conn):
            return conn.execute("SELECT 1").fetchone()  # repro: disable=store-discipline
        """,
    ),
    (
        "cert-discipline", "repro.certs.fixture",
        """
        import pickle

        def record(store, key, cert):
            store.cert_put(key, cert)
        """,
        """
        from repro.api.serialize import certificate_to_json

        def record(store, key, cert):
            store.cert_put(key, certificate_to_json(cert))

        def fetch(store, key):
            cert_json = store.cert_get(key)
            return cert_json
        """,
        """
        import pickle  # repro: disable=cert-discipline

        def record(store, key, cert):
            store.cert_put(key, cert)  # repro: disable=cert-discipline
        """,
    ),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("rule,module,positive,_n,_s",
                             CASES, ids=[c[0] for c in CASES])
    def test_true_positive(self, rule, module, positive, _n, _s):
        findings = lint(positive, module, rule)
        assert findings, f"{rule}: positive fixture produced no findings"
        assert rules_of(findings) == [rule]

    @pytest.mark.parametrize("rule,module,_p,negative,_s",
                             CASES, ids=[c[0] for c in CASES])
    def test_true_negative(self, rule, module, _p, negative, _s):
        findings = lint(negative, module, rule)
        assert findings == [], f"{rule}: false positives: {findings}"

    @pytest.mark.parametrize("rule,module,_p,_n,suppressed",
                             CASES, ids=[c[0] for c in CASES])
    def test_suppression(self, rule, module, _p, _n, suppressed):
        findings = lint(suppressed, module, rule,
                        with_suppression_check=True)
        assert findings == [], \
            f"{rule}: suppression did not silence: {findings}"

    @pytest.mark.parametrize("rule,module,positive,_n,_s",
                             CASES, ids=[c[0] for c in CASES])
    def test_out_of_scope_module_is_ignored(self, rule, module, positive,
                                            _n, _s):
        if rule == "lock-discipline":
            pytest.skip("annotation-driven: applies everywhere")
        findings = lint(positive, "somepkg.other", rule)
        assert findings == []


class TestScoping:
    def test_defaults_rule_exempts_config_module(self):
        source = "DEFAULT_WORKERS = 1\n\ndef f(workers: int = 1):\n    pass\n"
        assert lint(source, "repro.api.config", "no-restated-defaults") == []

    def test_store_rule_exempts_store_module(self):
        source = "import sqlite3\nconn = sqlite3.connect(':memory:')\n"
        assert lint(source, "repro.serve.store", "store-discipline") == []
        assert lint(source, "repro.serve.http", "store-discipline") != []

    def test_defaults_rule_flags_dataclass_field(self):
        source = """
        from dataclasses import dataclass

        @dataclass
        class Result:
            workers: int = 1
        """
        findings = lint(source, "repro.exact.fixture",
                        "no-restated-defaults")
        assert len(findings) == 1 and "workers" in findings[0].message


class TestLockDiscipline:
    def test_seeded_race_fixture_is_flagged(self):
        """The acceptance-criteria gate: the checker catches the distilled
        PR-7 ShardRouter race (and only its two racy lines)."""
        result = lint_paths([str(FIXTURES / "seeded_race.py")],
                            select=["lock-discipline"])
        lines = sorted(f.line for f in result.findings)
        assert lines == [27, 32], result.findings

    def test_fixed_shape_is_clean(self):
        """The shape the race was fixed to (snapshot under the lock)."""
        source = """
        import threading

        class Router:
            def __init__(self):
                self._lock = threading.Lock()
                self._backends = {}  # guarded-by: self._lock

            def pick(self, url):
                with self._lock:
                    backend = self._backends[url]
                return backend
        """
        assert lint(source, "fixture.router", "lock-discipline") == []

    def test_locked_helper_contract(self):
        source = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}  # guarded-by: self._lock

            def _evict_locked(self):
                while len(self._items) > 8:
                    self._items.popitem()

            def put_good(self, key, value):
                with self._lock:
                    self._items[key] = value
                    self._evict_locked()

            def put_bad(self, key, value):
                self._evict_locked()
        """
        findings = lint(source, "fixture.cache", "lock-discipline")
        assert len(findings) == 1
        assert "_evict_locked" in findings[0].message
        assert "put_bad" in source.splitlines()[findings[0].line - 2]

    def test_nested_function_resets_held_locks(self):
        """A closure handed to a pool runs on another thread: the
        enclosing ``with self._lock`` must not leak into it."""
        source = """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._stats = {}  # guarded-by: self._lock

            def kick(self, pool):
                with self._lock:
                    def task():
                        return self._stats.copy()
                    pool.submit(task)
        """
        findings = lint(source, "fixture.pool", "lock-discipline")
        assert len(findings) == 1 and "_stats" in findings[0].message

    def test_module_global_guard(self):
        source = """
        import threading

        _LOCK = threading.Lock()
        _COUNT = 0  # guarded-by: _LOCK


        def bump_good():
            global _COUNT
            with _LOCK:
                _COUNT += 1


        def bump_bad():
            global _COUNT
            _COUNT += 1
        """
        findings = lint(source, "fixture.counters", "lock-discipline")
        assert len(findings) == 1 and "_COUNT" in findings[0].message

    def test_init_is_exempt(self):
        source = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = {}  # guarded-by: self._lock
                self._data["warm"] = True
        """
        assert lint(source, "fixture.box", "lock-discipline") == []


class TestSuppressions:
    def test_unused_suppression_is_flagged(self):
        source = "x = 1  # repro: disable=determinism\n"
        findings = lint_source(source, module="repro.exact.fixture").findings
        assert rules_of(findings) == [UNUSED_SUPPRESSION]
        assert "silences nothing" in findings[0].message

    def test_unknown_rule_in_suppression_is_flagged(self):
        source = "x = 1  # repro: disable=no-such-rule\n"
        findings = lint_source(source, module="repro.exact.fixture").findings
        assert rules_of(findings) == [UNUSED_SUPPRESSION]
        assert "unknown rule" in findings[0].message

    def test_multi_rule_suppression(self):
        # Two rules fire on one line; one comma-separated comment
        # silences both, and both suppressions count as used.
        source = ("import time\n"
                  "def f(workers: int = 1): return time.time()"
                  "  # repro: disable=determinism,no-restated-defaults\n")
        findings = lint_source(source, module="repro.exact.fixture").findings
        assert findings == []

    def test_each_suppressed_rule_must_earn_its_keep(self):
        # The named rule fires on a *different* line: silenced nothing
        # here, so the stale half of the comment is itself flagged.
        source = ("import time\n"
                  "def f(workers: int = 1):\n"
                  "    return time.time()"
                  "  # repro: disable=determinism,no-restated-defaults\n")
        findings = lint_source(source, module="repro.exact.fixture").findings
        assert rules_of(findings) == ["no-restated-defaults",
                                      UNUSED_SUPPRESSION]

    def test_suppression_only_covers_its_line(self):
        source = ("import time\n"
                  "a = time.time()  # repro: disable=determinism\n"
                  "b = time.time()\n")
        findings = lint(source, "repro.exact.fixture", "determinism")
        assert [f.line for f in findings] == [3]


class TestEngine:
    def test_unknown_rule_name_raises(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            lint_source("x = 1\n", module="m", select=["bogus"])

    def test_syntax_error_raises(self):
        with pytest.raises(AnalysisError, match="cannot parse"):
            lint_source("def f(:\n", module="m")

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError, match="no such path"):
            lint_paths(["tests/definitely_not_here_xyz"])

    def test_ignore_filters_rule(self):
        source = "def f(workers: int = 1):\n    pass\n"
        clean = lint_source(source, module="repro.exact.fixture",
                            ignore=["no-restated-defaults"])
        assert clean.findings == []

    def test_findings_sorted_and_serializable(self):
        source = ("import time\n"
                  "b = time.time()\n"
                  "a = time.time()\n")
        result = lint_source(source, module="repro.exact.fixture",
                             select=["determinism"])
        assert [f.line for f in result.findings] == [2, 3]
        doc = json.loads(render_json(result))
        assert doc["version"] == 1
        assert doc["counts"] == {"determinism": 2}
        assert len(doc["findings"]) == 2
        assert set(doc["findings"][0]) == {"rule", "path", "line", "col",
                                           "message"}

    def test_text_reporter(self):
        result = lint_source("import time\nx = time.time()\n",
                             module="repro.exact.fixture",
                             select=["determinism"])
        text = render_text(result)
        assert "<memory>:2:" in text and "determinism" in text
        clean = lint_source("x = 1\n", module="repro.exact.fixture")
        assert "clean" in render_text(clean)

    def test_import_resolution(self):
        ctx = ModuleContext(
            "import numpy as np\n"
            "from repro.exact import verify as v\n"
            "from . import sibling\n",
            module="repro.core.fixture")
        assert ctx.imports["np"] == "numpy"
        assert ctx.imports["v"] == "repro.exact.verify"
        assert ctx.imports["sibling"] == "repro.core.sibling"

    def test_module_name_for_real_tree(self):
        assert module_name_for(
            REPO / "src" / "repro" / "serve" / "store.py") \
            == "repro.serve.store"
        assert module_name_for(
            REPO / "src" / "repro" / "analysis" / "__init__.py") \
            == "repro.analysis"

    def test_finding_render(self):
        finding = Finding(rule="r", path="p.py", line=3, col=7,
                          message="msg")
        assert finding.render() == "p.py:3:7: r: msg"


class TestCli:
    def test_lint_clean_file_exits_zero(self, capsys):
        assert cli_main(["lint",
                         str(REPO / "src" / "repro" / "errors.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_racy_fixture_exits_one_with_json(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "seeded_race.py"),
                         "--json", "--select", "lock-discipline"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"] == {"lock-discipline": 2}

    def test_lint_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.name in out

    def test_lint_unknown_rule_exits_two(self, capsys):
        assert cli_main(["lint", "--select", "nope",
                         str(FIXTURES / "seeded_race.py")]) == 2


class TestTreeIsClean:
    def test_repro_lint_src_is_clean(self):
        """The acceptance gate, self-enforced from tier-1: every rule over
        the whole library tree, zero findings."""
        result = lint_paths([str(REPO / "src" / "repro")])
        assert len(result.rules_run) >= 8
        assert result.clean, "\n" + render_text(result)
