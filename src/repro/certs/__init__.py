"""Delta verification: reusable certificates for warm-starting BaB.

The paper's engineering loop re-verifies after every weight change, and a
from-scratch branch and bound pays the full search each time even though
consecutive networks differ by a small perturbation.  This package turns a
*proved* threshold solve into a persistent :class:`Certificate` -- the
final covering frontier of settled phase-map leaves, their per-leaf bounds
and verdicts, their node-LP **dual multipliers**, plus the fingerprints
pinning what was proved -- and replays it against the *next* network
version: one batched float64 re-screen of all stored leaves against the
new weights (phase-clamped interval/affine bounds, tightened per leaf by
a Lagrangian evaluation of the stored duals -- weak duality makes any
multipliers sound), then delta-LP re-solves only for the leaves whose
bounds actually moved.

Soundness contract (the one rule everything here obeys): a stored
certificate is **never trusted**.  Its leaves are only *hints* -- a warm
start for :meth:`repro.exact.bab.BaBSolver.maximize`, whose batched
re-screen re-derives every reused bound in float64 against the current
network before acceptance, and whose search completes whatever the screen
leaves open.  A stale, corrupted, or adversarial certificate is either
rejected outright by :func:`validate_certificate` (malformed payload,
wrong architecture, non-covering leaves) or degrades into a slower -- but
still sound and complete -- solve.  It can never flip a verdict.

Certificate payloads cross module boundaries only as ``*_json`` wire
strings (see :func:`repro.api.serialize.certificate_to_json`) and are
persisted only through the serve-side :class:`~repro.serve.store.JobStore`
API -- the ``cert-discipline`` lint rule enforces both.
"""

from repro.certs.certificate import (
    CERT_VERSION,
    Certificate,
    certificate_key,
    content_fingerprint,
    leaves_cover,
    load_certificate,
    structural_fingerprint,
    validate_certificate,
)
from repro.certs.reuse import (
    dual_start_screen,
    extract_certificate,
    reverify_with_certificate,
)

__all__ = [
    "CERT_VERSION",
    "Certificate",
    "certificate_key",
    "content_fingerprint",
    "dual_start_screen",
    "extract_certificate",
    "leaves_cover",
    "load_certificate",
    "reverify_with_certificate",
    "structural_fingerprint",
    "validate_certificate",
]
