"""Python client for the verification service's HTTP API.

:class:`ServeClient` is deliberately stdlib-only (``http.client``) so any
process with this package importable -- or any other HTTP speaker
following ``docs/wire_protocol.md`` -- can drive a server:

    >>> client = ServeClient("http://127.0.0.1:8717")
    >>> job = client.submit(spec)                 # Spec or wire dict
    >>> record = client.wait(job["job_id"])
    >>> verdict = client.verdict(job["job_id"])   # a repro.api Verdict
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional
from urllib.parse import quote, urlsplit

from repro.errors import QueueFullError, ServeError
from repro.serve.store import TERMINAL_STATES

__all__ = ["ServeClient"]

#: Connection-level failures worth one same-request retry -- but only for
#: idempotent GETs: a resend after these may re-run a non-idempotent POST.
_RETRYABLE_NETWORK_ERRORS = (ConnectionError, TimeoutError,
                             http.client.HTTPException, OSError)


class ServeClient:
    """Talk to one ``repro serve`` endpoint."""

    def __init__(self, base_url: str = "http://127.0.0.1:8717",
                 timeout: float = 30.0):
        parts = urlsplit(base_url if "//" in base_url
                         else "http://" + base_url)
        if parts.scheme not in ("http", ""):
            raise ServeError(
                f"only http:// endpoints are supported, got {base_url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8717
        self.timeout = timeout

    # -------------------------------------------------------------- plumbing
    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None) -> Dict:
        attempts = 2 if method == "GET" else 1
        for attempt in range(1, attempts + 1):
            try:
                return self._request_once(method, path, payload)
            except _RETRYABLE_NETWORK_ERRORS:
                # ServeError/QueueFullError are *not* in this tuple: a
                # parsed server response must never be retried here.
                if attempt == attempts:
                    raise
                time.sleep(0.05)

    def _request_once(self, method: str, path: str,
                      payload: Optional[Dict] = None) -> Dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload, allow_nan=False)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"server returned unparseable JSON for {method} {path}: "
                f"{exc}") from None
        if response.status == 503:
            # Backpressure: surface the server's Retry-After so callers
            # can actually honour it instead of hammering the endpoint.
            try:
                retry_after = float(
                    response.getheader("Retry-After")
                    or data.get("retry_after") or 1.0)
            except (TypeError, ValueError):
                retry_after = 1.0
            raise QueueFullError(
                data.get("error", f"{method} {path} failed (503)"),
                retry_after=retry_after)
        if response.status >= 400:
            raise ServeError(
                data.get("error",
                         f"{method} {path} failed ({response.status})"))
        return data

    # ------------------------------------------------------------------ API
    def submit(self, spec, config=None, priority: int = 0,
               timeout: Optional[float] = None,
               deadline: Optional[float] = None) -> Dict:
        """Submit a Spec (object or wire dict); returns the job record.
        ``deadline`` is the total client budget in seconds from now (the
        server never starts work past it).  Raises
        :class:`~repro.errors.QueueFullError` (with ``retry_after``) when
        the server sheds load."""
        from repro.api.config import VerifyConfig
        from repro.api.specs import Spec, spec_to_dict

        document: Dict = {
            "spec": spec_to_dict(spec) if isinstance(spec, Spec) else spec,
        }
        if config is not None:
            document["config"] = (config.to_dict()
                                  if isinstance(config, VerifyConfig)
                                  else config)
        if priority:
            document["priority"] = int(priority)
        if timeout is not None:
            document["timeout"] = float(timeout)
        if deadline is not None:
            document["deadline"] = float(deadline)
        return self._request("POST", "/jobs", document)

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{quote(job_id)}")

    def jobs(self, state: Optional[str] = None,
             limit: Optional[int] = None) -> List[Dict]:
        filters = []
        if state:
            filters.append(f"state={quote(state)}")
        if limit is not None:
            filters.append(f"limit={int(limit)}")
        path = "/jobs" + ("?" + "&".join(filters) if filters else "")
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> Dict:
        return self._request("DELETE", f"/jobs/{quote(job_id)}")

    def health(self) -> Dict:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/stats")

    def wait(self, job_id: str, timeout: Optional[float] = 60.0,
             poll: float = 0.05, max_poll: float = 1.0) -> Dict:
        """Poll until the job is terminal; returns its final record.

        The interval backs off exponentially from ``poll`` to ``max_poll``
        (capped), so short jobs return fast while long solves do not
        busy-hammer the server with a fixed-rate poll loop.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = poll
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:g}s")
            sleep_for = delay
            if deadline is not None:
                sleep_for = min(sleep_for, max(deadline - time.monotonic(),
                                               0.0))
            time.sleep(sleep_for)
            delay = min(delay * 1.6, max_poll)

    def verdict(self, job_id: str):
        """The finished job's verdict as a :class:`repro.api` object."""
        from repro.api.serialize import verdict_from_dict

        record = self.job(job_id)
        if record.get("verdict") is None:
            raise ServeError(
                f"job {job_id} has no verdict (state {record['state']!r}"
                + (f", error {record['error']!r}" if record.get("error")
                   else "") + ")")
        return verdict_from_dict(record["verdict"])
