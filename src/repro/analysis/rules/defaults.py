"""``no-restated-defaults``: solver knobs have exactly one home.

PR 4 centralised every solver knob (tolerance, node limits, worker
count, ...) in :class:`repro.api.config.VerifyConfig`, whose module also
exports the canonical ``DEFAULT_*`` constants.  A function signature or
dataclass field elsewhere that restates a knob's default as a *literal*
(``workers: int = 1``) silently forks the default: bump the constant and
the restated copy keeps the old value.  This rule superseded the
runtime ``inspect``-based gate that used to live in ``tests/test_api.py``.

Flagged: a parameter or class-body annotated field whose name is a knob
and whose default is a literal constant *equal to the knob's canonical
default* -- the drift hazard.  A literal that *differs* from the
canonical value is a deliberate per-entry-point override (``method=
"exact"`` for Proposition 2) and stays legal; so do ``None`` (resolved
at use) and name references (``DEFAULT_WORKERS``, ``config.workers``).
The canonical values are read live from ``VerifyConfig()``, so the rule
can never itself drift out of sync.
"""

from __future__ import annotations

import ast
import dataclasses
from functools import lru_cache
from typing import Dict, Iterator, Optional

from repro.analysis.core import Finding, ModuleContext, Rule

__all__ = ["NoRestatedDefaultsRule", "canonical_defaults"]


@lru_cache(maxsize=1)
def canonical_defaults() -> Dict[str, object]:
    """Knob name -> canonical default, read live from ``VerifyConfig``
    so the rule tracks the single source of truth by construction."""
    from repro.api.config import VerifyConfig

    instance = VerifyConfig()
    return {field.name: getattr(instance, field.name)
            for field in dataclasses.fields(VerifyConfig)}


class NoRestatedDefaultsRule(Rule):
    name = "no-restated-defaults"
    description = ("solver-knob defaults must reference "
                   "repro.api.config, not restate literals")
    # Solver modules plus the API layer that fronts them; serve/ ships
    # knobs only as config_json wire strings, so it has nothing to
    # restate, and test/bench code legitimately pins literals.
    scope = ("repro.exact", "repro.core", "repro.api", "repro.netabs")
    # The single source of truth defines the literals, by definition.
    exempt = ("repro.api.config",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_signature(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class_body(ctx, node)

    def _check_signature(self, ctx: ModuleContext,
                         node: ast.AST) -> Iterator[Finding]:
        args = node.args
        positional = args.posonlyargs + args.args
        # Defaults right-align against the positional parameters.
        for arg, default in zip(positional[len(positional)
                                           - len(args.defaults):],
                                args.defaults):
            yield from self._check_default(ctx, arg.arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                yield from self._check_default(ctx, arg.arg, default)

    def _check_class_body(self, ctx: ModuleContext,
                          node: ast.ClassDef) -> Iterator[Finding]:
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                    and isinstance(stmt.target, ast.Name):
                yield from self._check_default(ctx, stmt.target.id,
                                               stmt.value)

    def _check_default(self, ctx: ModuleContext, name: str,
                       default: ast.expr) -> Iterator[Finding]:
        canonical = canonical_defaults()
        if name not in canonical:
            return
        literal = self._literal_value(default)
        if literal is None:
            return
        value = literal[0]
        if not self._same_value(value, canonical[name]):
            return  # a deliberate override, not a restated default
        yield self.finding(
            ctx, default,
            f"knob {name!r} restates its canonical default "
            f"({value!r}) as a literal; reference the DEFAULT_* "
            "constant (or resolve from VerifyConfig at use) so a "
            "config change cannot silently fork it")

    @staticmethod
    def _literal_value(node: ast.expr) -> Optional[tuple]:
        """``(value,)`` for a non-``None`` literal constant (unary minus
        included), else ``None`` -- wrapped so a literal ``False``/``0``
        survives the None-test."""
        sign = 1
        if isinstance(node, ast.UnaryOp) \
                and isinstance(node.op, (ast.USub, ast.UAdd)):
            sign = -1 if isinstance(node.op, ast.USub) else 1
            node = node.operand
        if isinstance(node, ast.Constant) and node.value is not None:
            value = node.value
            if sign == -1 and isinstance(value, (int, float)):
                value = -value
            return (value,)
        return None

    @staticmethod
    def _same_value(literal: object, canonical: object) -> bool:
        # bool-vs-int discipline: True must not match workers=1.
        if isinstance(literal, bool) != isinstance(canonical, bool):
            return False
        try:
            return bool(literal == canonical)
        except Exception:
            return False
