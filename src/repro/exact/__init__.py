"""Exact verification: LP, big-M MILP, ReLU branch-and-bound, splitting."""

from repro.exact.lp import (
    LP_INFEASIBLE,
    LP_OPTIMAL,
    LP_UNBOUNDED,
    LPResult,
    solve_lp,
    solve_system,
)
from repro.exact.encoding import (
    LinearSystem,
    NetworkEncoding,
    PhaseMap,
    clear_encoding_cache,
    encoding_cache_stats,
)
from repro.exact.milp import MILPResult, solve_milp
from repro.exact.bab import (
    BaBResult,
    BaBSolver,
    maximize_output,
    minimize_output,
)
from repro.exact.parallel_bab import FRONTIER_WIDTH, maximize_frontier
from repro.exact.splitting import SplitResult, check_containment_split
from repro.exact.tighten import TightenStats, tighten_preactivation_bounds
from repro.exact.incremental import (
    BranchCertificate,
    certify_threshold,
    prove_with_certificate,
)
from repro.exact.verify import (
    ContainmentResult,
    check_containment,
    output_range_exact,
)

__all__ = [
    "BaBResult",
    "BranchCertificate",
    "FRONTIER_WIDTH",
    "maximize_frontier",
    "TightenStats",
    "certify_threshold",
    "prove_with_certificate",
    "tighten_preactivation_bounds",
    "BaBSolver",
    "ContainmentResult",
    "LP_INFEASIBLE",
    "LP_OPTIMAL",
    "LP_UNBOUNDED",
    "LPResult",
    "LinearSystem",
    "MILPResult",
    "NetworkEncoding",
    "PhaseMap",
    "SplitResult",
    "check_containment",
    "check_containment_split",
    "clear_encoding_cache",
    "encoding_cache_stats",
    "maximize_output",
    "minimize_output",
    "output_range_exact",
    "solve_lp",
    "solve_milp",
    "solve_system",
]
