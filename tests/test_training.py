"""Unit tests for repro.nn.training: losses decrease, freezing works."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import TrainConfig, fine_tune, mse_loss, random_relu_network, train


def _linear_task(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = (x @ np.array([1.0, -2.0, 0.5]))[:, None]
    return x, y


class TestMSELoss:
    def test_zero_at_perfect_prediction(self):
        p = np.ones((4, 2))
        loss, grad = mse_loss(p, p.copy())
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros_like(p))

    def test_gradient_direction(self):
        pred = np.array([[1.0]])
        target = np.array([[0.0]])
        loss, grad = mse_loss(pred, target)
        assert loss == 1.0 and grad[0, 0] > 0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mse_loss(np.zeros((2, 1)), np.zeros((3, 1)))


class TestTrain:
    def test_sgd_reduces_loss(self):
        x, y = _linear_task()
        net = random_relu_network([3, 16, 1], seed=1)
        res = train(net, x, y, TrainConfig(epochs=30, learning_rate=0.01))
        assert res.final_loss < 0.25 * res.losses[0]

    def test_adam_reduces_loss(self):
        x, y = _linear_task()
        net = random_relu_network([3, 16, 1], seed=2)
        res = train(net, x, y,
                    TrainConfig(epochs=30, learning_rate=3e-3, optimizer="adam"))
        assert res.final_loss < 0.25 * res.losses[0]

    def test_deterministic_given_seed(self):
        x, y = _linear_task()
        n1 = random_relu_network([3, 8, 1], seed=3)
        n2 = random_relu_network([3, 8, 1], seed=3)
        train(n1, x, y, TrainConfig(epochs=5, seed=9))
        train(n2, x, y, TrainConfig(epochs=5, seed=9))
        assert n1.max_weight_delta(n2) == 0.0

    def test_frozen_blocks_do_not_move(self):
        x, y = _linear_task()
        net = random_relu_network([3, 8, 1], seed=4)
        w0 = net.blocks()[0].dense.weight.copy()
        train(net, x, y, TrainConfig(epochs=5, frozen_blocks=[0]))
        np.testing.assert_array_equal(net.blocks()[0].dense.weight, w0)
        # but the unfrozen block moved
        assert not np.allclose(net.blocks()[1].dense.weight, 0.0)

    def test_rejects_bad_shapes(self):
        net = random_relu_network([3, 4, 1], seed=0)
        with pytest.raises(ShapeError):
            train(net, np.zeros(3), np.zeros(1))
        with pytest.raises(ShapeError):
            train(net, np.zeros((4, 3)), np.zeros((5, 1)))

    def test_scalar_targets_accepted(self):
        x, y = _linear_task()
        net = random_relu_network([3, 8, 1], seed=5)
        res = train(net, x, y[:, 0], TrainConfig(epochs=2))
        assert len(res.losses) == 2


class TestFineTune:
    def test_returns_new_network_with_small_delta(self):
        x, y = _linear_task()
        net = random_relu_network([3, 8, 1], seed=6)
        train(net, x, y, TrainConfig(epochs=20, learning_rate=0.01))
        tuned = fine_tune(net, x, y, learning_rate=1e-3, epochs=2)
        assert tuned is not net
        delta = net.max_weight_delta(tuned)
        assert 0.0 <= delta < 0.05

    def test_fine_tune_respects_frozen(self):
        x, y = _linear_task()
        net = random_relu_network([3, 8, 1], seed=7)
        tuned = fine_tune(net, x, y, frozen_blocks=[0], epochs=1)
        np.testing.assert_array_equal(
            tuned.blocks()[0].dense.weight, net.blocks()[0].dense.weight)

    def test_fine_tune_improves_on_shifted_labels(self):
        x, y = _linear_task()
        net = random_relu_network([3, 16, 1], seed=8)
        train(net, x, y, TrainConfig(epochs=30, learning_rate=0.01))
        y_shift = y + 0.05
        before = mse_loss(np.atleast_2d(net.forward(x)).reshape(y.shape), y_shift)[0]
        tuned = fine_tune(net, x, y_shift, learning_rate=1e-2, epochs=10)
        after = mse_loss(np.atleast_2d(tuned.forward(x)).reshape(y.shape), y_shift)[0]
        assert after < before
