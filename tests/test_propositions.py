"""Tests for Propositions 1-6: correctness of each reuse condition.

The soundness contract under test: whenever a checker returns
``holds=True``, dense random sampling of the *new* problem must find no
violation.  Conversely the checkers must reject/abstain in scenarios
engineered to break their premises.
"""

import numpy as np
import pytest

from repro.domains import Box
from repro.domains.propagate import inductive_states
from repro.nn import fine_tune, random_relu_network
from repro.core import (
    SVbTV,
    VerificationProblem,
    check_prop1,
    check_prop2,
    check_prop3,
    check_prop4,
    check_prop5,
    check_prop6,
    verify_from_scratch,
)


@pytest.fixture(scope="module")
def setup():
    """A verified baseline with all artifacts, plus a small fine-tune."""
    net = random_relu_network([4, 10, 8, 6, 1], seed=3, weight_scale=0.6)
    din = Box(np.zeros(4), 0.8 * np.ones(4))
    sn = inductive_states(net, din, 0.02)[-1]
    dout = sn.inflate(0.25 * sn.widths.max() + 0.1)
    problem = VerificationProblem(net, din, dout)
    base = verify_from_scratch(problem, with_network_abstraction=True,
                               netabs_groups=3, netabs_margin=0.05)
    assert base.holds
    rng = np.random.default_rng(0)
    x = din.sample(200, rng)
    y = net.forward(x)
    tuned = fine_tune(net, x, y + rng.normal(0, 0.01, size=y.shape),
                      learning_rate=5e-4, epochs=1)
    return problem, base.artifacts, tuned


def _no_violation(network, box, dout, n=3000, seed=1):
    xs = box.sample(n, np.random.default_rng(seed))
    ys = np.atleast_2d(network.forward(xs))
    return bool(np.all(ys >= dout.lower - 1e-9) and np.all(ys <= dout.upper + 1e-9))


class TestProp1:
    def test_holds_on_small_enlargement(self, setup):
        problem, artifacts, _ = setup
        enlarged = problem.din.inflate(0.01)
        res = check_prop1(artifacts, enlarged)
        assert res.holds is True
        assert _no_violation(problem.network, enlarged, problem.dout)
        assert len(res.subproblems) == 1

    def test_fails_on_huge_enlargement(self, setup):
        problem, artifacts, _ = setup
        res = check_prop1(artifacts, problem.din.inflate(5.0))
        assert res.holds is not True

    def test_fig2_scenario(self, fig2, unit_box2, enlarged_box2):
        """The full paper walk-through: box abstraction on the enlarged
        domain fails (12.4 > 12) but Prop 1's exact local check succeeds."""
        from repro.core import StateAbstractions, ProofArtifacts
        from repro.domains.propagate import propagate_network

        boxes = propagate_network(fig2, unit_box2, "box")
        dout = Box(np.array([0.0]), np.array([12.0]))
        problem = VerificationProblem(fig2, unit_box2, dout)
        artifacts = ProofArtifacts(
            problem=problem,
            states=StateAbstractions(boxes=boxes, domain="box"),
            states_prove_safety=True,
        )
        # fig2 has exactly 2 blocks: prop1 abstains (S2 == output layer).
        res = check_prop1(artifacts, enlarged_box2)
        assert res.holds is None  # needs >= 3 blocks
        # With a third (identity-ish) tail block the check becomes usable --
        # exercised in the dedicated fig2 benchmark; here we validate the
        # underlying exact check directly:
        from repro.exact import check_containment

        head = fig2.subnetwork(0, 2)
        out = check_containment(head, enlarged_box2, boxes[-1], method="exact")
        assert out.holds is True  # 6.2 <= 12

    def test_premise_missing(self, setup):
        problem, artifacts, _ = setup
        from repro.core import ProofArtifacts

        empty = ProofArtifacts(problem=problem)
        res = check_prop1(empty, problem.din.inflate(0.01))
        assert res.holds is None


class TestProp2:
    def test_reenters_early(self, setup):
        problem, artifacts, _ = setup
        enlarged = problem.din.inflate(0.01)
        res = check_prop2(artifacts, enlarged)
        assert res.holds is True
        assert "re-entered" in res.detail
        assert _no_violation(problem.network, enlarged, problem.dout)

    def test_fails_on_huge_enlargement(self, setup):
        problem, artifacts, _ = setup
        res = check_prop2(artifacts, problem.din.inflate(10.0))
        assert res.holds is False
        assert len(res.subproblems) == problem.network.num_blocks - 2


class TestProp3:
    def test_paper_worked_example(self):
        """Din=[1,2]^2, kappa=0.02, ell=100, Sn=[1,8], Dout=[-10,10]:
        the inflated set is [-1, 10] which fits in Dout."""
        from repro.core import (LipschitzCertificate, ProofArtifacts,
                                StateAbstractions)

        net = random_relu_network([2, 3, 1], seed=0)  # placeholder function
        problem = VerificationProblem(
            net, Box(np.ones(2), 2 * np.ones(2)),
            Box(np.array([-10.0]), np.array([10.0])))
        artifacts = ProofArtifacts(
            problem=problem,
            states=StateAbstractions(
                boxes=[Box(np.zeros(3), np.ones(3)),
                       Box(np.array([1.0]), np.array([8.0]))]),
            lipschitz=LipschitzCertificate(ell=100.0),
        )
        enlarged = Box(np.ones(2) - 0.01414, 2 * np.ones(2) + 0.01414)
        res = check_prop3(artifacts, enlarged)
        assert res.holds is True
        # the same setup with a tighter Dout fails
        problem2 = VerificationProblem(
            net, problem.din, Box(np.array([-0.5]), np.array([9.0])))
        artifacts2 = ProofArtifacts(
            problem=problem2, states=artifacts.states,
            lipschitz=artifacts.lipschitz)
        res2 = check_prop3(artifacts2, enlarged)
        assert res2.holds is False

    def test_sound_on_real_network(self, setup):
        problem, artifacts, _ = setup
        enlarged = problem.din.inflate(1e-4)
        res = check_prop3(artifacts, enlarged)
        if res.holds:
            assert _no_violation(problem.network, enlarged, problem.dout)

    def test_no_enlargement_trivially_holds(self, setup):
        problem, artifacts, _ = setup
        res = check_prop3(artifacts, problem.din)
        assert res.holds is True


class TestProp4:
    def test_small_tune_passes_all_layers(self, setup):
        problem, artifacts, tuned = setup
        res = check_prop4(artifacts, tuned)
        assert res.holds is True
        assert len(res.subproblems) == tuned.num_blocks
        assert _no_violation(tuned, problem.din, problem.dout)

    def test_large_tune_fails_somewhere(self, setup):
        problem, artifacts, _ = setup
        big = problem.network.perturb(1.0, np.random.default_rng(9))
        res = check_prop4(artifacts, big)
        assert res.holds is not True

    def test_enlarged_domain_supported(self, setup):
        problem, artifacts, tuned = setup
        enlarged = problem.din.inflate(0.005)
        res = check_prop4(artifacts, tuned, enlarged_din=enlarged)
        if res.holds:
            assert _no_violation(tuned, enlarged, problem.dout)

    def test_stop_on_failure_short_circuits(self, setup):
        problem, artifacts, _ = setup
        big = problem.network.perturb(1.0, np.random.default_rng(9))
        full = check_prop4(artifacts, big, stop_on_failure=False)
        short = check_prop4(artifacts, big, stop_on_failure=True)
        assert len(short.subproblems) <= len(full.subproblems)


class TestProp5:
    def test_segments_pass_for_small_tune(self, setup):
        problem, artifacts, tuned = setup
        res = check_prop5(artifacts, tuned, alphas=[2])
        assert res.holds is True
        assert len(res.subproblems) == 2

    def test_paper_six_layer_decomposition_shape(self, setup):
        """alphas=(2,4) on a 6-block net gives exactly 3 subproblems."""
        net = random_relu_network([3, 8, 8, 8, 8, 8, 1], seed=1,
                                  weight_scale=0.4)
        din = Box(np.zeros(3), 0.5 * np.ones(3))
        sn = inductive_states(net, din, 0.02)[-1]
        problem = VerificationProblem(net, din, sn.inflate(1.0))
        base = verify_from_scratch(problem, rigor="abstract")
        res = check_prop5(base.artifacts, net.copy(), alphas=[2, 4])
        assert len(res.subproblems) == 3
        assert res.holds is True

    def test_invalid_alphas(self, setup):
        problem, artifacts, tuned = setup
        from repro.errors import ArtifactError

        with pytest.raises(ArtifactError):
            check_prop5(artifacts, tuned, alphas=[0])
        with pytest.raises(ArtifactError):
            check_prop5(artifacts, tuned, alphas=[2, 2])


class TestProp6:
    def test_small_tune_transfers(self, setup):
        problem, artifacts, tuned = setup
        res = check_prop6(artifacts, tuned, recheck_safety=True)
        # transfer may legitimately fail if the abstraction is too coarse
        # for Dout; but the domination check itself must pass.
        assert res.subproblems[0].holds is True
        if res.holds:
            assert _no_violation(tuned, problem.din, problem.dout)

    def test_large_tune_rejected(self, setup):
        problem, artifacts, _ = setup
        big = problem.network.perturb(1.0, np.random.default_rng(5))
        res = check_prop6(artifacts, big)
        assert res.holds is False

    def test_missing_artifact(self, setup):
        problem, artifacts, tuned = setup
        from repro.core import ProofArtifacts
        from repro.errors import ArtifactError

        empty = ProofArtifacts(problem=problem)
        with pytest.raises(ArtifactError):
            check_prop6(empty, tuned)
