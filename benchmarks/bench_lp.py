"""Sparse incremental LP kernel: per-node encoding cost, dense vs delta.

Measures the tentpole of the sparse kernel over widths ``{16, 64, 256}``
and a branch-and-bound-style frontier of phase-constrained nodes:

* ``dense_build_s`` -- the historical full dense rebuild per node
  (per-neuron Python loops, one ``np.zeros(n)`` row at a time);
* ``base_build_s`` -- the one-off vectorised COO/CSR base assembly;
* ``delta_build_s`` -- composing one node as *base + phase delta*, the
  cost every BaB node actually pays after the first;
* ``dense_solve_s`` / ``sparse_solve_s`` -- HiGHS wall-time per form, so
  LP *construction* and LP *solve* stay separately visible in the
  perf trajectory.

Also replays branch-and-bound end-to-end in both forms to confirm the
kernel changes wall-time only: verdicts, bounds, and ``lp_solves`` must be
identical.

Run standalone for the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_lp.py [output.json] [--smoke]

(``--smoke`` shrinks widths and node counts to CI-smoke size) or through
pytest for the human-readable report and the regression gates (delta
composition >= 5x the dense rebuild at width >= 64; identical BaB results
across forms).
"""

import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone: make src/ and repo root importable
    _ROOT = Path(__file__).resolve().parent.parent
    for entry in (str(_ROOT / "src"), str(_ROOT)):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from repro.domains import Box
from repro.exact import BaBSolver, NetworkEncoding
from repro.exact.lp import solve_system
from repro.nn import fig2_network, random_relu_network

from benchmarks.common import emit_json

WIDTHS = (16, 64, 256)
NUM_NODES = 24
SMOKE_WIDTHS = (8, 16)
SMOKE_NODES = 6
INPUT_DIM = 8


def _frontier(enc, rng, num_nodes, max_depth=10):
    """Phase maps shaped like a BaB frontier: each node fixes a handful of
    unstable neurons, siblings differing in the last sign."""
    unstable = enc.unstable_neurons()
    if not unstable:
        raise ValueError(
            "benchmark network is fully stable over the box -- widen the "
            "box or raise weight_scale so a BaB frontier exists")
    nodes = []
    while len(nodes) < num_nodes:
        depth = int(rng.integers(1, min(max_depth, len(unstable)) + 1))
        picks = rng.choice(len(unstable), size=depth, replace=False)
        phases = {unstable[int(j)]: int(rng.choice((-1, 1))) for j in picks}
        nodes.append(phases)
    return nodes


def _avg_time(fn, args_list, repeats=3):
    """Best-of-``repeats`` average seconds of ``fn`` over all args."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for args in args_list:
            fn(args)
        best = min(best, (time.perf_counter() - start) / len(args_list))
    return best


def run_lp_kernel_suite(widths=WIDTHS, num_nodes=NUM_NODES):
    """Per-node LP construction and solve timings, dense vs sparse forms."""
    rng = np.random.default_rng(0)
    rows = []
    for width in widths:
        dims = [INPUT_DIM, width, width, 2]
        network = random_relu_network(dims, seed=0, weight_scale=0.4)
        box = Box(-np.ones(INPUT_DIM), np.ones(INPUT_DIM))
        enc = NetworkEncoding(network, box)
        nodes = _frontier(enc, rng, num_nodes)

        # One-off base assembly, measured on a fresh encoding that shares
        # the already-propagated bounds (isolates assembly from symbolic
        # propagation).
        fresh = NetworkEncoding(network, box, pre_boxes=enc.pre_boxes)
        t0 = time.perf_counter()
        fresh.build_lp(form="sparse")
        base_build_s = time.perf_counter() - t0

        repeats = 3 if width <= 64 else 2
        dense_build_s = _avg_time(
            lambda p: enc.build_lp(p, form="dense"), nodes, repeats)
        delta_build_s = _avg_time(
            lambda p: enc.build_lp(p, form="sparse"), nodes, repeats)

        probe = nodes[len(nodes) // 2]
        dense_system = enc.build_lp(probe, form="dense")
        sparse_system = enc.build_lp(probe, form="sparse")
        objective = enc.output_objective(np.array([1.0, -1.0]))
        dense_solve_s = _avg_time(
            lambda s: solve_system(objective, s), [dense_system] * 3, repeats)
        sparse_solve_s = _avg_time(
            lambda s: solve_system(objective, s), [sparse_system] * 3, repeats)

        rows.append({
            "width": width,
            "num_vars": enc.num_continuous,
            "num_unstable": len(enc.unstable_neurons()),
            "frontier_nodes": len(nodes),
            "nnz": sparse_system.nnz,
            "base_build_s": base_build_s,
            "dense_build_s": dense_build_s,
            "delta_build_s": delta_build_s,
            "build_speedup": dense_build_s / delta_build_s
            if delta_build_s > 0 else float("inf"),
            "dense_solve_s": dense_solve_s,
            "sparse_solve_s": sparse_solve_s,
        })
    return rows


def run_bab_forms(node_limit=200):
    """Branch and bound end-to-end per form: wall-time may move, results
    (verdict, bound, lp_solves) must not."""
    workloads = [
        ("fig2 max n4 over [-1,1.1]^2", fig2_network(),
         Box(-np.ones(2), np.array([1.1, 1.1])), np.array([1.0]),
         node_limit),
        ("random 4-24-16-2", random_relu_network([4, 24, 16, 2], seed=0,
                                                 weight_scale=1.2),
         Box(-np.ones(4), np.ones(4)), np.array([1.0, -0.5]), node_limit),
        # Real width: per-node construction is a visible slice of node cost.
        ("random 8-64-64-2", random_relu_network([8, 64, 64, 2], seed=1,
                                                 weight_scale=0.4),
         Box(-np.ones(8), np.ones(8)), np.array([1.0, -1.0]),
         max(1, node_limit // 8)),
    ]
    rows = []
    for name, network, box, c, limit in workloads:
        per_form = {}
        # "sparse" here is the shipping default (form="auto": delta
        # composition at real widths, dense fast path on tiny systems),
        # measured against a forced historical dense rebuild.
        for label, form in (("dense", "dense"), ("sparse", "auto")):
            best = float("inf")
            for _ in range(3):  # best-of-3: LP wall-times are noisy
                encoding = NetworkEncoding(network, box)  # cold per run
                start = time.perf_counter()
                result = BaBSolver(network, box, encoding=encoding,
                                   node_limit=limit,
                                   lp_form=form).maximize(c)
                best = min(best, time.perf_counter() - start)
            per_form[label] = (result, best)
        dense, dense_s = per_form["dense"]
        sparse, sparse_s = per_form["sparse"]
        rows.append({
            "workload": name,
            "status_dense": dense.status,
            "status_sparse": sparse.status,
            "upper_bound_dense": dense.upper_bound,
            "upper_bound_sparse": sparse.upper_bound,
            "bound_abs_diff": abs(dense.upper_bound - sparse.upper_bound),
            "lp_solves_dense": dense.lp_solves,
            "lp_solves_sparse": sparse.lp_solves,
            "wall_dense_s": dense_s,
            "wall_sparse_s": sparse_s,
        })
    return rows


def _row(rows, width):
    return next(r for r in rows if r["width"] == width)


def test_report_lp_kernel(capsys):
    rows = run_lp_kernel_suite()
    lines = ["\nPer-node LP construction, dense rebuild vs base+delta",
             f"  {'width':>5} | {'unstable':>8} | {'dense [ms]':>10} | "
             f"{'delta [ms]':>10} | {'speedup':>8} | {'base [ms]':>9}"]
    for r in rows:
        lines.append(
            f"  {r['width']:>5} | {r['num_unstable']:>8} | "
            f"{1e3 * r['dense_build_s']:>10.3f} | "
            f"{1e3 * r['delta_build_s']:>10.3f} | "
            f"{r['build_speedup']:>7.1f}x | {1e3 * r['base_build_s']:>9.3f}")
    with capsys.disabled():
        print("\n".join(lines))
    # The acceptance gate: composing a node as base+delta must clearly beat
    # rebuilding the dense system once the width is real.
    for width in (64, 256):
        assert _row(rows, width)["build_speedup"] >= 5.0


def test_report_bab_forms(capsys):
    rows = run_bab_forms()
    with capsys.disabled():
        print("\nBaB end-to-end, dense vs sparse node LPs")
        for r in rows:
            print(f"  {r['workload']}: {r['wall_dense_s']:.3f}s -> "
                  f"{r['wall_sparse_s']:.3f}s, lp_solves "
                  f"{r['lp_solves_dense']} vs {r['lp_solves_sparse']}")
    for r in rows:
        assert r["status_dense"] == r["status_sparse"]
        assert r["lp_solves_dense"] == r["lp_solves_sparse"]
        assert r["bound_abs_diff"] <= 1e-9


def main(path=None, smoke=False):
    widths = SMOKE_WIDTHS if smoke else WIDTHS
    num_nodes = SMOKE_NODES if smoke else NUM_NODES
    payload = {
        "smoke": smoke,
        "lp_kernel": run_lp_kernel_suite(widths, num_nodes),
        "bab_forms": run_bab_forms(node_limit=50 if smoke else 200),
    }
    emit_json("bench_lp", payload, path=path)


if __name__ == "__main__":
    argv = [a for a in sys.argv[1:]]
    smoke = "--smoke" in argv
    argv = [a for a in argv if a != "--smoke"]
    main(argv[0] if argv else None, smoke=smoke)
