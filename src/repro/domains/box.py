"""Axis-aligned boxes: the library's universal set representation.

Boxes play three roles in the reproduction, matching the paper's evaluation:

1. **Input domains** ``Din`` and their enlargements ``Din ∪ Δin`` (the
   monitor records per-feature min/max bounds, so enlarged domains are again
   boxes containing the original).
2. **State abstractions** ``S_i``: ReluVal-style analysis bounds every neuron
   by lower/upper valuations, i.e. each ``S_i`` is a box.
3. **Safe output sets** ``Dout``.

Besides set operations, this module implements the box abstract transformers
(interval arithmetic) used as the cheapest propagation domain, and the
``κ`` computation of Proposition 3 (the bound on the distance from any point
of ``Δin`` to ``Din``, exact for boxed domains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DomainError, ShapeError, UnsupportedLayerError
from repro.nn.layers import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.network import Network

__all__ = ["Box", "box_kappa", "affine_bounds"]


@dataclass(frozen=True)
class Box:
    """Closed axis-aligned box ``{x : lower <= x <= upper}`` (elementwise)."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self):
        lower = np.asarray(self.lower, dtype=np.float64).reshape(-1)
        upper = np.asarray(self.upper, dtype=np.float64).reshape(-1)
        if lower.shape != upper.shape:
            raise ShapeError(f"bound shapes differ: {lower.shape} vs {upper.shape}")
        if lower.size == 0:
            raise DomainError("boxes must have at least one dimension")
        if np.any(lower > upper + 1e-12):
            worst = float(np.max(lower - upper))
            raise DomainError(f"lower exceeds upper by {worst:.3g}")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", np.maximum(upper, lower))

    # ------------------------------------------------------------ constructors
    @classmethod
    def unsafe(cls, lower: np.ndarray, upper: np.ndarray) -> "Box":
        """Validation-free fast-path constructor for propagator inner loops.

        Skips ``__post_init__`` entirely: the caller must supply 1-D float64
        arrays of equal shape with ``lower <= upper`` and treat them as
        immutable.  All public entry points keep using the validating
        constructor; this path exists because bound propagation constructs
        thousands of boxes whose invariants hold by arithmetic.
        """
        box = object.__new__(cls)
        object.__setattr__(box, "lower", lower)
        object.__setattr__(box, "upper", upper)
        return box

    @staticmethod
    def from_bounds(bounds: Sequence[Tuple[float, float]]) -> "Box":
        """Build from ``[(l1, u1), (l2, u2), ...]``."""
        arr = np.asarray(bounds, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ShapeError(f"expected (d, 2) bounds, got {arr.shape}")
        return Box(arr[:, 0], arr[:, 1])

    @staticmethod
    def from_samples(samples: np.ndarray, buffer: float = 0.0) -> "Box":
        """Tightest box containing ``samples`` ``(N, d)``, inflated by
        ``buffer`` on each side (the paper's "additional buffers")."""
        arr = np.asarray(samples, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ShapeError(f"expected non-empty (N, d) samples, got {arr.shape}")
        return Box(arr.min(axis=0) - buffer, arr.max(axis=0) + buffer)

    @staticmethod
    def centered(center: np.ndarray, radius) -> "Box":
        """Box ``[center - radius, center + radius]`` (radius scalar or vector)."""
        center = np.asarray(center, dtype=np.float64).reshape(-1)
        radius = np.broadcast_to(np.asarray(radius, dtype=np.float64), center.shape)
        if np.any(radius < 0):
            raise DomainError("radius must be non-negative")
        return Box(center - radius, center + radius)

    # -------------------------------------------------------------- geometry
    @property
    def dim(self) -> int:
        return self.lower.size

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lower + self.upper)

    @property
    def radius(self) -> np.ndarray:
        return 0.5 * (self.upper - self.lower)

    @property
    def widths(self) -> np.ndarray:
        return self.upper - self.lower

    def volume(self) -> float:
        """Product of widths (0 for degenerate boxes)."""
        return float(np.prod(self.widths))

    # ------------------------------------------------------------ set algebra
    def contains_point(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if x.shape != self.lower.shape:
            raise ShapeError(f"point dim {x.size} != box dim {self.dim}")
        return bool(np.all(x >= self.lower - tol) and np.all(x <= self.upper + tol))

    def contains_points(self, points: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        """Vectorised :meth:`contains_point`: per-row mask for ``(N, d)``
        samples -- the monitor's window-screening primitive."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.ndim != 2 or pts.shape[1] != self.dim:
            raise ShapeError(f"points shape {pts.shape} != (N, {self.dim})")
        return np.all((pts >= self.lower - tol) & (pts <= self.upper + tol), axis=1)

    def contains_box(self, other: "Box", tol: float = 1e-9) -> bool:
        self._check_same_dim(other)
        return bool(
            np.all(other.lower >= self.lower - tol)
            and np.all(other.upper <= self.upper + tol)
        )

    def containment_violation(self, other: "Box") -> float:
        """How far ``other`` sticks out of ``self`` (0 if contained).

        The maximum, over dimensions, of the outward excess; verification
        reports use it to quantify *by how much* a reuse condition failed.
        """
        self._check_same_dim(other)
        excess = np.maximum(self.lower - other.lower, other.upper - self.upper)
        return float(max(np.max(excess), 0.0))

    def intersects(self, other: "Box", tol: float = 1e-9) -> bool:
        self._check_same_dim(other)
        return bool(
            np.all(self.lower <= other.upper + tol)
            and np.all(other.lower <= self.upper + tol)
        )

    def union(self, other: "Box") -> "Box":
        """Smallest box containing both (join in the box lattice)."""
        self._check_same_dim(other)
        return Box(np.minimum(self.lower, other.lower),
                   np.maximum(self.upper, other.upper))

    def intersection(self, other: "Box") -> Optional["Box"]:
        """Largest box inside both, or ``None`` when disjoint."""
        self._check_same_dim(other)
        lo = np.maximum(self.lower, other.lower)
        hi = np.minimum(self.upper, other.upper)
        if np.any(lo > hi):
            return None
        return Box(lo, hi)

    def inflate(self, amount) -> "Box":
        """Grow each side by ``amount`` (scalar or per-dim vector).

        This is the ``Ŝn := {ŝ | ∃s ∈ Sn : |ŝ − s| ≤ ℓκ}`` operation from
        Proposition 3 when ``amount = ℓκ``.
        """
        amount = np.broadcast_to(np.asarray(amount, dtype=np.float64),
                                 self.lower.shape)
        if np.any(amount < 0):
            raise DomainError("inflation amount must be non-negative")
        return Box(self.lower - amount, self.upper + amount)

    def clip_point(self, x: np.ndarray) -> np.ndarray:
        """Project ``x`` onto the box (nearest point in Euclidean norm)."""
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        return np.clip(x, self.lower, self.upper)

    def distance_to_point(self, x: np.ndarray, ord: float = 2) -> float:
        """Distance from ``x`` to the box under the given norm."""
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        gap = np.maximum(np.maximum(self.lower - x, x - self.upper), 0.0)
        return float(np.linalg.norm(gap, ord=ord))

    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Uniform samples ``(n, d)`` from the box.

        Sampling is a *probe* API (counterexample search, drift
        simulation), never a verdict input: every verdict-path caller
        threads an explicitly seeded generator in, and the unseeded
        fallback exists for interactive exploration only.
        """
        rng = rng or np.random.default_rng()  # repro: disable=determinism
        u = rng.uniform(size=(int(n), self.dim))
        return self.lower + u * self.widths

    def corners(self, limit: int = 4096) -> np.ndarray:
        """All ``2^d`` corner points (guarded by ``limit``)."""
        if 2 ** self.dim > limit:
            raise DomainError(
                f"box has 2^{self.dim} corners, above the limit of {limit}"
            )
        grids = np.meshgrid(*[(lo, hi) for lo, hi in zip(self.lower, self.upper)],
                            indexing="ij")
        return np.stack([g.reshape(-1) for g in grids], axis=1)

    def split(self, dim: Optional[int] = None) -> Tuple["Box", "Box"]:
        """Bisect along ``dim`` (widest dimension when ``None``)."""
        if dim is None:
            dim = int(np.argmax(self.widths))
        if not 0 <= dim < self.dim:
            raise DomainError(f"split dim {dim} out of range for dim {self.dim}")
        mid = 0.5 * (self.lower[dim] + self.upper[dim])
        lo_hi = self.upper.copy()
        lo_hi[dim] = mid
        hi_lo = self.lower.copy()
        hi_lo[dim] = mid
        return Box(self.lower, lo_hi), Box(hi_lo, self.upper)

    def _check_same_dim(self, other: "Box") -> None:
        if other.dim != self.dim:
            raise ShapeError(f"box dims differ: {self.dim} vs {other.dim}")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Box)
            and np.array_equal(self.lower, other.lower)
            and np.array_equal(self.upper, other.upper)
        )

    def __hash__(self):
        return hash((self.lower.tobytes(), self.upper.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.dim <= 4:
            pairs = ", ".join(
                f"[{lo:.4g}, {hi:.4g}]" for lo, hi in zip(self.lower, self.upper)
            )
            return f"Box({pairs})"
        return f"Box(dim={self.dim})"


def box_kappa(din: Box, enlarged: Box, ord: float = 2) -> float:
    """The Proposition 3 constant ``κ`` for boxed domains.

    ``κ`` bounds, for every ``x1 ∈ Δin = enlarged \\ Din``, the distance to
    the nearest ``x2 ∈ Din``.  For boxes this maximum is attained at a corner
    of the enlarged box, so it equals the norm of the vector of per-dimension
    outward excesses -- computed exactly here.
    """
    if not enlarged.contains_box(din):
        raise DomainError("enlarged domain must contain the original Din")
    excess = np.maximum(
        np.maximum(din.lower - enlarged.lower, enlarged.upper - din.upper), 0.0
    )
    return float(np.linalg.norm(excess, ord=ord))


def affine_bounds(weight: np.ndarray, bias: np.ndarray, box: Box) -> Box:
    """Exact output box of ``W x + b`` over an input box (interval arithmetic).

    Exact because an affine image of a box attains each output coordinate's
    extremes independently at box corners.
    """
    weight = np.asarray(weight, dtype=np.float64)
    bias = np.asarray(bias, dtype=np.float64)
    if weight.shape[1] != box.dim:
        raise ShapeError(f"weight expects dim {weight.shape[1]}, box has {box.dim}")
    center = weight @ box.center + bias
    radius = np.abs(weight) @ box.radius
    return Box.unsafe(center - radius, center + radius)


class BoxPropagator:
    """Interval-arithmetic abstract transformers for a whole network."""

    name = "box"

    def propagate_block(self, block, box: Box) -> Box:
        """Push a box through one paper-layer ``g_k``."""
        out = affine_bounds(block.dense.weight, block.dense.bias, box)
        act = block.activation
        if act is None:
            return out
        return self.propagate_activation(act, out)

    @staticmethod
    def propagate_activation(act, box: Box) -> Box:
        """Monotone elementwise activations map boxes to boxes exactly."""
        if isinstance(act, ReLU):
            return Box.unsafe(np.maximum(box.lower, 0.0), np.maximum(box.upper, 0.0))
        if isinstance(act, LeakyReLU):
            a = act.alpha
            lo = np.where(box.lower > 0, box.lower, a * box.lower)
            hi = np.where(box.upper > 0, box.upper, a * box.upper)
            return Box.unsafe(lo, hi)
        if isinstance(act, (Sigmoid, Tanh)):
            return Box.unsafe(act.forward(box.lower), act.forward(box.upper))
        raise UnsupportedLayerError(f"no box transformer for {type(act).__name__}")

    def propagate(self, network: Network, input_box: Box) -> List[Box]:
        """Per-block output boxes ``[S_1, ..., S_n]`` for the input box."""
        if input_box.dim != network.input_dim:
            raise ShapeError(
                f"input box dim {input_box.dim} != network input {network.input_dim}"
            )
        boxes = []
        current = input_box
        for block in network.blocks():
            current = self.propagate_block(block, current)
            boxes.append(current)
        return boxes
