"""Incremental abstraction fixing (Section IV.C).

When Proposition 4's layer checks fail at exactly one state abstraction
``S_{i+1}``, full re-verification is still avoidable:

1. replace ``S_{i+1}`` by a freshly computed ``S'_{i+1}`` that does cover
   ``g'_{i+1}(S_i)``;
2. propagate ``S'`` forward and, at every subsequent boundary ``k``, check
   (exactly) whether ``g'_{k+1}(S'_k) ⊆ S_{k+1}`` -- *re-entering* the old
   proof as soon as the enlarged approximation is swallowed again;
3. if no re-entry happens before the last layer, verify the remaining
   sub-network traditionally from ``S'`` (and when the very first
   abstraction broke, nothing is reusable: re-verify the whole network).

Returns enough bookkeeping (replaced layer, re-entry layer, subproblems)
for the decomposition ablation and the report tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.api.config import (
    DEFAULT_DOMAIN,
    DEFAULT_METHOD,
    DEFAULT_NODE_LIMIT,
    DEFAULT_WORKERS,
    VerifyConfig,
)
from repro.domains.box import Box
from repro.domains.propagate import get_propagator
from repro.exact.verify import _check_containment
from repro.nn.network import Network
from repro.core.artifacts import ProofArtifacts
from repro.core.propositions import PropositionResult, SubproblemReport

__all__ = ["FixingResult", "incremental_fix"]


@dataclass
class FixingResult:
    """Outcome of the fixing procedure."""

    holds: Optional[bool]
    strategy: str
    replaced_layer: Optional[int] = None
    reentry_layer: Optional[int] = None
    subproblems: List[SubproblemReport] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def max_subproblem_time(self) -> float:
        if not self.subproblems:
            return self.elapsed
        return max(s.elapsed for s in self.subproblems)


def _full_reverification(new_network: Network, din: Box, dout: Box,
                         method: str, config: VerifyConfig,
                         subproblems: List[SubproblemReport],
                         started: float, strategy: str) -> FixingResult:
    res = _check_containment(new_network, din, dout, method=method,
                             config=config)
    subproblems.append(SubproblemReport.from_containment("full re-verification", res))
    return FixingResult(
        holds=res.holds,
        strategy=strategy,
        subproblems=subproblems,
        elapsed=time.perf_counter() - started,
    )


def incremental_fix(artifacts: ProofArtifacts, new_network: Network,
                    prop4_result: PropositionResult,
                    enlarged_din: Optional[Box] = None,
                    domain: str = DEFAULT_DOMAIN,
                    method: str = DEFAULT_METHOD,
                    node_limit: int = DEFAULT_NODE_LIMIT,
                    workers: int = DEFAULT_WORKERS,
                    config: Optional[VerifyConfig] = None) -> FixingResult:
    """Attempt the Section IV.C repair after a failed Proposition 4.

    ``prop4_result`` must be the (non-early-stopped) result of
    :func:`~repro.core.propositions.check_prop4` on the same inputs, whose
    per-layer failure pattern decides which repair applies.

    ``config`` (the engine path) supersedes the loose ``node_limit`` /
    ``workers`` keywords, which remain for compatibility.
    """
    if config is None:
        config = VerifyConfig(node_limit=node_limit, workers=workers)
    started = time.perf_counter()
    states = artifacts.require_states()
    din = enlarged_din if enlarged_din is not None else artifacts.problem.din
    dout = artifacts.problem.dout
    n = new_network.num_blocks
    subproblems: List[SubproblemReport] = []

    failing = [idx for idx, sub in enumerate(prop4_result.subproblems)
               if sub.holds is not True]
    if not failing:
        return FixingResult(holds=True, strategy="nothing to fix",
                            elapsed=time.perf_counter() - started)
    if len(failing) > 1:
        # Several broken abstractions: the paper's single-layer repair does not
        # apply; fall back to the traditional method on the whole network.
        return _full_reverification(
            new_network, din, dout, method, config, subproblems, started,
            strategy=f"{len(failing)} layers broken -> full re-verification")
    i = failing[0]
    if i == 0:
        # The very first abstraction broke: nothing upstream to reuse.
        return _full_reverification(
            new_network, din, dout, method, config, subproblems, started,
            strategy="first abstraction broken -> full re-verification")
    if i == n - 1:
        # The final check S_{n-1} -> Dout broke; there is no later proof to
        # re-enter, so verify the remaining tail exactly (blocks i..n over
        # S_{n-1} failed already => re-verify from the last *intact* box).
        source = states.layer(i - 1)
        res = _check_containment(new_network.subnetwork(i, n), source, dout,
                                 method=method, config=config)
        subproblems.append(SubproblemReport.from_containment(
            f"blocks[{i}:{n}] -> Dout (tail re-verification)", res))
        return FixingResult(
            holds=res.holds,
            strategy="output layer repair",
            replaced_layer=i,
            subproblems=subproblems,
            elapsed=time.perf_counter() - started,
        )

    # --- single broken hidden abstraction S_{i+1} -------------------------
    propagator = get_propagator(domain)
    t0 = time.perf_counter()
    replacement = propagator.propagate(
        new_network.subnetwork(i, i + 1), states.layer(i - 1))[-1]
    # S'_{i+1} must cover the old S_{i+1} region too: the old box satisfied
    # its own forward conditions only under the old network; taking the join
    # keeps the repair monotone and sound.
    current: Box = replacement.union(states.layer(i))
    subproblems.append(SubproblemReport(
        name=f"rebuild S'_{i + 1}",
        holds=True,
        elapsed=time.perf_counter() - t0,
        detail=f"replacement box via {domain}",
    ))

    for k in range(i + 1, n - 1):
        layer = new_network.subnetwork(k, k + 1)
        res = _check_containment(layer, current, states.layer(k),
                                 method=method, config=config)
        subproblems.append(SubproblemReport.from_containment(
            f"S'_{k} -> S_{k + 1} (re-entry)", res))
        if res.holds:
            return FixingResult(
                holds=True,
                strategy="single-layer repair with re-entry",
                replaced_layer=i,
                reentry_layer=k + 1,
                subproblems=subproblems,
                elapsed=time.perf_counter() - started,
            )
        t0 = time.perf_counter()
        current = propagator.propagate(layer, current)[-1]
        subproblems[-1].elapsed += time.perf_counter() - t0

    # No re-entry: verify the remaining tail from the propagated S'.
    res = _check_containment(new_network.subnetwork(n - 1, n), current, dout,
                             method=method, config=config)
    subproblems.append(SubproblemReport.from_containment(
        f"S'_{n - 1} -> Dout (tail)", res))
    return FixingResult(
        holds=res.holds,
        strategy="single-layer repair, no re-entry (tail verified)",
        replaced_layer=i,
        reentry_layer=None,
        subproblems=subproblems,
        elapsed=time.perf_counter() - started,
    )
