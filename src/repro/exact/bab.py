"""ReLU-phase branch and bound: exact optimisation over network outputs.

The workhorse of every "exact local check" in the paper: maximise a linear
function of a (sub)network's output over a box of inputs.  Each node of the
search tree is a partial phase assignment for statically-unstable neurons;
its LP relaxation (triangle hull for still-free neurons) yields an upper
bound, and forward-evaluating the relaxation's input point yields a feasible
lower bound (incumbent).  Branching fixes the most violated neuron's phase.
The method is sound and complete for ReLU / LeakyReLU networks.

Threshold mode makes the proposition checks cheap: when the caller only
needs to know whether ``max <= threshold`` the search stops as soon as the
global upper bound drops below (proved) or the incumbent rises above
(refuted, with a concrete counterexample input).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.domains.box import Box
from repro.domains.batch import phase_clamped_node_bounds
from repro.exact.encoding import NetworkEncoding, PhaseMap
from repro.exact.lp import LP_INFEASIBLE, LP_OPTIMAL, solve_lp
from repro.nn.network import Network

__all__ = ["BaBResult", "BaBSolver", "maximize_output", "minimize_output"]

BAB_OPTIMAL = "optimal"
BAB_PROVED = "threshold_proved"     # max <= threshold established
BAB_REFUTED = "threshold_refuted"   # witness with value > threshold found
BAB_INFEASIBLE = "infeasible"
BAB_NODE_LIMIT = "node_limit"


@dataclass
class BaBResult:
    """Result of one branch-and-bound maximisation.

    ``upper_bound`` always soundly over-approximates the true maximum;
    ``incumbent`` is the best *achieved* value (at input ``witness``).
    At ``status == "optimal"`` the two coincide within tolerance.
    """

    status: str
    upper_bound: float
    incumbent: float
    witness: Optional[np.ndarray]
    nodes: int
    lp_solves: int

    @property
    def optimum(self) -> float:
        """The exact maximum (only meaningful when ``status == "optimal"``)."""
        return self.upper_bound


class BaBSolver:
    """Branch-and-bound maximiser bound to one ``(network, box)`` encoding."""

    def __init__(self, network: Network, input_box: Box,
                 encoding: Optional[NetworkEncoding] = None,
                 tol: float = 1e-6, node_limit: int = 2000,
                 interval_prune: bool = True,
                 lp_form: str = "auto",
                 node_tighten: bool = False):
        self.network = network
        self.input_box = input_box
        #: One encoding serves every node of every solve; when the caller
        #: does not bring their own it is pulled from the fingerprint-keyed
        #: cache, so repeated solves of the same ``(network, box)`` pair
        #: (different objectives, thresholds, warm starts) skip symbolic
        #: propagation and base assembly entirely.
        self.encoding = encoding or NetworkEncoding.for_problem(network, input_box)
        self.tol = float(tol)
        self.node_limit = int(node_limit)
        #: Screen sibling/frontier nodes with batched phase-clamped interval
        #: bounds before building their LPs (see :meth:`maximize`).
        self.interval_prune = bool(interval_prune)
        #: ``"sparse"`` composes each node LP as base + delta; ``"dense"``
        #: keeps the historical full rebuild (same verdicts, for
        #: comparison); ``"auto"`` (default) picks dense only for tiny
        #: systems where the delta machinery costs more than it saves.
        self.lp_form = str(lp_form)
        #: Feed each node's batched phase-clamped pre-activation bounds into
        #: its LP as ``z``-variable bounds (a per-node presolve riding the
        #: same stacked pass as the interval screen).  Off by default: it
        #: tightens node relaxations, which can change the search trajectory
        #: relative to the plain triangle LP.
        self.node_tighten = bool(node_tighten)

    # ------------------------------------------------------------------ main
    def maximize(self, c: np.ndarray,
                 threshold: Optional[float] = None,
                 initial_nodes: Optional[List[PhaseMap]] = None,
                 collect_leaves: Optional[List[PhaseMap]] = None) -> BaBResult:
        """Maximise ``c @ f(x)`` over the input box.

        With ``threshold`` set, stops early once ``max <= threshold`` is
        proved or refuted (see module docstring).

        ``initial_nodes`` replaces the root with a caller-supplied list of
        phase maps whose regions must jointly cover the search space -- the
        warm-start mechanism of :mod:`repro.exact.incremental`.

        ``collect_leaves`` (a caller-owned list) receives the phase map of
        every region the search *settled* -- pruned, proven, refined to a
        consistent LP, or still open at early termination.  Together these
        leaves cover the entire space, so they form a reusable branching
        certificate.

        With ``interval_prune`` on (the default), every batch of candidate
        nodes -- the warm-start list and each branching's sibling pair --
        is first screened with one batched phase-clamped interval pass
        (:func:`~repro.domains.batch.phase_clamped_node_bounds`).
        Nodes whose region is empty, cannot beat the incumbent, or already
        proves the threshold are settled without building their LP, which
        cuts ``lp_solves`` while preserving soundness, the optimum, and the
        covering-leaves invariant.  With ``node_tighten`` on, the same pass
        additionally hands each surviving node its clamped pre-activation
        bounds, installed as ``z``-variable bounds in the node's LP delta.
        """
        enc = self.encoding
        tol = self.tol
        objective = enc.output_objective(np.asarray(c, dtype=np.float64))
        neg_obj = -objective  # linprog minimises

        lp_solves = 0
        nodes = 0
        counter = itertools.count()
        incumbent = -np.inf
        witness: Optional[np.ndarray] = None
        c_vec = np.asarray(c, dtype=np.float64).reshape(-1)
        # Sound max over regions the interval screen settled above the
        # incumbent (threshold mode); folded into every reported bound.
        screened_bound = -np.inf

        use_screen = self.interval_prune or self.node_tighten

        def screen_nodes(phase_maps: List[PhaseMap]):
            """One batched clamped-interval pass over candidate nodes:
            objective upper bounds (when pruning), feasibility, and -- with
            ``node_tighten`` -- per-node pre-activation tightenings."""
            upper, feasible, pre_lo, pre_hi = phase_clamped_node_bounds(
                self.network, self.input_box, phase_maps,
                c_vec if self.interval_prune else None)
            tights = None
            if self.node_tighten:
                tights = [[(pre_lo[k][j], pre_hi[k][j])
                           for k in range(len(pre_lo))]
                          for j in range(len(phase_maps))]
            return upper, feasible, tights

        def record_leaf(phases: PhaseMap) -> None:
            if collect_leaves is not None:
                collect_leaves.append(dict(phases))

        def solve_node(phases: PhaseMap, tight_pre=None):
            nonlocal lp_solves
            lp_solves += 1
            system = enc.build_lp(phases, form=self.lp_form,
                                  tight_pre=tight_pre)
            return solve_lp(neg_obj, system.a_ub, system.b_ub,
                            system.a_eq, system.b_eq, system.bounds)

        def register_feasible(x_input: np.ndarray) -> None:
            nonlocal incumbent, witness
            x_clipped = self.input_box.clip_point(x_input)
            value = float(np.dot(c, np.atleast_1d(self.network.forward(x_clipped))))
            if value > incumbent:
                incumbent = value
                witness = x_clipped

        # Max-heap on node upper bounds (negate for heapq).
        heap: List[Tuple[float, int, PhaseMap, np.ndarray]] = []

        def finish(status: str, bound: float) -> BaBResult:
            # Whatever remains open is part of the covering certificate.
            for _, __, phases, ___ in heap:
                record_leaf(phases)
            return BaBResult(status, max(bound, screened_bound), incumbent,
                             witness, nodes, lp_solves)

        starts: List[PhaseMap] = (
            [dict(p) for p in initial_nodes] if initial_nodes else [{}]
        )
        start_ubs = start_feasible = start_tights = None
        if use_screen:
            start_ubs, start_feasible, start_tights = screen_nodes(starts)
            if self.interval_prune and threshold is not None and \
                    np.all(start_ubs <= threshold + tol):
                # The covering regions all close on intervals alone: proved
                # without a single LP.
                for start in starts:
                    record_leaf(start)
                return BaBResult(BAB_PROVED, float(start_ubs.max()), incumbent,
                                 witness, nodes, lp_solves)
        any_feasible = False
        for j, start in enumerate(starts):
            if use_screen:
                if not start_feasible[j]:
                    record_leaf(start)  # phase constraints empty the region
                    continue
            if self.interval_prune:
                ub_est = float(start_ubs[j])
                if ub_est <= incumbent + tol:
                    record_leaf(start)  # cannot beat an earlier start
                    continue
                if threshold is not None and ub_est <= threshold + tol:
                    screened_bound = max(screened_bound, ub_est)
                    record_leaf(start)  # region proved below the threshold
                    continue
            res = solve_node(start,
                             start_tights[j] if start_tights else None)
            if res.status == LP_INFEASIBLE:
                record_leaf(start)
                continue
            if res.status != LP_OPTIMAL:
                raise SolverError(f"start LP ended with status {res.status}")
            any_feasible = True
            register_feasible(res.x[enc.input_slice])
            heapq.heappush(heap, (res.value, next(counter), start, res.x))
        if not any_feasible:
            if screened_bound > -np.inf:
                # Every LP-checked region was empty, but interval-screened
                # regions cover the rest below the threshold.
                return finish(BAB_PROVED, screened_bound)
            return BaBResult(BAB_INFEASIBLE, -np.inf, -np.inf, None,
                             len(starts), lp_solves)

        while heap:
            neg_bound, _, phases, x_lp = heapq.heappop(heap)
            bound = -neg_bound
            global_bound = max(bound, incumbent)

            if threshold is not None:
                if incumbent > threshold + tol:
                    record_leaf(phases)
                    return finish(BAB_REFUTED, global_bound)
                if global_bound <= threshold + tol:
                    record_leaf(phases)
                    return finish(BAB_PROVED, global_bound)
            if bound <= incumbent + tol:
                # The best remaining node cannot beat the incumbent: optimal.
                record_leaf(phases)
                return finish(BAB_OPTIMAL, max(incumbent, bound))

            nodes += 1
            if nodes > self.node_limit:
                record_leaf(phases)
                return finish(BAB_NODE_LIMIT, global_bound)

            branch_var = self._most_violated(x_lp, phases)
            if branch_var is None:
                # LP solution is activation-consistent: bound is attained.
                register_feasible(x_lp[enc.input_slice])
                record_leaf(phases)
                continue

            children: List[PhaseMap] = []
            for phase in (1, -1):
                child: PhaseMap = dict(phases)
                child[branch_var] = phase
                children.append(child)
            child_ubs = child_feasible = child_tights = None
            if use_screen:
                # One batched pass bounds both siblings before any LP exists.
                child_ubs, child_feasible, child_tights = screen_nodes(children)
            for j, child in enumerate(children):
                if use_screen and not child_feasible[j]:
                    record_leaf(child)  # the phase split emptied the region
                    continue
                if self.interval_prune:
                    ub_est = float(child_ubs[j])
                    if ub_est <= incumbent + tol:
                        record_leaf(child)  # interval bound already dominated
                        continue
                    if threshold is not None and ub_est <= threshold + tol:
                        screened_bound = max(screened_bound, ub_est)
                        record_leaf(child)  # region proved below the threshold
                        continue
                res = solve_node(child,
                                 child_tights[j] if child_tights else None)
                if res.status != LP_OPTIMAL:
                    record_leaf(child)
                    continue
                child_bound = -res.value
                register_feasible(res.x[enc.input_slice])
                if child_bound <= incumbent + tol:
                    record_leaf(child)
                    continue
                heapq.heappush(heap, (-child_bound, next(counter), child, res.x))

        if threshold is not None and incumbent > threshold + tol:
            # The incumbent can cross the threshold during the *last*
            # branching (register_feasible on a child LP) with no further
            # pop to notice it; report the refutation, not optimality.
            return BaBResult(BAB_REFUTED, max(incumbent, screened_bound),
                             incumbent, witness, nodes, lp_solves)
        if screened_bound > incumbent + tol:
            # Interval-settled regions (threshold mode) may exceed the
            # incumbent, so exact optimality is not established -- but every
            # region is closed below the threshold.
            return BaBResult(BAB_PROVED, screened_bound, incumbent, witness,
                             nodes, lp_solves)
        return BaBResult(BAB_OPTIMAL, incumbent, incumbent, witness, nodes, lp_solves)

    def _most_violated(self, x: np.ndarray,
                       phases: PhaseMap) -> Optional[Tuple[int, int]]:
        """The free unstable neuron whose LP values most violate a = act(z)."""
        enc = self.encoding
        worst: Optional[Tuple[int, int]] = None
        worst_gap = self.tol
        for k, block in enumerate(self.network.blocks()):
            act = block.activation
            if act is None:
                continue
            slope = getattr(act, "alpha", 0.0)
            z = x[enc.z_slices[k]]
            a = x[enc.a_slices[k]]
            exact = np.where(z > 0, z, slope * z)
            gaps = np.abs(a - exact)
            for i in np.argsort(gaps)[::-1]:
                gap = gaps[i]
                if gap <= worst_gap:
                    break
                if (k, int(i)) in phases:
                    continue
                if enc.neuron_stability(k, int(i)) != "unstable":
                    continue
                worst = (k, int(i))
                worst_gap = gap
                break
        return worst

    def minimize(self, c: np.ndarray,
                 threshold: Optional[float] = None) -> BaBResult:
        """Minimise ``c @ f(x)``; thresholds mean ``min >= threshold``."""
        neg_threshold = None if threshold is None else -float(threshold)
        res = self.maximize(-np.asarray(c, dtype=np.float64), threshold=neg_threshold)
        return BaBResult(
            status=res.status,
            upper_bound=-res.upper_bound,   # now a sound *lower* bound
            incumbent=-res.incumbent,
            witness=res.witness,
            nodes=res.nodes,
            lp_solves=res.lp_solves,
        )


def maximize_output(network: Network, input_box: Box, c: np.ndarray,
                    threshold: Optional[float] = None,
                    node_limit: int = 2000, tol: float = 1e-6,
                    interval_prune: bool = True,
                    lp_form: str = "auto") -> BaBResult:
    """One-shot ``max c @ f(x)`` over ``input_box`` (see :class:`BaBSolver`)."""
    solver = BaBSolver(network, input_box, tol=tol, node_limit=node_limit,
                       interval_prune=interval_prune, lp_form=lp_form)
    return solver.maximize(c, threshold=threshold)


def minimize_output(network: Network, input_box: Box, c: np.ndarray,
                    threshold: Optional[float] = None,
                    node_limit: int = 2000, tol: float = 1e-6,
                    interval_prune: bool = True,
                    lp_form: str = "auto") -> BaBResult:
    """One-shot ``min c @ f(x)`` over ``input_box``."""
    solver = BaBSolver(network, input_box, tol=tol, node_limit=node_limit,
                       interval_prune=interval_prune, lp_form=lp_form)
    return solver.minimize(c, threshold=threshold)
