"""Fault-tolerant serving: throughput under injected faults + breaker
recovery latency.

Two questions about the resilience layer (PR 6):

1. *Chaos throughput* -- distinct jobs drained per second with the
   deterministic :class:`FaultInjectingExecutor` injecting transient
   faults (crash, hang, torn wire) at rates {0%, 10%, 30%}.  Retries
   with tight backoff must absorb the faults: every job still completes,
   every verdict stays byte-identical to a fault-free solve, and at the
   10% rate throughput must hold >= 70% of the fault-free baseline
   (asserted, not just reported).
2. *Breaker recovery* -- open the circuit with a burst of consecutive
   faults, then let the faults clear: how long from the last failure
   until a verdict flows again?  The half-open probe must recover the
   executor automatically (no restart, no manual reset), in roughly the
   breaker's cool-down.

Run standalone for the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_resilience.py [out.json] [--smoke]
"""

import os
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone: make src/ and repo root importable
    _ROOT = Path(__file__).resolve().parent.parent
    for entry in (str(_ROOT / "src"), str(_ROOT)):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from repro.api import (
    MaximizeSpec,
    ServeConfig,
    VerificationEngine,
    VerifyConfig,
    canonical_verdict_json,
)
from repro.domains import Box
from repro.nn import random_relu_network
from repro.serve import (
    FaultInjectingExecutor,
    InProcessExecutor,
    VerificationService,
)

from benchmarks.common import emit_json

FAULT_RATES = (0.0, 0.10, 0.30)
THROUGHPUT_JOBS = 24
SMOKE_THROUGHPUT_JOBS = 8
#: The CI gate from the PR contract: at a 10% transient-fault rate the
#: service must keep >= 70% of its fault-free throughput.
MIN_RELATIVE_THROUGHPUT_AT_10PCT = 0.70

#: Tight-loop policy: retries park for milliseconds, the breaker trips
#: only on a long streak (chaos at 30% *will* produce short streaks) and
#: cools down fast, so the measurement captures retry cost rather than
#: sleep time.
_CHAOS_CONFIG = ServeConfig(retry_attempts=8, retry_base_delay=0.005,
                            retry_max_delay=0.02, retry_multiplier=2.0,
                            retry_jitter=0.5, breaker_threshold=10,
                            breaker_reset=0.05)


def _distinct_specs(n, seed=11):
    """n distinct jobs over one small network (distinct objectives, so
    the verdict cache never collapses the workload)."""
    network = random_relu_network([4, 12, 8, 2], seed=seed, weight_scale=0.4)
    box = Box(-np.ones(4), np.ones(4))
    rng = np.random.default_rng(seed)
    return [MaximizeSpec(network=network, input_box=box,
                         objective=rng.normal(size=2))
            for _ in range(n)]


def bench_fault_throughput(jobs=THROUGHPUT_JOBS, rates=FAULT_RATES):
    """Jobs/s at each injected-fault rate, with verdict identity."""
    specs = _distinct_specs(jobs)
    engine = VerificationEngine(VerifyConfig())
    reference = [canonical_verdict_json(engine.verify(s)) for s in specs]
    sweep = []
    for rate in rates:
        injector = FaultInjectingExecutor(InProcessExecutor(),
                                          fault_rate=rate, seed=1234,
                                          hang_time=0.005)
        with VerificationService(executor=injector,
                                 serve_config=_CHAOS_CONFIG,
                                 workers=2, poll_interval=0.005) as service:
            start = time.perf_counter()
            ids = [service.submit(spec).job_id for spec in specs]
            records = [service.wait(job_id, timeout=300) for job_id in ids]
            elapsed = time.perf_counter() - start
            assert all(r.state == "done" for r in records), (
                f"chaos at rate {rate:g} lost jobs: "
                f"{[(r.job_id, r.state, r.error) for r in records if r.state != 'done']}")
            served = [canonical_verdict_json(service.verdict(j))
                      for j in ids]
            assert served == reference, (
                f"verdicts diverged under fault rate {rate:g}")
            stats = service.stats()["resilience"]
        sweep.append({
            "fault_rate": rate,
            "jobs": jobs,
            "elapsed_s": elapsed,
            "jobs_per_s": jobs / elapsed,
            "retries": stats["retries"],
            "failures_by_type": stats["failures_by_type"],
            "injected": injector.stats()["injected"],
        })
    baseline = sweep[0]["jobs_per_s"]
    for row in sweep:
        row["relative_throughput"] = row["jobs_per_s"] / baseline
    at_10 = next(r for r in sweep
                 if abs(r["fault_rate"] - 0.10) < 1e-9)
    assert at_10["relative_throughput"] >= \
        MIN_RELATIVE_THROUGHPUT_AT_10PCT, (
            f"throughput at 10% faults fell to "
            f"{at_10['relative_throughput']:.0%} of fault-free "
            f"(gate: {MIN_RELATIVE_THROUGHPUT_AT_10PCT:.0%})")
    return {"sweep": sweep, "verdicts_identical": True,
            "gate_10pct": MIN_RELATIVE_THROUGHPUT_AT_10PCT}


def bench_breaker_recovery():
    """Open the breaker with a fault burst, then measure how long the
    half-open probe takes to restore service once faults clear."""
    threshold, reset = 3, 0.2
    config = ServeConfig(retry_attempts=threshold + 2,
                         retry_base_delay=0.005, retry_max_delay=0.01,
                         breaker_threshold=threshold, breaker_reset=reset)
    injector = FaultInjectingExecutor(InProcessExecutor(),
                                      faults=["crash"] * threshold)
    spec = _distinct_specs(1)[0]
    with VerificationService(executor=injector, serve_config=config,
                             poll_interval=0.005) as service:
        start = time.perf_counter()
        record = service.wait(service.submit(spec).job_id, timeout=60)
        total = time.perf_counter() - start
        assert record.state == "done", record.error
        log = service.attempt_log(record.job_id)
        failures = [a for a in log if a.outcome != "ok"]
        assert len(failures) == threshold and log[-1].outcome == "ok"
        # Time from the breaker-opening failure until the half-open probe
        # *started* (the successful solve's own duration is the job's
        # cost, not the breaker's).
        recovery = log[-1].started_at - failures[-1].finished_at
        breaker = service.executor.breakers[0]
        assert breaker.open_count >= 1, "breaker never opened"
        assert breaker.probe_count >= 1, "recovery bypassed the probe"
        assert breaker.state == "closed", "breaker did not re-close"
        # Automatic: the probe fires one cool-down after the last failure
        # (plus scheduling slack), with no manual reset anywhere.
        assert recovery < reset + 2.0, (
            f"recovery took {recovery:.2f}s for a {reset:g}s cool-down")
    return {
        "failure_burst": threshold,
        "breaker_reset_s": reset,
        "recovery_latency_s": recovery,
        "total_job_latency_s": total,
        "open_count": breaker.open_count,
        "probe_count": breaker.probe_count,
        "auto_recovered": True,
    }


def main(argv):
    smoke = "--smoke" in argv
    argv = [a for a in argv if a != "--smoke"]
    out = argv[0] if argv else None
    results = {
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "fault_throughput": bench_fault_throughput(
            SMOKE_THROUGHPUT_JOBS if smoke else THROUGHPUT_JOBS),
        "breaker_recovery": bench_breaker_recovery(),
    }
    emit_json("bench_resilience", results, out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
