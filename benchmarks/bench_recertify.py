"""Delta verification: LP solves saved by certificate reuse (PR 9).

The continuous-engineering premise: after every fine-tuning step the
property must be re-proved, and consecutive networks differ by a small
perturbation.  This benchmark replays that loop -- a 10-step weight
perturbation sequence over one threshold property -- twice:

* **from scratch**: every step pays the full branch-and-bound search;
* **certificate reuse**: every step warm-starts from the stored frontier
  (``certs="reuse"`` against a real in-memory :class:`JobStore`), paying
  one batched dual re-screen plus delta-LPs only for leaves whose bounds
  actually moved.

Two gates, both asserted (CI runs ``--smoke``):

1. every verdict is byte-identical to its from-scratch twin
   (:func:`verdict_decision_json` -- reuse must never buy speed with
   soundness);
2. the reuse track saves LP solves -- ``lp_solves_saved > 0`` in smoke
   mode, and >= 5x fewer total LP solves over the full sequence.

Run standalone for the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_recertify.py [out.json] [--smoke]
"""

import sys
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone: make src/ and repo root importable
    _ROOT = Path(__file__).resolve().parent.parent
    for entry in (str(_ROOT / "src"), str(_ROOT)):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from repro.api import (
    MaximizeSpec,
    ThresholdSpec,
    VerificationEngine,
    VerifyConfig,
    verdict_decision_json,
)
from repro.domains import Box
from repro.nn import random_relu_network
from repro.serve import JobStore

from benchmarks.common import emit_json

#: Perturbation steps after the initial recording solve (the paper's
#: incremental-tuning loop, extended past Table I's four cases).
STEPS = 10
SMOKE_STEPS = 3
PERTURB_SCALE = 0.002
#: The PR contract: certificate reuse must cut total LP solves by at
#: least this factor over the full sequence.
MIN_LP_RATIO = 5.0


def _problem(seed=3):
    """A threshold instance whose proof needs a real BaB search."""
    network = random_relu_network([4, 12, 8, 1], seed=seed)
    box = Box(-np.ones(4), np.ones(4))
    c = np.ones(1)
    opt = VerificationEngine(VerifyConfig()).verify(
        MaximizeSpec(network=network, input_box=box,
                     objective=c)).result.upper_bound
    threshold = opt + 0.1 * abs(opt)
    return network, box, c, threshold


def bench_recertify(steps=STEPS):
    network, box, c, threshold = _problem()
    store = JobStore()  # the real certificate table, in memory
    warm_engine = VerificationEngine(VerifyConfig(certs="reuse"),
                                     certs=store)
    cold_engine = VerificationEngine(VerifyConfig())
    rng = np.random.default_rng(7)

    rows = []
    warm_total = cold_total = saved_total = reused_total = 0
    current = network
    for step in range(steps + 1):
        spec = ThresholdSpec(network=current, input_box=box, objective=c,
                             threshold=threshold)
        warm = warm_engine.verify(spec)
        cold = cold_engine.verify(spec)
        assert verdict_decision_json(warm) == verdict_decision_json(cold), (
            f"step {step}: warm-started decision diverged from scratch")
        warm_total += warm.result.lp_solves
        cold_total += cold.result.lp_solves
        saved_total += warm.provenance.lp_solves_saved
        reused_total += warm.provenance.nodes_reused
        rows.append({
            "step": step,
            "cert_hit": warm.provenance.cert_hit,
            "warm_lp_solves": warm.result.lp_solves,
            "cold_lp_solves": cold.result.lp_solves,
            "nodes_reused": warm.provenance.nodes_reused,
            "lp_solves_saved": warm.provenance.lp_solves_saved,
        })
        current = current.perturb(PERTURB_SCALE, rng=rng)

    assert saved_total > 0, "certificate reuse saved no LP solves"
    assert reused_total > 0, "no frontier leaves were ever reused"
    ratio = cold_total / max(warm_total, 1)
    if steps >= STEPS:
        assert ratio >= MIN_LP_RATIO, (
            f"LP-solve ratio {ratio:.2f}x below the {MIN_LP_RATIO:g}x gate "
            f"(warm {warm_total}, cold {cold_total})")
    cert_stats = store.cert_stats()
    store.close()
    return {
        "steps": steps,
        "perturb_scale": PERTURB_SCALE,
        "warm_lp_total": warm_total,
        "cold_lp_total": cold_total,
        "lp_ratio": ratio,
        "lp_solves_saved": saved_total,
        "nodes_reused": reused_total,
        "verdicts_identical": True,
        "cert_store": cert_stats,
        "per_step": rows,
    }


def main(argv):
    smoke = "--smoke" in argv
    argv = [a for a in argv if a != "--smoke"]
    out = argv[0] if argv else None
    results = {
        "smoke": smoke,
        "recertify": bench_recertify(SMOKE_STEPS if smoke else STEPS),
        "gate_lp_ratio": MIN_LP_RATIO,
    }
    emit_json("bench_recertify", results, out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
