"""Runtime monitoring: feature-space box monitor and enlargement events."""

from repro.monitor.boxmonitor import BoxMonitor, screen_states
from repro.monitor.events import EnlargementEvent, summarize_events

__all__ = ["BoxMonitor", "EnlargementEvent", "screen_states",
           "summarize_events"]
