"""JSON-safe encodings of the object model the Specs reference.

Spec files must survive ``json.dumps`` / ``json.loads`` byte-exactly --
*and* be readable by non-Python peers (the ROADMAP plans remote executors
speaking this wire form) -- so everything here maps to strict RFC-8259
JSON:

* arrays -> nested lists (Python's ``json`` emits ``repr``-style doubles,
  which round-trip binary64 exactly); non-finite values, legal for box
  bounds and recorded timings, are encoded as the strings ``"inf"`` /
  ``"-inf"`` / ``"nan"`` instead of the non-standard ``Infinity``/``NaN``
  tokens (``float()`` parses them back exactly);
* networks -> ``{"input_dim", "layers": [{"class", "config", "arrays"}]}``
  reusing each layer's own ``config()`` / ``arrays()`` contract (the same
  one the ``.npz`` serializer trusts);
* proof artifacts -> the :func:`repro.core.artifacts.save_artifacts`
  layout transliterated to JSON, with the network abstraction stored as
  its deterministic build recipe.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.errors import SerializationError
from repro.domains.box import Box
from repro.nn.network import Network
from repro.nn.serialize import _LAYER_CLASSES
from repro.core.artifacts import (
    LipschitzCertificate,
    ProofArtifacts,
    StateAbstractions,
)
from repro.core.problem import VerificationProblem

__all__ = [
    "float_to_jsonable",
    "array_to_jsonable",
    "array_from_jsonable",
    "box_to_jsonable",
    "box_from_jsonable",
    "network_to_jsonable",
    "network_from_jsonable",
    "artifacts_to_jsonable",
    "artifacts_from_jsonable",
]


# ------------------------------------------------------------------- floats
def float_to_jsonable(value: float):
    """A strict-JSON scalar: the float itself, or ``"inf"``/``"-inf"``/
    ``"nan"`` for the values RFC 8259 cannot carry (``float()`` inverts)."""
    value = float(value)
    return value if math.isfinite(value) else str(value)


def _encode_nested(values):
    if isinstance(values, list):
        return [_encode_nested(v) for v in values]
    return float_to_jsonable(values)


# ------------------------------------------------------------------- arrays
def array_to_jsonable(arr: np.ndarray) -> list:
    arr = np.asarray(arr, dtype=np.float64)
    nested = arr.tolist()
    if np.isfinite(arr).all():
        return nested
    return _encode_nested(nested)


def array_from_jsonable(data) -> np.ndarray:
    # np.float64 parses the "inf"/"-inf"/"nan" string encoding directly.
    return np.asarray(data, dtype=np.float64)


# -------------------------------------------------------------------- boxes
def box_to_jsonable(box: Box) -> Dict:
    return {"lower": array_to_jsonable(box.lower),
            "upper": array_to_jsonable(box.upper)}


def box_from_jsonable(data: Dict) -> Box:
    return Box(array_from_jsonable(data["lower"]),
               array_from_jsonable(data["upper"]))


# ----------------------------------------------------------------- networks
def network_to_jsonable(network: Network) -> Dict:
    return {
        "input_dim": int(network.input_dim),
        "layers": [
            {
                "class": type(layer).__name__,
                "config": layer.config(),
                "arrays": {name: array_to_jsonable(arr)
                           for name, arr in layer.arrays().items()},
            }
            for layer in network.layers
        ],
    }


def network_from_jsonable(data: Dict) -> Network:
    layers = []
    for spec in data["layers"]:
        cls_name = spec["class"]
        if cls_name not in _LAYER_CLASSES:
            raise SerializationError(f"unknown layer class {cls_name!r}")
        arrays = {name: array_from_jsonable(arr)
                  for name, arr in spec["arrays"].items()}
        layers.append(_LAYER_CLASSES[cls_name]._from_parts(spec["config"], arrays))
    return Network(layers, input_dim=int(data["input_dim"]))


# ---------------------------------------------------------------- artifacts
def artifacts_to_jsonable(artifacts: ProofArtifacts) -> Dict:
    """JSON twin of :func:`repro.core.artifacts.save_artifacts`."""
    data: Dict = {
        "problem": {
            "network": network_to_jsonable(artifacts.problem.network),
            "din": box_to_jsonable(artifacts.problem.din),
            "dout": box_to_jsonable(artifacts.problem.dout),
        },
        "states_prove_safety": bool(artifacts.states_prove_safety),
        "original_time": float_to_jsonable(artifacts.original_time),
        "notes": dict(artifacts.notes),
        "states": None,
        "lipschitz": None,
        "netabs": None,
        "output_range": None,
    }
    if artifacts.states is not None:
        data["states"] = {
            "domain": artifacts.states.domain,
            "boxes": [box_to_jsonable(b) for b in artifacts.states.boxes],
        }
    if artifacts.lipschitz is not None:
        data["lipschitz"] = {
            # ell is validated finite, but ord=inf (the L∞ norm) is legal.
            "ell": float_to_jsonable(artifacts.lipschitz.ell),
            "ord": float_to_jsonable(artifacts.lipschitz.ord),
            "method": artifacts.lipschitz.method,
        }
    if artifacts.network_abstraction is not None:
        absn = artifacts.network_abstraction
        data["netabs"] = {
            "num_groups": int(absn.num_groups),
            "margin": float(absn.margin),
        }
    if artifacts.output_range is not None:
        data["output_range"] = box_to_jsonable(artifacts.output_range)
    return data


def artifacts_from_jsonable(data: Dict) -> ProofArtifacts:
    network = network_from_jsonable(data["problem"]["network"])
    problem = VerificationProblem(
        network=network,
        din=box_from_jsonable(data["problem"]["din"]),
        dout=box_from_jsonable(data["problem"]["dout"]),
    )
    states = None
    if data.get("states") is not None:
        states = StateAbstractions(
            boxes=[box_from_jsonable(b) for b in data["states"]["boxes"]],
            domain=data["states"]["domain"],
        )
    lipschitz = None
    if data.get("lipschitz") is not None:
        lip = data["lipschitz"]
        lipschitz = LipschitzCertificate(
            ell=float(lip["ell"]), ord=float(lip["ord"]), method=lip["method"])
    netabs = None
    if data.get("netabs") is not None:
        from repro.netabs.abstraction import build_abstraction

        recipe = data["netabs"]
        netabs = build_abstraction(network, problem.din,
                                   num_groups=int(recipe["num_groups"]),
                                   margin=float(recipe["margin"]))
    output_range = None
    if data.get("output_range") is not None:
        output_range = box_from_jsonable(data["output_range"])
    return ProofArtifacts(
        problem=problem,
        states=states,
        lipschitz=lipschitz,
        network_abstraction=netabs,
        output_range=output_range,
        states_prove_safety=bool(data["states_prove_safety"]),
        original_time=float(data["original_time"]),
        notes=dict(data.get("notes", {})),
    )
