"""Tests for network abstraction: split, merge, Proposition-6 checks."""

import numpy as np
import pytest

from repro.domains import Box
from repro.errors import UnsupportedLayerError
from repro.nn import Dense, Network, ReLU, Sigmoid, random_relu_network
from repro.netabs import (
    apply_split,
    build_abstraction,
    categorize_split,
    verify_with_refinement,
)


def _scalar_net(seed, dims=(4, 8, 6, 1)):
    return random_relu_network(list(dims), seed=seed)


class TestCategorizeSplit:
    def test_split_preserves_function(self, rng):
        """The categorised split is function-preserving: re-assembling the
        split weights computes the same network."""
        net = _scalar_net(0)
        structure = categorize_split(net)
        weights, biases = apply_split(net, structure)
        box = Box(np.zeros(4), np.ones(4))
        for x in box.sample(50, rng):
            v = x
            for k, (w, b) in enumerate(zip(weights, biases)):
                v = w @ v + b
                if k < len(weights) - 1:
                    v = np.maximum(v, 0.0)
            np.testing.assert_allclose(v, net.forward(x), atol=1e-10)

    def test_edge_sign_consistency(self):
        """Every kept edge satisfies sign(w) = cat(source) * cat(target)."""
        net = _scalar_net(1)
        structure = categorize_split(net)
        weights, _ = apply_split(net, structure)
        for k in range(1, len(weights)):
            src_cat = structure.blocks[k - 1].row_cat
            tgt_cat = structure.blocks[k].row_cat
            signs = weights[k] * tgt_cat[:, None] * src_cat[None, :]
            assert np.min(signs, initial=0.0) >= 0.0

    def test_requires_single_output(self):
        net = random_relu_network([3, 4, 2], seed=0)
        with pytest.raises(UnsupportedLayerError):
            categorize_split(net)

    def test_requires_relu_hidden(self):
        net = Network(
            [Dense(2, 3, rng=np.random.default_rng(0)), Sigmoid(),
             Dense(3, 1, rng=np.random.default_rng(1))], input_dim=2)
        with pytest.raises(UnsupportedLayerError):
            categorize_split(net)


class TestAbstractionSoundness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("groups", [1, 2, 4])
    def test_upper_lower_sandwich_nonneg_domain(self, seed, groups, rng):
        net = _scalar_net(seed)
        din = Box(np.zeros(4), np.ones(4))
        absn = build_abstraction(net, din, num_groups=groups)
        xs = din.sample(800, rng)
        y = net.forward(xs).reshape(-1)
        yu = absn.upper.forward(xs).reshape(-1)
        yl = absn.lower.forward(xs).reshape(-1)
        assert np.all(yu >= y - 1e-9)
        assert np.all(yl <= y + 1e-9)

    def test_sandwich_signed_domain(self, rng):
        net = _scalar_net(2)
        din = Box(-np.ones(4), np.ones(4))
        absn = build_abstraction(net, din, num_groups=2)
        assert not absn.input_nonneg
        xs = din.sample(800, rng)
        y = net.forward(xs).reshape(-1)
        assert np.all(absn.upper.forward(xs).reshape(-1) >= y - 1e-9)
        assert np.all(absn.lower.forward(xs).reshape(-1) <= y + 1e-9)

    def test_abstraction_is_smaller(self):
        net = _scalar_net(3, dims=(6, 20, 16, 1))
        absn = build_abstraction(net, Box(np.zeros(6), np.ones(6)), num_groups=2)
        sizes = absn.abstraction_sizes()
        assert sizes["merged"] < sizes["split"]

    def test_more_groups_tighter_bounds(self):
        net = _scalar_net(4, dims=(4, 12, 10, 1))
        din = Box(np.zeros(4), np.ones(4))
        coarse = build_abstraction(net, din, num_groups=1)
        fine = build_abstraction(net, din, num_groups=8)
        bc = coarse.output_bounds(din)
        bf = fine.output_bounds(din)
        assert bc.contains_box(bf)

    def test_margin_widens_bounds(self):
        net = _scalar_net(5)
        din = Box(np.zeros(4), np.ones(4))
        tight = build_abstraction(net, din, num_groups=2, margin=0.0)
        slack = build_abstraction(net, din, num_groups=2, margin=0.1)
        assert slack.output_bounds(din).contains_box(tight.output_bounds(din))


class TestAbstractsCheck:
    def test_self_always_abstracted(self):
        net = _scalar_net(6)
        absn = build_abstraction(net, Box(np.zeros(4), np.ones(4)), num_groups=3)
        assert absn.abstracts(net).holds

    def test_small_tune_with_margin_ok_large_fails(self):
        net = _scalar_net(7)
        din = Box(np.zeros(4), np.ones(4))
        absn = build_abstraction(net, din, num_groups=3, margin=0.05)
        small = net.perturb(0.005, np.random.default_rng(0))
        large = net.perturb(0.5, np.random.default_rng(1))
        assert absn.abstracts(small).holds
        big_check = absn.abstracts(large)
        assert not big_check.holds
        assert big_check.reason  # explains why

    def test_abstracted_tune_really_sandwiched(self, rng):
        """Whenever abstracts() says yes, the bounds truly hold -- the
        critical soundness contract Prop 6 relies on."""
        net = _scalar_net(8)
        din = Box(np.zeros(4), np.ones(4))
        absn = build_abstraction(net, din, num_groups=2, margin=0.08)
        accepted = 0
        for seed in range(8):
            tuned = net.perturb(0.01, np.random.default_rng(seed))
            if not absn.abstracts(tuned).holds:
                continue
            accepted += 1
            xs = din.sample(300, rng)
            y = tuned.forward(xs).reshape(-1)
            assert np.all(absn.upper.forward(xs).reshape(-1) >= y - 1e-9)
            assert np.all(absn.lower.forward(xs).reshape(-1) <= y + 1e-9)
        assert accepted >= 1  # margin was generous enough for some tune

    def test_structure_mismatch_rejected(self):
        net = _scalar_net(9)
        absn = build_abstraction(net, Box(np.zeros(4), np.ones(4)))
        other = random_relu_network([4, 8, 1], seed=0)
        assert not absn.abstracts(other).holds

    def test_domain_must_be_inside(self):
        net = _scalar_net(10)
        din = Box(np.zeros(4), np.ones(4))
        absn = build_abstraction(net, din)
        bigger = din.inflate(1.0)
        assert not absn.abstracts(net, din=bigger).holds


class TestRefinement:
    def test_refines_until_provable(self):
        net = _scalar_net(11, dims=(4, 12, 10, 1))
        din = Box(np.zeros(4), np.ones(4))
        coarse_bounds = build_abstraction(net, din, num_groups=1).output_bounds(din)
        # pick a Dout between the coarse bound and the fine bound
        fine_bounds = build_abstraction(net, din, num_groups=16).output_bounds(din)
        mid = fine_bounds.inflate(0.25 * (coarse_bounds.widths.max()
                                          - fine_bounds.widths.max()))
        res = verify_with_refinement(net, din, mid, initial_groups=1)
        assert res.holds is True
        assert res.levels_tried >= 1

    def test_gives_up_gracefully(self):
        net = _scalar_net(12)
        din = Box(np.zeros(4), np.ones(4))
        impossible = Box(np.array([0.0]), np.array([1e-6]))
        res = verify_with_refinement(net, din, impossible, max_groups=4)
        assert res.holds is None
