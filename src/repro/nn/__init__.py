"""Neural-network substrate: layers, networks, training, serialization."""

from repro.nn.layers import (
    ACTIVATION_LAYERS,
    PIECEWISE_LINEAR_LAYERS,
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    Layer,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.network import Block, Network
from repro.nn.training import TrainConfig, TrainResult, fine_tune, mse_loss, train
from repro.nn.serialize import (
    load_network,
    network_from_bytes,
    network_to_bytes,
    save_network,
)
from repro.nn.builders import fig2_network, random_relu_network, regression_head

__all__ = [
    "ACTIVATION_LAYERS",
    "PIECEWISE_LINEAR_LAYERS",
    "AvgPool2D",
    "Block",
    "Conv2D",
    "Dense",
    "Flatten",
    "Layer",
    "LeakyReLU",
    "Network",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "TrainConfig",
    "TrainResult",
    "fig2_network",
    "fine_tune",
    "load_network",
    "mse_loss",
    "network_from_bytes",
    "network_to_bytes",
    "random_relu_network",
    "regression_head",
    "save_network",
    "train",
]
