"""Proof artifacts: what the old verification run leaves behind for reuse.

Section IV of the paper assumes the original proof of ``φ^f_{Din,Dout}`` is
stored in one or more of three forms, each with its defining properties:

* :class:`StateAbstractions` ``S_1 … S_n`` -- per-block boxes with
  (i) ``∀x ∈ Din : g_1(x) ∈ S_1``,
  (ii) ``∀i, ∀x_i ∈ S_i : g_{i+1}(x_i) ∈ S_{i+1}``, and
  (iii) ``S_n ⊆ Dout``;
* :class:`LipschitzCertificate` -- an ``ℓ`` with
  ``|f(x1) − f(x2)| ≤ ℓ|x1 − x2|`` on all of ``X`` (Equation 1);
* a :class:`~repro.netabs.abstraction.NetworkAbstraction` ``f̂`` with
  ``f --Din--> f̂`` whose own verification established
  ``{f̂(x) : x ∈ Din} ⊆ Dout``.

:class:`ProofArtifacts` bundles whichever are available together with the
original problem and the time the original verification took (the
denominator of every Table I ratio).  Artifacts can be persisted to a
single ``.npz`` and reloaded in a later engineering iteration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.api.config import DEFAULT_DOMAIN
from repro.errors import ArtifactError
from repro.domains.box import Box
from repro.nn.network import Network
from repro.nn.serialize import network_from_bytes, network_to_bytes
from repro.core.problem import VerificationProblem

__all__ = ["StateAbstractions", "LipschitzCertificate", "ProofArtifacts",
           "save_artifacts", "load_artifacts"]


@dataclass
class StateAbstractions:
    """The layered state abstraction ``S_1 … S_n`` (boxes, per paper Sec. V)."""

    boxes: List[Box]
    domain: str = DEFAULT_DOMAIN

    def __post_init__(self):
        if not self.boxes:
            raise ArtifactError("state abstractions need at least one layer")

    @property
    def num_layers(self) -> int:
        return len(self.boxes)

    def layer(self, i: int) -> Box:
        """``S_{i+1}`` (zero-based index ``i``)."""
        return self.boxes[i]

    @property
    def output_abstraction(self) -> Box:
        """``S_n``."""
        return self.boxes[-1]

    def matches(self, network: Network) -> bool:
        """Do the box dimensions line up with the network's blocks?"""
        dims = network.block_dims()[1:]
        return (len(self.boxes) == len(dims)
                and all(b.dim == d for b, d in zip(self.boxes, dims)))


@dataclass
class LipschitzCertificate:
    """A certified global Lipschitz constant (Equation 1)."""

    ell: float
    ord: float = 2
    method: str = "operator-norm-product"

    def __post_init__(self):
        if not np.isfinite(self.ell) or self.ell < 0:
            raise ArtifactError(f"invalid Lipschitz constant {self.ell}")

    def output_change_bound(self, kappa: float) -> float:
        """``ℓκ``: worst-case output movement for input movement ``κ``."""
        if kappa < 0:
            raise ArtifactError(f"kappa must be non-negative, got {kappa}")
        return self.ell * kappa


@dataclass
class ProofArtifacts:
    """Everything reusable from the previous verification run."""

    problem: VerificationProblem
    states: Optional[StateAbstractions] = None
    lipschitz: Optional[LipschitzCertificate] = None
    network_abstraction: Optional["NetworkAbstraction"] = None  # noqa: F821
    #: Exact certified output range over Din (tighter than ``S_n``); a valid
    #: output abstraction for Proposition 3 but *not* part of the layered
    #: inductive chain.
    output_range: Optional[Box] = None
    #: Did the stored proof actually establish ``S_n ⊆ Dout``?  Propositions
    #: 1/2 rely on it; the baseline verifier sets it when the layered proof
    #: closed.
    states_prove_safety: bool = False
    #: Wall-clock seconds of the original from-scratch verification.
    original_time: float = float("nan")
    notes: dict = field(default_factory=dict)

    def require_states(self) -> StateAbstractions:
        if self.states is None:
            raise ArtifactError("state-abstraction artifact not available")
        if not self.states.matches(self.problem.network):
            raise ArtifactError("state abstractions do not match the network")
        return self.states

    def require_lipschitz(self) -> LipschitzCertificate:
        if self.lipschitz is None:
            raise ArtifactError("Lipschitz artifact not available")
        return self.lipschitz

    def tightest_output_abstraction(self) -> Box:
        """Smallest stored box guaranteed to contain ``f(Din)``."""
        if self.output_range is not None and self.states is not None:
            meet = self.output_range.intersection(self.states.output_abstraction)
            if meet is not None:
                return meet
        if self.output_range is not None:
            return self.output_range
        return self.require_states().output_abstraction

    def require_network_abstraction(self):
        if self.network_abstraction is None:
            raise ArtifactError("network-abstraction artifact not available")
        return self.network_abstraction


# ----------------------------------------------------------------- persistence
def save_artifacts(artifacts: ProofArtifacts, path: Union[str, Path]) -> None:
    """Persist artifacts to one ``.npz`` file.

    The network abstraction is stored as its *build recipe* (groups, margin)
    plus the original network; it is rebuilt deterministically on load.
    """
    meta = {
        "states_prove_safety": artifacts.states_prove_safety,
        "original_time": artifacts.original_time,
        "notes": artifacts.notes,
        "has_states": artifacts.states is not None,
        "has_lipschitz": artifacts.lipschitz is not None,
        "has_netabs": artifacts.network_abstraction is not None,
        "has_output_range": artifacts.output_range is not None,
    }
    payload = {
        "network": np.frombuffer(network_to_bytes(artifacts.problem.network),
                                 dtype=np.uint8),
        "din_lower": artifacts.problem.din.lower,
        "din_upper": artifacts.problem.din.upper,
        "dout_lower": artifacts.problem.dout.lower,
        "dout_upper": artifacts.problem.dout.upper,
    }
    if artifacts.states is not None:
        meta["states_domain"] = artifacts.states.domain
        meta["states_layers"] = artifacts.states.num_layers
        for i, box in enumerate(artifacts.states.boxes):
            payload[f"state{i}_lower"] = box.lower
            payload[f"state{i}_upper"] = box.upper
    if artifacts.lipschitz is not None:
        meta["lipschitz"] = {
            "ell": artifacts.lipschitz.ell,
            "ord": float(artifacts.lipschitz.ord),
            "method": artifacts.lipschitz.method,
        }
    if artifacts.network_abstraction is not None:
        absn = artifacts.network_abstraction
        meta["netabs"] = {
            "num_groups": int(absn.num_groups),
            "margin": float(absn.margin),
        }
    if artifacts.output_range is not None:
        payload["range_lower"] = artifacts.output_range.lower
        payload["range_upper"] = artifacts.output_range.upper
    payload["__meta__"] = np.frombuffer(json.dumps(meta).encode("utf-8"),
                                        dtype=np.uint8)
    np.savez(str(path), **payload)


def load_artifacts(path: Union[str, Path]) -> ProofArtifacts:
    """Inverse of :func:`save_artifacts`."""
    with np.load(str(path)) as data:
        try:
            meta = json.loads(bytes(data["__meta__"].tobytes()).decode("utf-8"))
        except Exception as exc:
            raise ArtifactError(f"corrupt artifact file: {exc}") from exc
        network = network_from_bytes(bytes(data["network"].tobytes()))
        problem = VerificationProblem(
            network=network,
            din=Box(data["din_lower"], data["din_upper"]),
            dout=Box(data["dout_lower"], data["dout_upper"]),
        )
        states = None
        if meta["has_states"]:
            boxes = [
                Box(data[f"state{i}_lower"], data[f"state{i}_upper"])
                for i in range(int(meta["states_layers"]))
            ]
            states = StateAbstractions(boxes=boxes, domain=meta["states_domain"])
        lipschitz = None
        if meta["has_lipschitz"]:
            lip = meta["lipschitz"]
            lipschitz = LipschitzCertificate(
                ell=float(lip["ell"]), ord=float(lip["ord"]), method=lip["method"])
        netabs = None
        if meta["has_netabs"]:
            from repro.netabs.abstraction import build_abstraction

            recipe = meta["netabs"]
            netabs = build_abstraction(
                network, problem.din,
                num_groups=int(recipe["num_groups"]),
                margin=float(recipe["margin"]),
            )
        output_range = None
        if meta.get("has_output_range"):
            output_range = Box(data["range_lower"], data["range_upper"])
    return ProofArtifacts(
        problem=problem,
        states=states,
        lipschitz=lipschitz,
        network_abstraction=netabs,
        output_range=output_range,
        states_prove_safety=bool(meta["states_prove_safety"]),
        original_time=float(meta["original_time"]),
        notes=dict(meta.get("notes", {})),
    )
