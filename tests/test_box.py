"""Unit tests for repro.domains.box: geometry, set algebra, kappa."""

import numpy as np
import pytest

from repro.domains import Box, affine_bounds, box_kappa
from repro.errors import DomainError, ShapeError


class TestConstruction:
    def test_from_bounds(self):
        b = Box.from_bounds([(0, 1), (-2, 3)])
        np.testing.assert_array_equal(b.lower, [0, -2])
        np.testing.assert_array_equal(b.upper, [1, 3])

    def test_from_samples_with_buffer(self):
        samples = np.array([[0.0, 1.0], [2.0, -1.0]])
        b = Box.from_samples(samples, buffer=0.5)
        np.testing.assert_array_equal(b.lower, [-0.5, -1.5])
        np.testing.assert_array_equal(b.upper, [2.5, 1.5])

    def test_centered(self):
        b = Box.centered(np.array([1.0, 2.0]), 0.5)
        np.testing.assert_array_equal(b.widths, [1.0, 1.0])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(DomainError):
            Box(np.array([1.0]), np.array([0.0]))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ShapeError):
            Box(np.zeros(2), np.zeros(3))

    def test_rejects_negative_radius(self):
        with pytest.raises(DomainError):
            Box.centered(np.zeros(2), -1.0)


class TestSetAlgebra:
    def test_contains_point_boundary(self):
        b = Box(np.zeros(2), np.ones(2))
        assert b.contains_point(np.array([1.0, 0.0]))
        assert not b.contains_point(np.array([1.1, 0.0]))

    def test_contains_box(self):
        outer = Box(np.zeros(2), np.ones(2) * 2)
        inner = Box(np.ones(2) * 0.5, np.ones(2))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_containment_violation(self):
        a = Box(np.zeros(1), np.ones(1))
        b = Box(np.zeros(1), np.array([1.3]))
        assert a.containment_violation(b) == pytest.approx(0.3)
        assert a.containment_violation(a) == 0.0

    def test_union_intersection(self):
        a = Box(np.zeros(2), np.ones(2))
        b = Box(np.ones(2) * 0.5, np.ones(2) * 2)
        u = a.union(b)
        np.testing.assert_array_equal(u.lower, [0, 0])
        np.testing.assert_array_equal(u.upper, [2, 2])
        i = a.intersection(b)
        np.testing.assert_array_equal(i.lower, [0.5, 0.5])
        np.testing.assert_array_equal(i.upper, [1, 1])

    def test_disjoint_intersection_none(self):
        a = Box(np.zeros(1), np.ones(1))
        b = Box(np.array([2.0]), np.array([3.0]))
        assert a.intersection(b) is None
        assert not a.intersects(b)

    def test_inflate(self):
        b = Box(np.zeros(2), np.ones(2)).inflate(0.5)
        np.testing.assert_array_equal(b.lower, [-0.5, -0.5])

    def test_inflate_rejects_negative(self):
        with pytest.raises(DomainError):
            Box(np.zeros(1), np.ones(1)).inflate(-0.1)

    def test_equality_and_hash(self):
        a = Box(np.zeros(2), np.ones(2))
        b = Box(np.zeros(2), np.ones(2))
        assert a == b and hash(a) == hash(b)


class TestGeometry:
    def test_clip_and_distance(self):
        b = Box(np.zeros(2), np.ones(2))
        x = np.array([2.0, 0.5])
        np.testing.assert_array_equal(b.clip_point(x), [1.0, 0.5])
        assert b.distance_to_point(x) == pytest.approx(1.0)
        assert b.distance_to_point(np.array([0.5, 0.5])) == 0.0

    def test_sample_inside(self, rng):
        b = Box(np.array([-1.0, 2.0]), np.array([0.0, 5.0]))
        xs = b.sample(100, rng)
        assert xs.shape == (100, 2)
        assert all(b.contains_point(x) for x in xs)

    def test_corners(self):
        b = Box(np.zeros(2), np.ones(2))
        corners = b.corners()
        assert corners.shape == (4, 2)

    def test_corners_guard(self):
        b = Box(np.zeros(20), np.ones(20))
        with pytest.raises(DomainError):
            b.corners(limit=100)

    def test_split_widest(self):
        b = Box(np.zeros(2), np.array([1.0, 4.0]))
        left, right = b.split()
        assert left.upper[1] == 2.0 and right.lower[1] == 2.0
        assert left.union(right) == b

    def test_volume(self):
        assert Box(np.zeros(2), np.array([2.0, 3.0])).volume() == 6.0


class TestKappa:
    def test_paper_example(self):
        """Din=[1,2]^2 enlarged by 0.01 per side: kappa = sqrt(2)*0.01."""
        din = Box(np.ones(2), 2 * np.ones(2))
        enlarged = Box(np.ones(2) - 0.01, 2 * np.ones(2) + 0.01)
        assert box_kappa(din, enlarged) == pytest.approx(np.sqrt(2) * 0.01)

    def test_kappa_inf_norm(self):
        din = Box(np.zeros(2), np.ones(2))
        enlarged = din.inflate(np.array([0.1, 0.3]))
        assert box_kappa(din, enlarged, ord=np.inf) == pytest.approx(0.3)

    def test_kappa_zero_when_equal(self):
        din = Box(np.zeros(3), np.ones(3))
        assert box_kappa(din, din) == 0.0

    def test_kappa_requires_containment(self):
        din = Box(np.zeros(2), np.ones(2))
        other = Box(np.ones(2) * 0.5, np.ones(2) * 0.6)
        with pytest.raises(DomainError):
            box_kappa(din, other)

    def test_kappa_is_max_min_distance(self, rng):
        """kappa upper-bounds the distance of every enlarged-domain point."""
        din = Box(np.zeros(3), np.ones(3))
        enlarged = din.inflate(np.array([0.2, 0.0, 0.1]))
        kappa = box_kappa(din, enlarged)
        xs = enlarged.sample(500, rng)
        dists = [din.distance_to_point(x) for x in xs]
        assert max(dists) <= kappa + 1e-12


class TestAffineBounds:
    def test_exactness_on_corners(self, rng):
        w = rng.normal(size=(3, 2))
        b = rng.normal(size=3)
        box = Box(-np.ones(2), np.ones(2))
        out = affine_bounds(w, b, box)
        corner_vals = box.corners() @ w.T + b
        np.testing.assert_allclose(out.lower, corner_vals.min(axis=0))
        np.testing.assert_allclose(out.upper, corner_vals.max(axis=0))

    def test_dim_mismatch(self):
        with pytest.raises(ShapeError):
            affine_bounds(np.zeros((2, 3)), np.zeros(2), Box(np.zeros(2), np.ones(2)))
