"""Human-readable reports, including the Table I layout of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.continuous import ContinuousResult
from repro.core.propositions import PropositionResult

__all__ = ["Table1Row", "format_table1", "format_proposition_result",
           "format_continuous_result"]


@dataclass
class Table1Row:
    """One tuning step's measurements (both ratios in percent)."""

    case_id: int
    svudc_ratio: float
    svbtv_ratio: float
    svudc_strategy: str = ""
    svbtv_strategy: str = ""


def format_table1(rows: Sequence[Table1Row],
                  title: str = "TIME SAVINGS FROM INCREMENTAL VERIFICATION",
                  ) -> str:
    """Render rows in the layout of the paper's Table I."""
    lines = [title,
             f"{'case ID':>7} | {'SVuDC time / original':>22} | "
             f"{'SVbTV time / original':>22}"]
    lines.append("-" * len(lines[-1]))
    for row in rows:
        lines.append(
            f"{row.case_id:>7} | {row.svudc_ratio:>21.2f}% | "
            f"{row.svbtv_ratio:>21.2f}%"
        )
    return "\n".join(lines)


def format_proposition_result(result: PropositionResult) -> str:
    """Multi-line summary of a proposition attempt."""
    verdict = {True: "HOLDS", False: "fails", None: "inconclusive"}[result.holds]
    lines = [f"[{result.proposition}] {verdict}  "
             f"(total {result.elapsed * 1e3:.2f} ms, "
             f"max subproblem {result.max_subproblem_time * 1e3:.2f} ms)"]
    if result.detail:
        lines.append(f"  detail: {result.detail}")
    for sub in result.subproblems:
        mark = {True: "+", False: "-", None: "?"}[sub.holds]
        lines.append(f"  [{mark}] {sub.name}: {sub.elapsed * 1e3:.2f} ms"
                     + (f"  ({sub.detail})" if sub.detail else ""))
    return "\n".join(lines)


def format_continuous_result(result: ContinuousResult,
                             original_time: Optional[float] = None) -> str:
    """Summary of an orchestrated continuous-verification run."""
    verdict = {True: "SAFE", False: "NOT PROVED", None: "UNKNOWN"}[result.holds]
    lines = [f"{verdict} via {result.strategy} "
             f"(total {result.elapsed * 1e3:.2f} ms, winning strategy "
             f"{result.winning_time * 1e3:.2f} ms, "
             f"max subproblem {result.winning_max_subproblem_time * 1e3:.2f} ms)"]
    if original_time is not None and original_time > 0:
        lines.append(
            f"  incremental/original: "
            f"{result.speedup_vs(original_time):.2f}% (parallel), "
            f"{result.speedup_vs(original_time, parallel=False):.2f}% (sequential)"
        )
    for attempt in result.attempts:
        lines.append("  " + format_proposition_result(attempt).replace("\n", "\n  "))
    return "\n".join(lines)
