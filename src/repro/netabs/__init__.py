"""Network abstraction (Elboher/Gottschlich/Katz CAV'20 style)."""

from repro.netabs.classify import (
    DEC,
    INC,
    BlockSplit,
    SplitStructure,
    apply_split,
    categorize_split,
)
from repro.netabs.merge import (
    LOWER,
    UPPER,
    LayerGrouping,
    MergePlan,
    MergedWeights,
    group_reduce,
    make_merge_plan,
    merge_weights,
)
from repro.netabs.abstraction import (
    AbstractionCheck,
    NetworkAbstraction,
    build_abstraction,
)
from repro.netabs.refine import RefinementResult, verify_with_refinement

__all__ = [
    "AbstractionCheck",
    "BlockSplit",
    "DEC",
    "INC",
    "LOWER",
    "LayerGrouping",
    "MergePlan",
    "MergedWeights",
    "NetworkAbstraction",
    "RefinementResult",
    "SplitStructure",
    "UPPER",
    "apply_split",
    "build_abstraction",
    "categorize_split",
    "group_reduce",
    "make_merge_plan",
    "merge_weights",
    "verify_with_refinement",
]
