"""ReLU-phase branch and bound: exact optimisation over network outputs.

The workhorse of every "exact local check" in the paper: maximise a linear
function of a (sub)network's output over a box of inputs.  Each node of the
search tree is a partial phase assignment for statically-unstable neurons;
its LP relaxation (triangle hull for still-free neurons) yields an upper
bound, and forward-evaluating the relaxation's input point yields a feasible
lower bound (incumbent).  Branching fixes the most violated neuron's phase.
The method is sound and complete for ReLU / LeakyReLU networks.

Threshold mode makes the proposition checks cheap: when the caller only
needs to know whether ``max <= threshold`` the search stops as soon as the
global upper bound drops below (proved) or the incumbent rises above
(refuted, with a concrete counterexample input).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.api.config import (
    DEFAULT_INTERVAL_PRUNE,
    DEFAULT_LP_FORM,
    DEFAULT_NODE_LIMIT,
    DEFAULT_NODE_TIGHTEN,
    DEFAULT_TOL,
    DEFAULT_WORKERS,
    VerifyConfig,
    warn_legacy,
)
from repro.domains.box import Box
from repro.domains.batch import phase_clamped_node_bounds
from repro.exact.encoding import NetworkEncoding, PhaseMap
from repro.exact.lp import LP_INFEASIBLE, LP_OPTIMAL, solve_lp
from repro.nn.network import Network

__all__ = ["BaBResult", "BaBSolver", "maximize_output", "minimize_output"]

BAB_OPTIMAL = "optimal"
BAB_PROVED = "threshold_proved"     # max <= threshold established
BAB_REFUTED = "threshold_refuted"   # witness with value > threshold found
BAB_INFEASIBLE = "infeasible"
BAB_NODE_LIMIT = "node_limit"


@dataclass
class BaBResult:
    """Result of one branch-and-bound maximisation.

    ``upper_bound`` always soundly over-approximates the true maximum;
    ``incumbent`` is the best *achieved* value (at input ``witness``).
    At ``status == "optimal"`` the two coincide within tolerance.

    ``rounds`` / ``max_batch`` / ``mean_batch`` report the frontier
    search's per-round concurrency (all zero for the scalar search):
    how many synchronous rounds ran, and the largest / average number of
    node LPs solved concurrently per round.  ``workers`` is the pool
    width the solve was configured with.

    ``nodes_reused`` / ``lp_solves_saved`` report warm-start economics
    (both zero for cold solves): how many caller-supplied ``initial_nodes``
    the search adopted, and how many of those the batched float64
    re-screen settled without building their LP.  They are run
    bookkeeping, not part of the verdict value.
    """

    status: str
    upper_bound: float
    incumbent: float
    witness: Optional[np.ndarray]
    nodes: int
    lp_solves: int
    rounds: int = 0
    max_batch: int = 0
    mean_batch: float = 0.0
    workers: int = DEFAULT_WORKERS
    nodes_reused: int = 0
    lp_solves_saved: int = 0

    @property
    def optimum(self) -> float:
        """The exact maximum -- defined *only* at ``status == "optimal"``.

        Off the optimal path (``node_limit``, ``threshold_proved``,
        ``threshold_refuted``, ``infeasible``) ``upper_bound`` is merely a
        sound over-approximation, and silently returning it here has
        historically been misread as the exact value.  Raise instead;
        callers wanting the bound regardless of status read
        ``upper_bound``/``incumbent`` explicitly.
        """
        if self.status != BAB_OPTIMAL:
            raise SolverError(
                f"BaBResult.optimum is undefined at status {self.status!r}: "
                "the search did not run to optimality; use .upper_bound "
                "(sound bound) or .incumbent (best witness value) instead")
        return self.upper_bound


class BaBSolver:
    """Branch-and-bound maximiser bound to one ``(network, box)`` encoding."""

    def __init__(self, network: Network, input_box: Box,
                 encoding: Optional[NetworkEncoding] = None,
                 tol: float = DEFAULT_TOL,
                 node_limit: int = DEFAULT_NODE_LIMIT,
                 interval_prune: bool = DEFAULT_INTERVAL_PRUNE,
                 lp_form: str = DEFAULT_LP_FORM,
                 node_tighten: bool = DEFAULT_NODE_TIGHTEN,
                 workers: int = DEFAULT_WORKERS,
                 frontier_width: Optional[int] = None,
                 frontier: Optional[bool] = None):
        self.network = network
        self.input_box = input_box
        #: One encoding serves every node of every solve; when the caller
        #: does not bring their own it is pulled from the fingerprint-keyed
        #: cache, so repeated solves of the same ``(network, box)`` pair
        #: (different objectives, thresholds, warm starts) skip symbolic
        #: propagation and base assembly entirely.
        self.encoding = encoding or NetworkEncoding.for_problem(network, input_box)
        self.tol = float(tol)
        self.node_limit = int(node_limit)
        #: Screen sibling/frontier nodes with batched phase-clamped interval
        #: bounds before building their LPs (see :meth:`maximize`).
        self.interval_prune = bool(interval_prune)
        #: ``"sparse"`` composes each node LP as base + delta; ``"dense"``
        #: keeps the historical full rebuild (same verdicts, for
        #: comparison); ``"auto"`` (default) picks dense only for tiny
        #: systems where the delta machinery costs more than it saves.
        self.lp_form = str(lp_form)
        #: Feed each node's batched phase-clamped pre-activation bounds into
        #: its LP as ``z``-variable bounds (a per-node presolve riding the
        #: same stacked pass as the interval screen).  Off by default: it
        #: tightens node relaxations, which can change the search trajectory
        #: relative to the plain triangle LP.
        self.node_tighten = bool(node_tighten)
        if workers < 1:
            raise SolverError(f"workers must be positive, got {workers}")
        #: Concurrency of the frontier search's per-round LP solves (see
        #: :mod:`repro.exact.parallel_bab`).  ``workers=1`` keeps the
        #: historical scalar best-first search unless ``frontier=True``
        #: forces the frontier algorithm (e.g. to benchmark its pure
        #: concurrency gain at identical trajectories).
        self.workers = int(workers)
        #: Nodes expanded per frontier round.  Deliberately *independent*
        #: of ``workers`` (defaulting to a fixed constant) so the search
        #: trajectory -- hence status and optimum -- is identical across
        #: worker counts; raise it explicitly for very wide pools.
        self.frontier_width = frontier_width
        self.frontier = self.workers > 1 if frontier is None else bool(frontier)

    @classmethod
    def from_config(cls, network: Network, input_box: Box,
                    config: VerifyConfig,
                    encoding: Optional[NetworkEncoding] = None) -> "BaBSolver":
        """A solver configured from one :class:`VerifyConfig` -- the bridge
        the :mod:`repro.api` engine (and every internal caller) uses instead
        of hand-threading kwargs.  ``encoding=None`` honours the config's
        encoding-cache policy."""
        if encoding is None:
            encoding = config.encoding_for(network, input_box)
        return cls(network, input_box, encoding=encoding,
                   **config.bab_kwargs())

    # ------------------------------------------------------------------ main
    def maximize(self, c: np.ndarray,
                 threshold: Optional[float] = None,
                 initial_nodes: Optional[List[PhaseMap]] = None,
                 collect_leaves: Optional[List[PhaseMap]] = None,
                 start_screen: Optional[Callable] = None,
                 collect_duals: Optional[dict] = None) -> BaBResult:
        """Maximise ``c @ f(x)`` over the input box.

        With ``threshold`` set, stops early once ``max <= threshold`` is
        proved or refuted (see module docstring).

        ``initial_nodes`` replaces the root with a caller-supplied list of
        phase maps whose regions must jointly cover the search space -- the
        warm-start mechanism of :mod:`repro.exact.incremental`.

        ``collect_leaves`` (a caller-owned list) receives the phase map of
        every region the search *settled* -- pruned, proven, refined to a
        consistent LP, or still open at early termination.  Together these
        leaves cover the entire space, so they form a reusable branching
        certificate.

        With ``interval_prune`` on (the default), every batch of candidate
        nodes -- the warm-start list and each branching's sibling pair --
        is first screened with one batched phase-clamped interval pass
        (:func:`~repro.domains.batch.phase_clamped_node_bounds`).
        Nodes whose region is empty, cannot beat the incumbent, or already
        proves the threshold are settled without building their LP, which
        cuts ``lp_solves`` while preserving soundness, the optimum, and the
        covering-leaves invariant.  With ``node_tighten`` on, the same pass
        additionally hands each surviving node its clamped pre-activation
        bounds, installed as ``z``-variable bounds in the node's LP delta.

        ``start_screen`` optionally replaces the batched screen for the
        *initial-nodes batch only* (signature and return contract of
        :meth:`_screen_nodes`): certificate reuse passes the dual-bound
        screen of :func:`repro.certs.reuse.dual_start_screen` here, which
        settles warm starts far below the interval screen's reach.
        Branching children always use the stock screen, so a custom
        screen never changes a cold search.

        ``collect_duals`` (a caller-owned dict) receives the optimal dual
        multipliers ``(dual_ub, dual_eq)`` of every node LP this search
        solves, keyed by the node's canonical phase-map items.  Free for
        the solver (HiGHS computes marginals anyway) and never consulted
        by the search itself; certificate recording stores them so future
        re-verifications can re-certify each leaf with one LP-free
        Lagrangian evaluation (:mod:`repro.certs.reuse`).

        With ``workers > 1`` (or ``frontier=True``) the search runs as the
        parallel frontier algorithm of :mod:`repro.exact.parallel_bab`:
        same soundness guarantees, per-round batched screening and
        concurrent node LPs on the shared pool.
        """
        if self.frontier:
            from repro.exact.parallel_bab import maximize_frontier

            return maximize_frontier(self, c, threshold=threshold,
                                     initial_nodes=initial_nodes,
                                     collect_leaves=collect_leaves,
                                     start_screen=start_screen,
                                     collect_duals=collect_duals)
        enc = self.encoding
        tol = self.tol
        objective = enc.output_objective(np.asarray(c, dtype=np.float64))
        neg_obj = -objective  # linprog minimises

        lp_solves = 0
        nodes = 0
        counter = itertools.count()
        incumbent = -np.inf
        witness: Optional[np.ndarray] = None
        c_vec = np.asarray(c, dtype=np.float64).reshape(-1)
        # Sound max over regions the interval screen settled above the
        # incumbent (threshold mode); folded into every reported bound.
        screened_bound = -np.inf

        use_screen = self.interval_prune or self.node_tighten

        def screen_nodes(phase_maps: List[PhaseMap]):
            return self._screen_nodes(phase_maps, c_vec)

        def record_leaf(phases: PhaseMap) -> None:
            if collect_leaves is not None:
                collect_leaves.append(dict(phases))

        def solve_node(phases: PhaseMap, tight_pre=None):
            nonlocal lp_solves
            lp_solves += 1
            system = enc.build_lp(phases, form=self.lp_form,
                                  tight_pre=tight_pre)
            res = solve_lp(neg_obj, system.a_ub, system.b_ub,
                           system.a_eq, system.b_eq, system.bounds,
                           label=f"node {lp_solves}",
                           want_duals=collect_duals is not None)
            if collect_duals is not None and res.optimal:
                collect_duals[tuple(sorted(phases.items()))] = (
                    res.dual_ub if res.dual_ub is not None else np.zeros(0),
                    res.dual_eq if res.dual_eq is not None else np.zeros(0))
            return res

        def register_feasible(x_input: np.ndarray) -> None:
            nonlocal incumbent, witness
            value, x_clipped = self._feasible_value(c_vec, x_input)
            if value > incumbent:
                incumbent = value
                witness = x_clipped

        # Max-heap on node upper bounds (negate for heapq).
        heap: List[Tuple[float, int, PhaseMap, np.ndarray]] = []

        # Warm-start economics: how many caller-supplied starts we adopted,
        # and how many of those the float64 re-screen settled LP-free.
        nodes_reused = len(initial_nodes) if initial_nodes else 0
        lp_solves_saved = 0

        def finish(status: str, bound: float) -> BaBResult:
            # Whatever remains open is part of the covering certificate.
            for _, __, phases, ___ in heap:
                record_leaf(phases)
            return BaBResult(status, max(bound, screened_bound), incumbent,
                             witness, nodes, lp_solves,
                             nodes_reused=nodes_reused,
                             lp_solves_saved=lp_solves_saved)

        starts: List[PhaseMap] = (
            [dict(p) for p in initial_nodes] if initial_nodes else [{}]
        )
        start_ubs = start_feasible = start_tights = None
        if use_screen:
            start_ubs, start_feasible, start_tights = \
                (start_screen or screen_nodes)(starts)
            if self.interval_prune and threshold is not None and \
                    np.all(start_ubs <= threshold + tol):
                # The covering regions all close on the screen alone:
                # proved without a single LP.
                for start in starts:
                    record_leaf(start)
                lp_solves_saved = nodes_reused
                return BaBResult(BAB_PROVED, float(start_ubs.max()), incumbent,
                                 witness, nodes, lp_solves,
                                 nodes_reused=nodes_reused,
                                 lp_solves_saved=lp_solves_saved)
        any_feasible = False
        for j, start in enumerate(starts):
            ub_est = float(start_ubs[j]) if self.interval_prune else None
            verdict = self._screen_verdict(
                ub_est, not use_screen or bool(start_feasible[j]),
                incumbent, threshold)
            if verdict != "open":
                if verdict == "proved":  # region closed below the threshold
                    screened_bound = max(screened_bound, ub_est)
                if initial_nodes:
                    lp_solves_saved += 1
                record_leaf(start)  # empty / dominated by an earlier start
                continue
            res = solve_node(start,
                             start_tights[j] if start_tights else None)
            if res.status == LP_INFEASIBLE:
                record_leaf(start)
                continue
            if res.status != LP_OPTIMAL:
                raise SolverError(f"start LP ended with status {res.status}")
            any_feasible = True
            register_feasible(res.x[enc.input_slice])
            heapq.heappush(heap, (res.value, next(counter), start, res.x))
        if not any_feasible:
            if screened_bound > -np.inf:
                # Every LP-checked region was empty, but interval-screened
                # regions cover the rest below the threshold.
                return finish(BAB_PROVED, screened_bound)
            return BaBResult(BAB_INFEASIBLE, -np.inf, -np.inf, None,
                             len(starts), lp_solves,
                             nodes_reused=nodes_reused,
                             lp_solves_saved=lp_solves_saved)

        while heap:
            neg_bound, _, phases, x_lp = heapq.heappop(heap)
            bound = -neg_bound
            global_bound = max(bound, incumbent)

            if threshold is not None:
                if incumbent > threshold + tol:
                    record_leaf(phases)
                    return finish(BAB_REFUTED, global_bound)
                if global_bound <= threshold + tol:
                    record_leaf(phases)
                    return finish(BAB_PROVED, global_bound)
            if bound <= incumbent + tol:
                # The best remaining node cannot beat the incumbent: optimal.
                record_leaf(phases)
                return finish(BAB_OPTIMAL, max(incumbent, bound))

            nodes += 1
            if nodes > self.node_limit:
                record_leaf(phases)
                return finish(BAB_NODE_LIMIT, global_bound)

            branch_var = self._most_violated(x_lp, phases)
            if branch_var is None:
                # LP solution is activation-consistent: bound is attained.
                register_feasible(x_lp[enc.input_slice])
                record_leaf(phases)
                continue

            children: List[PhaseMap] = []
            for phase in (1, -1):
                child: PhaseMap = dict(phases)
                child[branch_var] = phase
                children.append(child)
            child_ubs = child_feasible = child_tights = None
            if use_screen:
                # One batched pass bounds both siblings before any LP exists.
                child_ubs, child_feasible, child_tights = screen_nodes(children)
            for j, child in enumerate(children):
                ub_est = float(child_ubs[j]) if self.interval_prune else None
                verdict = self._screen_verdict(
                    ub_est, not use_screen or bool(child_feasible[j]),
                    incumbent, threshold)
                if verdict != "open":
                    if verdict == "proved":  # closed below the threshold
                        screened_bound = max(screened_bound, ub_est)
                    record_leaf(child)  # empty region / dominated bound
                    continue
                res = solve_node(child,
                                 child_tights[j] if child_tights else None)
                if res.status == LP_INFEASIBLE:
                    record_leaf(child)  # the region is empty: settled
                    continue
                if res.status != LP_OPTIMAL:
                    # An unbounded child relaxation can never be *settled*:
                    # silently recording it as a leaf would drop an infinite
                    # upper bound from the search (historical bug).  Node
                    # LPs over a bounded input box are bounded, so this is
                    # always a solver/encoding failure worth surfacing.
                    raise SolverError(
                        f"child LP ended with status {res.status}")
                child_bound = -res.value
                register_feasible(res.x[enc.input_slice])
                if child_bound <= incumbent + tol:
                    record_leaf(child)
                    continue
                heapq.heappush(heap, (-child_bound, next(counter), child, res.x))

        status, bound = self._terminal_status(incumbent, screened_bound,
                                              threshold)
        return BaBResult(status, bound, incumbent, witness, nodes, lp_solves,
                         nodes_reused=nodes_reused,
                         lp_solves_saved=lp_solves_saved)

    # ------------------------------------------------- shared search pieces
    def _terminal_status(self, incumbent: float, screened_bound: float,
                         threshold: Optional[float]) -> Tuple[str, float]:
        """Resolve the verdict once no open node remains, shared by both
        searches.  Three subtle cases, in order: the incumbent can cross
        the threshold during the *last* expansion with no further pop to
        notice it (refuted, not optimal); interval-settled regions
        (threshold mode) may exceed the incumbent, so optimality is not
        established even though every region closed below the threshold;
        otherwise the incumbent is the exact optimum."""
        if threshold is not None and incumbent > threshold + self.tol:
            return BAB_REFUTED, max(incumbent, screened_bound)
        if screened_bound > incumbent + self.tol:
            return BAB_PROVED, screened_bound
        return BAB_OPTIMAL, incumbent

    def _screen_verdict(self, ub_est: Optional[float], feasible: bool,
                        incumbent: float,
                        threshold: Optional[float]) -> str:
        """Settle one screened candidate: ``"empty"`` (region infeasible),
        ``"dominated"`` (cannot beat ``incumbent``), ``"proved"`` (closed
        below ``threshold`` on intervals alone) or ``"open"`` (needs its
        LP).  The single statement of the screen-settling rules, shared by
        the scalar and frontier searches and by their start/child loops --
        callers record the leaf / fold ``ub_est`` into the screened bound
        according to the verdict."""
        if not feasible:
            return "empty"
        if self.interval_prune and ub_est is not None:
            if ub_est <= incumbent + self.tol:
                return "dominated"
            if threshold is not None and ub_est <= threshold + self.tol:
                return "proved"
        return "open"

    def _screen_nodes(self, phase_maps: List[PhaseMap], c_vec: np.ndarray):
        """One batched clamped-interval pass over candidate nodes:
        objective upper bounds (when pruning), feasibility, and -- with
        ``node_tighten`` -- per-node pre-activation tightenings.  Shared by
        the scalar search and the parallel frontier search so the settling
        rules cannot diverge between the two."""
        upper, feasible, pre_lo, pre_hi = phase_clamped_node_bounds(
            self.network, self.input_box, phase_maps,
            c_vec if self.interval_prune else None)
        tights = None
        if self.node_tighten:
            tights = [[(pre_lo[k][j], pre_hi[k][j])
                       for k in range(len(pre_lo))]
                      for j in range(len(phase_maps))]
        return upper, feasible, tights

    def _feasible_value(self, c_vec: np.ndarray,
                        x_input: np.ndarray) -> Tuple[float, np.ndarray]:
        """Clip an LP solution's input point into the box and evaluate the
        objective on the real network -- the incumbent candidate both
        searches derive from every optimal node LP."""
        x_clipped = self.input_box.clip_point(x_input)
        value = float(np.dot(c_vec, np.atleast_1d(
            self.network.forward(x_clipped))))
        return value, x_clipped

    def _most_violated(self, x: np.ndarray,
                       phases: PhaseMap) -> Optional[Tuple[int, int]]:
        """The free unstable neuron whose LP values most violate a = act(z)."""
        enc = self.encoding
        worst: Optional[Tuple[int, int]] = None
        worst_gap = self.tol
        for k, block in enumerate(self.network.blocks()):
            act = block.activation
            if act is None:
                continue
            slope = getattr(act, "alpha", 0.0)
            z = x[enc.z_slices[k]]
            a = x[enc.a_slices[k]]
            exact = np.where(z > 0, z, slope * z)
            gaps = np.abs(a - exact)
            for i in np.argsort(gaps)[::-1]:
                gap = gaps[i]
                if gap <= worst_gap:
                    break
                if (k, int(i)) in phases:
                    continue
                if enc.neuron_stability(k, int(i)) != "unstable":
                    continue
                worst = (k, int(i))
                worst_gap = gap
                break
        return worst

    def minimize(self, c: np.ndarray,
                 threshold: Optional[float] = None) -> BaBResult:
        """Minimise ``c @ f(x)``; thresholds mean ``min >= threshold``."""
        neg_threshold = None if threshold is None else -float(threshold)
        res = self.maximize(-np.asarray(c, dtype=np.float64), threshold=neg_threshold)
        return BaBResult(
            status=res.status,
            upper_bound=-res.upper_bound,   # now a sound *lower* bound
            incumbent=-res.incumbent,
            witness=res.witness,
            nodes=res.nodes,
            lp_solves=res.lp_solves,
            rounds=res.rounds,
            max_batch=res.max_batch,
            mean_batch=res.mean_batch,
            workers=res.workers,
            nodes_reused=res.nodes_reused,
            lp_solves_saved=res.lp_solves_saved,
        )


def _maximize_output(network: Network, input_box: Box, c: np.ndarray,
                     threshold: Optional[float] = None,
                     config: Optional[VerifyConfig] = None) -> BaBResult:
    """Internal one-shot maximisation (no deprecation): the engine path."""
    solver = BaBSolver.from_config(network, input_box,
                                   config or VerifyConfig())
    return solver.maximize(c, threshold=threshold)


def _minimize_output(network: Network, input_box: Box, c: np.ndarray,
                     threshold: Optional[float] = None,
                     config: Optional[VerifyConfig] = None) -> BaBResult:
    """Internal one-shot minimisation (no deprecation): the engine path."""
    solver = BaBSolver.from_config(network, input_box,
                                   config or VerifyConfig())
    return solver.minimize(c, threshold=threshold)


def maximize_output(network: Network, input_box: Box, c: np.ndarray,
                    threshold: Optional[float] = None,
                    node_limit: int = DEFAULT_NODE_LIMIT,
                    tol: float = DEFAULT_TOL,
                    interval_prune: bool = DEFAULT_INTERVAL_PRUNE,
                    lp_form: str = DEFAULT_LP_FORM,
                    workers: int = DEFAULT_WORKERS) -> BaBResult:
    """Deprecated shim: one-shot ``max c @ f(x)`` over ``input_box``.

    Use :class:`repro.api.MaximizeSpec` through the engine instead.
    """
    warn_legacy("maximize_output", "MaximizeSpec")
    from repro.api.engine import VerificationEngine
    from repro.api.specs import MaximizeSpec

    config = VerifyConfig(node_limit=node_limit, tol=tol,
                          interval_prune=interval_prune, lp_form=lp_form,
                          workers=workers)
    return VerificationEngine(config).verify(
        MaximizeSpec(network=network, input_box=input_box, objective=c,
                     threshold=threshold)).result


def minimize_output(network: Network, input_box: Box, c: np.ndarray,
                    threshold: Optional[float] = None,
                    node_limit: int = DEFAULT_NODE_LIMIT,
                    tol: float = DEFAULT_TOL,
                    interval_prune: bool = DEFAULT_INTERVAL_PRUNE,
                    lp_form: str = DEFAULT_LP_FORM,
                    workers: int = DEFAULT_WORKERS) -> BaBResult:
    """Deprecated shim: one-shot ``min c @ f(x)`` over ``input_box``.

    Use :class:`repro.api.MaximizeSpec` (``minimize=True``) instead.
    """
    warn_legacy("minimize_output", "MaximizeSpec(minimize=True)")
    from repro.api.engine import VerificationEngine
    from repro.api.specs import MaximizeSpec

    config = VerifyConfig(node_limit=node_limit, tol=tol,
                          interval_prune=interval_prune, lp_form=lp_form,
                          workers=workers)
    return VerificationEngine(config).verify(
        MaximizeSpec(network=network, input_box=input_box, objective=c,
                     threshold=threshold, minimize=True)).result
