"""Abstraction refinement: grow precision until the property is provable.

When the merged networks are too coarse (the abstract output bounds violate
``Dout`` even though the concrete network is safe -- a spurious result),
the CAV'20 framework refines by splitting merged groups back.  We realise
the same loop by rebuilding with a larger ``num_groups`` until either the
abstract proof goes through or the abstraction degenerates to the split
network itself (at which point the answer is as precise as the abstraction
method can be, and a failure is handed back to the caller as inconclusive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.domains.box import Box
from repro.nn.network import Network
from repro.netabs.abstraction import NetworkAbstraction, build_abstraction

__all__ = ["RefinementResult", "verify_with_refinement"]


@dataclass
class RefinementResult:
    """Result of the build-check-refine loop.

    ``holds`` is ``True`` when some abstraction level proved
    ``f(Din) ⊆ Dout``, ``None`` when even the finest level stayed
    inconclusive (the abstraction never *refutes*: its bounds are one-sided).
    """

    holds: Optional[bool]
    abstraction: Optional[NetworkAbstraction]
    levels_tried: int
    final_groups: int


def verify_with_refinement(network: Network, din: Box, dout: Box,
                           initial_groups: int = 1,
                           max_groups: int = 64,
                           margin: float = 0.0,
                           method: str = "symbolic") -> RefinementResult:
    """Prove ``∀x ∈ din : f(x) ∈ dout`` through abstract networks,
    doubling ``num_groups`` on every spurious failure."""
    groups = max(1, int(initial_groups))
    levels = 0
    last: Optional[NetworkAbstraction] = None
    while groups <= max_groups:
        levels += 1
        last = build_abstraction(network, din, num_groups=groups, margin=margin)
        bounds = last.output_bounds(din, method=method)
        if dout.contains_box(bounds):
            return RefinementResult(True, last, levels, groups)
        # Coarsest-to-finest: if the split network is already this small,
        # further refinement cannot help.
        sizes = last.abstraction_sizes()
        if sizes["merged"] >= sizes["split"]:
            break
        groups *= 2
    return RefinementResult(None, last, levels, groups)
