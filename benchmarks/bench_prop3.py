"""Proposition 3's worked example plus a kappa sweep on the vehicle head.

Paper example: ``Din = [1,2]^2``, enlargement ring of 0.01 per side
(``κ = 0.02`` after rounding up), ``ℓ = 100``, ``S_n = [1, 8]``,
``Dout = [-10, 10]``.  Inflating ``S_n`` by ``ℓκ = 2`` gives ``[-1, 10]``
which fits inside ``Dout`` -- safety transfers without touching a solver.

The sweep measures, on the trained vehicle head, how large an enlargement
Proposition 3 tolerates before the Lipschitz-inflated output abstraction
escapes ``Dout`` (its applicability frontier), and benchmarks the check.
"""

import numpy as np
import pytest

from repro.core import (
    LipschitzCertificate,
    ProofArtifacts,
    StateAbstractions,
    VerificationProblem,
    check_prop3,
)
from repro.domains import Box
from repro.nn import random_relu_network


@pytest.fixture(scope="module")
def paper_artifacts():
    net = random_relu_network([2, 3, 1], seed=0)  # function body irrelevant
    problem = VerificationProblem(
        net, Box(np.ones(2), 2 * np.ones(2)),
        Box(np.array([-10.0]), np.array([10.0])))
    return ProofArtifacts(
        problem=problem,
        states=StateAbstractions(
            boxes=[Box(np.zeros(3), np.ones(3)),
                   Box(np.array([1.0]), np.array([8.0]))]),
        lipschitz=LipschitzCertificate(ell=100.0),
    )


def test_paper_worked_example_holds(paper_artifacts):
    # paper rounds kappa up to 0.02; any ring with true kappa <= 0.02 works
    ring = 0.02 / np.sqrt(2)
    enlarged = paper_artifacts.problem.din.inflate(ring)
    res = check_prop3(paper_artifacts, enlarged)
    assert res.holds is True
    assert "ell=100" in res.detail


def test_paper_example_inflated_set(paper_artifacts):
    """The inflated S_n is exactly [-1, 10] as computed in the paper."""
    ell_kappa = 100.0 * 0.02
    inflated = paper_artifacts.states.output_abstraction.inflate(ell_kappa)
    np.testing.assert_allclose(inflated.lower, [-1.0])
    np.testing.assert_allclose(inflated.upper, [10.0])


def test_larger_enlargement_fails(paper_artifacts):
    enlarged = paper_artifacts.problem.din.inflate(0.1)
    assert check_prop3(paper_artifacts, enlarged).holds is False


def test_benchmark_prop3_check(paper_artifacts, benchmark):
    enlarged = paper_artifacts.problem.din.inflate(0.01)
    benchmark(lambda: check_prop3(paper_artifacts, enlarged))


def test_report_prop3_frontier(vehicle_bundle, capsys):
    """Applicability frontier of Prop 3 on the trained vehicle head."""
    artifacts = vehicle_bundle.baselines[0].artifacts
    lines = ["\nProposition 3 applicability (vehicle head)",
             f"  certified Lipschitz ell = {artifacts.lipschitz.ell:.4g}",
             "  enlargement  kappa      verdict"]
    frontier = None
    for ring in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1):
        enlarged = vehicle_bundle.din.inflate(ring)
        res = check_prop3(artifacts, enlarged)
        kappa = float(np.sqrt(vehicle_bundle.din.dim) * ring)
        lines.append(f"  {ring:>10.0e}  {kappa:.4g}  "
                     f"{'holds' if res.holds else 'fails'}")
        if res.holds:
            frontier = ring
    with capsys.disabled():
        print("\n".join(lines))
    # The check must accept at least the smallest enlargement.
    assert frontier is not None
