"""Neural-network layers with forward *and* backward passes in pure numpy.

The verification pipeline only needs piecewise-linear layers (``Dense``,
``ReLU``, ``LeakyReLU``, ``Flatten``); the vehicle perception substrate also
uses ``Conv2D`` / ``AvgPool2D`` for its frozen feature extractor, and smooth
activations (``Sigmoid``, ``Tanh``) are provided for completeness (they are
supported by the box/zonotope domains and the Lipschitz estimator, but not by
the exact MILP encodings, which require piecewise linearity).

Conventions
-----------
* Vectors flow as rows: a batch is ``(N, d)``; a single sample ``(d,)`` is
  also accepted everywhere and returns an unbatched result.
* ``Dense`` stores ``weight`` with shape ``(out_dim, in_dim)`` and computes
  ``y = x @ weight.T + bias`` -- the textbook ``W x + b`` orientation used in
  the verification literature and in the paper's Equation 2.
* Every layer implements ``forward`` and ``backward``; ``backward`` consumes
  the cache returned by ``forward(..., return_cache=True)`` and produces the
  gradient w.r.t. the input plus parameter gradients (for trainable layers).
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import LayerError, ShapeError

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Conv2D",
    "AvgPool2D",
    "ACTIVATION_LAYERS",
    "PIECEWISE_LINEAR_LAYERS",
]


def _as_batch(x: np.ndarray, feature_ndim: int = 1) -> Tuple[np.ndarray, bool]:
    """Promote an unbatched sample to a singleton batch.

    Returns the (possibly reshaped) array and whether the input was batched.
    ``feature_ndim`` is the number of trailing dimensions that make up one
    sample (1 for vectors, 3 for ``(C, H, W)`` images).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == feature_ndim:
        return x[np.newaxis, ...], False
    if x.ndim == feature_ndim + 1:
        return x, True
    raise ShapeError(
        f"expected array with {feature_ndim} or {feature_ndim + 1} dims, "
        f"got shape {x.shape}"
    )


class Layer(abc.ABC):
    """Abstract base class for all layers."""

    #: Number of trailing dims of one input sample (1 = vector, 3 = image).
    input_feature_ndim: int = 1

    @abc.abstractmethod
    def forward(self, x: np.ndarray, return_cache: bool = False):
        """Apply the layer.

        With ``return_cache=True`` returns ``(y, cache)`` where ``cache`` is
        whatever :meth:`backward` needs; otherwise returns ``y`` alone.
        """

    @abc.abstractmethod
    def backward(self, grad_out: np.ndarray, cache) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Back-propagate.

        Returns ``(grad_in, param_grads)`` where ``param_grads`` maps
        parameter names (e.g. ``"weight"``) to gradients; non-trainable
        layers return an empty dict.
        """

    def out_dim(self, in_dim: int) -> int:
        """Output dimensionality for a vector layer given ``in_dim``.

        Image layers override :meth:`out_shape` instead and raise here.
        """
        raise LayerError(f"{type(self).__name__} does not operate on flat vectors")

    @property
    def trainable_params(self) -> Dict[str, np.ndarray]:
        """Mutable view of this layer's trainable parameters (may be empty)."""
        return {}

    # --- serialization hooks -------------------------------------------------
    def config(self) -> Dict:
        """JSON-serializable constructor arguments (arrays excluded)."""
        return {}

    def arrays(self) -> Dict[str, np.ndarray]:
        """Named arrays to persist alongside :meth:`config`."""
        return {}

    def copy(self) -> "Layer":
        """Deep copy (parameters are copied, not shared)."""
        cfg = self.config()
        arrs = {k: v.copy() for k, v in self.arrays().items()}
        return type(self)._from_parts(cfg, arrs)

    @classmethod
    def _from_parts(cls, config: Dict, arrays: Dict[str, np.ndarray]) -> "Layer":
        layer = cls(**config)
        for name, arr in arrays.items():
            setattr(layer, name, np.asarray(arr, dtype=np.float64))
        return layer

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cfg = ", ".join(f"{k}={v}" for k, v in self.config().items())
        return f"{type(self).__name__}({cfg})"


class Dense(Layer):
    """Affine layer ``y = W x + b`` with ``W`` of shape ``(out_dim, in_dim)``."""

    def __init__(self, in_dim: int, out_dim: int,
                 weight: Optional[np.ndarray] = None,
                 bias: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None):
        if in_dim <= 0 or out_dim <= 0:
            raise LayerError(f"Dense dims must be positive, got ({in_dim}, {out_dim})")
        self.in_dim = int(in_dim)
        self.out_dim_ = int(out_dim)
        if weight is None:
            rng = rng or np.random.default_rng()
            # He initialisation -- appropriate for the ReLU nets we train.
            scale = np.sqrt(2.0 / in_dim)
            weight = rng.normal(0.0, scale, size=(out_dim, in_dim))
        weight = np.asarray(weight, dtype=np.float64)
        if weight.shape != (out_dim, in_dim):
            raise ShapeError(
                f"Dense weight must have shape {(out_dim, in_dim)}, got {weight.shape}"
            )
        if bias is None:
            bias = np.zeros(out_dim)
        bias = np.asarray(bias, dtype=np.float64)
        if bias.shape != (out_dim,):
            raise ShapeError(f"Dense bias must have shape {(out_dim,)}, got {bias.shape}")
        self.weight = weight
        self.bias = bias

    def forward(self, x, return_cache=False):
        xb, batched = _as_batch(x)
        if xb.shape[1] != self.in_dim:
            raise ShapeError(
                f"Dense expects inputs of dim {self.in_dim}, got {xb.shape[1]}"
            )
        yb = xb @ self.weight.T + self.bias
        y = yb if batched else yb[0]
        if return_cache:
            return y, {"x": xb, "batched": batched}
        return y

    def backward(self, grad_out, cache):
        gb, _ = _as_batch(grad_out)
        xb = cache["x"]
        grad_w = gb.T @ xb
        grad_b = gb.sum(axis=0)
        grad_in = gb @ self.weight
        if not cache["batched"]:
            grad_in = grad_in[0]
        return grad_in, {"weight": grad_w, "bias": grad_b}

    def out_dim(self, in_dim: int) -> int:
        if in_dim != self.in_dim:
            raise ShapeError(f"Dense expects in_dim {self.in_dim}, got {in_dim}")
        return self.out_dim_

    @property
    def trainable_params(self):
        return {"weight": self.weight, "bias": self.bias}

    def config(self):
        return {"in_dim": self.in_dim, "out_dim": self.out_dim_}

    def arrays(self):
        return {"weight": self.weight, "bias": self.bias}


class ReLU(Layer):
    """Rectified linear unit ``y = max(x, 0)`` (elementwise, shape preserving)."""

    def forward(self, x, return_cache=False):
        x = np.asarray(x, dtype=np.float64)
        y = np.maximum(x, 0.0)
        if return_cache:
            return y, {"mask": x > 0.0}
        return y

    def backward(self, grad_out, cache):
        return np.asarray(grad_out) * cache["mask"], {}

    def out_dim(self, in_dim: int) -> int:
        return in_dim


class LeakyReLU(Layer):
    """Leaky ReLU ``y = x if x > 0 else alpha * x`` with ``0 <= alpha < 1``."""

    def __init__(self, alpha: float = 0.01):
        alpha = float(alpha)
        if not 0.0 <= alpha < 1.0:
            raise LayerError(f"LeakyReLU alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha

    def forward(self, x, return_cache=False):
        x = np.asarray(x, dtype=np.float64)
        y = np.where(x > 0.0, x, self.alpha * x)
        if return_cache:
            return y, {"mask": x > 0.0}
        return y

    def backward(self, grad_out, cache):
        g = np.asarray(grad_out)
        return np.where(cache["mask"], g, self.alpha * g), {}

    def out_dim(self, in_dim: int) -> int:
        return in_dim

    def config(self):
        return {"alpha": self.alpha}


class Sigmoid(Layer):
    """Logistic sigmoid ``y = 1 / (1 + exp(-x))``."""

    def forward(self, x, return_cache=False):
        x = np.asarray(x, dtype=np.float64)
        y = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))),
                     np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))
        if return_cache:
            return y, {"y": y}
        return y

    def backward(self, grad_out, cache):
        y = cache["y"]
        return np.asarray(grad_out) * y * (1.0 - y), {}

    def out_dim(self, in_dim: int) -> int:
        return in_dim


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def forward(self, x, return_cache=False):
        y = np.tanh(np.asarray(x, dtype=np.float64))
        if return_cache:
            return y, {"y": y}
        return y

    def backward(self, grad_out, cache):
        y = cache["y"]
        return np.asarray(grad_out) * (1.0 - y * y), {}

    def out_dim(self, in_dim: int) -> int:
        return in_dim


class Flatten(Layer):
    """Flatten ``(C, H, W)`` image samples into vectors of length ``C*H*W``.

    Applied to already-flat vectors it is the identity, which lets the
    *verified* sub-network of Fig. 4 (whose input is the Flatten output)
    keep the Flatten layer at its head without special-casing.
    """

    input_feature_ndim = 3

    def forward(self, x, return_cache=False):
        x = np.asarray(x, dtype=np.float64)
        if x.ndim <= 1:
            y, shape = x, x.shape
        elif x.ndim == 2:
            # Already a batch of vectors -> identity.
            y, shape = x, x.shape
        elif x.ndim == 3:
            y, shape = x.reshape(-1), x.shape
        elif x.ndim == 4:
            y, shape = x.reshape(x.shape[0], -1), x.shape
        else:
            raise ShapeError(f"Flatten cannot handle ndim {x.ndim}")
        if return_cache:
            return y, {"shape": shape}
        return y

    def backward(self, grad_out, cache):
        return np.asarray(grad_out).reshape(cache["shape"]), {}

    def out_dim(self, in_dim: int) -> int:
        return in_dim


class Conv2D(Layer):
    """2-D convolution (``valid`` padding) over ``(C, H, W)`` samples.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)``.  Used by the
    frozen vehicle feature extractor; correct but unoptimised (einsum over
    extracted patches), which is fine for the small frame sizes we render.
    """

    input_feature_ndim = 3

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1,
                 weight: Optional[np.ndarray] = None,
                 bias: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None):
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise LayerError("Conv2D dimensions and stride must be positive")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        if weight is None:
            rng = rng or np.random.default_rng()
            fan_in = in_channels * kernel_size * kernel_size
            weight = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)
        weight = np.asarray(weight, dtype=np.float64)
        if weight.shape != shape:
            raise ShapeError(f"Conv2D weight must have shape {shape}, got {weight.shape}")
        if bias is None:
            bias = np.zeros(out_channels)
        bias = np.asarray(bias, dtype=np.float64)
        if bias.shape != (out_channels,):
            raise ShapeError(f"Conv2D bias must have shape ({out_channels},)")
        self.weight = weight
        self.bias = bias

    def _patches(self, xb: np.ndarray) -> np.ndarray:
        """Extract sliding patches -> ``(N, H', W', C, kh, kw)``."""
        n, c, h, w = xb.shape
        k, s = self.kernel_size, self.stride
        if h < k or w < k:
            raise ShapeError(f"input {h}x{w} smaller than kernel {k}x{k}")
        oh = (h - k) // s + 1
        ow = (w - k) // s + 1
        sn, sc, sh, sw = xb.strides
        shape = (n, oh, ow, c, k, k)
        strides = (sn, sh * s, sw * s, sc, sh, sw)
        return np.lib.stride_tricks.as_strided(xb, shape=shape, strides=strides)

    def forward(self, x, return_cache=False):
        xb, batched = _as_batch(x, feature_ndim=3)
        if xb.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2D expects {self.in_channels} channels, got {xb.shape[1]}"
            )
        patches = self._patches(xb)
        yb = np.einsum("nhwckl,ockl->nohw", patches, self.weight) + self.bias[:, None, None]
        y = yb if batched else yb[0]
        if return_cache:
            return y, {"x": xb, "batched": batched}
        return y

    def backward(self, grad_out, cache):
        # The extractor is frozen in every experiment; training through
        # convolutions is intentionally unsupported to keep the substrate
        # honest about what the paper fine-tunes (the dense head only).
        raise LayerError("Conv2D is a frozen feature-extractor layer; no backward pass")

    def out_shape(self, in_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        c, h, w = in_shape
        if c != self.in_channels:
            raise ShapeError(f"Conv2D expects {self.in_channels} channels, got {c}")
        k, s = self.kernel_size, self.stride
        return (self.out_channels, (h - k) // s + 1, (w - k) // s + 1)

    def config(self):
        return {
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel_size": self.kernel_size,
            "stride": self.stride,
        }

    def arrays(self):
        return {"weight": self.weight, "bias": self.bias}


class AvgPool2D(Layer):
    """Average pooling with square window and matching stride."""

    input_feature_ndim = 3

    def __init__(self, pool_size: int):
        if pool_size <= 0:
            raise LayerError("AvgPool2D pool_size must be positive")
        self.pool_size = int(pool_size)

    def forward(self, x, return_cache=False):
        xb, batched = _as_batch(x, feature_ndim=3)
        n, c, h, w = xb.shape
        p = self.pool_size
        oh, ow = h // p, w // p
        if oh == 0 or ow == 0:
            raise ShapeError(f"input {h}x{w} smaller than pool {p}x{p}")
        trimmed = xb[:, :, : oh * p, : ow * p]
        yb = trimmed.reshape(n, c, oh, p, ow, p).mean(axis=(3, 5))
        y = yb if batched else yb[0]
        if return_cache:
            return y, {"shape": xb.shape, "batched": batched}
        return y

    def backward(self, grad_out, cache):
        raise LayerError("AvgPool2D is a frozen feature-extractor layer; no backward pass")

    def out_shape(self, in_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        c, h, w = in_shape
        p = self.pool_size
        return (c, h // p, w // p)

    def config(self):
        return {"pool_size": self.pool_size}


#: Activation layer classes (elementwise, shape preserving).
ACTIVATION_LAYERS = (ReLU, LeakyReLU, Sigmoid, Tanh)

#: Layers the exact MILP/BaB encodings support.
PIECEWISE_LINEAR_LAYERS = (Dense, ReLU, LeakyReLU, Flatten)
