"""Operator norms of weight matrices.

Lipschitz bounds multiply per-layer operator norms, so their quality hinges
on computing ``||W||_p`` accurately: exact row/column-sum formulas for
``p ∈ {1, ∞}`` and power iteration (with a deterministic start and a safe
fallback to the Frobenius norm) for the spectral norm ``p = 2``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["operator_norm", "spectral_norm"]


def spectral_norm(matrix: np.ndarray, iterations: int = 100,
                  tol: float = 1e-10) -> float:
    """Largest singular value via power iteration on ``W^T W``.

    Deterministic (fixed seed start vector), converges geometrically in the
    gap between the top two singular values; the returned value is clamped
    from above by the Frobenius norm, which is always a valid upper bound,
    so even early termination stays sound for Lipschitz purposes.
    """
    w = np.asarray(matrix, dtype=np.float64)
    if w.ndim != 2:
        raise ShapeError(f"expected a matrix, got shape {w.shape}")
    if w.size == 0:
        return 0.0
    fro = float(np.linalg.norm(w))
    if fro == 0.0:
        return 0.0
    rng = np.random.default_rng(12345)
    v = rng.normal(size=w.shape[1])
    v /= np.linalg.norm(v)
    gram = w.T @ w
    sigma_sq = 0.0
    for _ in range(iterations):
        v_new = gram @ v
        norm = np.linalg.norm(v_new)
        if norm == 0.0:
            return 0.0
        v_new /= norm
        if np.linalg.norm(v_new - v) < tol:
            v = v_new
            break
        v = v_new
    sigma_sq = float(v @ gram @ v)
    sigma = float(np.sqrt(max(sigma_sq, 0.0)))
    # Power iteration under-approximates; pad by the residual to stay sound
    # and never exceed the Frobenius bound.
    residual = float(np.linalg.norm(gram @ v - sigma_sq * v))
    padded = np.sqrt(max(sigma_sq + residual, 0.0))
    return min(float(padded), fro)


def operator_norm(matrix: np.ndarray, ord: float = 2) -> float:
    """``||W||_p`` for ``p ∈ {1, 2, ∞}`` (induced vector-norm sense)."""
    w = np.asarray(matrix, dtype=np.float64)
    if w.ndim != 2:
        raise ShapeError(f"expected a matrix, got shape {w.shape}")
    if ord == 2:
        return spectral_norm(w)
    if ord == 1:
        return float(np.max(np.abs(w).sum(axis=0))) if w.size else 0.0
    if ord in (np.inf, float("inf")):
        return float(np.max(np.abs(w).sum(axis=1))) if w.size else 0.0
    raise ShapeError(f"unsupported operator norm order {ord!r}")
