"""Pure-numpy training: SGD / Adam on MSE loss, plus the fine-tuning API.

The paper's continuous-engineering loop fine-tunes an already-trained network
with a very small learning rate (around ``1e-3``), keeping the convolutional
front frozen so every version shares one input domain.  :func:`fine_tune`
reproduces exactly that: it deep-copies the network, optionally freezes
blocks, and runs a few low-learning-rate epochs, returning the new version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn.network import Network

__all__ = ["TrainConfig", "TrainResult", "mse_loss", "train", "fine_tune"]


@dataclass
class TrainConfig:
    """Hyper-parameters for :func:`train`.

    ``optimizer`` is ``"sgd"`` (with momentum) or ``"adam"``.
    ``frozen_blocks`` lists block indices whose parameters never move --
    the mechanism used to mirror the paper's frozen convolution front.
    """

    epochs: int = 50
    batch_size: int = 32
    learning_rate: float = 1e-2
    momentum: float = 0.9
    optimizer: str = "sgd"
    frozen_blocks: Sequence[int] = ()
    shuffle: bool = True
    seed: int = 0
    adam_beta1: float = 0.9
    adam_beta2: float = 0.999
    adam_eps: float = 1e-8


@dataclass
class TrainResult:
    """Loss trajectory of one training run."""

    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def mse_loss(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean-squared-error loss and its gradient w.r.t. ``pred``."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ShapeError(f"prediction shape {pred.shape} != target shape {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff * diff))
    grad = 2.0 * diff / diff.size
    return loss, grad


def _forward_with_caches(network: Network, xb: np.ndarray):
    caches = []
    y = xb
    for layer in network.layers:
        y, cache = layer.forward(y, return_cache=True)
        caches.append(cache)
    return y, caches


def _backward(network: Network, grad: np.ndarray, caches) -> List[Dict[str, np.ndarray]]:
    grads: List[Dict[str, np.ndarray]] = [dict() for _ in network.layers]
    for idx in range(len(network.layers) - 1, -1, -1):
        grad, pgrads = network.layers[idx].backward(grad, caches[idx])
        grads[idx] = pgrads
    return grads


def _trainable_layer_indices(network: Network, frozen_blocks: Iterable[int]) -> set:
    frozen = set(int(i) for i in frozen_blocks)
    frozen_layers = set()
    for k, blk in enumerate(network.blocks()):
        if k in frozen:
            frozen_layers.add(id(blk.dense))
    return {
        i
        for i, layer in enumerate(network.layers)
        if layer.trainable_params and id(layer) not in frozen_layers
    }


def train(network: Network, inputs: np.ndarray, targets: np.ndarray,
          config: Optional[TrainConfig] = None) -> TrainResult:
    """Train ``network`` in place on ``(inputs, targets)`` with MSE loss.

    ``inputs`` is ``(N, d_in)``; ``targets`` is ``(N, d_out)`` or ``(N,)``
    for scalar outputs.  Returns the per-epoch loss trajectory.
    """
    config = config or TrainConfig()
    x = np.asarray(inputs, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    if x.ndim != 2:
        raise ShapeError(f"inputs must be (N, d), got shape {x.shape}")
    if y.ndim == 1:
        y = y[:, None]
    if y.shape[0] != x.shape[0]:
        raise ShapeError("inputs and targets disagree on the number of samples")

    rng = np.random.default_rng(config.seed)
    trainable = _trainable_layer_indices(network, config.frozen_blocks)

    velocity: Dict[Tuple[int, str], np.ndarray] = {}
    adam_m: Dict[Tuple[int, str], np.ndarray] = {}
    adam_v: Dict[Tuple[int, str], np.ndarray] = {}
    adam_t = 0

    result = TrainResult()
    n = x.shape[0]
    for _epoch in range(config.epochs):
        order = rng.permutation(n) if config.shuffle else np.arange(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start:start + config.batch_size]
            xb, yb = x[idx], y[idx]
            pred, caches = _forward_with_caches(network, xb)
            if pred.ndim == 1:
                pred = pred[:, None]
            loss, grad = mse_loss(pred, yb)
            epoch_loss += loss
            batches += 1
            grads = _backward(network, grad.reshape(pred.shape), caches)
            adam_t += 1
            for i in trainable:
                layer = network.layers[i]
                for name, g in grads[i].items():
                    param = layer.trainable_params[name]
                    key = (i, name)
                    if config.optimizer == "adam":
                        m = adam_m.get(key, np.zeros_like(param))
                        v = adam_v.get(key, np.zeros_like(param))
                        m = config.adam_beta1 * m + (1 - config.adam_beta1) * g
                        v = config.adam_beta2 * v + (1 - config.adam_beta2) * g * g
                        adam_m[key], adam_v[key] = m, v
                        mhat = m / (1 - config.adam_beta1 ** adam_t)
                        vhat = v / (1 - config.adam_beta2 ** adam_t)
                        step = config.learning_rate * mhat / (np.sqrt(vhat) + config.adam_eps)
                    else:
                        vel = velocity.get(key, np.zeros_like(param))
                        vel = config.momentum * vel - config.learning_rate * g
                        velocity[key] = vel
                        step = -vel
                    param -= step
        result.losses.append(epoch_loss / max(batches, 1))
    return result


def fine_tune(network: Network, inputs: np.ndarray, targets: np.ndarray,
              learning_rate: float = 1e-3, epochs: int = 3,
              frozen_blocks: Sequence[int] = (), seed: int = 0) -> Network:
    """Return a *new* network fine-tuned from ``network``.

    Mirrors the paper's continuous-engineering step: small learning rate,
    few epochs, optionally frozen blocks; the original network is untouched,
    so the caller keeps both versions for the SVbTV problem.
    """
    tuned = network.copy()
    config = TrainConfig(
        epochs=epochs,
        learning_rate=learning_rate,
        optimizer="sgd",
        momentum=0.0,
        frozen_blocks=frozen_blocks,
        seed=seed,
    )
    train(tuned, inputs, targets, config)
    return tuned
