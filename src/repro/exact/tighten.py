"""LP-based bound tightening (optimisation-based presolve).

The triangle relaxation and the big-M constants of the exact encodings are
only as good as the pre-activation bounds ``[l, u]`` they are built from.
Symbolic propagation gives sound but sometimes loose bounds; this module
tightens them the way modern complete verifiers do: for each (or each
*unstable*) neuron, minimise and maximise its pre-activation subject to the
LP relaxation of the layers *before* it, layer by layer, feeding each
tightened layer into the next.

Tightening is optional (it costs two LP solves per tightened neuron) and
pays off when it flips unstable neurons to stable — every stabilised neuron
halves the branch-and-bound search space.  The trade-off is measured in
``benchmarks/bench_tightening.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SolverError
from repro.domains.box import Box
from repro.domains.symbolic import SymbolicPropagator
from repro.exact.lp import LP_OPTIMAL, solve_lp
from repro.nn.network import Network

__all__ = ["TightenStats", "tighten_preactivation_bounds"]


@dataclass
class TightenStats:
    """What a tightening pass achieved."""

    lp_solves: int = 0
    neurons_tightened: int = 0
    neurons_stabilized: int = 0
    total_width_before: float = 0.0
    total_width_after: float = 0.0

    @property
    def width_reduction(self) -> float:
        """Fraction of total pre-activation interval width removed."""
        if self.total_width_before <= 0:
            return 0.0
        return 1.0 - self.total_width_after / self.total_width_before


def _prefix_lp_system(network: Network, input_box: Box,
                      pre_boxes: List[Box], upto_block: int) -> tuple:
    """Sparse triangle-relaxation LP of blocks ``0..upto_block``.

    Built *once per block* and reused for every neuron tightened in it --
    within a block all neurons share the same prefix bounds, so the system
    is identical and only the objective changes (this is where the sparse
    kernel turns optimisation-based presolve from O(neurons) encodings into
    O(blocks))."""
    from repro.exact.encoding import NetworkEncoding

    prefix = network.subnetwork(0, upto_block + 1)
    enc = NetworkEncoding(prefix, input_box, pre_boxes=pre_boxes[:upto_block + 1])
    return enc, enc.build_lp()


def _prefix_lp_bounds(enc, system, upto_block: int,
                      neuron: int) -> Optional[tuple]:
    """Min/max of block ``upto_block``'s ``neuron`` pre-activation under the
    prefix LP built by :func:`_prefix_lp_system`.

    Returns ``None`` when either LP fails to solve (the caller keeps the
    existing bound -- tightening must never loosen or break soundness).
    """
    objective = np.zeros(system.num_vars)
    objective[enc.z_slices[upto_block].start + neuron] = 1.0
    lo_res = solve_lp(objective, system.a_ub, system.b_ub,
                      system.a_eq, system.b_eq, system.bounds)
    hi_res = solve_lp(-objective, system.a_ub, system.b_ub,
                      system.a_eq, system.b_eq, system.bounds)
    if lo_res.status != LP_OPTIMAL or hi_res.status != LP_OPTIMAL:
        return None
    return float(lo_res.value), float(-hi_res.value)


def tighten_preactivation_bounds(network: Network, input_box: Box,
                                 pre_boxes: Optional[List[Box]] = None,
                                 only_unstable: bool = True,
                                 max_lp_solves: int = 2000,
                                 ) -> tuple:
    """Tighten per-neuron pre-activation bounds with prefix LPs.

    Returns ``(tightened_boxes, stats)``.  ``only_unstable=True`` (default)
    spends LPs only where stability is undecided -- the neurons that
    actually cost branch-and-bound nodes.  ``max_lp_solves`` caps the
    presolve budget; remaining neurons keep their propagated bounds.
    """
    if pre_boxes is None:
        pre_boxes = SymbolicPropagator().preactivation_boxes(network, input_box)
    boxes = [Box(b.lower.copy(), b.upper.copy()) for b in pre_boxes]
    stats = TightenStats(
        total_width_before=float(sum(b.widths.sum() for b in boxes)))

    for k, block in enumerate(network.blocks()):
        if block.activation is None and k < network.num_blocks - 1:
            continue
        lower = boxes[k].lower.copy()
        upper = boxes[k].upper.copy()
        enc = system = None  # prefix LP assembled lazily, once per block
        for i in range(block.out_dim):
            unstable = lower[i] < 0.0 < upper[i]
            if only_unstable and not unstable:
                continue
            if stats.lp_solves + 2 > max_lp_solves:
                break
            if system is None:
                enc, system = _prefix_lp_system(network, input_box, boxes, k)
            result = _prefix_lp_bounds(enc, system, k, i)
            stats.lp_solves += 2
            if result is None:
                continue
            new_lo, new_hi = result
            if new_lo > new_hi:
                raise SolverError(
                    f"tightening produced inverted bounds at block {k}, "
                    f"neuron {i}: [{new_lo}, {new_hi}]")
            new_lo = max(new_lo, lower[i])
            new_hi = min(new_hi, upper[i])
            if new_lo > lower[i] + 1e-12 or new_hi < upper[i] - 1e-12:
                stats.neurons_tightened += 1
                if unstable and (new_lo >= 0.0 or new_hi <= 0.0):
                    stats.neurons_stabilized += 1
            lower[i], upper[i] = new_lo, new_hi
        boxes[k] = Box(lower, upper)

    stats.total_width_after = float(sum(b.widths.sum() for b in boxes))
    return boxes, stats
