"""Tests for backward refinement, the engineering loop, and the CLI."""

import numpy as np
import pytest

from repro.core import EngineeringLoop, VerificationProblem
from repro.domains import Box, refine_input_box
from repro.domains.propagate import inductive_states
from repro.exact import maximize_output, output_range_exact
from repro.nn import fine_tune, random_relu_network
from repro.cli import main as cli_main


@pytest.fixture(scope="module")
def net_and_box():
    net = random_relu_network([3, 10, 8, 1], seed=4, weight_scale=0.7)
    return net, Box(-0.7 * np.ones(3), 0.7 * np.ones(3))


class TestBackwardRefinement:
    def test_sound_overapproximation(self, net_and_box, rng):
        """Every input reaching the target stays in the refined box."""
        net, box = net_and_box
        rng_box = output_range_exact(net, box)
        target = Box(np.array([rng_box.upper[0] - 0.2]),
                     np.array([rng_box.upper[0] + 5.0]))
        res = refine_input_box(net, box, target)
        xs = box.sample(4000, rng)
        ys = net.forward(xs).reshape(-1)
        reaching = xs[ys >= target.lower[0]]
        if res.empty:
            assert reaching.shape[0] == 0
        else:
            for x in reaching:
                assert res.input_box.contains_point(x, tol=1e-7)

    def test_unreachable_target_proven_empty(self, net_and_box):
        """Emptiness is provable once the target leaves the *box* forward
        bound (box-based backward analysis cannot beat its own forward
        precision -- targets between the exact and the box bound need the
        exact solver)."""
        net, box = net_and_box
        from repro.domains import output_box

        top = output_box(net, box, "box").upper[0]
        impossible = Box(np.array([top + 1.0]), np.array([top + 2.0]))
        res = refine_input_box(net, box, impossible)
        assert res.empty
        assert res.volume_ratio == 0.0

    def test_full_range_target_changes_nothing_much(self, net_and_box):
        net, box = net_and_box
        huge = Box(np.array([-1e6]), np.array([1e6]))
        res = refine_input_box(net, box, huge)
        assert not res.empty
        assert res.input_box.contains_box(box)  # nothing removed

    def test_refinement_shrinks_on_tight_targets(self):
        """A monotone 1-D network: targeting the top of the range must cut
        away the bottom of the input box."""
        from repro.nn import Dense, Network, ReLU

        net = Network(
            [Dense(1, 1, weight=np.array([[1.0]]), bias=np.zeros(1)), ReLU(),
             Dense(1, 1, weight=np.array([[2.0]]), bias=np.zeros(1))],
            input_dim=1)
        box = Box(np.array([0.0]), np.array([1.0]))
        target = Box(np.array([1.0]), np.array([2.0]))  # y in [1,2] => x >= .5
        res = refine_input_box(net, box, target)
        assert not res.empty
        assert res.input_box.lower[0] == pytest.approx(0.5, abs=1e-9)
        assert res.volume_ratio == pytest.approx(0.5, abs=1e-9)


class TestEngineeringLoop:
    @pytest.fixture(scope="class")
    def loop(self):
        net = random_relu_network([4, 12, 10, 1], seed=6, weight_scale=0.55)
        din = Box(np.zeros(4), 0.8 * np.ones(4))
        sn = inductive_states(net, din, 0.03)[-1]
        dout = sn.inflate(0.5 * float(sn.widths.max()) + 0.2)
        problem = VerificationProblem(net, din, dout)
        loop = EngineeringLoop(problem, state_buffer=0.03, rigor="abstract")
        step = loop.initial_verification()
        assert step.holds is True
        return loop

    def test_domain_step_advances_baseline(self, loop):
        before = loop.problem.din
        step = loop.on_domain_enlarged(before.inflate(0.005))
        assert step.holds is True
        assert loop.problem.din.contains_box(before)
        assert loop.problem.din != before

    def test_version_step_advances_network(self, loop, rng):
        x = loop.problem.din.sample(150, rng)
        y = loop.problem.network.forward(x)
        tuned = fine_tune(loop.problem.network, x, y, learning_rate=5e-4,
                          epochs=1)
        step = loop.on_new_version(tuned)
        assert step.holds is True
        assert loop.problem.network is tuned

    def test_history_and_summary(self, loop):
        assert len(loop.history) >= 3
        text = loop.summary()
        assert "initial" in text and "settled by proof reuse" in text

    def test_multiple_rounds_mostly_reuse(self, loop, rng):
        reused = 0
        for i in range(3):
            x = loop.problem.din.sample(100, rng)
            y = loop.problem.network.forward(x)
            tuned = fine_tune(loop.problem.network, x, y, learning_rate=5e-4,
                              epochs=1, seed=i)
            step = loop.on_new_version(tuned)
            assert step.holds is True
            if not step.reverified:
                reused += 1
        assert reused >= 1

    def test_requires_initial_verification(self):
        net = random_relu_network([3, 6, 1], seed=0)
        problem = VerificationProblem(
            net, Box(np.zeros(3), np.ones(3)),
            Box(np.array([-1e5]), np.array([1e5])))
        loop = EngineeringLoop(problem)
        with pytest.raises(RuntimeError):
            loop.on_domain_enlarged(problem.din.inflate(0.1))


class TestCLI:
    def test_fig2_command(self, capsys):
        assert cli_main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "6.2" in out

    def test_prop3_command(self, capsys):
        assert cli_main(["prop3"]) == 0
        out = capsys.readouterr().out
        assert "True" in out

    def test_verify_command_roundtrip(self, tmp_path, capsys):
        from repro.nn import random_relu_network, save_network

        net = random_relu_network([3, 8, 1], seed=1, weight_scale=0.5)
        path = tmp_path / "net.npz"
        save_network(net, path)
        artifacts = tmp_path / "proof.npz"
        code = cli_main(["verify", str(path), "--din", "0", "1",
                         "--artifacts", str(artifacts)])
        assert code == 0
        assert artifacts.exists()
        out = capsys.readouterr().out
        assert "SAFE" in out
        from repro.core import load_artifacts

        loaded = load_artifacts(artifacts)
        assert loaded.states is not None

    def test_verify_command_unsafe_property(self, tmp_path, capsys):
        from repro.nn import random_relu_network, save_network

        net = random_relu_network([3, 8, 1], seed=1)
        path = tmp_path / "net.npz"
        save_network(net, path)
        code = cli_main(["verify", str(path), "--din", "0", "1",
                         "--dout", "0", "1e-9"])
        assert code == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
