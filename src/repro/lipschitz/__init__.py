"""Lipschitz-constant estimation: global product bounds and local Fast-Lip."""

from repro.lipschitz.norms import operator_norm, spectral_norm
from repro.lipschitz.bounds import (
    LayerLipschitz,
    empirical_lipschitz,
    global_lipschitz_bound,
    layer_lipschitz_bounds,
)
from repro.lipschitz.fastlip import interval_jacobian, local_lipschitz_bound

__all__ = [
    "LayerLipschitz",
    "empirical_lipschitz",
    "global_lipschitz_bound",
    "interval_jacobian",
    "layer_lipschitz_bounds",
    "local_lipschitz_bound",
    "operator_norm",
    "spectral_norm",
]
