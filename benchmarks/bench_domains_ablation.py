"""Fig. 1 insight ablation: abstract transformers vs exact local solving.

Proposition 1 needs ``g2(g1(Din ∪ Δin)) ⊆ S2``.  Fig. 1 illustrates why a
plain abstract transformer often cannot show this (its image of the
enlarged domain is a *larger* abstract set than S2) while the true reachable
set still fits -- which exact methods detect.  This ablation quantifies the
effect across the three abstract domains and the exact solver: for growing
enlargements, which method can still reuse S2?

Also benchmarks each method's runtime on the two-layer head subproblem.
"""

import numpy as np
import pytest

from repro.domains import Box, output_box
from repro.exact import check_containment
from repro.nn import fig2_network, random_relu_network

DOMAIN_METHODS = ("box", "zonotope", "symbolic", "deeppoly")


@pytest.fixture(scope="module")
def workload():
    """Two-layer heads + the S2 boxes their original-domain proofs stored."""
    cases = []
    for seed in range(5):
        net = random_relu_network([3, 8, 6, 1], seed=seed, weight_scale=0.7)
        head = net.subnetwork(0, 2)
        din = Box(-0.8 * np.ones(3), 0.8 * np.ones(3))
        # S2 as an exact-method proof would store it: the true reachable
        # range of the head over Din, padded slightly.
        from repro.exact import output_range_exact

        s2 = output_range_exact(head, din).inflate(0.05)
        cases.append((head, din, s2))
    fig2 = fig2_network()
    fig2_din = Box(-np.ones(2), np.ones(2))
    s2_fig2 = Box(np.array([0.0]), np.array([12.0]))
    cases.append((fig2, fig2_din, s2_fig2))
    return cases


def _reusable(head, enlarged, s2, method):
    if method == "exact":
        return check_containment(head, enlarged, s2, method="exact").holds is True
    return s2.contains_box(output_box(head, enlarged, method))


@pytest.mark.parametrize("method", DOMAIN_METHODS + ("exact",))
def test_all_methods_agree_without_enlargement_on_fig2(workload, method):
    """With Δin = ∅ the stored S2 is reusable by construction for exact and
    for the domain that generated it (box, on the Fig. 2 instance)."""
    head, din, s2 = workload[-1]
    if method in ("box", "exact"):
        assert _reusable(head, din, s2, method)


def test_exact_dominates_domains(workload):
    """Wherever any abstract domain proves reuse, exact proves it too."""
    for head, din, s2 in workload:
        for ring in (0.01, 0.05, 0.1):
            enlarged = din.inflate(ring)
            if any(_reusable(head, enlarged, s2, m) for m in DOMAIN_METHODS):
                assert _reusable(head, enlarged, s2, "exact")


def test_report_reuse_frontier(workload, capsys):
    """For each method, the largest enlargement that still reuses S2
    (aggregated over the workload) -- the Fig. 1-b vs Fig. 1-c gap."""
    rings = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2)
    lines = ["\nProposition-1 reuse success by method (cases reusing S2 / total)"]
    header = "  ring:   " + "".join(f"{r:>8.2f}" for r in rings)
    lines.append(header)
    wins = {}
    for method in DOMAIN_METHODS + ("exact",):
        row = []
        for ring in rings:
            ok = sum(
                1 for head, din, s2 in workload
                if _reusable(head, din.inflate(ring), s2, method))
            row.append(ok)
        wins[method] = row
        lines.append(f"  {method:>7}: " + "".join(f"{k:>8d}" for k in row))
    with capsys.disabled():
        print("\n".join(lines))
    n = len(workload)
    # Exact reuses everything at Δin = 0 and dominates every domain at
    # every ring (Fig. 1's point).
    assert wins["exact"][0] == n
    for method in DOMAIN_METHODS:
        for k_dom, k_exact in zip(wins[method], wins["exact"]):
            assert k_dom <= k_exact


@pytest.mark.parametrize("method", DOMAIN_METHODS + ("exact",))
def test_benchmark_head_check(workload, benchmark, method):
    head, din, s2 = workload[0]
    enlarged = din.inflate(0.05)
    benchmark(lambda: _reusable(head, enlarged, s2, method))
