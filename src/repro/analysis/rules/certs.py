"""``cert-discipline``: certificates persist through JobStore, travel as wire.

PR 9's delta-verification certificates are *advisory* artifacts: a stale
or adversarial payload may cost time but must never flip a verdict.  That
guarantee rests on two conventions this rule enforces statically:

* **One store.**  Certificate persistence happens through the ``JobStore``
  certificate API (``cert_get``/``cert_put``) and nowhere else.  The
  :mod:`repro.certs` package itself computes -- extraction, validation,
  warm-start -- and never touches files or databases, so every stored
  certificate passes through the store's schema, migrations, and lock.
  Flagged inside ``repro.certs``: importing a persistence module
  (``sqlite3``/``pickle``/``shelve``/``dbm``), calling ``open()``, or
  writing via ``.write_text``/``.write_bytes``.

* **Wire strings at the boundary.**  A certificate crosses a module
  boundary only as a ``*_json`` wire string (``repro.api.serialize``
  round-trips it), never as a live ``Certificate`` object -- the provider
  protocol must keep working when the store sits behind a process or HTTP
  boundary, and re-validation on parse is where the soundness screen
  anchors.  Flagged everywhere: a ``def cert_put``/``def cert_get`` whose
  payload parameters are not ``*_json``-named, and a ``.cert_put(...)``
  call site whose payload argument is not wire-shaped (a ``*_json``
  name/attribute/field lookup, a ``*_to_json``/``json.dumps`` call, or a
  string constant).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

__all__ = ["CertDisciplineRule"]

#: Modules whose import inside ``repro.certs`` marks home-grown
#: persistence -- the JobStore owns durability.
_PERSISTENCE_MODULES = frozenset({"sqlite3", "pickle", "shelve", "dbm"})

_WRITE_METHODS = frozenset({"write_text", "write_bytes"})

#: cert_put's first parameter is the cache key; only payloads after it
#: must be wire strings.  ``structural_fp`` is an indexed column of the
#: key's fingerprint, not a payload.
_NON_PAYLOAD_PARAMS = frozenset({"self", "cls", "cert_key", "key",
                                 "structural_fp"})


class CertDisciplineRule(Rule):
    name = "cert-discipline"
    description = ("certificates persist only via the JobStore API and "
                   "cross module boundaries only as *_json wire strings")
    scope = ("repro",)
    exempt = ("repro.serve.store",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        in_certs = ctx.module == "repro.certs" \
            or ctx.module.startswith("repro.certs.")
        for node in ast.walk(ctx.tree):
            if in_certs:
                yield from self._check_persistence(ctx, node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name in ("cert_put", "cert_get"):
                yield from self._check_definition(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    # ------------------------------------------------- persistence (certs)
    def _check_persistence(self, ctx: ModuleContext,
                           node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".", 1)[0] in _PERSISTENCE_MODULES:
                    yield self.finding(
                        ctx, node,
                        f"{alias.name} imported inside repro.certs; "
                        "certificate persistence belongs to the JobStore "
                        "certificate API")
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".", 1)[0] in _PERSISTENCE_MODULES:
                yield self.finding(
                    ctx, node,
                    f"{node.module} imported inside repro.certs; "
                    "certificate persistence belongs to the JobStore "
                    "certificate API")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                yield self.finding(
                    ctx, node,
                    "file I/O inside repro.certs; persist certificates "
                    "through JobStore.cert_put instead")
            elif isinstance(func, ast.Attribute) \
                    and func.attr in _WRITE_METHODS:
                yield self.finding(
                    ctx, node,
                    f".{func.attr}() inside repro.certs; persist "
                    "certificates through JobStore.cert_put instead")

    # ------------------------------------------------------------ def side
    def _check_definition(self, ctx: ModuleContext,
                          node: ast.AST) -> Iterator[Finding]:
        args = node.args
        params = [arg for arg in args.posonlyargs + args.args
                  + args.kwonlyargs
                  if arg.arg not in _NON_PAYLOAD_PARAMS]
        for param in params:
            if param.arg.endswith("_json"):
                continue
            yield self.finding(
                ctx, param,
                f"{node.name}() parameter {param.arg!r} is not "
                "wire-shaped; the certificate provider protocol passes "
                "*_json strings (plus the key)")

    # ----------------------------------------------------------- call side
    def _check_call(self, ctx: ModuleContext,
                    node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "cert_put":
            return
        payloads = list(node.args[1:]) + [
            kw.value for kw in node.keywords
            if kw.arg not in _NON_PAYLOAD_PARAMS]
        for arg in payloads:
            if not self._wire_shaped(arg):
                yield self.finding(
                    ctx, arg,
                    "certificate payload passed to .cert_put() is not "
                    f"wire-shaped ({ast.unparse(arg)}); serialize with "
                    "certificate_to_json before it leaves the module")

    @staticmethod
    def _wire_shaped(arg: ast.expr) -> bool:
        if isinstance(arg, ast.Constant):
            return isinstance(arg.value, (str, type(None)))
        if isinstance(arg, ast.Name):
            return arg.id.endswith("_json")
        if isinstance(arg, ast.Attribute):
            return arg.attr.endswith("_json")
        if isinstance(arg, ast.Call):
            callee = arg.func
            terminal = callee.attr if isinstance(callee, ast.Attribute) \
                else callee.id if isinstance(callee, ast.Name) else ""
            return terminal.endswith("to_json") or terminal == "dumps" \
                or terminal.endswith("_json")
        if isinstance(arg, ast.Subscript):
            index = arg.slice
            return isinstance(index, ast.Constant) \
                and isinstance(index.value, str) \
                and index.value.endswith("_json")
        return False
