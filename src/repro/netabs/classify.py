"""Categorised splitting: the first phase of network abstraction.

Following Elboher, Gottschlich & Katz (CAV 2020), every hidden neuron of a
single-output ReLU network is split into copies with a definite *effect* on
the output: **INC** (increasing the neuron's value can only increase the
output) or **DEC** (can only decrease it).  Splitting is function-preserving:
a neuron whose outgoing edges pull in both directions becomes two copies,
each keeping only the edges of one effect sign (the other entries zeroed).

The split is recorded *structurally* -- per block, the row/column origin
maps into the unsplit network plus the kept-edge mask -- so the identical
split can later be re-applied to a fine-tuned network ``f'`` when checking
``f' --Din--> f̂`` (Proposition 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ArtifactError, UnsupportedLayerError
from repro.nn.layers import ReLU
from repro.nn.network import Network

__all__ = ["INC", "DEC", "BlockSplit", "SplitStructure", "categorize_split",
           "apply_split"]

INC = 1    # increasing the neuron increases the network output
DEC = -1   # increasing the neuron decreases the network output


@dataclass
class BlockSplit:
    """Split recipe for one block's weight matrix.

    ``W_split = W[row_orig][:, col_orig] * mask`` and
    ``b_split = b[row_orig]``, where ``row_orig`` maps split output neurons
    to original ones and ``col_orig`` does the same for inputs (identity on
    the network input for block 0).
    """

    row_orig: np.ndarray   # (d_out_split,)  int
    col_orig: np.ndarray   # (d_in_split,)   int
    mask: np.ndarray       # (d_out_split, d_in_split) {0,1}
    row_cat: np.ndarray    # (d_out_split,)  INC/DEC of the output neurons


@dataclass
class SplitStructure:
    """The full categorised split of a network (one recipe per block)."""

    blocks: List[BlockSplit]

    def layer_categories(self, k: int) -> np.ndarray:
        """Categories of block ``k``'s (split) output neurons."""
        return self.blocks[k].row_cat


def _validate_for_abstraction(network: Network) -> None:
    if network.output_dim != 1:
        raise UnsupportedLayerError(
            "network abstraction requires a single-output network "
            f"(got output dim {network.output_dim})"
        )
    blocks = network.blocks()
    for k, block in enumerate(blocks[:-1]):
        if not isinstance(block.activation, ReLU):
            raise UnsupportedLayerError(
                f"network abstraction requires ReLU hidden blocks; block {k} "
                f"has {type(block.activation).__name__ if block.activation else 'no'}"
                " activation"
            )
    if blocks[-1].activation is not None:
        raise UnsupportedLayerError(
            "network abstraction requires a linear output block"
        )


def categorize_split(network: Network) -> SplitStructure:
    """Compute the categorised split structure of ``network``.

    Works backward from the single output (category INC by convention --
    the abstraction *directions* are chosen later by the merge rules), at
    each boundary assigning source copies so that every kept edge satisfies
    ``sign(w) = cat(source) * cat(target)``.
    """
    _validate_for_abstraction(network)
    blocks = network.blocks()
    n = len(blocks)

    specs: List[BlockSplit] = [None] * n  # type: ignore[list-item]
    # Current split of the boundary *after* block k (start: the output).
    row_orig = np.array([0], dtype=int)
    row_cat = np.array([INC], dtype=int)

    for k in range(n - 1, -1, -1):
        w = blocks[k].dense.weight
        d_in = w.shape[1]
        if k == 0:
            col_orig = np.arange(d_in)
            mask = np.ones((row_orig.size, d_in))
            specs[0] = BlockSplit(row_orig, col_orig, mask, row_cat)
            break
        # Decide the split of the source layer (outputs of block k-1).
        w_rows = w[row_orig]  # (d_out_split, d_in) in original input indexing
        effect = np.sign(w_rows) * row_cat[:, None]  # per-edge output effect
        col_entries = []  # (orig_j, category, edge_keep_bool_per_row)
        for j in range(d_in):
            col_eff = effect[:, j]
            has_pos = bool(np.any(col_eff > 0))
            has_neg = bool(np.any(col_eff < 0))
            if has_pos and has_neg:
                col_entries.append((j, INC, col_eff > 0))
                col_entries.append((j, DEC, col_eff < 0))
            elif has_neg:
                col_entries.append((j, DEC, np.ones(row_orig.size, dtype=bool)))
            else:
                # All-positive or all-zero edges: an INC copy keeps them all.
                col_entries.append((j, INC, np.ones(row_orig.size, dtype=bool)))
        col_orig = np.array([e[0] for e in col_entries], dtype=int)
        col_cat = np.array([e[1] for e in col_entries], dtype=int)
        mask = np.stack([e[2] for e in col_entries], axis=1).astype(float)
        specs[k] = BlockSplit(row_orig, col_orig, mask, row_cat)
        row_orig, row_cat = col_orig, col_cat

    return SplitStructure(blocks=specs)


def apply_split(network: Network, structure: SplitStructure):
    """Materialise the split weights of ``network`` under ``structure``.

    Returns ``(weights, biases)`` lists, one entry per block, in split
    indexing.  Raising :class:`ArtifactError` on architecture mismatch makes
    this safe to call with a *fine-tuned* network when re-checking the
    abstraction relation.
    """
    blocks = network.blocks()
    if len(blocks) != len(structure.blocks):
        raise ArtifactError(
            f"split structure has {len(structure.blocks)} blocks, "
            f"network has {len(blocks)}"
        )
    weights, biases = [], []
    for k, (block, spec) in enumerate(zip(blocks, structure.blocks)):
        w, b = block.dense.weight, block.dense.bias
        if spec.row_orig.max(initial=-1) >= w.shape[0] or \
           spec.col_orig.max(initial=-1) >= w.shape[1]:
            raise ArtifactError(f"block {k} shape changed; split not applicable")
        weights.append(w[spec.row_orig][:, spec.col_orig] * spec.mask)
        biases.append(b[spec.row_orig])
    return weights, biases
