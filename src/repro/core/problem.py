"""Problem statements: safety verification and its continuous variants.

Formalises Section III of the paper:

* :class:`VerificationProblem` -- the base property
  ``φ^f_{Din,Dout} := ∀x ∈ Din : f(x) ∈ Dout``;
* :class:`SVuDC` -- *Safety Verification under Domain Change* (Problem
  Statement 2): same network, enlarged input domain ``Din ∪ Δin``;
* :class:`SVbTV` -- *Safety Verification between Two Versions* (Problem
  Statement 1): fine-tuned network ``f'``, optionally with a domain
  enlargement as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import DomainError, ShapeError
from repro.domains.box import Box
from repro.nn.network import Network

__all__ = ["VerificationProblem", "SVuDC", "SVbTV"]


@dataclass
class VerificationProblem:
    """``φ^f_{Din,Dout}``: does every input in ``din`` map into ``dout``?"""

    network: Network
    din: Box
    dout: Box

    def __post_init__(self):
        if self.din.dim != self.network.input_dim:
            raise ShapeError(
                f"Din dim {self.din.dim} != network input {self.network.input_dim}"
            )
        if self.dout.dim != self.network.output_dim:
            raise ShapeError(
                f"Dout dim {self.dout.dim} != network output {self.network.output_dim}"
            )

    def sample_check(self, n: int = 1000,
                     rng: Optional[np.random.Generator] = None) -> Optional[np.ndarray]:
        """Random falsification probe: a violating input or ``None``.

        A cheap pre-check (and test oracle); never a proof.
        """
        rng = rng or np.random.default_rng()
        xs = self.din.sample(n, rng)
        ys = np.atleast_2d(self.network.forward(xs))
        bad = (ys < self.dout.lower[None, :] - 1e-12) | \
              (ys > self.dout.upper[None, :] + 1e-12)
        idx = np.flatnonzero(bad.any(axis=1))
        if idx.size:
            return xs[idx[0]]
        return None


@dataclass
class SVuDC:
    """Problem Statement 2: ``φ^f_{Din,Dout}`` holds; does
    ``φ^f_{Din∪Δin,Dout}``?"""

    original: VerificationProblem
    enlarged_din: Box

    def __post_init__(self):
        if not self.enlarged_din.contains_box(self.original.din):
            raise DomainError("the enlarged domain must contain the original Din")

    @property
    def new_problem(self) -> VerificationProblem:
        return VerificationProblem(self.original.network, self.enlarged_din,
                                   self.original.dout)


@dataclass
class SVbTV:
    """Problem Statement 1: ``φ^f_{Din,Dout}`` holds; does
    ``φ^{f'}_{Din∪Δin,Dout}``?  (``Δin = ∅`` when ``enlarged_din`` is None.)"""

    original: VerificationProblem
    new_network: Network
    enlarged_din: Optional[Box] = None

    def __post_init__(self):
        old, new = self.original.network, self.new_network
        if (old.input_dim, old.output_dim) != (new.input_dim, new.output_dim):
            raise ShapeError("old and new networks disagree on input/output dims")
        if old.num_blocks != new.num_blocks:
            raise ShapeError("old and new networks must share the block structure")
        if self.enlarged_din is not None and \
                not self.enlarged_din.contains_box(self.original.din):
            raise DomainError("the enlarged domain must contain the original Din")

    @property
    def effective_din(self) -> Box:
        return self.enlarged_din if self.enlarged_din is not None else self.original.din

    @property
    def new_problem(self) -> VerificationProblem:
        return VerificationProblem(self.new_network, self.effective_din,
                                   self.original.dout)
