"""Project-native static analysis: ``repro lint`` as a library.

The lint engine and its rule catalogue mechanically enforce the
conventions the codebase's correctness rests on -- determinism on the
verdict path, single-sourced solver defaults, wire-only executor
boundaries, annotated lock discipline, float64 soundness gates, the
serve failure taxonomy, and store-only SQLite access.  See
``docs/static_analysis.md`` for the catalogue and
:mod:`repro.analysis.core` for the engine.

Typical library use::

    from repro.analysis import lint_paths
    result = lint_paths(["src/repro"])
    assert result.clean, result.findings
"""

from __future__ import annotations

from repro.analysis.core import (
    Finding,
    LintResult,
    ModuleContext,
    Rule,
    UNUSED_SUPPRESSION,
    lint_paths,
    lint_source,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Finding",
    "LintResult",
    "ModuleContext",
    "Rule",
    "UNUSED_SUPPRESSION",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
