"""Batched bound propagation: every abstract domain over N boxes at once.

The continuous-verification loop is dominated by re-propagating state
abstractions: branch and bound screens hundreds of sibling regions, the
runtime monitor checks windows of samples, and the Proposition 4/5
decompositions re-run one propagation per subproblem.  Doing those one
:class:`~repro.domains.box.Box` at a time pays full Python/numpy dispatch
overhead per region.  This module stacks the regions instead and pushes the
whole stack through each layer with a single numpy pass -- the stacked
interval arithmetic that gives ReluVal/Neurify-style tools their throughput.

Batched-state layout
--------------------
* :class:`BoxBatch` -- lower/upper bounds stacked as ``(N, d)`` arrays; row
  ``i`` is one box.  The :meth:`BoxBatch.unsafe` constructor skips
  validation for propagator inner loops (all public entry points validate).
* :class:`SymbolicBatch` -- ReluVal-style affine bounds with a leading batch
  axis: ``low_w/up_w`` are ``(N, d, m)``, ``low_b/up_b`` are ``(N, d)``;
  slice ``[i]`` is exactly one :class:`~repro.domains.symbolic.SymbolicInterval`.
* :class:`ZonotopeBatch` -- centers ``(N, d)`` and generators ``(N, d, m)``.
  A fresh noise symbol is appended for every neuron unstable in *some* row
  (rows where that neuron is stable get a zero column) so the batch keeps
  one uniform shape; zero generators do not change concretised bounds.

Affine layers become one stacked matmul over the batch axis
(``np.einsum``/broadcasting); activations become masked elementwise maps.
Per-block results concretise back to :class:`BoxBatch`, so every batched
propagator has the same signature::

    propagate_batch(network, BoxBatch) -> [BoxBatch_1, ..., BoxBatch_n]

matching the scalar ``propagate(network, Box) -> [S_1, ..., S_n]`` row by
row (within floating-point summation-order noise, well below 1e-12 on the
workloads here).

The module also hosts the two batched screens built on top:

* :func:`phase_clamped_objective_bounds` -- interval upper bounds of
  ``c @ f(x)`` for N branch-and-bound nodes (phase-constrained regions) in
  one pass, the pre-LP pruning device of :mod:`repro.exact.bab`;
* :func:`screen_containments` -- N heterogeneous ``(network, source,
  target)`` containment subproblems screened in a single dimension-padded
  stacked pass, the Proposition 4/5 pre-screen of
  :mod:`repro.core.propositions`.

This batched API is the base every future scaling PR (sharded propagation,
async serving) builds on -- see ROADMAP.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DomainError, ShapeError, UnsupportedLayerError
from repro.domains.box import Box
from repro.nn.layers import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.network import Network

__all__ = [
    "BoxBatch",
    "SymbolicBatch",
    "ZonotopeBatch",
    "BatchedBoxPropagator",
    "BatchedSymbolicPropagator",
    "BatchedZonotopePropagator",
    "BATCHED_PROPAGATORS",
    "get_batched_propagator",
    "propagate_batch",
    "output_box_batch",
    "phase_clamped_node_bounds",
    "phase_clamped_objective_bounds",
    "phase_clamped_affine_bounds",
    "screen_containments",
]


@dataclass(frozen=True)
class BoxBatch:
    """N closed axis-aligned boxes stacked as ``(N, d)`` bound arrays."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self):
        lower = np.asarray(self.lower, dtype=np.float64)
        upper = np.asarray(self.upper, dtype=np.float64)
        if lower.ndim != 2 or lower.shape != upper.shape:
            raise ShapeError(
                f"batch bounds must be matching (N, d) arrays, got "
                f"{lower.shape} vs {upper.shape}"
            )
        if lower.shape[0] == 0 or lower.shape[1] == 0:
            raise DomainError("box batches must be non-empty in both axes")
        if np.any(lower > upper + 1e-12):
            worst = float(np.max(lower - upper))
            raise DomainError(f"lower exceeds upper by {worst:.3g}")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", np.maximum(upper, lower))

    # ------------------------------------------------------------ constructors
    @classmethod
    def unsafe(cls, lower: np.ndarray, upper: np.ndarray) -> "BoxBatch":
        """Validation-free fast path for propagator inner loops.

        Callers must supply float64 ``(N, d)`` arrays with ``lower <= upper``.
        """
        batch = object.__new__(cls)
        object.__setattr__(batch, "lower", lower)
        object.__setattr__(batch, "upper", upper)
        return batch

    @staticmethod
    def from_boxes(boxes: Sequence[Box]) -> "BoxBatch":
        """Stack same-dimension boxes into one batch."""
        if not boxes:
            raise DomainError("cannot build a batch from zero boxes")
        dims = {box.dim for box in boxes}
        if len(dims) > 1:
            raise ShapeError(f"boxes have mixed dimensions: {sorted(dims)}")
        return BoxBatch.unsafe(
            np.stack([box.lower for box in boxes]),
            np.stack([box.upper for box in boxes]),
        )

    @staticmethod
    def single(box: Box) -> "BoxBatch":
        """A batch of one (degenerate ``N = 1``)."""
        return BoxBatch.unsafe(box.lower[np.newaxis, :], box.upper[np.newaxis, :])

    @staticmethod
    def tile(box: Box, n: int) -> "BoxBatch":
        """``n`` copies of the same box."""
        if n <= 0:
            raise DomainError(f"batch size must be positive, got {n}")
        return BoxBatch.unsafe(
            np.tile(box.lower, (int(n), 1)), np.tile(box.upper, (int(n), 1))
        )

    # -------------------------------------------------------------- geometry
    @property
    def size(self) -> int:
        """Number of boxes N."""
        return self.lower.shape[0]

    @property
    def dim(self) -> int:
        return self.lower.shape[1]

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lower + self.upper)

    @property
    def radius(self) -> np.ndarray:
        return 0.5 * (self.upper - self.lower)

    @property
    def widths(self) -> np.ndarray:
        return self.upper - self.lower

    # ------------------------------------------------------------- conversion
    def box(self, i: int) -> Box:
        """Row ``i`` as a scalar :class:`Box`."""
        return Box.unsafe(np.ascontiguousarray(self.lower[i]),
                          np.ascontiguousarray(self.upper[i]))

    def boxes(self) -> List[Box]:
        """Materialise the batch as a list of scalar boxes."""
        return [self.box(i) for i in range(self.size)]

    def select(self, mask: np.ndarray) -> "BoxBatch":
        """Sub-batch of the rows where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        return BoxBatch.unsafe(self.lower[mask], self.upper[mask])

    # ------------------------------------------------------------ set algebra
    def contains_points(self, points: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        """Row-wise containment: is ``points[i]`` inside box ``i``?"""
        pts = np.asarray(points, dtype=np.float64)
        if pts.shape != self.lower.shape:
            raise ShapeError(f"points shape {pts.shape} != batch {self.lower.shape}")
        return np.all((pts >= self.lower - tol) & (pts <= self.upper + tol), axis=1)

    def contained_in(self, outer: Box, tol: float = 1e-9) -> np.ndarray:
        """Per-row mask: is box ``i`` inside the (single) ``outer`` box?"""
        if outer.dim != self.dim:
            raise ShapeError(f"box dim {outer.dim} != batch dim {self.dim}")
        return np.all(
            (self.lower >= outer.lower - tol) & (self.upper <= outer.upper + tol),
            axis=1,
        )


# --------------------------------------------------------------------------
# Box domain
# --------------------------------------------------------------------------
def _batch_activation(act, lower: np.ndarray, upper: np.ndarray) -> BoxBatch:
    """Monotone elementwise activations, broadcast over the batch axis."""
    if isinstance(act, ReLU):
        return BoxBatch.unsafe(np.maximum(lower, 0.0), np.maximum(upper, 0.0))
    if isinstance(act, LeakyReLU):
        a = act.alpha
        lo = np.where(lower > 0, lower, a * lower)
        hi = np.where(upper > 0, upper, a * upper)
        return BoxBatch.unsafe(lo, hi)
    if isinstance(act, (Sigmoid, Tanh)):
        return BoxBatch.unsafe(act.forward(lower), act.forward(upper))
    raise UnsupportedLayerError(f"no box transformer for {type(act).__name__}")


class BatchedBoxPropagator:
    """Interval arithmetic over a whole batch: one matmul pass per block."""

    name = "box"

    def propagate_block(self, block, batch: BoxBatch) -> BoxBatch:
        w, b = block.dense.weight, block.dense.bias
        center = batch.center @ w.T + b
        radius = batch.radius @ np.abs(w).T
        out = BoxBatch.unsafe(center - radius, center + radius)
        act = block.activation
        if act is None:
            return out
        return _batch_activation(act, out.lower, out.upper)

    def propagate(self, network: Network, batch: BoxBatch) -> List[BoxBatch]:
        """Per-block batched abstractions ``[S_1, ..., S_n]``; row ``i`` of
        every entry matches the scalar propagation of ``batch.box(i)``."""
        if batch.dim != network.input_dim:
            raise ShapeError(
                f"batch dim {batch.dim} != network input {network.input_dim}"
            )
        outputs = []
        current = batch
        for block in network.blocks():
            current = self.propagate_block(block, current)
            outputs.append(current)
        return outputs


# --------------------------------------------------------------------------
# Symbolic-interval domain
# --------------------------------------------------------------------------
@dataclass
class SymbolicBatch:
    """Batched affine lower/upper bounds over per-row input boxes.

    ``low_w/up_w`` are ``(N, d, m)``; ``low_b/up_b`` are ``(N, d)``; row
    ``i`` encodes ``low_w[i] x + low_b[i] <= neuron(x) <= up_w[i] x +
    up_b[i]`` for every ``x`` in ``input.box(i)``.
    """

    input: BoxBatch
    low_w: np.ndarray
    low_b: np.ndarray
    up_w: np.ndarray
    up_b: np.ndarray

    @staticmethod
    def identity(batch: BoxBatch) -> "SymbolicBatch":
        eye = np.broadcast_to(np.eye(batch.dim), (batch.size, batch.dim, batch.dim))
        zero = np.zeros((batch.size, batch.dim))
        return SymbolicBatch(batch, eye.copy(), zero.copy(), eye.copy(), zero.copy())

    @property
    def dim(self) -> int:
        return self.low_b.shape[1]

    def _range(self, w: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        center = np.einsum("nim,nm->ni", w, self.input.center) + b
        radius = np.einsum("nim,nm->ni", np.abs(w), self.input.radius)
        return center - radius, center + radius

    def concretize(self) -> BoxBatch:
        lo, _ = self._range(self.low_w, self.low_b)
        _, hi = self._range(self.up_w, self.up_b)
        # Same rounding clamp as the scalar SymbolicInterval.concretize.
        return BoxBatch.unsafe(np.minimum(lo, hi), hi)


class BatchedSymbolicPropagator:
    """ReluVal-style symbolic intervals with a leading batch axis."""

    name = "symbolic"

    def propagate_block(self, block, state: SymbolicBatch) -> SymbolicBatch:
        state = self._affine(block.dense.weight, block.dense.bias, state)
        act = block.activation
        if act is None:
            return state
        if isinstance(act, ReLU):
            return self._relu(state, slope_neg=0.0)
        if isinstance(act, LeakyReLU):
            return self._relu(state, slope_neg=act.alpha)
        raise UnsupportedLayerError(
            f"symbolic intervals support ReLU/LeakyReLU, not {type(act).__name__}"
        )

    @staticmethod
    def _affine(weight: np.ndarray, bias: np.ndarray,
                state: SymbolicBatch) -> SymbolicBatch:
        w_pos = np.maximum(weight, 0.0)
        w_neg = np.minimum(weight, 0.0)
        low_w = (np.einsum("ij,njm->nim", w_pos, state.low_w)
                 + np.einsum("ij,njm->nim", w_neg, state.up_w))
        up_w = (np.einsum("ij,njm->nim", w_pos, state.up_w)
                + np.einsum("ij,njm->nim", w_neg, state.low_w))
        low_b = state.low_b @ w_pos.T + state.up_b @ w_neg.T + bias
        up_b = state.up_b @ w_pos.T + state.low_b @ w_neg.T + bias
        return SymbolicBatch(state.input, low_w, low_b, up_w, up_b)

    @staticmethod
    def _relu(state: SymbolicBatch, slope_neg: float) -> SymbolicBatch:
        """Vectorised mirror of ``SymbolicPropagator._relu``: the per-neuron
        three-way case split becomes three masks over the ``(N, d)`` plane."""
        lo, _ = state._range(state.low_w, state.low_b)
        _, hi = state._range(state.up_w, state.up_b)

        inactive = hi <= 0.0
        active = ~inactive & (lo >= 0.0)
        unstable = ~inactive & ~active

        denom = np.where(unstable, hi - lo, 1.0)
        lam = np.where(unstable, (hi - slope_neg * lo) / denom, 1.0)
        mu = np.where(unstable, hi - lam * hi, 0.0)

        low_scale = np.where(active, 1.0, slope_neg)
        low_w = state.low_w * low_scale[:, :, None]
        low_b = state.low_b * low_scale
        if slope_neg == 0.0:
            low_b = np.where(active, low_b, 0.0)

        up_scale = np.where(active, 1.0, np.where(inactive, slope_neg, lam))
        up_w = state.up_w * up_scale[:, :, None]
        up_b = state.up_b * up_scale + mu
        return SymbolicBatch(state.input, low_w, low_b, up_w, up_b)

    def propagate_states(self, network: Network,
                         batch: BoxBatch) -> List[SymbolicBatch]:
        if batch.dim != network.input_dim:
            raise ShapeError(
                f"batch dim {batch.dim} != network input {network.input_dim}"
            )
        states = []
        state = SymbolicBatch.identity(batch)
        for block in network.blocks():
            state = self.propagate_block(block, state)
            states.append(state)
        return states

    def propagate(self, network: Network, batch: BoxBatch) -> List[BoxBatch]:
        return [s.concretize() for s in self.propagate_states(network, batch)]


# --------------------------------------------------------------------------
# Zonotope domain
# --------------------------------------------------------------------------
@dataclass
class ZonotopeBatch:
    """Batched affine forms ``c + G e`` with centers ``(N, d)`` and
    generators ``(N, d, m)`` over the shared unit hypercube of symbols."""

    center: np.ndarray
    generators: np.ndarray

    @staticmethod
    def from_batch(batch: BoxBatch) -> "ZonotopeBatch":
        eye = np.eye(batch.dim)
        return ZonotopeBatch(batch.center.copy(),
                             eye[np.newaxis, :, :] * batch.radius[:, :, None])

    @property
    def dim(self) -> int:
        return self.center.shape[1]

    def concretize(self) -> BoxBatch:
        radius = np.abs(self.generators).sum(axis=2)
        return BoxBatch.unsafe(self.center - radius, self.center + radius)

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "ZonotopeBatch":
        return ZonotopeBatch(
            self.center @ weight.T + bias,
            np.einsum("ij,njm->nim", weight, self.generators),
        )


class BatchedZonotopePropagator:
    """DeepZ-style zonotope propagation over the batch axis."""

    name = "zonotope"

    def propagate_block(self, block, zono: ZonotopeBatch) -> ZonotopeBatch:
        zono = zono.affine(block.dense.weight, block.dense.bias)
        act = block.activation
        if act is None:
            return zono
        if isinstance(act, ReLU):
            return self._relu(zono, slope_neg=0.0)
        if isinstance(act, LeakyReLU):
            return self._relu(zono, slope_neg=act.alpha)
        raise UnsupportedLayerError(
            f"zonotopes support ReLU/LeakyReLU, not {type(act).__name__}"
        )

    @staticmethod
    def _relu(zono: ZonotopeBatch, slope_neg: float) -> ZonotopeBatch:
        """Vectorised DeepZ transformer.  One fresh symbol per *neuron* is
        appended when any row has an unstable neuron (stable neurons carry a
        zero generator, which concretises identically to appending none)."""
        box = zono.concretize()
        lo, hi = box.lower, box.upper

        inactive = hi <= 0.0
        active = ~inactive & (lo >= 0.0)
        unstable = ~inactive & ~active

        denom = np.where(unstable, hi - lo, 1.0)
        lam = np.where(unstable, (hi - slope_neg * lo) / denom, 1.0)
        eta = np.where(unstable, 0.5 * (lam - slope_neg) * (-lo), 0.0)
        scale = np.where(active, 1.0, np.where(inactive, slope_neg, lam))

        center = scale * zono.center + eta
        gens = scale[:, :, None] * zono.generators
        if np.any(unstable):
            # One fresh column per neuron unstable in *some* row (zero for
            # rows where that neuron is stable) -- uniform batch shape
            # without carrying all-zero columns for fully-stable neurons.
            cols = np.flatnonzero(unstable.any(axis=0))
            fresh = np.zeros((zono.center.shape[0], zono.dim, cols.size))
            fresh[:, cols, np.arange(cols.size)] = eta[:, cols]
            gens = np.concatenate([gens, fresh], axis=2)
        return ZonotopeBatch(center, gens)

    def propagate_states(self, network: Network,
                         batch: BoxBatch) -> List[ZonotopeBatch]:
        if batch.dim != network.input_dim:
            raise ShapeError(
                f"batch dim {batch.dim} != network input {network.input_dim}"
            )
        states = []
        zono = ZonotopeBatch.from_batch(batch)
        for block in network.blocks():
            zono = self.propagate_block(block, zono)
            states.append(zono)
        return states

    def propagate(self, network: Network, batch: BoxBatch) -> List[BoxBatch]:
        return [z.concretize() for z in self.propagate_states(network, batch)]


# --------------------------------------------------------------------------
# Dispatch
# --------------------------------------------------------------------------
BATCHED_PROPAGATORS: Dict[str, type] = {
    BatchedBoxPropagator.name: BatchedBoxPropagator,
    BatchedSymbolicPropagator.name: BatchedSymbolicPropagator,
    BatchedZonotopePropagator.name: BatchedZonotopePropagator,
}


def get_batched_propagator(domain: str):
    """Instantiate a batched propagator by name (``"box"``, ``"symbolic"``,
    ``"zonotope"``)."""
    try:
        cls = BATCHED_PROPAGATORS[domain]
    except KeyError:
        known = ", ".join(sorted(BATCHED_PROPAGATORS))
        raise DomainError(
            f"unknown batched domain {domain!r}; known: {known}") from None
    return cls()


def propagate_batch(network: Network, batch: BoxBatch,
                    domain: str = "box") -> List[BoxBatch]:
    """Per-block batched state abstractions of ``network`` over all boxes of
    ``batch`` in one stacked pass -- the batched twin of
    :func:`repro.domains.propagate.propagate_network`."""
    return get_batched_propagator(domain).propagate(network, batch)


def output_box_batch(network: Network, batch: BoxBatch,
                     domain: str = "box") -> BoxBatch:
    """Sound per-row over-approximation of ``{f(x) : x in batch.box(i)}``."""
    return propagate_batch(network, batch, domain)[-1]


# --------------------------------------------------------------------------
# Batched screens built on the stacked interval pass
# --------------------------------------------------------------------------
def _block_slope(act) -> float:
    """Unified negative-side slope of ``y = max(x, slope * x)``: 0 for ReLU,
    ``alpha`` for LeakyReLU, 1 for a linear (identity) block."""
    if act is None:
        return 1.0
    if isinstance(act, ReLU):
        return 0.0
    if isinstance(act, LeakyReLU):
        return act.alpha
    raise UnsupportedLayerError(
        f"batched screens support ReLU/LeakyReLU/linear, not {type(act).__name__}"
    )


def phase_clamped_node_bounds(
        network: Network, input_box: Box, phase_maps: Sequence[Dict],
        c: Optional[np.ndarray] = None,
) -> Tuple[Optional[np.ndarray], np.ndarray, List[np.ndarray], List[np.ndarray]]:
    """One clamped interval pass over N phase-constrained regions, returning
    everything a branch-and-bound node needs.

    Each entry of ``phase_maps`` is a branch-and-bound ``PhaseMap``
    (``{(block, neuron): +1 | -1}``); its region is the subset of
    ``input_box`` where the signed pre-activation constraints hold.  The
    batch propagates plain intervals, clamping each fixed neuron's
    pre-activation range to its half-line -- sound because every real
    execution of the region satisfies both the interval enclosure and the
    sign constraint.

    Returns ``(upper, feasible, pre_lo, pre_hi)``:

    * ``upper`` -- interval upper bounds of ``c @ f(x)`` per region
      (``None`` when no objective is supplied; ``-inf`` on infeasible rows);
    * ``feasible`` -- rows whose clamp empties some pre-activation interval
      are marked infeasible (their region is empty);
    * ``pre_lo`` / ``pre_hi`` -- per-block ``(N, d_k)`` post-clamp
      pre-activation bounds, the per-node ``z``-variable tightening fed to
      :meth:`repro.exact.encoding.NetworkEncoding.build_lp` (meaningless on
      infeasible rows).
    """
    n = len(phase_maps)
    if n == 0:
        empty_upper = None if c is None else np.empty(0)
        return empty_upper, np.empty(0, dtype=bool), [], []
    lo = np.tile(input_box.lower, (n, 1))
    hi = np.tile(input_box.upper, (n, 1))
    feasible = np.ones(n, dtype=bool)
    pre_lo: List[np.ndarray] = []
    pre_hi: List[np.ndarray] = []

    for k, block in enumerate(network.blocks()):
        w, b = block.dense.weight, block.dense.bias
        center = 0.5 * (lo + hi)
        radius = 0.5 * (hi - lo)
        zc = center @ w.T + b
        zr = radius @ np.abs(w).T
        zl, zu = zc - zr, zc + zr
        act = block.activation
        if act is None:
            pre_lo.append(zl)
            pre_hi.append(zu)
            lo, hi = zl, zu
            continue
        slope = _block_slope(act)

        d = block.out_dim
        phases = np.zeros((n, d), dtype=np.int8)
        for j, phase_map in enumerate(phase_maps):
            for (blk, i), phase in phase_map.items():
                if blk == k:
                    phases[j, i] = phase
        if phases.any():
            zl = np.where(phases == 1, np.maximum(zl, 0.0), zl)
            zu = np.where(phases == -1, np.minimum(zu, 0.0), zu)
            empty = zl > zu
            if empty.any():
                feasible &= ~np.any(empty, axis=1)
                zl = np.minimum(zl, zu)  # keep the arithmetic well-formed
        pre_lo.append(zl)
        pre_hi.append(zu)
        # Post-clamp, the standard interval activation is exact for fixed
        # neurons too: active rows have zl >= 0, inactive rows zu <= 0.
        lo = np.where(zl > 0, zl, slope * zl)
        hi = np.where(zu > 0, zu, slope * zu)

    if c is None:
        return None, feasible, pre_lo, pre_hi
    c = np.asarray(c, dtype=np.float64).reshape(-1)
    c_pos = np.maximum(c, 0.0)
    c_neg = np.minimum(c, 0.0)
    upper = hi @ c_pos + lo @ c_neg
    upper[~feasible] = -np.inf
    return upper, feasible, pre_lo, pre_hi


def phase_clamped_objective_bounds(
        network: Network, input_box: Box, phase_maps: Sequence[Dict],
        c: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Interval upper bounds of ``c @ f(x)`` over N phase-constrained regions
    (see :func:`phase_clamped_node_bounds`, of which this keeps only the
    ``(upper_bounds, feasible)`` pair)."""
    upper, feasible, _, __ = phase_clamped_node_bounds(
        network, input_box, phase_maps, c)
    return upper, feasible


def phase_clamped_affine_bounds(
        network: Network, input_box: Box, phase_maps: Sequence[Dict],
        c: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray], List[np.ndarray]]:
    """Backward affine (CROWN-style) upper bounds over N phase-constrained
    regions -- the near-LP-tight screen certificate reuse warm-starts on.

    Same contract as :func:`phase_clamped_node_bounds` (whose forward pass
    supplies feasibility and the per-block pre-activation intervals), but
    the objective bound comes from one batched *backward* pass: starting
    from ``A = c`` at the output, each activation is replaced per-unit by a
    sound linear enclosure of ``y = max(z, slope * z)`` over its clamped
    pre-activation interval -- exact for stable or phase-fixed units, the
    chord/line relaxation for unstable ones, chosen per the sign of the
    accumulated coefficient -- and each dense layer folds in exactly.  The
    result concretises against the input box in closed form, so a frontier
    of leaves the solver settled at *LP*-bound depth (where plain intervals
    still read "open" -- the dependency problem) re-screens to "proved"
    without a single LP.  Returned uppers are the elementwise minimum of
    the interval and affine bounds; both are sound, so the minimum is.
    """
    upper_iv, feasible, pre_lo, pre_hi = phase_clamped_node_bounds(
        network, input_box, phase_maps, c)
    n = len(phase_maps)
    if n == 0:
        return upper_iv, feasible, pre_lo, pre_hi
    c_vec = np.asarray(c, dtype=np.float64).reshape(-1)
    blocks = list(network.blocks())

    # A row j holds the coefficients of a sound upper bound
    # ``A[j] @ (post-activation of block k) + bias[j]`` on c @ f(x); the
    # backward pass rewrites it block by block until it is affine in x.
    a_mat = np.tile(c_vec, (n, 1))
    bias = np.zeros(n)
    for k in range(len(blocks) - 1, -1, -1):
        block = blocks[k]
        act = block.activation
        if act is not None:
            slope = _block_slope(act)
            lo_k, hi_k = pre_lo[k], pre_hi[k]
            # Per-unit enclosure of y = max(z, slope*z) on [lo, hi]:
            # stable-active (lo >= 0, includes phase-fixed +1): y = z exact;
            # stable-inactive (hi <= 0, includes phase-fixed -1): y = slope*z
            # exact; unstable: upper chord through the endpoints, lower line
            # through the origin (the steeper of the two exact pieces).
            up_w = np.ones_like(lo_k)
            up_b = np.zeros_like(lo_k)
            low_w = np.ones_like(lo_k)
            inactive = hi_k <= 0.0
            up_w = np.where(inactive, slope, up_w)
            low_w = np.where(inactive, slope, low_w)
            unstable = (lo_k < 0.0) & (hi_k > 0.0)
            denom = np.where(unstable, hi_k - lo_k, 1.0)
            chord_w = (hi_k - slope * lo_k) / denom
            chord_b = hi_k * (1.0 - chord_w)
            up_w = np.where(unstable, chord_w, up_w)
            up_b = np.where(unstable, chord_b, up_b)
            low_w = np.where(
                unstable, np.where(hi_k >= -lo_k, 1.0, slope), low_w)
            # Upper-bounding A @ y: positive coefficients take the upper
            # relaxation, negative ones the lower (both have zero intercept
            # except the chord).
            pos = a_mat >= 0.0
            bias += np.sum(np.where(pos, a_mat * up_b, 0.0), axis=1)
            a_mat = a_mat * np.where(pos, up_w, low_w)
        w, b = block.dense.weight, block.dense.bias
        bias += a_mat @ b
        a_mat = a_mat @ w
    center = 0.5 * (input_box.lower + input_box.upper)
    radius = 0.5 * (input_box.upper - input_box.lower)
    upper_aff = a_mat @ center + np.abs(a_mat) @ radius + bias
    upper = np.minimum(upper_iv, upper_aff)
    upper[~feasible] = -np.inf
    return upper, feasible, pre_lo, pre_hi


def screen_containments(
        subproblems: Sequence[Tuple[Network, Box, Box]],
        tol: float = 1e-9) -> List[Optional[bool]]:
    """Screen N containment subproblems ``∀x ∈ source : f(x) ∈ target`` in
    one dimension-padded stacked interval pass.

    The subproblems may involve different (sub)networks of different widths
    and depths: sources are zero-padded to the widest dimension, every
    block's weights are embedded in a stacked ``(N, dmax, dmax)`` tensor,
    and exhausted (shorter) networks carry their values through identity
    blocks.  Verdicts are ``True`` (containment proved by the sound interval
    bound -- exact for single-block subproblems) or ``None`` (inconclusive;
    the caller falls back to its exact check).  Rows with activations the
    screen cannot express are also ``None``.
    """
    n = len(subproblems)
    if n == 0:
        return []
    supported = []
    for network, source, target in subproblems:
        ok = source.dim == network.input_dim and target.dim == network.output_dim
        if ok:
            try:
                for block in network.blocks():
                    _block_slope(block.activation)
            except UnsupportedLayerError:
                ok = False
        supported.append(ok)
    if not any(supported):
        return [None] * n

    all_dims = [d for (net, _, __), ok in zip(subproblems, supported) if ok
                for d in net.block_dims()]
    dmax = max(all_dims)
    depth = max(net.num_blocks
                for (net, _, __), ok in zip(subproblems, supported) if ok)

    lo = np.zeros((n, dmax))
    hi = np.zeros((n, dmax))
    for j, (network, source, _) in enumerate(subproblems):
        if supported[j]:
            lo[j, :source.dim] = source.lower
            hi[j, :source.dim] = source.upper

    eye = np.eye(dmax)
    for t in range(depth):
        weights = np.zeros((n, dmax, dmax))
        biases = np.zeros((n, dmax))
        slopes = np.ones((n, dmax))
        for j, (network, _, __) in enumerate(subproblems):
            if not supported[j]:
                continue
            blocks = network.blocks()
            if t < len(blocks):
                block = blocks[t]
                d_out, d_in = block.dense.weight.shape
                weights[j, :d_out, :d_in] = block.dense.weight
                biases[j, :d_out] = block.dense.bias
                slopes[j, :d_out] = _block_slope(block.activation)
            else:
                weights[j] = eye  # finished network: carry values through
        center = 0.5 * (lo + hi)
        radius = 0.5 * (hi - lo)
        zc = np.einsum("nij,nj->ni", weights, center) + biases
        zr = np.einsum("nij,nj->ni", np.abs(weights), radius)
        zl, zu = zc - zr, zc + zr
        # y = max(x, slope * x); slope 1 on padding keeps identities exact.
        lo = np.where(zl > 0, zl, slopes * zl)
        hi = np.where(zu > 0, zu, slopes * zu)

    verdicts: List[Optional[bool]] = []
    for j, (_, __, target) in enumerate(subproblems):
        if not supported[j]:
            verdicts.append(None)
            continue
        d = target.dim
        contained = bool(
            np.all(lo[j, :d] >= target.lower - tol)
            and np.all(hi[j, :d] <= target.upper + tol)
        )
        verdicts.append(True if contained else None)
    return verdicts
