"""Event records produced by the runtime monitor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["EnlargementEvent", "summarize_events"]


@dataclass
class EnlargementEvent:
    """One out-of-bound observation.

    ``excess`` is how far (in feature units) the worst dimension escaped the
    calibrated box; ``dimensions`` lists the offending feature indices.
    """

    step: int
    excess: float
    dimensions: List[int] = field(default_factory=list)


def summarize_events(events: List[EnlargementEvent]) -> dict:
    """Aggregate statistics used by reports and the monitor benchmark."""
    if not events:
        return {"count": 0, "max_excess": 0.0, "dimensions_touched": 0}
    touched = set()
    for event in events:
        touched.update(event.dimensions)
    return {
        "count": len(events),
        "max_excess": max(event.excess for event in events),
        "dimensions_touched": len(touched),
    }
