"""Additional coverage: error paths, encodings, and cross-module contracts
not exercised by the primary test modules."""

import numpy as np
import pytest

from repro.domains import Box
from repro.errors import (
    ArtifactError,
    DomainError,
    ReproError,
    ShapeError,
    SolverError,
)
from repro.exact import NetworkEncoding, maximize_output, solve_milp
from repro.nn import (
    Dense,
    LeakyReLU,
    Network,
    ReLU,
    Sigmoid,
    random_relu_network,
)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not Exception:
                assert issubclass(obj, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            Box(np.ones(2), np.zeros(2))


class TestEncodingEdgeCases:
    def test_sigmoid_rejected(self):
        net = Network(
            [Dense(2, 3, rng=np.random.default_rng(0)), Sigmoid(),
             Dense(3, 1, rng=np.random.default_rng(1))], input_dim=2)
        from repro.errors import UnsupportedLayerError

        with pytest.raises(UnsupportedLayerError):
            NetworkEncoding(net, Box(-np.ones(2), np.ones(2)))

    def test_box_dim_mismatch(self, small_net):
        with pytest.raises(DomainError):
            NetworkEncoding(small_net, Box(np.zeros(5), np.ones(5)))

    def test_wrong_pre_box_count(self, small_net):
        box = Box(-np.ones(3), np.ones(3))
        with pytest.raises(DomainError):
            NetworkEncoding(small_net, box, pre_boxes=[box])

    def test_leaky_relu_milp_exact(self, rng):
        """Big-M MILP with LeakyReLU matches brute force."""
        net = Network(
            [Dense(2, 4, rng=np.random.default_rng(3)), LeakyReLU(0.2),
             Dense(4, 1, rng=np.random.default_rng(4))], input_dim=2)
        box = Box(-np.ones(2), np.ones(2))
        enc = NetworkEncoding(net, box)
        system = enc.build_milp()
        c = enc.output_objective(np.array([1.0]), num_vars=system.num_vars)
        milp = solve_milp(c, system, maximize=True)
        vals = net.forward(box.sample(30000, rng)).reshape(-1)
        assert milp.value >= vals.max() - 1e-6
        assert milp.value - vals.max() < 0.05

    def test_linear_network_lp_is_exact(self):
        """A purely affine network needs no branching at all."""
        w = np.array([[1.0, -2.0], [0.5, 0.5]])
        net = Network([Dense(2, 2, weight=w, bias=np.zeros(2))], input_dim=2)
        box = Box(-np.ones(2), np.ones(2))
        res = maximize_output(net, box, np.array([1.0, 1.0]))
        assert res.nodes <= 1
        corners = box.corners() @ w.T
        assert res.upper_bound == pytest.approx((corners @ [1, 1]).max())


class TestMILPSolverEdges:
    def test_unbounded_raises(self):
        from repro.exact.encoding import LinearSystem

        system = LinearSystem(num_vars=1, a_ub=None, b_ub=None,
                              a_eq=None, b_eq=None, bounds=[(None, None)],
                              integer_mask=np.array([False]))
        with pytest.raises(SolverError):
            solve_milp(np.array([-1.0]), system)

    def test_pure_binary_knapsack(self):
        """max 3a + 2b + 2c  s.t.  2a + b + 2c <= 3, binaries -> value 5."""
        from repro.exact.encoding import LinearSystem

        system = LinearSystem(
            num_vars=3,
            a_ub=np.array([[2.0, 1.0, 2.0]]), b_ub=np.array([3.0]),
            a_eq=None, b_eq=None,
            bounds=[(0, 1)] * 3,
            integer_mask=np.ones(3, dtype=bool))
        res = solve_milp(np.array([3.0, 2.0, 2.0]), system, maximize=True)
        assert res.optimal
        assert res.value == pytest.approx(5.0)
        np.testing.assert_allclose(res.x, [1, 1, 0])

    def test_node_limit_status(self):
        from repro.exact.encoding import LinearSystem

        rng = np.random.default_rng(0)
        n = 12
        weights = rng.uniform(1, 5, size=n)
        system = LinearSystem(
            num_vars=n,
            a_ub=weights[None, :], b_ub=np.array([weights.sum() / 2]),
            a_eq=None, b_eq=None,
            bounds=[(0, 1)] * n,
            integer_mask=np.ones(n, dtype=bool))
        values = rng.uniform(1, 5, size=n)
        res = solve_milp(values, system, maximize=True, node_limit=2)
        assert res.status in ("node_limit", "optimal")
        if res.status == "node_limit":
            assert res.bound >= res.value - 1e-9


class TestPropositionInteractions:
    """Cross-proposition contracts on a shared baseline."""

    @pytest.fixture(scope="class")
    def baseline(self):
        from repro.core import VerificationProblem, verify_from_scratch
        from repro.domains.propagate import inductive_states

        net = random_relu_network([4, 10, 8, 1], seed=13, weight_scale=0.6)
        din = Box(np.zeros(4), 0.7 * np.ones(4))
        sn = inductive_states(net, din, 0.03)[-1]
        problem = VerificationProblem(net, din,
                                      sn.inflate(0.3 * sn.widths.max() + 0.1))
        out = verify_from_scratch(problem, state_buffer=0.03, rigor="abstract")
        assert out.holds
        return problem, out.artifacts

    def test_prop2_subsumes_prop1_region(self, baseline):
        """Wherever Prop 1 succeeds, Prop 2 must also find a re-entry
        (j=1 is one of its candidates when block counts allow)."""
        from repro.core import check_prop1, check_prop2

        problem, artifacts = baseline
        enlarged = problem.din.inflate(0.01)
        p1 = check_prop1(artifacts, enlarged, method="exact")
        p2 = check_prop2(artifacts, enlarged, method="exact")
        if p1.holds:
            assert p2.holds

    def test_prop5_with_all_cuts_equals_prop4(self, baseline):
        """Prop 5 with every boundary as a reuse point produces exactly the
        same subproblem structure as Prop 4 (modulo naming)."""
        from repro.core import check_prop4, check_prop5

        problem, artifacts = baseline
        tuned = problem.network.perturb(1e-5, np.random.default_rng(0))
        n = tuned.num_blocks
        p4 = check_prop4(artifacts, tuned, method="exact")
        p5 = check_prop5(artifacts, tuned, alphas=list(range(1, n)),
                         method="exact")
        assert len(p4.subproblems) == len(p5.subproblems) == n
        assert p4.holds == p5.holds

    def test_verifier_rejects_unsafe_change(self, baseline):
        """A destructive 'fine-tune' must never be certified: either some
        strategy fails and the exact fallback refutes, or the sampled
        violation is caught."""
        from repro.core import ContinuousVerifier, SVbTV, VerificationProblem

        problem, artifacts = baseline
        wrecked = problem.network.copy()
        wrecked.blocks()[-1].dense.bias += 1e4  # blows past Dout
        cv = ContinuousVerifier(artifacts)
        res = cv.verify_new_version(SVbTV(problem, wrecked))
        assert res.holds is not True

    def test_artifact_problem_mismatch_flagged(self, baseline):
        from repro.core import ProofArtifacts, StateAbstractions

        problem, artifacts = baseline
        wrong = StateAbstractions(boxes=[Box(np.zeros(2), np.ones(2))])
        bad = ProofArtifacts(problem=problem, states=wrong)
        with pytest.raises(ArtifactError):
            bad.require_states()


class TestVehiclePaperScale:
    def test_paper_scale_config_builds(self):
        """The 224x224 geometry of the paper is constructible (feature
        extraction on one frame only -- full runs belong to benchmarks)."""
        from repro.vehicle import FeatureExtractor, PerceptionConfig

        config = PerceptionConfig.paper_scale()
        assert config.frame_size == 224
        extractor = FeatureExtractor(config)
        assert extractor.feature_dim > 100
        frame = np.zeros((3, 224, 224))
        feats = extractor.extract(frame)
        assert feats.shape == (extractor.feature_dim,)

    def test_paper_waypoint_formula_at_224(self):
        """(x, y) = (int(224 * vout), 75-ish) per the paper's formula."""
        from repro.vehicle import Perception, PerceptionConfig

        perception = Perception.build(PerceptionConfig.paper_scale())
        frame = np.zeros((3, 224, 224))
        (x, y), = perception.waypoint_pixels(frame[np.newaxis])
        assert 0 <= x <= 224
        assert y == 74  # int(224 / 3)
