"""JSON-safe encodings of the object model the Specs reference.

Spec files must survive ``json.dumps`` / ``json.loads`` byte-exactly --
*and* be readable by non-Python peers (the ROADMAP plans remote executors
speaking this wire form) -- so everything here maps to strict RFC-8259
JSON:

* arrays -> nested lists (Python's ``json`` emits ``repr``-style doubles,
  which round-trip binary64 exactly); non-finite values, legal for box
  bounds and recorded timings, are encoded as the strings ``"inf"`` /
  ``"-inf"`` / ``"nan"`` instead of the non-standard ``Infinity``/``NaN``
  tokens (``float()`` parses them back exactly);
* networks -> ``{"input_dim", "layers": [{"class", "config", "arrays"}]}``
  reusing each layer's own ``config()`` / ``arrays()`` contract (the same
  one the ``.npz`` serializer trusts);
* proof artifacts -> the :func:`repro.core.artifacts.save_artifacts`
  layout transliterated to JSON, with the network abstraction stored as
  its deterministic build recipe.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Optional

import numpy as np

from repro.errors import SerializationError
from repro.domains.box import Box
from repro.nn.network import Network
from repro.nn.serialize import _LAYER_CLASSES
from repro.core.artifacts import (
    LipschitzCertificate,
    ProofArtifacts,
    StateAbstractions,
)
from repro.core.problem import VerificationProblem

__all__ = [
    "float_to_jsonable",
    "array_to_jsonable",
    "array_from_jsonable",
    "box_to_jsonable",
    "box_from_jsonable",
    "network_to_jsonable",
    "network_from_jsonable",
    "artifacts_to_jsonable",
    "artifacts_from_jsonable",
    "config_to_json",
    "config_from_json",
    "certificate_to_json",
    "certificate_from_json",
    "VERDICT_TAGS",
    "verdict_to_dict",
    "verdict_from_dict",
    "verdict_to_json",
    "verdict_from_json",
    "canonical_verdict_json",
    "verdict_decision_json",
]


# ------------------------------------------------------------------- floats
def float_to_jsonable(value: float):
    """A strict-JSON scalar: the float itself, or ``"inf"``/``"-inf"``/
    ``"nan"`` for the values RFC 8259 cannot carry (``float()`` inverts)."""
    value = float(value)
    return value if math.isfinite(value) else str(value)


def _encode_nested(values):
    if isinstance(values, list):
        return [_encode_nested(v) for v in values]
    return float_to_jsonable(values)


# ------------------------------------------------------------------- arrays
def array_to_jsonable(arr: np.ndarray) -> list:
    arr = np.asarray(arr, dtype=np.float64)
    nested = arr.tolist()
    if np.isfinite(arr).all():
        return nested
    return _encode_nested(nested)


def array_from_jsonable(data) -> np.ndarray:
    # np.float64 parses the "inf"/"-inf"/"nan" string encoding directly.
    return np.asarray(data, dtype=np.float64)


# -------------------------------------------------------------------- boxes
def box_to_jsonable(box: Box) -> Dict:
    return {"lower": array_to_jsonable(box.lower),
            "upper": array_to_jsonable(box.upper)}


def box_from_jsonable(data: Dict) -> Box:
    return Box(array_from_jsonable(data["lower"]),
               array_from_jsonable(data["upper"]))


# ----------------------------------------------------------------- networks
def network_to_jsonable(network: Network) -> Dict:
    return {
        "input_dim": int(network.input_dim),
        "layers": [
            {
                "class": type(layer).__name__,
                "config": layer.config(),
                "arrays": {name: array_to_jsonable(arr)
                           for name, arr in layer.arrays().items()},
            }
            for layer in network.layers
        ],
    }


def network_from_jsonable(data: Dict) -> Network:
    layers = []
    for spec in data["layers"]:
        cls_name = spec["class"]
        if cls_name not in _LAYER_CLASSES:
            raise SerializationError(f"unknown layer class {cls_name!r}")
        arrays = {name: array_from_jsonable(arr)
                  for name, arr in spec["arrays"].items()}
        layers.append(_LAYER_CLASSES[cls_name]._from_parts(spec["config"], arrays))
    return Network(layers, input_dim=int(data["input_dim"]))


# ---------------------------------------------------------------- artifacts
def artifacts_to_jsonable(artifacts: ProofArtifacts) -> Dict:
    """JSON twin of :func:`repro.core.artifacts.save_artifacts`."""
    data: Dict = {
        "problem": {
            "network": network_to_jsonable(artifacts.problem.network),
            "din": box_to_jsonable(artifacts.problem.din),
            "dout": box_to_jsonable(artifacts.problem.dout),
        },
        "states_prove_safety": bool(artifacts.states_prove_safety),
        "original_time": float_to_jsonable(artifacts.original_time),
        "notes": dict(artifacts.notes),
        "states": None,
        "lipschitz": None,
        "netabs": None,
        "output_range": None,
    }
    if artifacts.states is not None:
        data["states"] = {
            "domain": artifacts.states.domain,
            "boxes": [box_to_jsonable(b) for b in artifacts.states.boxes],
        }
    if artifacts.lipschitz is not None:
        data["lipschitz"] = {
            # ell is validated finite, but ord=inf (the L∞ norm) is legal.
            "ell": float_to_jsonable(artifacts.lipschitz.ell),
            "ord": float_to_jsonable(artifacts.lipschitz.ord),
            "method": artifacts.lipschitz.method,
        }
    if artifacts.network_abstraction is not None:
        absn = artifacts.network_abstraction
        data["netabs"] = {
            "num_groups": int(absn.num_groups),
            "margin": float(absn.margin),
        }
    if artifacts.output_range is not None:
        data["output_range"] = box_to_jsonable(artifacts.output_range)
    return data


def artifacts_from_jsonable(data: Dict) -> ProofArtifacts:
    network = network_from_jsonable(data["problem"]["network"])
    problem = VerificationProblem(
        network=network,
        din=box_from_jsonable(data["problem"]["din"]),
        dout=box_from_jsonable(data["problem"]["dout"]),
    )
    states = None
    if data.get("states") is not None:
        states = StateAbstractions(
            boxes=[box_from_jsonable(b) for b in data["states"]["boxes"]],
            domain=data["states"]["domain"],
        )
    lipschitz = None
    if data.get("lipschitz") is not None:
        lip = data["lipschitz"]
        lipschitz = LipschitzCertificate(
            ell=float(lip["ell"]), ord=float(lip["ord"]), method=lip["method"])
    netabs = None
    if data.get("netabs") is not None:
        from repro.netabs.abstraction import build_abstraction

        recipe = data["netabs"]
        netabs = build_abstraction(network, problem.din,
                                   num_groups=int(recipe["num_groups"]),
                                   margin=float(recipe["margin"]))
    output_range = None
    if data.get("output_range") is not None:
        output_range = box_from_jsonable(data["output_range"])
    return ProofArtifacts(
        problem=problem,
        states=states,
        lipschitz=lipschitz,
        network_abstraction=netabs,
        output_range=output_range,
        states_prove_safety=bool(data["states_prove_safety"]),
        original_time=float(data["original_time"]),
        notes=dict(data.get("notes", {})),
    )


# ------------------------------------------------------------------ configs
def config_to_json(config, **dumps_kwargs) -> str:
    """Canonical JSON of a :class:`~repro.api.config.VerifyConfig`.

    ``sort_keys`` is forced so one config value maps to one byte string --
    the serving layer fingerprints ``(spec, config)`` pairs with this.
    """
    dumps_kwargs.setdefault("sort_keys", True)
    return json.dumps(config.to_dict(), allow_nan=False, **dumps_kwargs)


def config_from_json(text: str):
    """Inverse of :func:`config_to_json` (unknown keys rejected loudly)."""
    from repro.api.config import VerifyConfig

    data = json.loads(text)
    if not isinstance(data, dict):
        raise SerializationError(
            f"a VerifyConfig document must be a JSON object, got "
            f"{type(data).__name__}")
    return VerifyConfig.from_dict(data)


# ------------------------------------------------------------- certificates
def _phase_leaves_to_jsonable(leaves) -> list:
    # PhaseMap items are sorted so one leaf set has one canonical byte
    # form regardless of solver-side dict insertion order.
    return [
        [[int(layer), int(unit), int(phase)]
         for (layer, unit), phase in sorted(leaf.items())]
        for leaf in leaves
    ]


def _phase_leaves_from_jsonable(data) -> list:
    return [{(int(layer), int(unit)): int(phase)
             for layer, unit, phase in leaf}
            for leaf in data]


def _leaf_duals_to_jsonable(duals) -> list:
    # Per leaf: [dual_ub, dual_eq] float lists, or None where the record
    # solve had no usable multipliers (infeasible leaf, absent rows).
    return [
        None if entry is None else
        [array_to_jsonable(np.asarray(part, dtype=np.float64))
         for part in entry]
        for entry in duals
    ]


def _leaf_duals_from_jsonable(data) -> list:
    return [
        None if entry is None else
        tuple(array_from_jsonable(part) for part in entry)
        for entry in data
    ]


def certificate_to_json(cert, **dumps_kwargs) -> str:
    """Canonical wire form of a :class:`repro.certs.Certificate`.

    ``sort_keys`` is forced: the serve-side store persists and compares
    these strings, so one certificate value must map to one byte string.
    This is the *only* form certificate payloads travel in between
    modules (the ``cert-discipline`` lint rule holds callers to it).
    """
    data = {
        "version": int(cert.version),
        "objective": array_to_jsonable(cert.objective),
        "threshold": float_to_jsonable(cert.threshold),
        "leaves": _phase_leaves_to_jsonable(cert.leaves),
        "leaf_bounds": [float_to_jsonable(b) for b in cert.leaf_bounds],
        "leaf_verdicts": [str(v) for v in cert.leaf_verdicts],
        "leaf_duals": _leaf_duals_to_jsonable(cert.leaf_duals),
        "block_dims": [int(d) for d in cert.block_dims],
        "structural_fp": str(cert.structural_fp),
        "content_fp": str(cert.content_fp),
        "config_digest": str(cert.config_digest),
        "status": str(cert.status),
        "upper_bound": float_to_jsonable(cert.upper_bound),
        "lp_solves": int(cert.lp_solves),
    }
    dumps_kwargs.setdefault("sort_keys", True)
    return json.dumps(data, allow_nan=False, **dumps_kwargs)


def certificate_from_json(text: str):
    """Inverse of :func:`certificate_to_json`.

    Raises :class:`SerializationError` on structural garbage; numeric
    fields parse strictly.  Callers replaying *untrusted* store content
    should go through :func:`repro.certs.load_certificate`, which funnels
    every malformation into one rejection path.
    """
    from repro.certs.certificate import Certificate

    data = json.loads(text)
    if not isinstance(data, dict):
        raise SerializationError(
            f"a certificate document must be a JSON object, got "
            f"{type(data).__name__}")
    return Certificate(
        objective=array_from_jsonable(data["objective"]),
        threshold=float(data["threshold"]),
        leaves=_phase_leaves_from_jsonable(data["leaves"]),
        leaf_bounds=[float(b) for b in data.get("leaf_bounds", [])],
        leaf_verdicts=[str(v) for v in data.get("leaf_verdicts", [])],
        leaf_duals=_leaf_duals_from_jsonable(data.get("leaf_duals", [])),
        block_dims=[int(d) for d in data["block_dims"]],
        structural_fp=str(data["structural_fp"]),
        content_fp=str(data.get("content_fp", "")),
        config_digest=str(data["config_digest"]),
        status=str(data.get("status", "")),
        upper_bound=float(data.get("upper_bound", 0.0)),
        lp_solves=int(data.get("lp_solves", 0)),
        version=int(data["version"]),
    )


# ----------------------------------------------------------------- verdicts
#: Wire tag <-> Verdict class name (classes resolved lazily; the verdict
#: module sits above the solver layers this module must not eagerly pull).
VERDICT_TAGS = {
    "containment": "ContainmentVerdict",
    "range": "RangeVerdict",
    "threshold": "ThresholdVerdict",
    "maximize": "MaximizeVerdict",
    "proposition": "PropositionVerdict",
    "continuous": "ContinuousVerdict",
    "baseline": "BaselineVerdict",
    "failed": "FailedVerdict",
}


def _provenance_to_jsonable(prov) -> Dict:
    return {
        "elapsed": float_to_jsonable(prov.elapsed),
        "lp_solves": int(prov.lp_solves),
        "nodes": int(prov.nodes),
        "rounds": int(prov.rounds),
        "workers": int(prov.workers),
        "encoding_reuse": {str(k): int(v)
                           for k, v in prov.encoding_reuse.items()},
        "cached": bool(prov.cached),
        "nodes_reused": int(prov.nodes_reused),
        "lp_solves_saved": int(prov.lp_solves_saved),
        "cert_hit": bool(prov.cert_hit),
    }


def _provenance_from_jsonable(data: Dict):
    from repro.api.verdict import Provenance

    return Provenance(
        elapsed=float(data["elapsed"]),
        lp_solves=int(data["lp_solves"]),
        nodes=int(data["nodes"]),
        rounds=int(data["rounds"]),
        workers=int(data["workers"]),
        encoding_reuse={str(k): int(v)
                        for k, v in data.get("encoding_reuse", {}).items()},
        cached=bool(data.get("cached", False)),
        # .get defaults: pre-certificate wire documents lack these keys.
        nodes_reused=int(data.get("nodes_reused", 0)),
        lp_solves_saved=int(data.get("lp_solves_saved", 0)),
        cert_hit=bool(data.get("cert_hit", False)),
    )


def _opt_array_to_jsonable(arr) -> Optional[list]:
    return None if arr is None else array_to_jsonable(arr)


def _opt_array_from_jsonable(data) -> Optional[np.ndarray]:
    return None if data is None else array_from_jsonable(data)


def _bab_result_to_jsonable(result) -> Dict:
    return {
        "status": result.status,
        "upper_bound": float_to_jsonable(result.upper_bound),
        "incumbent": float_to_jsonable(result.incumbent),
        "witness": _opt_array_to_jsonable(result.witness),
        "nodes": int(result.nodes),
        "lp_solves": int(result.lp_solves),
        "rounds": int(result.rounds),
        "max_batch": int(result.max_batch),
        "mean_batch": float_to_jsonable(result.mean_batch),
        "workers": int(result.workers),
        "nodes_reused": int(result.nodes_reused),
        "lp_solves_saved": int(result.lp_solves_saved),
    }


def _bab_result_from_jsonable(data: Dict):
    from repro.exact.bab import BaBResult

    return BaBResult(
        status=data["status"],
        upper_bound=float(data["upper_bound"]),
        incumbent=float(data["incumbent"]),
        witness=_opt_array_from_jsonable(data.get("witness")),
        nodes=int(data["nodes"]),
        lp_solves=int(data["lp_solves"]),
        rounds=int(data.get("rounds", 0)),
        max_batch=int(data.get("max_batch", 0)),
        mean_batch=float(data.get("mean_batch", 0.0)),
        workers=int(data.get("workers", 1)),
        nodes_reused=int(data.get("nodes_reused", 0)),
        lp_solves_saved=int(data.get("lp_solves_saved", 0)),
    )


def _containment_result_to_jsonable(result) -> Dict:
    return {
        "holds": result.holds,
        "method": result.method,
        "counterexample": _opt_array_to_jsonable(result.counterexample),
        "violation": float_to_jsonable(result.violation),
        "elapsed": float_to_jsonable(result.elapsed),
        "lp_solves": int(result.lp_solves),
        "nodes": int(result.nodes),
        "detail": result.detail,
    }


def _containment_result_from_jsonable(data: Dict):
    from repro.exact.verify import ContainmentResult

    return ContainmentResult(
        holds=data["holds"],
        method=data["method"],
        counterexample=_opt_array_from_jsonable(data.get("counterexample")),
        violation=float(data.get("violation", 0.0)),
        elapsed=float(data.get("elapsed", 0.0)),
        lp_solves=int(data.get("lp_solves", 0)),
        nodes=int(data.get("nodes", 0)),
        detail=data.get("detail", ""),
    )


def _certificate_to_jsonable(cert) -> Dict:
    return {
        "objective": array_to_jsonable(cert.objective),
        "threshold": float_to_jsonable(cert.threshold),
        "leaves": _phase_leaves_to_jsonable(cert.leaves),
        "block_dims": [int(d) for d in cert.block_dims],
    }


def _certificate_from_jsonable(data: Dict):
    from repro.exact.incremental import BranchCertificate

    return BranchCertificate(
        objective=array_from_jsonable(data["objective"]),
        threshold=float(data["threshold"]),
        leaves=_phase_leaves_from_jsonable(data["leaves"]),
        block_dims=[int(d) for d in data["block_dims"]],
    )


def _subproblem_to_jsonable(sub) -> Dict:
    return {
        "name": sub.name,
        "holds": sub.holds,
        "elapsed": float_to_jsonable(sub.elapsed),
        "detail": sub.detail,
        "lp_solves": int(sub.lp_solves),
    }


def _subproblem_from_jsonable(data: Dict):
    from repro.core.propositions import SubproblemReport

    return SubproblemReport(
        name=data["name"],
        holds=data["holds"],
        elapsed=float(data["elapsed"]),
        detail=data.get("detail", ""),
        lp_solves=int(data.get("lp_solves", 0)),
    )


def _proposition_result_to_jsonable(result) -> Dict:
    return {
        "proposition": result.proposition,
        "holds": result.holds,
        "subproblems": [_subproblem_to_jsonable(s)
                        for s in result.subproblems],
        "elapsed": float_to_jsonable(result.elapsed),
        "detail": result.detail,
    }


def _proposition_result_from_jsonable(data: Dict):
    from repro.core.propositions import PropositionResult

    return PropositionResult(
        proposition=data["proposition"],
        holds=data["holds"],
        subproblems=[_subproblem_from_jsonable(s)
                     for s in data.get("subproblems", [])],
        elapsed=float(data.get("elapsed", 0.0)),
        detail=data.get("detail", ""),
    )


def _fixing_result_to_jsonable(result) -> Optional[Dict]:
    if result is None:
        return None
    return {
        "holds": result.holds,
        "strategy": result.strategy,
        "replaced_layer": result.replaced_layer,
        "reentry_layer": result.reentry_layer,
        "subproblems": [_subproblem_to_jsonable(s)
                        for s in result.subproblems],
        "elapsed": float_to_jsonable(result.elapsed),
    }


def _fixing_result_from_jsonable(data) -> Optional[object]:
    if data is None:
        return None
    from repro.core.fixing import FixingResult

    return FixingResult(
        holds=data["holds"],
        strategy=data["strategy"],
        replaced_layer=data.get("replaced_layer"),
        reentry_layer=data.get("reentry_layer"),
        subproblems=[_subproblem_from_jsonable(s)
                     for s in data.get("subproblems", [])],
        elapsed=float(data.get("elapsed", 0.0)),
    )


def _continuous_result_to_jsonable(result) -> Dict:
    return {
        "holds": result.holds,
        "strategy": result.strategy,
        "attempts": [_proposition_result_to_jsonable(a)
                     for a in result.attempts],
        "fixing": _fixing_result_to_jsonable(result.fixing),
        "elapsed": float_to_jsonable(result.elapsed),
        "winning_max_subproblem_time":
            float_to_jsonable(result.winning_max_subproblem_time),
        "winning_time": float_to_jsonable(result.winning_time),
        "encoding_reuse": {str(k): int(v)
                           for k, v in result.encoding_reuse.items()},
        "nodes_reused": int(result.nodes_reused),
        "lp_solves_saved": int(result.lp_solves_saved),
    }


def _continuous_result_from_jsonable(data: Dict):
    from repro.core.continuous import ContinuousResult

    return ContinuousResult(
        holds=data["holds"],
        strategy=data["strategy"],
        attempts=[_proposition_result_from_jsonable(a)
                  for a in data.get("attempts", [])],
        fixing=_fixing_result_from_jsonable(data.get("fixing")),
        elapsed=float(data.get("elapsed", 0.0)),
        winning_max_subproblem_time=float(
            data.get("winning_max_subproblem_time", 0.0)),
        winning_time=float(data.get("winning_time", 0.0)),
        encoding_reuse={str(k): int(v)
                        for k, v in data.get("encoding_reuse", {}).items()},
        nodes_reused=int(data.get("nodes_reused", 0)),
        lp_solves_saved=int(data.get("lp_solves_saved", 0)),
    )


def _baseline_outcome_to_jsonable(outcome) -> Dict:
    return {
        "holds": outcome.holds,
        "artifacts": artifacts_to_jsonable(outcome.artifacts),
        "elapsed": float_to_jsonable(outcome.elapsed),
        "detail": outcome.detail,
        "lp_solves": int(outcome.lp_solves),
        "nodes": int(outcome.nodes),
    }


def _baseline_outcome_from_jsonable(data: Dict):
    from repro.core.verifier import BaselineOutcome

    return BaselineOutcome(
        holds=data["holds"],
        artifacts=artifacts_from_jsonable(data["artifacts"]),
        elapsed=float(data["elapsed"]),
        detail=data.get("detail", ""),
        lp_solves=int(data.get("lp_solves", 0)),
        nodes=int(data.get("nodes", 0)),
    )


def verdict_to_dict(verdict) -> Dict:
    """The JSON-safe wire form of any :class:`~repro.api.verdict.Verdict`.

    The envelope is ``{"verdict": <tag>, "spec_type", "holds", "detail",
    "provenance", ...payload}`` -- strict RFC-8259 like the Spec wire form
    (non-finite floats travel as ``"inf"``/``"-inf"``/``"nan"`` strings),
    so remote executors can ship verdicts back over any JSON channel.
    """
    from repro.api import verdict as verdict_module

    tag = None
    for candidate, cls_name in VERDICT_TAGS.items():
        if type(verdict) is getattr(verdict_module, cls_name):
            tag = candidate
            break
    if tag is None:
        raise SerializationError(
            f"not a wire-serializable Verdict: {type(verdict).__name__}")
    data: Dict = {
        "verdict": tag,
        "spec_type": verdict.spec_type,
        "holds": verdict.holds,
        "detail": verdict.detail,
        "provenance": _provenance_to_jsonable(verdict.provenance),
    }
    if tag == "containment":
        data["result"] = _containment_result_to_jsonable(verdict.result)
    elif tag == "range":
        data["output_range"] = box_to_jsonable(verdict.output_range)
    elif tag == "threshold":
        data["result"] = _bab_result_to_jsonable(verdict.result)
        data["certificate"] = (
            None if verdict.certificate is None
            else _certificate_to_jsonable(verdict.certificate))
    elif tag == "maximize":
        data["result"] = _bab_result_to_jsonable(verdict.result)
    elif tag == "proposition":
        data["result"] = _proposition_result_to_jsonable(verdict.result)
    elif tag == "continuous":
        data["result"] = _continuous_result_to_jsonable(verdict.result)
    elif tag == "baseline":
        data["result"] = _baseline_outcome_to_jsonable(verdict.result)
    else:  # failed
        data["error"] = verdict.error
        data["error_type"] = verdict.error_type
    return data


def verdict_from_dict(data: Dict):
    """Inverse of :func:`verdict_to_dict`."""
    from repro.api import verdict as verdict_module

    try:
        tag = data["verdict"]
    except (TypeError, KeyError):
        raise SerializationError(
            'a verdict dict needs a "verdict" tag '
            f"(one of {sorted(VERDICT_TAGS)})") from None
    if tag not in VERDICT_TAGS:
        raise SerializationError(
            f"unknown verdict type {tag!r}; known: {sorted(VERDICT_TAGS)}")
    cls = getattr(verdict_module, VERDICT_TAGS[tag])
    try:
        common = {
            "spec_type": data["spec_type"],
            "holds": data["holds"],
            "detail": data.get("detail", ""),
            "provenance": _provenance_from_jsonable(data["provenance"]),
        }
        if tag == "containment":
            return cls(result=_containment_result_from_jsonable(
                data["result"]), **common)
        if tag == "range":
            return cls(output_range=box_from_jsonable(data["output_range"]),
                       **common)
        if tag == "threshold":
            certificate = data.get("certificate")
            return cls(
                result=_bab_result_from_jsonable(data["result"]),
                certificate=None if certificate is None
                else _certificate_from_jsonable(certificate),
                **common)
        if tag == "maximize":
            return cls(result=_bab_result_from_jsonable(data["result"]),
                       **common)
        if tag == "proposition":
            return cls(result=_proposition_result_from_jsonable(
                data["result"]), **common)
        if tag == "continuous":
            return cls(result=_continuous_result_from_jsonable(
                data["result"]), **common)
        if tag == "baseline":
            return cls(result=_baseline_outcome_from_jsonable(
                data["result"]), **common)
        return cls(error=data.get("error", ""),
                   error_type=data.get("error_type", ""), **common)
    except KeyError as exc:
        raise SerializationError(
            f"verdict type {tag!r} is missing required key {exc.args[0]!r}"
        ) from None


def verdict_to_json(verdict, **dumps_kwargs) -> str:
    """``json.dumps`` of :func:`verdict_to_dict` (strict RFC-8259)."""
    dumps_kwargs.setdefault("sort_keys", True)
    return json.dumps(verdict_to_dict(verdict), allow_nan=False,
                      **dumps_kwargs)


def verdict_from_json(text: str):
    """Inverse of :func:`verdict_to_json`."""
    return verdict_from_dict(json.loads(text))


#: Keys that describe *how long / how cached* a particular run was, not
#: what the answer is; stripped recursively by the canonical form.
#: ``nodes_reused``/``lp_solves_saved`` are warm-start economics embedded
#: in result payloads -- bookkeeping of one run, like ``elapsed``.
_RUN_BOOKKEEPING_KEYS = frozenset({
    "provenance", "elapsed", "winning_time", "winning_max_subproblem_time",
    "original_time", "encoding_reuse", "nodes_reused", "lp_solves_saved",
})


def _strip_bookkeeping(value):
    if isinstance(value, dict):
        return {k: _strip_bookkeeping(v) for k, v in value.items()
                if k not in _RUN_BOOKKEEPING_KEYS}
    if isinstance(value, list):
        return [_strip_bookkeeping(v) for v in value]
    return value


def canonical_verdict_json(verdict) -> str:
    """The *value* of a verdict as one canonical byte string.

    Provenance and embedded timings (wall clocks, cache counters, pool
    width live under ``provenance``; legacy results also carry their own
    ``elapsed`` fields) are bookkeeping about a particular run, not part
    of the answer; they are stripped recursively so the same spec solved
    directly, over HTTP, or replayed from the verdict cache compares
    byte-identical.
    """
    return json.dumps(_strip_bookkeeping(verdict_to_dict(verdict)),
                      allow_nan=False, sort_keys=True)


def verdict_decision_json(verdict) -> str:
    """The *decision* of a verdict as one canonical byte string.

    Even the canonical form keeps the full result payload -- LP counts,
    search-derived bounds, witnesses -- which are properties of one search
    *trajectory*.  A warm-started delta verification re-proves the same
    property along a different trajectory (that is the point), so its
    soundness gate compares decisions: what was asked, what was answered,
    and how the solver terminated.  Everything else is cost, not answer.
    """
    data = verdict_to_dict(verdict)
    decision = {
        "verdict": data["verdict"],
        "spec_type": data["spec_type"],
        "holds": data["holds"],
    }
    result = data.get("result")
    if isinstance(result, dict) and "status" in result:
        status = result["status"]
        if data["holds"] is True and status in ("optimal",
                                                "threshold_proved"):
            # Both statuses certify the same decision (bound at or below
            # the threshold); which one a search lands on depends on
            # whether the optimality gap or the threshold prune closes
            # first -- trajectory, not answer.
            status = "proved"
        decision["status"] = status
    return json.dumps(decision, allow_nan=False, sort_keys=True)
