"""LP / MILP encodings of piecewise-linear networks over a box domain.

Implements the big-M encoding the paper cites ([12]-[14], Equation 2) plus
the LP *triangle* relaxation used by the branch-and-bound solver.  One
:class:`NetworkEncoding` owns the variable layout and the pre-activation
bounds; callers ask it for constraint matrices, either

* :meth:`NetworkEncoding.build_lp` -- an LP relaxation where each unstable
  (leaky-)ReLU is replaced by its convex triangle hull, optionally with some
  neuron phases *fixed* (the branching device of :mod:`repro.exact.bab`); or
* :meth:`NetworkEncoding.build_milp` -- the exact mixed-integer encoding with
  one binary indicator per unstable neuron (big-M style).

Variable layout: input ``x`` first, then per block its pre-activation vector
``z_k`` and (when the block has an activation) its post-activation ``a_k``.
Binary indicators, when requested, are appended at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DomainError, UnsupportedLayerError
from repro.domains.box import Box
from repro.domains.symbolic import SymbolicPropagator
from repro.nn.layers import LeakyReLU, ReLU
from repro.nn.network import Network

__all__ = ["PhaseMap", "LinearSystem", "NetworkEncoding"]

#: Phase assignment for branching: ``{(block, neuron): +1 (active) | -1 (inactive)}``.
PhaseMap = Dict[Tuple[int, int], int]


@dataclass
class LinearSystem:
    """Constraint matrices in ``scipy.linprog`` form.

    ``integer_mask`` marks binary variables (empty/All-False for pure LPs).
    """

    num_vars: int
    a_ub: Optional[np.ndarray]
    b_ub: Optional[np.ndarray]
    a_eq: Optional[np.ndarray]
    b_eq: Optional[np.ndarray]
    bounds: List[Tuple[Optional[float], Optional[float]]]
    integer_mask: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.integer_mask is None:
            self.integer_mask = np.zeros(self.num_vars, dtype=bool)


class _RowBuilder:
    """Accumulates sparse-ish rows for one constraint group."""

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        self.rows: List[np.ndarray] = []
        self.rhs: List[float] = []

    def add(self, coeffs: Dict[int, float], rhs: float) -> None:
        row = np.zeros(self.num_vars)
        for idx, val in coeffs.items():
            row[idx] += val
        self.rows.append(row)
        self.rhs.append(float(rhs))

    def add_dense(self, row: np.ndarray, rhs: float) -> None:
        self.rows.append(np.asarray(row, dtype=np.float64))
        self.rhs.append(float(rhs))

    def matrices(self) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        if not self.rows:
            return None, None
        return np.vstack(self.rows), np.asarray(self.rhs)


class NetworkEncoding:
    """Reusable encoding context for one ``(network, input_box)`` pair."""

    def __init__(self, network: Network, input_box: Box,
                 pre_boxes: Optional[Sequence[Box]] = None):
        if input_box.dim != network.input_dim:
            raise DomainError(
                f"input box dim {input_box.dim} != network input {network.input_dim}"
            )
        self.network = network
        self.input_box = input_box
        for block in network.blocks():
            act = block.activation
            if act is not None and not isinstance(act, (ReLU, LeakyReLU)):
                raise UnsupportedLayerError(
                    f"exact encodings require piecewise-linear activations, "
                    f"found {type(act).__name__}"
                )
        if pre_boxes is None:
            pre_boxes = SymbolicPropagator().preactivation_boxes(network, input_box)
        self.pre_boxes: List[Box] = list(pre_boxes)
        if len(self.pre_boxes) != network.num_blocks:
            raise DomainError("need one pre-activation box per block")
        self._layout()

    # ---------------------------------------------------------------- layout
    def _layout(self) -> None:
        net = self.network
        self.input_slice = slice(0, net.input_dim)
        cursor = net.input_dim
        self.z_slices: List[slice] = []
        self.a_slices: List[slice] = []
        for block in net.blocks():
            d = block.out_dim
            self.z_slices.append(slice(cursor, cursor + d))
            cursor += d
            if block.activation is not None:
                self.a_slices.append(slice(cursor, cursor + d))
                cursor += d
            else:
                # Linear block: post-activation is the pre-activation.
                self.a_slices.append(self.z_slices[-1])
        self.num_continuous = cursor

    @property
    def output_slice(self) -> slice:
        """Variables holding the network output."""
        return self.a_slices[-1]

    def output_objective(self, c: np.ndarray, num_vars: Optional[int] = None) -> np.ndarray:
        """Dense objective vector selecting ``c @ output``."""
        c = np.asarray(c, dtype=np.float64).reshape(-1)
        out = self.output_slice
        if c.size != out.stop - out.start:
            raise DomainError(
                f"objective dim {c.size} != output dim {out.stop - out.start}"
            )
        vec = np.zeros(num_vars if num_vars is not None else self.num_continuous)
        vec[out] = c
        return vec

    # ----------------------------------------------------------- neuron info
    def neuron_stability(self, block: int, neuron: int) -> str:
        """``"active"``, ``"inactive"`` or ``"unstable"`` from static bounds."""
        l = self.pre_boxes[block].lower[neuron]
        u = self.pre_boxes[block].upper[neuron]
        if l >= 0.0:
            return "active"
        if u <= 0.0:
            return "inactive"
        return "unstable"

    def unstable_neurons(self) -> List[Tuple[int, int]]:
        """All statically-unstable ``(block, neuron)`` pairs with activations."""
        pairs = []
        for k, block in enumerate(self.network.blocks()):
            if block.activation is None:
                continue
            for i in range(block.out_dim):
                if self.neuron_stability(k, i) == "unstable":
                    pairs.append((k, i))
        return pairs

    # ------------------------------------------------------------- LP builder
    def build_lp(self, fixed_phases: Optional[PhaseMap] = None) -> LinearSystem:
        """Triangle-relaxation LP of the network.

        ``fixed_phases`` forces unstable neurons into one linear piece,
        adding the corresponding sign constraint on the pre-activation --
        exactly the branching step of ReLU branch-and-bound.  The LP is a
        sound relaxation: every real execution of the network (consistent
        with the fixed phases) satisfies all constraints.
        """
        fixed_phases = fixed_phases or {}
        n = self.num_continuous
        ub = _RowBuilder(n)
        eq = _RowBuilder(n)
        bounds: List[Tuple[Optional[float], Optional[float]]] = [(None, None)] * n
        box = self.input_box
        for i in range(box.dim):
            bounds[i] = (float(box.lower[i]), float(box.upper[i]))

        prev_a = self.input_slice
        for k, block in enumerate(self.network.blocks()):
            w, b = block.dense.weight, block.dense.bias
            z_sl, a_sl = self.z_slices[k], self.a_slices[k]
            # z_k = W a_{k-1} + b
            for i in range(block.out_dim):
                row = np.zeros(n)
                row[z_sl.start + i] = 1.0
                row[prev_a] = -w[i]
                eq.add_dense(row, b[i])
            act = block.activation
            if act is not None:
                slope = 0.0 if isinstance(act, ReLU) else act.alpha
                self._encode_activation_lp(
                    k, slope, fixed_phases, ub, eq, bounds, z_sl, a_sl
                )
            prev_a = a_sl

        a_ub, b_ub = ub.matrices()
        a_eq, b_eq = eq.matrices()
        return LinearSystem(n, a_ub, b_ub, a_eq, b_eq, bounds)

    def _encode_activation_lp(self, k: int, slope: float,
                              fixed_phases: PhaseMap,
                              ub: _RowBuilder, eq: _RowBuilder,
                              bounds, z_sl: slice, a_sl: slice) -> None:
        pre = self.pre_boxes[k]
        for i in range(z_sl.stop - z_sl.start):
            zi, ai = z_sl.start + i, a_sl.start + i
            l, u = float(pre.lower[i]), float(pre.upper[i])
            phase = fixed_phases.get((k, i))
            stability = self.neuron_stability(k, i)
            if phase == 1 or stability == "active":
                # a = z, and when forced, z >= 0.
                eq.add({ai: 1.0, zi: -1.0}, 0.0)
                if phase == 1 and stability == "unstable":
                    ub.add({zi: -1.0}, 0.0)  # -z <= 0
            elif phase == -1 or stability == "inactive":
                # a = slope * z, and when forced, z <= 0.
                eq.add({ai: 1.0, zi: -slope}, 0.0)
                if phase == -1 and stability == "unstable":
                    ub.add({zi: 1.0}, 0.0)  # z <= 0
            else:
                # Triangle relaxation: a >= z, a >= slope*z,
                # a <= lam*(z - l) + slope*l with lam = (u - slope*l)/(u - l).
                lam = (u - slope * l) / (u - l)
                ub.add({zi: 1.0, ai: -1.0}, 0.0)        # z - a <= 0
                ub.add({zi: slope, ai: -1.0}, 0.0)      # slope*z - a <= 0
                ub.add({ai: 1.0, zi: -lam}, slope * l - lam * l)
                bounds[ai] = (min(0.0, slope * l), max(u, 0.0))

    # ----------------------------------------------------------- MILP builder
    def build_milp(self) -> LinearSystem:
        """Exact big-M MILP encoding (one binary per unstable neuron).

        For an unstable ReLU neuron with pre-activation bounds ``[l, u]``::

            a >= z,  a >= slope*z,
            a <= slope*z + (1 - slope)*u*delta,
            a <= z - (1 - slope)*l*(1 - delta),       delta in {0, 1}

        ``delta = 1`` forces the active piece (``a = z``), ``delta = 0`` the
        negative-side piece (``a = slope*z``) -- the classic big-M encoding
        of the paper's Equation 2 with ``l``/``u`` as the big-M constants.
        """
        unstable = self.unstable_neurons()
        n = self.num_continuous + len(unstable)
        delta_index = {pair: self.num_continuous + j for j, pair in enumerate(unstable)}

        ub = _RowBuilder(n)
        eq = _RowBuilder(n)
        bounds: List[Tuple[Optional[float], Optional[float]]] = [(None, None)] * n
        box = self.input_box
        for i in range(box.dim):
            bounds[i] = (float(box.lower[i]), float(box.upper[i]))
        for pair, di in delta_index.items():
            bounds[di] = (0.0, 1.0)

        prev_a = self.input_slice
        for k, block in enumerate(self.network.blocks()):
            w, b = block.dense.weight, block.dense.bias
            z_sl, a_sl = self.z_slices[k], self.a_slices[k]
            for i in range(block.out_dim):
                row = np.zeros(n)
                row[z_sl.start + i] = 1.0
                row[prev_a] = -w[i]
                eq.add_dense(row, b[i])
            act = block.activation
            if act is not None:
                slope = 0.0 if isinstance(act, ReLU) else act.alpha
                pre = self.pre_boxes[k]
                for i in range(block.out_dim):
                    zi, ai = z_sl.start + i, a_sl.start + i
                    l, u = float(pre.lower[i]), float(pre.upper[i])
                    stability = self.neuron_stability(k, i)
                    if stability == "active":
                        eq.add({ai: 1.0, zi: -1.0}, 0.0)
                    elif stability == "inactive":
                        eq.add({ai: 1.0, zi: -slope}, 0.0)
                    else:
                        di = delta_index[(k, i)]
                        ub.add({zi: 1.0, ai: -1.0}, 0.0)
                        ub.add({zi: slope, ai: -1.0}, 0.0)
                        ub.add({ai: 1.0, zi: -slope, di: -(1 - slope) * u}, 0.0)
                        ub.add({ai: 1.0, zi: -1.0, di: -(1 - slope) * l},
                               -(1 - slope) * l)
                        bounds[ai] = (min(0.0, slope * l), max(u, 0.0))
            prev_a = a_sl

        a_ub, b_ub = ub.matrices()
        a_eq, b_eq = eq.matrices()
        integer_mask = np.zeros(n, dtype=bool)
        for di in delta_index.values():
            integer_mask[di] = True
        return LinearSystem(n, a_ub, b_ub, a_eq, b_eq, bounds, integer_mask)
