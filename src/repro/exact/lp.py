"""Thin wrapper around ``scipy.optimize.linprog`` (HiGHS backend).

Normalises the solver interface the rest of :mod:`repro.exact` builds on:
explicit statuses, consistent ``None`` handling for absent constraint
groups, and a :class:`SolverError` for genuine backend failures (as opposed
to the ordinary *infeasible* / *unbounded* verdicts, which are results).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError

__all__ = ["LPResult", "solve_lp", "LP_OPTIMAL", "LP_INFEASIBLE", "LP_UNBOUNDED"]

LP_OPTIMAL = "optimal"
LP_INFEASIBLE = "infeasible"
LP_UNBOUNDED = "unbounded"

_STATUS_MAP = {0: LP_OPTIMAL, 2: LP_INFEASIBLE, 3: LP_UNBOUNDED}


@dataclass
class LPResult:
    """Outcome of one LP solve.

    ``value`` and ``x`` are only meaningful when ``status == LP_OPTIMAL``.
    """

    status: str
    value: float
    x: Optional[np.ndarray]

    @property
    def optimal(self) -> bool:
        return self.status == LP_OPTIMAL


def solve_lp(c: np.ndarray,
             a_ub: Optional[np.ndarray] = None,
             b_ub: Optional[np.ndarray] = None,
             a_eq: Optional[np.ndarray] = None,
             b_eq: Optional[np.ndarray] = None,
             bounds: Optional[Sequence[Tuple[Optional[float], Optional[float]]]] = None,
             ) -> LPResult:
    """Minimise ``c @ x`` subject to ``a_ub x <= b_ub``, ``a_eq x == b_eq``
    and variable ``bounds`` (default: free variables).

    Raises :class:`SolverError` if HiGHS reports a numerical failure or an
    iteration/time limit -- conditions a verification result must never be
    silently built on.
    """
    c = np.asarray(c, dtype=np.float64)
    if bounds is None:
        bounds = [(None, None)] * c.size
    res = linprog(
        c,
        A_ub=a_ub, b_ub=b_ub,
        A_eq=a_eq, b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    status = _STATUS_MAP.get(res.status)
    if status is None:
        raise SolverError(f"linprog failed: status={res.status} message={res.message!r}")
    if status == LP_OPTIMAL:
        return LPResult(status=status, value=float(res.fun), x=np.asarray(res.x))
    return LPResult(status=status, value=float("nan"), x=None)
