"""``store-discipline``: SQLite stays behind :class:`JobStore`.

PR 5 put every row the service persists behind ``repro.serve.store``:
the store owns the connection, the schema, the migration table, and --
critically -- the lock serialising access to them.  A ``conn.execute``
elsewhere bypasses that lock *and* the schema-version handling, so the
first migration would corrupt it.  This rule keeps the blast radius of
any future schema change inside one file.

Flagged outside ``repro.serve.store``: importing ``sqlite3`` at all, and
calling ``.execute``/``.executemany``/``.executescript`` on a receiver
whose name marks it as a DB handle (``conn``/``_conn``/``cursor``/...).
The executor contract's ``.execute(spec_json, ...)`` has the same method
name but non-DB receivers, and is policed by ``wire-discipline``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

__all__ = ["StoreDisciplineRule"]

_DB_RECEIVERS = frozenset({"conn", "_conn", "connection", "cursor", "cur",
                           "db"})
_DB_METHODS = frozenset({"execute", "executemany", "executescript"})


class StoreDisciplineRule(Rule):
    name = "store-discipline"
    description = ("sqlite3 access only inside repro.serve.store "
                   "(JobStore owns the connection and its lock)")
    scope = ("repro",)
    exempt = ("repro.serve.store",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] == "sqlite3":
                        yield self.finding(
                            ctx, node,
                            "sqlite3 imported outside repro.serve.store; "
                            "go through JobStore methods")
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".", 1)[0] == "sqlite3":
                    yield self.finding(
                        ctx, node,
                        "sqlite3 imported outside repro.serve.store; "
                        "go through JobStore methods")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in _DB_METHODS \
                        and ctx.receiver_hint(func) in _DB_RECEIVERS:
                    yield self.finding(
                        ctx, node,
                        f"raw DB call .{func.attr}() on a connection "
                        "outside repro.serve.store; add/extend a "
                        "JobStore method instead")
