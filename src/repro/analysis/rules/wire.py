"""``wire-discipline``: the executor boundary speaks strings, not objects.

PR 5's serving design keeps every executor behind one contract --
``execute(spec_json, config_json, timeout=None) -> verdict dict`` -- so
that swapping an in-process thread for a subprocess or a remote machine
(PR 7) changes nothing above it.  The contract only holds if *both*
sides stay on the wire: an ``execute()`` implementation that accepts a
``Spec`` object, or a call site that passes one, works in-process today
and breaks the moment the job crosses a process boundary.

Two checks, both scoped to ``repro.serve``:

* every ``def execute`` parameter (beyond ``self`` and ``timeout``) must
  be named ``*_json`` -- the naming convention *is* the contract;
* every ``.execute(...)`` call-site argument must be wire-shaped: a
  ``*_json`` name/attribute, a serializer call (``*_to_json``/
  ``json.dumps``), a string constant, or a plain string variable already
  on the wire.  Database cursors (``conn.execute(sql)``) are a different
  protocol and are left to ``store-discipline``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

__all__ = ["WireDisciplineRule"]

#: Receivers whose ``.execute`` is the DB-API, not the executor contract.
_DB_RECEIVERS = frozenset({"conn", "_conn", "connection", "cursor", "cur",
                           "db"})

#: Call-site names that produce wire strings.
_SERIALIZERS = ("to_json", "dumps")


class WireDisciplineRule(Rule):
    name = "wire-discipline"
    description = ("executor execute() boundaries pass only wire "
                   "strings (spec_json/config_json), never objects")
    scope = ("repro.serve",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == "execute":
                yield from self._check_definition(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    # ------------------------------------------------------------ def side
    def _check_definition(self, ctx: ModuleContext,
                          node: ast.AST) -> Iterator[Finding]:
        args = node.args
        params = [arg for arg in args.posonlyargs + args.args
                  + args.kwonlyargs if arg.arg not in ("self", "cls")]
        for param in params:
            if param.arg == "timeout" or param.arg.endswith("_json"):
                continue
            yield self.finding(
                ctx, param,
                f"execute() parameter {param.arg!r} is not wire-shaped; "
                "executor boundaries take *_json strings (plus an "
                "optional timeout)")

    # ----------------------------------------------------------- call side
    def _check_call(self, ctx: ModuleContext,
                    node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "execute":
            return
        hint = ctx.receiver_hint(func)
        if hint in _DB_RECEIVERS:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords
                                      if kw.arg != "timeout"]:
            if not self._wire_shaped(arg):
                yield self.finding(
                    ctx, arg,
                    "argument to .execute() is not wire-shaped "
                    f"({ast.unparse(arg)}); serialize to a *_json "
                    "string before crossing the executor boundary")

    @staticmethod
    def _wire_shaped(arg: ast.expr) -> bool:
        if isinstance(arg, ast.Constant):
            return isinstance(arg.value, (str, int, float, type(None)))
        if isinstance(arg, ast.Starred):
            arg = arg.value
        if isinstance(arg, ast.Name):
            return arg.id.endswith("_json") or arg.id == "timeout" \
                or arg.id.endswith("timeout")
        if isinstance(arg, ast.Attribute):
            return arg.attr.endswith("_json") \
                or arg.attr.endswith("timeout")
        if isinstance(arg, ast.Call):
            callee = arg.func
            terminal = callee.attr if isinstance(callee, ast.Attribute) \
                else callee.id if isinstance(callee, ast.Name) else ""
            return terminal.endswith(_SERIALIZERS[0]) \
                or terminal == _SERIALIZERS[1] \
                or terminal.endswith("_json")
        if isinstance(arg, ast.Subscript):
            # job["spec_json"] / row["config_json"]: a wire field lookup.
            index = arg.slice
            return isinstance(index, ast.Constant) \
                and isinstance(index.value, str) \
                and index.value.endswith("_json")
        return False
