"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Verification *outcomes* (safe / unknown / unsafe) are
never signalled with exceptions -- they are ordinary return values; exceptions
are reserved for malformed inputs and internal failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ShapeError(ReproError):
    """An array, layer, or domain received data of an incompatible shape."""


class LayerError(ReproError):
    """A layer was constructed with or applied to invalid data."""


class SerializationError(ReproError):
    """A network or artifact could not be serialized or deserialized."""


class DomainError(ReproError):
    """An abstract-domain operation received invalid or unsupported input."""


class SolverError(ReproError):
    """The LP/MILP backend failed in a way that is not a normal infeasible
    or unbounded verdict (e.g. numerical breakdown inside HiGHS)."""


class UnsupportedLayerError(ReproError):
    """A verification routine met a layer it has no transformer/encoding for."""


class ArtifactError(ReproError):
    """Proof artifacts are missing, inconsistent, or do not match a network."""


class MonitorError(ReproError):
    """The runtime monitor was used before calibration or with bad data."""


class VehicleError(ReproError):
    """The vehicle simulation substrate received invalid configuration."""


class ServeError(ReproError):
    """The verification service (job store, executors, HTTP front end)
    received an invalid request or hit an internal failure."""
