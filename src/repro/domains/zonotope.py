"""Zonotope abstract domain (DeepZ/AI2-style affine forms).

A zonotope is ``{ c + G e : e in [-1, 1]^m }`` with center ``c`` and
generator matrix ``G``.  Affine layers transform it exactly; the (leaky-)
ReLU transformer introduces one fresh noise symbol per unstable neuron using
the minimal-area affine relaxation.  Zonotopes sit between plain boxes and
symbolic intervals in precision/cost and are used by the domain ablation
study (Fig. 1's insight: coarser transformers inflate ``S_2`` and break
Proposition 1 where precise/exact methods succeed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ShapeError, UnsupportedLayerError
from repro.domains.box import Box
from repro.nn.layers import LeakyReLU, ReLU
from repro.nn.network import Network

__all__ = ["Zonotope", "ZonotopePropagator"]


@dataclass
class Zonotope:
    """Affine form ``c + G e``, ``e`` ranging over the unit hypercube."""

    center: np.ndarray
    generators: np.ndarray  # (dim, num_symbols)

    def __post_init__(self):
        c = np.asarray(self.center, dtype=np.float64).reshape(-1)
        g = np.asarray(self.generators, dtype=np.float64)
        if g.ndim != 2 or g.shape[0] != c.size:
            raise ShapeError(
                f"generators must be ({c.size}, m), got {g.shape}"
            )
        object.__setattr__(self, "center", c)
        object.__setattr__(self, "generators", g)

    @staticmethod
    def from_box(box: Box) -> "Zonotope":
        """Input box as a zonotope with one symbol per dimension."""
        return Zonotope(box.center, np.diag(box.radius))

    @property
    def dim(self) -> int:
        return self.center.size

    @property
    def num_symbols(self) -> int:
        return self.generators.shape[1]

    def concretize(self) -> Box:
        radius = np.abs(self.generators).sum(axis=1)
        return Box.unsafe(self.center - radius, self.center + radius)

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "Zonotope":
        """Exact image under ``x -> W x + b``."""
        return Zonotope(weight @ self.center + bias, weight @ self.generators)


class ZonotopePropagator:
    """Network-level zonotope propagation."""

    name = "zonotope"

    def propagate_block(self, block, zono: Zonotope) -> Zonotope:
        zono = zono.affine(block.dense.weight, block.dense.bias)
        act = block.activation
        if act is None:
            return zono
        if isinstance(act, ReLU):
            return self._relu(zono, slope_neg=0.0)
        if isinstance(act, LeakyReLU):
            return self._relu(zono, slope_neg=act.alpha)
        raise UnsupportedLayerError(
            f"zonotopes support ReLU/LeakyReLU, not {type(act).__name__}"
        )

    @staticmethod
    def _relu(zono: Zonotope, slope_neg: float) -> Zonotope:
        """DeepZ transformer: ``y = λ x + μ ± η`` per unstable neuron.

        With bounds ``[l, u]`` (``l < 0 < u``) and negative-side slope ``a``:
        ``λ = (u - a l) / (u - l)`` and the relaxation band between the chord
        and the function has vertical extent ``(λ - a) * (-l)``; centering the
        band gives ``μ = η = (λ - a) * (-l) / 2``.  Stable neurons are scaled
        exactly; one fresh noise symbol is appended per unstable neuron.
        """
        box = zono.concretize()
        lo, hi = box.lower, box.upper
        d = zono.dim
        scale = np.ones(d)
        shift = np.zeros(d)
        fresh = []
        for i in range(d):
            l, u = lo[i], hi[i]
            if u <= 0.0:
                scale[i] = slope_neg
            elif l >= 0.0:
                continue
            else:
                lam = (u - slope_neg * l) / (u - l)
                eta = 0.5 * (lam - slope_neg) * (-l)
                scale[i] = lam
                shift[i] = eta
                fresh.append((i, eta))
        center = scale * zono.center + shift
        gens = scale[:, None] * zono.generators
        if fresh:
            extra = np.zeros((d, len(fresh)))
            for col, (i, eta) in enumerate(fresh):
                extra[i, col] = eta
            gens = np.hstack([gens, extra])
        return Zonotope(center, gens)

    def propagate_states(self, network: Network, input_box: Box) -> List[Zonotope]:
        if input_box.dim != network.input_dim:
            raise ShapeError(
                f"input box dim {input_box.dim} != network input {network.input_dim}"
            )
        states = []
        zono = Zonotope.from_box(input_box)
        for block in network.blocks():
            zono = self.propagate_block(block, zono)
            states.append(zono)
        return states

    def propagate(self, network: Network, input_box: Box) -> List[Box]:
        """Concretised per-block boxes ``[S_1, ..., S_n]``."""
        return [z.concretize() for z in self.propagate_states(network, input_box)]
