"""``no-legacy-entrypoints``: library code may not call the deprecated
free functions.

PR 4 made :class:`repro.api.VerificationEngine` the single entry point
and left the pre-engine free functions (``check_containment``,
``certify_threshold``, ``check_prop1`` ...) as thin deprecated shims that
emit :class:`~repro.api.config.LegacyEntryPointWarning` and forward to
``_``-prefixed implementations.  The shims exist *only* for external
callers; ``src/`` code calling one re-enters the library through the
deprecated door, skips engine-level config resolution, and used to be
caught only by a runtime warning filter in CI.  This rule is the static
replacement: any call whose resolved qualified name is one of the shims
is flagged at the call site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

__all__ = ["NoLegacyEntrypointsRule", "LEGACY_ENTRYPOINTS"]

#: The PR-4 deprecated shims: fully-qualified implementation homes.  The
#: same names are re-exported from package ``__init__`` modules, so the
#: rule matches on the *terminal* name once the chain resolves into the
#: ``repro`` namespace.
LEGACY_ENTRYPOINTS = {
    "check_containment": "repro.exact.verify",
    "output_range_exact": "repro.exact.verify",
    "maximize_output": "repro.exact.bab",
    "minimize_output": "repro.exact.bab",
    "certify_threshold": "repro.exact.incremental",
    "check_prop1": "repro.core.propositions",
    "check_prop2": "repro.core.propositions",
    "check_prop4": "repro.core.propositions",
    "check_prop5": "repro.core.propositions",
    "verify_from_scratch": "repro.core.verifier",
}


class NoLegacyEntrypointsRule(Rule):
    name = "no-legacy-entrypoints"
    description = ("library code must use VerificationEngine, not the "
                   "deprecated PR-4 free functions")
    scope = ("repro",)
    # The shims' own modules define (and their packages re-export) the
    # functions; defining/forwarding is not calling.
    exempt = ()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualname(node.func)
            if qual is None:
                continue
            terminal = qual.rsplit(".", 1)[-1]
            home = LEGACY_ENTRYPOINTS.get(terminal)
            if home is None:
                continue
            # Only flag names that resolve into the repro namespace (a
            # local helper that happens to share a name stays legal), and
            # never flag the `_`-prefixed implementations.
            if not qual.startswith("repro.") and "." in qual:
                continue
            yield self.finding(
                ctx, node,
                f"call to deprecated entry point {terminal}() (lives in "
                f"{home}); use VerificationEngine / the corresponding "
                f"_-prefixed implementation instead")
