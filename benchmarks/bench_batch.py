"""Batched vs per-box propagation, and the BaB interval-pruning payoff.

Measures the tentpole of the batched engine at ``N ∈ {1, 16, 64, 256}``:
one stacked ``propagate_batch`` call against the equivalent per-box
``propagate`` loop, for every batched domain.  Also replays the Fig. 2
branch-and-bound workload with batched interval pruning on/off to record
the ``lp_solves`` saving.

Run standalone for the machine-readable record (later PRs track the perf
trajectory from this JSON)::

    PYTHONPATH=src python benchmarks/bench_batch.py [output.json]

or through pytest for the human-readable report and the regression gates
(batched box path >= 5x the loop at N=256; strictly fewer LP solves).
"""

import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone: make src/ and repo root importable
    _ROOT = Path(__file__).resolve().parent.parent
    for entry in (str(_ROOT / "src"), str(_ROOT)):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from repro.domains import Box, BoxBatch, get_batched_propagator, get_propagator
from repro.exact import maximize_output
from repro.nn import fig2_network, random_relu_network

from benchmarks.common import emit_json

BATCH_SIZES = (1, 16, 64, 256)
DOMAINS = ("box", "symbolic", "zonotope")
NETWORK_DIMS = [16, 32, 24, 2]


def _workload(n: int, seed: int = 0):
    """N sub-boxes of a base domain, as a branch-and-bound frontier would
    produce them: repeated bisection of the widest dimension."""
    rng = np.random.default_rng(seed)
    base = Box(-0.5 * np.ones(NETWORK_DIMS[0]), 0.5 * np.ones(NETWORK_DIMS[0]))
    boxes = [base]
    while len(boxes) < n:
        boxes.extend(boxes.pop(int(rng.integers(len(boxes)))).split())
    return boxes[:n]


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_propagation_suite():
    """Batched vs per-box-loop timings; returns the JSON-ready payload."""
    network = random_relu_network(NETWORK_DIMS, seed=0, weight_scale=0.5)
    rows = []
    for domain in DOMAINS:
        scalar = get_propagator(domain)
        batched = get_batched_propagator(domain)
        for n in BATCH_SIZES:
            boxes = _workload(n)
            batch = BoxBatch.from_boxes(boxes)
            loop_s = _best_of(lambda: [scalar.propagate(network, b)
                                       for b in boxes])
            batch_s = _best_of(lambda: batched.propagate(network, batch))
            rows.append({
                "domain": domain,
                "batch_size": n,
                "per_box_loop_s": loop_s,
                "batched_s": batch_s,
                "speedup": loop_s / batch_s if batch_s > 0 else float("inf"),
            })
    return rows


def run_bab_pruning():
    """Fig. 2 workload: lp_solves with batched interval pruning on/off."""
    network = fig2_network()
    enlarged = Box(-np.ones(2), np.array([1.1, 1.1]))
    c = np.array([1.0])
    off = maximize_output(network, enlarged, c, interval_prune=False)
    on = maximize_output(network, enlarged, c, interval_prune=True)
    return {
        "workload": "bench_fig2 maximize n4 over [-1,1.1]^2",
        "optimum_pruning_off": off.upper_bound,
        "optimum_pruning_on": on.upper_bound,
        "lp_solves_pruning_off": off.lp_solves,
        "lp_solves_pruning_on": on.lp_solves,
        "lp_solves_saved": off.lp_solves - on.lp_solves,
    }


def _speedup(rows, domain, n):
    return next(r["speedup"] for r in rows
                if r["domain"] == domain and r["batch_size"] == n)


def test_report_batch_speedup(capsys):
    rows = run_propagation_suite()
    lines = ["\nBatched vs per-box propagation "
             f"(net {'-'.join(map(str, NETWORK_DIMS))})",
             f"  {'domain':>9} | {'N':>4} | {'loop [ms]':>10} | "
             f"{'batched [ms]':>12} | {'speedup':>8}"]
    for r in rows:
        lines.append(
            f"  {r['domain']:>9} | {r['batch_size']:>4} | "
            f"{1e3 * r['per_box_loop_s']:>10.3f} | "
            f"{1e3 * r['batched_s']:>12.3f} | {r['speedup']:>7.1f}x")
    with capsys.disabled():
        print("\n".join(lines))
    # The acceptance gate: stacked interval arithmetic must clearly beat
    # the per-box loop once there is real batch width.
    assert _speedup(rows, "box", 256) >= 5.0
    for domain in DOMAINS:
        assert _speedup(rows, domain, 256) > 1.0


def test_report_bab_interval_pruning(capsys):
    stats = run_bab_pruning()
    with capsys.disabled():
        print("\nBaB batched interval pruning (Fig. 2 workload)")
        print(f"  lp_solves: {stats['lp_solves_pruning_off']} -> "
              f"{stats['lp_solves_pruning_on']} "
              f"(saved {stats['lp_solves_saved']})")
    assert stats["lp_solves_pruning_on"] < stats["lp_solves_pruning_off"]
    assert stats["optimum_pruning_on"] == \
        __import__("pytest").approx(stats["optimum_pruning_off"], abs=1e-9)


def main(path=None, smoke=False):
    global BATCH_SIZES
    if smoke:
        BATCH_SIZES = (1, 16)  # CI smoke: exercise every path, tiny sizes
    payload = {
        "smoke": smoke,
        "propagation": run_propagation_suite(),
        "bab_pruning": run_bab_pruning(),
    }
    emit_json("bench_batch", payload, path=path)


if __name__ == "__main__":
    _argv = [a for a in sys.argv[1:] if a != "--smoke"]
    main(_argv[0] if _argv else None, smoke="--smoke" in sys.argv[1:])
