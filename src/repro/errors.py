"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Verification *outcomes* (safe / unknown / unsafe) are
never signalled with exceptions -- they are ordinary return values; exceptions
are reserved for malformed inputs and internal failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ShapeError(ReproError):
    """An array, layer, or domain received data of an incompatible shape."""


class LayerError(ReproError):
    """A layer was constructed with or applied to invalid data."""


class SerializationError(ReproError):
    """A network or artifact could not be serialized or deserialized."""


class DomainError(ReproError):
    """An abstract-domain operation received invalid or unsupported input."""


class SolverError(ReproError):
    """The LP/MILP backend failed in a way that is not a normal infeasible
    or unbounded verdict (e.g. numerical breakdown inside HiGHS)."""


class UnsupportedLayerError(ReproError):
    """A verification routine met a layer it has no transformer/encoding for."""


class ArtifactError(ReproError):
    """Proof artifacts are missing, inconsistent, or do not match a network."""


class CertificateError(ArtifactError):
    """A stored verification certificate is malformed, stale, or does not
    match the problem it was offered for.  Never fatal to verification:
    callers reject the certificate and fall back to a from-scratch solve,
    so a bad certificate can cost time but can never flip a verdict."""


class MonitorError(ReproError):
    """The runtime monitor was used before calibration or with bad data."""


class VehicleError(ReproError):
    """The vehicle simulation substrate received invalid configuration."""


class ServeError(ReproError):
    """The verification service (job store, executors, HTTP front end)
    received an invalid request or hit an internal failure."""


class AnalysisError(ReproError):
    """The static-analysis engine (:mod:`repro.analysis`) was invoked with
    an unknown rule name, an unreadable path, or unparseable source."""


# --------------------------------------------------------------------------
# The serving failure taxonomy.  Every way a claimed job can fail is one of
# two kinds, and the retry machinery keys off that distinction alone:
#
# * :class:`TransientExecutionError` -- the *infrastructure* failed (a child
#   crashed, hung, or returned garbage); the job itself may well be fine and
#   is worth retrying with backoff.
# * :class:`PermanentJobError` -- the *job* is bad (malformed spec, solver
#   rejects the problem, deadline already passed); retrying burns an
#   executor slot to reproduce the same failure, so it is failed terminally
#   on the first attempt.
#
# Solver-level errors (ShapeError, SolverError, ...) raised while executing
# a job are treated as permanent: identical inputs deterministically raise
# identically.  Everything else an executor raises defaults to transient --
# a spurious retry costs one re-solve, while a spurious permanent failure
# drops a job a healthy executor could have answered.


class TransientExecutionError(ServeError):
    """Execution failed for reasons unrelated to the job's content; a
    retry on healthy infrastructure may succeed."""


class PermanentJobError(ServeError):
    """The job itself can never succeed; retries are pointless."""


class ExecutorCrashError(TransientExecutionError):
    """The executor process died (nonzero exit, signal, empty reply)
    without producing a verdict document."""


class MalformedWireError(TransientExecutionError):
    """The executor replied, but not with a parseable verdict document
    (truncated JSON, garbage stdout, wrong document shape)."""


class RemoteUnreachableError(TransientExecutionError):
    """A remote worker could not be reached at the transport level
    (connection refused/reset, socket timeout, DNS failure): the machine
    or its server is down or partitioned, not the job.  Transient -- the
    shard may return, and the ring reroutes in the meantime."""


class RemoteProtocolError(TransientExecutionError):
    """A remote worker answered, but not with a well-formed HTTP/JSON
    response (truncated body, garbage payload, a record missing required
    fields): the connection worked, the reply was torn.  Transient -- a
    retry speaks to a (hopefully) healthier process."""


class JobTimeoutError(TransientExecutionError, TimeoutError):
    """The job overran its wall-clock budget.  Also a builtin
    :class:`TimeoutError` so pre-taxonomy ``except TimeoutError`` call
    sites keep working."""


class JobDeadlineError(PermanentJobError):
    """The job's client deadline passed before (or while) it ran; the
    answer can no longer be used, so the work is never started/retried."""


class QueueFullError(ServeError):
    """The service's queue-depth limit was hit; the submission was
    rejected for backpressure (HTTP 503 + ``Retry-After``).  Neither
    transient nor permanent: the job was never accepted."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after
