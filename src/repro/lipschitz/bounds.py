"""Global Lipschitz bounds: the product-of-operator-norms estimate.

Produces the constant ``ℓ`` of the paper's Equation 1,
``|f(x1) - f(x2)| <= ℓ |x1 - x2|`` for all ``x1, x2`` in the input domain.
The classical bound multiplies each affine layer's operator norm with the
activation's scalar Lipschitz constant (1 for (leaky-)ReLU and tanh, 1/4
for sigmoid).  Sound over the *whole* input space, hence directly usable by
Proposition 3 regardless of how far the domain is enlarged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import UnsupportedLayerError
from repro.lipschitz.norms import operator_norm
from repro.nn.layers import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.network import Network

__all__ = ["LayerLipschitz", "global_lipschitz_bound", "layer_lipschitz_bounds",
           "empirical_lipschitz"]


def _activation_constant(activation) -> float:
    """Scalar Lipschitz constant of an elementwise activation."""
    if activation is None:
        return 1.0
    if isinstance(activation, (ReLU, Tanh)):
        return 1.0
    if isinstance(activation, LeakyReLU):
        return max(1.0, activation.alpha)
    if isinstance(activation, Sigmoid):
        return 0.25
    raise UnsupportedLayerError(
        f"no Lipschitz constant for {type(activation).__name__}"
    )


@dataclass
class LayerLipschitz:
    """Per-block factors of the product bound."""

    block: int
    weight_norm: float
    activation_constant: float

    @property
    def factor(self) -> float:
        return self.weight_norm * self.activation_constant


def layer_lipschitz_bounds(network: Network, ord: float = 2) -> List[LayerLipschitz]:
    """One :class:`LayerLipschitz` per block, in network order."""
    out = []
    for k, block in enumerate(network.blocks()):
        out.append(LayerLipschitz(
            block=k,
            weight_norm=operator_norm(block.dense.weight, ord=ord),
            activation_constant=_activation_constant(block.activation),
        ))
    return out


def global_lipschitz_bound(network: Network, ord: float = 2) -> float:
    """``ℓ = Π_k ||W_k||_p · Lip(act_k)`` -- sound on all of ``X``."""
    ell = 1.0
    for item in layer_lipschitz_bounds(network, ord=ord):
        ell *= item.factor
    return float(ell)


def empirical_lipschitz(network: Network, samples: np.ndarray,
                        ord: float = 2) -> float:
    """Largest observed ``|f(x1)-f(x2)| / |x1-x2|`` over sample pairs.

    A *lower* witness for the true constant -- used by tests to sandwich
    the certified upper bound, never as a certificate itself.
    """
    xs = np.asarray(samples, dtype=np.float64)
    if xs.ndim != 2 or xs.shape[0] < 2:
        raise UnsupportedLayerError("need a (N>=2, d) sample array")
    ys = np.atleast_2d(network.forward(xs))
    if ys.shape[0] != xs.shape[0]:
        ys = ys.T
    best = 0.0
    n = xs.shape[0]
    for i in range(n - 1):
        dx = np.linalg.norm(xs[i + 1:] - xs[i], ord=ord, axis=1)
        dy = np.linalg.norm(np.atleast_2d(ys[i + 1:] - ys[i]), ord=ord, axis=1)
        mask = dx > 1e-12
        if np.any(mask):
            best = max(best, float(np.max(dy[mask] / dx[mask])))
    return best
