"""The lint engine: module contexts, the rule protocol, suppressions.

:mod:`repro.analysis` exists because seven PRs of substrate rest on
conventions that runtime tests can only probe, not prove: verdict-path
code must be deterministic, solver defaults must flow from one config
object, executors must speak wire strings, and shared mutable state must
be touched under its lock.  Each convention is encoded here as a
:class:`Rule` -- a small AST pass over one :class:`ModuleContext` -- so a
violation fails CI the moment it is written instead of surfacing as a
flaky distributed test three PRs later.

Vocabulary:

* :class:`ModuleContext` -- one parsed source file: AST, source lines,
  the dotted module name (which rules use for scoping), an import map
  resolving local names to fully-qualified dotted paths, a parent map
  over the AST, and the file's inline suppressions.
* :class:`Rule` -- a named check.  ``scope`` restricts it to dotted
  module prefixes; ``check(ctx)`` yields :class:`Finding` objects.
* :class:`Finding` -- one violation: rule, file, line, column, message.
* Suppressions -- ``# repro: disable=<rule>[,<rule>...]`` on the
  offending line silences those rules for that line only.  Every
  suppression must *earn its keep*: one that silences nothing is itself
  reported under the ``unused-suppression`` pseudo-rule, so stale
  opt-outs cannot accumulate.

The engine entry points are :func:`lint_source` (one in-memory module --
the fixture-test workhorse) and :func:`lint_paths` (files and directory
trees -- the CLI workhorse).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import AnalysisError

__all__ = [
    "Finding",
    "LintResult",
    "ModuleContext",
    "Rule",
    "UNUSED_SUPPRESSION",
    "lint_paths",
    "lint_source",
]

#: Pseudo-rule under which stale ``# repro: disable=`` comments are
#: reported.  Selectable/ignorable like any real rule, but it has no
#: ``Rule`` class: the engine itself emits it after all rules ran.
UNUSED_SUPPRESSION = "unused-suppression"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_,\s\-]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: " \
               f"{self.message}"


class ModuleContext:
    """One parsed module, with everything a rule needs to reason about it.

    ``module`` is the dotted name rules scope on (derived from the file's
    package position on disk, or supplied explicitly by fixture tests);
    ``path`` is the display path findings carry.
    """

    def __init__(self, source: str, module: str, path: str = "<memory>"):
        self.source = source
        self.module = module
        self.path = path
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AnalysisError(
                f"{path}: cannot parse: {exc}") from exc
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.imports = self._import_map()
        #: ``{line -> set of rule names}`` from inline disable comments.
        self.suppressions: Dict[int, Set[str]] = self._parse_suppressions()

    # ------------------------------------------------------------ structure
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    # -------------------------------------------------------------- imports
    def _import_map(self) -> Dict[str, str]:
        """Local name -> fully-qualified dotted path, from every import
        statement in the module (any nesting level -- lazy function-local
        imports are this codebase's idiom for cycle avoidance)."""
        mapping: Dict[str, str] = {}
        package = self.module.rsplit(".", 1)[0] if "." in self.module \
            else self.module
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mapping[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``; attribute chains
                        # then resolve naturally through qualname().
                        root = alias.name.split(".", 1)[0]
                        mapping.setdefault(root, root)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: climb from this module's package.
                    parts = self.module.split(".")
                    climb = len(parts) - node.level
                    prefix = ".".join(parts[:max(climb, 0)])
                    base = f"{prefix}.{base}".strip(".") if base else prefix
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mapping[local] = f"{base}.{alias.name}" if base \
                        else alias.name
        return mapping

    def qualname(self, node: ast.AST) -> Optional[str]:
        """The fully-qualified dotted name of a ``Name``/``Attribute``
        chain, with the leading segment resolved through the import map
        (``np.random.default_rng`` -> ``numpy.random.default_rng``).
        ``None`` for expressions that are not plain dotted chains."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        parts[0] = self.imports.get(parts[0], parts[0])
        return ".".join(parts)

    def receiver_hint(self, func: ast.AST) -> Optional[str]:
        """For a method call ``<recv>.m(...)``: the terminal identifier of
        the receiver (``self._conn.execute`` -> ``_conn``;
        ``self._remotes[url].execute`` -> ``_remotes``)."""
        if not isinstance(func, ast.Attribute):
            return None
        recv = func.value
        while isinstance(recv, ast.Subscript):
            recv = recv.value
        if isinstance(recv, ast.Attribute):
            return recv.attr
        if isinstance(recv, ast.Name):
            return recv.id
        return None

    # --------------------------------------------------------- suppressions
    def _parse_suppressions(self) -> Dict[int, Set[str]]:
        table: Dict[int, Set[str]] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            names = {name.strip() for name in match.group(1).split(",")}
            table[number] = {name for name in names if name}
        return table


class Rule:
    """One named invariant check.

    Subclasses set ``name``/``description``, optionally restrict
    themselves with ``scope`` (dotted module prefixes; empty = every
    module), and implement :meth:`check` yielding findings.
    """

    name: str = ""
    description: str = ""
    #: Dotted module prefixes the rule applies to (exact module or any
    #: submodule).  Empty tuple: applies everywhere.
    scope: Tuple[str, ...] = ()
    #: Modules exempt even inside the scope (e.g. the defining module of
    #: the convention itself).
    exempt: Tuple[str, ...] = ()

    def applies_to(self, ctx: ModuleContext) -> bool:
        if any(ctx.module == stem or ctx.module.startswith(stem + ".")
               for stem in self.exempt):
            return False
        if not self.scope:
            return True
        return any(ctx.module == stem or ctx.module.startswith(stem + ".")
                   for stem in self.scope)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(rule=self.name, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        table: Dict[str, int] = {}
        for finding in self.findings:
            table[finding.rule] = table.get(finding.rule, 0) + 1
        return dict(sorted(table.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "rules": list(self.rules_run),
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }


# ------------------------------------------------------------------ engine


def _active_rules(select: Optional[Sequence[str]],
                  ignore: Optional[Sequence[str]]) -> List[Rule]:
    from repro.analysis.rules import ALL_RULES

    known = {rule.name for rule in ALL_RULES} | {UNUSED_SUPPRESSION}
    for names, flag in ((select, "--select"), (ignore, "--ignore")):
        unknown = set(names or ()) - known
        if unknown:
            raise AnalysisError(
                f"unknown rule name(s) {sorted(unknown)} in {flag}; "
                f"known: {sorted(known)}")
    rules = [type(rule)() for rule in ALL_RULES]
    if select:
        rules = [rule for rule in rules if rule.name in set(select)]
    if ignore:
        rules = [rule for rule in rules if rule.name not in set(ignore)]
    return rules


def _suppression_active(select: Optional[Sequence[str]],
                        ignore: Optional[Sequence[str]]) -> bool:
    if select is not None and UNUSED_SUPPRESSION not in select:
        return False
    if ignore is not None and UNUSED_SUPPRESSION in ignore:
        return False
    return True


def _lint_context(ctx: ModuleContext, rules: Sequence[Rule],
                  check_suppressions: bool) -> List[Finding]:
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies_to(ctx):
            raw.extend(rule.check(ctx))
    kept: List[Finding] = []
    used: Set[Tuple[int, str]] = set()
    for finding in raw:
        names = ctx.suppressions.get(finding.line, set())
        if finding.rule in names:
            used.add((finding.line, finding.rule))
        else:
            kept.append(finding)
    if check_suppressions:
        active = {rule.name for rule in rules}
        for line, names in sorted(ctx.suppressions.items()):
            for name in sorted(names):
                if name not in active:
                    # Unknown rule name, or a rule not selected this run:
                    # flag the former, skip the latter (we cannot judge
                    # whether an unselected rule would have fired).
                    if name not in _known_rule_names():
                        kept.append(Finding(
                            rule=UNUSED_SUPPRESSION, path=ctx.path,
                            line=line, col=1,
                            message=f"suppression names unknown rule "
                                    f"{name!r}"))
                    continue
                if (line, name) not in used:
                    kept.append(Finding(
                        rule=UNUSED_SUPPRESSION, path=ctx.path, line=line,
                        col=1,
                        message=f"suppression of {name!r} silences "
                                "nothing on this line; remove it"))
    return kept


def _known_rule_names() -> Set[str]:
    from repro.analysis.rules import ALL_RULES

    return {rule.name for rule in ALL_RULES} | {UNUSED_SUPPRESSION}


def lint_source(source: str, module: str, path: str = "<memory>",
                select: Optional[Sequence[str]] = None,
                ignore: Optional[Sequence[str]] = None) -> LintResult:
    """Lint one in-memory module (the fixture-test entry point)."""
    rules = _active_rules(select, ignore)
    ctx = ModuleContext(source, module=module, path=path)
    findings = _lint_context(ctx, rules,
                             _suppression_active(select, ignore))
    findings.sort(key=Finding.sort_key)
    return LintResult(findings=findings, files_scanned=1,
                      rules_run=tuple(rule.name for rule in rules))


def module_name_for(path: Path) -> str:
    """The dotted module name of a file, from its package position: walk
    up while ``__init__.py`` marks the parent as a package."""
    path = path.resolve()
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    for entry in paths:
        path = Path(entry)
        if not path.exists():
            raise AnalysisError(f"no such path: {entry}")
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            yield path
        else:
            raise AnalysisError(f"not a python file: {entry}")


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> LintResult:
    """Lint files and directory trees (the CLI entry point)."""
    rules = _active_rules(select, ignore)
    check = _suppression_active(select, ignore)
    findings: List[Finding] = []
    scanned = 0
    for file_path in iter_python_files(paths):
        scanned += 1
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {file_path}: {exc}") from exc
        ctx = ModuleContext(source, module=module_name_for(file_path),
                            path=str(file_path))
        findings.extend(_lint_context(ctx, rules, check))
    findings.sort(key=Finding.sort_key)
    return LintResult(findings=findings, files_scanned=scanned,
                      rules_run=tuple(rule.name for rule in rules))


def iter_findings(result: LintResult) -> Iterable[Finding]:
    return iter(result.findings)
