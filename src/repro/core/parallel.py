"""Subproblem scheduling and the two time-accounting conventions.

The local checks of Propositions 4/5 are independent, so the paper runs
them in parallel and reports the *maximum* subproblem time (Table I,
footnote 3).  This module provides both conventions over any list of
:class:`~repro.core.propositions.SubproblemReport`:

* ``sequential_time`` -- the sum (a single-worker execution);
* ``parallel_time``   -- the max (unbounded workers);
* ``makespan(workers)`` -- LPT-scheduled makespan for a finite pool,
  interpolating between the two.

``run_parallel`` additionally executes callables on a real thread pool;
per-task wall times are measured inside the workers so the accounting stays
meaningful even when threads contend.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, Tuple

from repro.errors import ReproError
from repro.core.propositions import SubproblemReport

__all__ = ["sequential_time", "parallel_time", "makespan", "run_parallel"]


def sequential_time(subproblems: Sequence[SubproblemReport]) -> float:
    """Total single-worker time."""
    return float(sum(s.elapsed for s in subproblems))


def parallel_time(subproblems: Sequence[SubproblemReport]) -> float:
    """Unbounded-worker time: the slowest subproblem (Table I convention)."""
    if not subproblems:
        return 0.0
    return float(max(s.elapsed for s in subproblems))


def makespan(subproblems: Sequence[SubproblemReport], workers: int) -> float:
    """Longest-processing-time-first makespan on ``workers`` machines."""
    if workers <= 0:
        raise ReproError(f"workers must be positive, got {workers}")
    if not subproblems:
        return 0.0
    loads = [0.0] * min(workers, len(subproblems))
    heapq.heapify(loads)
    for t in sorted((s.elapsed for s in subproblems), reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + t)
    return float(max(loads))


def run_parallel(tasks: Sequence[Tuple[str, Callable[[], object]]],
                 workers: int = 4) -> List[Tuple[str, object, float]]:
    """Execute named thunks on a thread pool, timing each inside its worker.

    Returns ``[(name, result, elapsed), ...]`` in submission order.  LP
    solving in HiGHS releases the GIL, so layer checks genuinely overlap.
    """
    if workers <= 0:
        raise ReproError(f"workers must be positive, got {workers}")

    def timed(thunk: Callable[[], object]) -> Tuple[object, float]:
        t0 = time.perf_counter()
        value = thunk()
        return value, time.perf_counter() - t0

    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(timed, thunk) for _, thunk in tasks]
        results = []
        for (name, _), future in zip(tasks, futures):
            value, elapsed = future.result()
            results.append((name, value, elapsed))
    return results
