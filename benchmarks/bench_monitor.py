"""Runtime-monitor ablation: buffer size vs enlargement events.

The paper records ``Din`` as observed feature bounds "together with
additional buffers".  The buffer trades false alarms against blindness:
too small and benign operation triggers spurious verification tasks, too
large and genuine drift goes unnoticed (and Proposition 3's ``κ`` shrinks
to zero).  This bench sweeps the buffer under a nominal and a drifted
scenario and benchmarks monitor throughput.
"""

import numpy as np
import pytest

from repro.monitor import BoxMonitor
from repro.vehicle import DriveConfig, VehiclePlatform


def _drive_with(bundle, monitor, brightness, disturbance, seed=0):
    platform = VehiclePlatform(bundle.track, bundle.camera, bundle.perception)
    platform.drive(DriveConfig(steps=40, brightness=brightness,
                               disturbance_std=disturbance, seed=seed),
                   monitor=monitor)
    return monitor


def test_report_buffer_sweep(vehicle_bundle, capsys):
    lines = ["\nMonitor buffer sweep (40 nominal steps / 40 drifted steps)",
             f"  {'buffer':>7} | {'nominal OOD':>11} | {'drift OOD':>9} | "
             f"{'drift kappa':>11}"]
    nominal_counts, drift_counts = [], []
    for buffer in (0.0, 0.02, 0.05, 0.1, 0.3):
        nominal = BoxMonitor(buffer=buffer, lower_floor=0.0)
        nominal.calibrate(vehicle_bundle.features)
        _drive_with(vehicle_bundle, nominal, 1.0, 0.0)
        drifted = BoxMonitor(buffer=buffer, lower_floor=0.0)
        drifted.calibrate(vehicle_bundle.features)
        _drive_with(vehicle_bundle, drifted, 1.9, 0.9)
        nominal_counts.append(nominal.out_of_bound_count)
        drift_counts.append(drifted.out_of_bound_count)
        lines.append(
            f"  {buffer:>7.2f} | {nominal.out_of_bound_count:>11} | "
            f"{drifted.out_of_bound_count:>9} | {drifted.kappa():>11.4g}")
    with capsys.disabled():
        print("\n".join(lines))
    # Larger buffers never create more events.
    assert nominal_counts == sorted(nominal_counts, reverse=True)
    assert drift_counts == sorted(drift_counts, reverse=True)
    # The drifted scenario must out-trigger the nominal one somewhere.
    assert any(d > n for d, n in zip(drift_counts, nominal_counts))


def test_enlarged_domain_feeds_svudc(vehicle_bundle):
    """The monitor's enlarged box is a valid SVuDC input domain."""
    monitor = BoxMonitor(buffer=0.02, lower_floor=0.0)
    monitor.calibrate(vehicle_bundle.features)
    _drive_with(vehicle_bundle, monitor, 1.9, 0.9)
    enlarged = monitor.enlarged_box()
    assert enlarged.contains_box(monitor.din)
    if monitor.out_of_bound_count:
        assert monitor.kappa() > 0


def test_benchmark_observe_throughput(vehicle_bundle, benchmark):
    monitor = BoxMonitor(buffer=0.05, lower_floor=0.0)
    monitor.calibrate(vehicle_bundle.features)
    feature = vehicle_bundle.features[0]

    benchmark(lambda: monitor.observe(feature))


def test_benchmark_calibration(vehicle_bundle, benchmark):
    benchmark(lambda: BoxMonitor(buffer=0.05, lower_floor=0.0).calibrate(
        vehicle_bundle.features))
