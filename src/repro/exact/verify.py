"""High-level exact verification API used by the proposition checkers.

Two primitives cover everything the continuous-verification core needs:

* :func:`output_range_exact` -- the exact per-output min/max box of a
  (sub)network over a box of inputs (branch and bound per output neuron).
* :func:`check_containment` -- decide ``∀x ∈ box : f(x) ∈ target`` where
  ``target`` is a box; this *is* the paper's local reuse condition with
  ``target = S_{i+1}`` (Propositions 1, 2, 4, 5) or ``target = Dout``.

``check_containment`` supports three methods mirroring Fig. 1's insight:
``"symbolic"`` (cheap one-shot abstract transformer, may lose), ``"split"``
(abstraction with refinement), and ``"exact"`` (complete branch and bound);
``"auto"`` cascades cheap-to-exact, stopping at the first conclusive answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import DomainError
from repro.api.config import (
    DEFAULT_MAX_BOXES,
    DEFAULT_METHOD,
    DEFAULT_NODE_LIMIT,
    DEFAULT_TOL,
    DEFAULT_WORKERS,
    VerifyConfig,
    warn_legacy,
)
from repro.domains.box import Box
from repro.domains.propagate import output_box
from repro.exact.bab import (
    BAB_NODE_LIMIT,
    BAB_REFUTED,
    BaBSolver,
)
from repro.exact.splitting import check_containment_split
from repro.nn.network import Network

__all__ = ["ContainmentResult", "check_containment", "output_range_exact"]

METHODS = ("symbolic", "split", "exact", "auto")


@dataclass
class ContainmentResult:
    """Verdict of a containment check.

    ``holds`` is ``True`` (proved), ``False`` (refuted with a concrete
    ``counterexample``), or ``None`` (inconclusive -- only possible for the
    incomplete methods or when the exact solver hits its node limit).
    ``violation`` quantifies how far outside the target the analysis got
    (0 when proved).  ``elapsed`` is wall-clock seconds, the quantity the
    Table I reproduction aggregates.
    """

    holds: Optional[bool]
    method: str
    counterexample: Optional[np.ndarray] = None
    violation: float = 0.0
    elapsed: float = 0.0
    lp_solves: int = 0
    nodes: int = 0
    detail: str = ""

    @property
    def conclusive(self) -> bool:
        return self.holds is not None


def _check_symbolic(network: Network, box: Box, target: Box) -> ContainmentResult:
    out = output_box(network, box, domain="symbolic")
    if target.contains_box(out):
        return ContainmentResult(holds=True, method="symbolic")
    return ContainmentResult(
        holds=None,
        method="symbolic",
        violation=target.containment_violation(out),
        detail="symbolic over-approximation exceeds target",
    )


def _check_split(network: Network, box: Box, target: Box,
                 max_boxes: int) -> ContainmentResult:
    res = check_containment_split(network, box, target, max_boxes=max_boxes)
    holds = {"safe": True, "unsafe": False, "unknown": None}[res.status]
    return ContainmentResult(
        holds=holds,
        method="split",
        counterexample=res.counterexample,
        nodes=res.boxes_processed,
        detail=f"split status={res.status}",
    )


def _check_exact(network: Network, box: Box, target: Box,
                 config: VerifyConfig) -> ContainmentResult:
    solver = BaBSolver.from_config(network, box, config)
    lp_total = 0
    node_total = 0
    d = network.output_dim
    for i in range(d):
        c = np.zeros(d)
        c[i] = 1.0
        hi = float(target.upper[i])
        lo = float(target.lower[i])
        if np.isfinite(hi):
            # Status discipline (see BaBResult.optimum): only REFUTED,
            # NODE_LIMIT and the sound ``upper_bound`` are consumed here --
            # never the off-optimal "optimum".
            res = solver.maximize(c, threshold=hi)
            lp_total += res.lp_solves
            node_total += res.nodes
            if res.status == BAB_REFUTED:
                return ContainmentResult(
                    holds=False, method="exact", counterexample=res.witness,
                    violation=res.incumbent - hi, lp_solves=lp_total,
                    nodes=node_total, detail=f"output {i} exceeds upper bound",
                )
            if res.status == BAB_NODE_LIMIT:
                return ContainmentResult(
                    holds=None, method="exact", lp_solves=lp_total,
                    nodes=node_total, detail=f"node limit on output {i} (max)",
                )
        if np.isfinite(lo):
            res = solver.minimize(c, threshold=lo)
            lp_total += res.lp_solves
            node_total += res.nodes
            if res.status == BAB_REFUTED:
                return ContainmentResult(
                    holds=False, method="exact", counterexample=res.witness,
                    violation=lo - res.incumbent, lp_solves=lp_total,
                    nodes=node_total, detail=f"output {i} below lower bound",
                )
            if res.status == BAB_NODE_LIMIT:
                return ContainmentResult(
                    holds=None, method="exact", lp_solves=lp_total,
                    nodes=node_total, detail=f"node limit on output {i} (min)",
                )
    return ContainmentResult(holds=True, method="exact",
                             lp_solves=lp_total, nodes=node_total)


def _check_containment(network: Network, input_box: Box, target: Box,
                       method: str = DEFAULT_METHOD,
                       config: Optional[VerifyConfig] = None) -> ContainmentResult:
    """Internal containment decision (no deprecation): the engine path.

    ``config.workers > 1`` runs the exact branch-and-bound legs as the
    parallel frontier search (:mod:`repro.exact.parallel_bab`) -- same
    verdicts, concurrent node LPs.
    """
    config = config or VerifyConfig()
    if method not in METHODS:
        raise DomainError(f"unknown method {method!r}; choose from {METHODS}")
    if target.dim != network.output_dim:
        raise DomainError(
            f"target dim {target.dim} != network output dim {network.output_dim}"
        )
    start = time.perf_counter()
    if method == "symbolic":
        result = _check_symbolic(network, input_box, target)
    elif method == "split":
        result = _check_split(network, input_box, target, config.max_boxes)
    elif method == "exact":
        result = _check_exact(network, input_box, target, config)
    else:  # auto: cheap first, exact as the decider
        result = _check_symbolic(network, input_box, target)
        if not result.conclusive:
            result = _check_exact(network, input_box, target, config)
            result.method = "auto(exact)"
    result.elapsed = time.perf_counter() - start
    return result


def _output_range_exact(network: Network, input_box: Box,
                        config: Optional[VerifyConfig] = None):
    """Internal exact output range: ``(box, lp_solves, nodes)``.

    Runs one branch-and-bound maximisation and minimisation per output
    neuron, sharing the encoding.  Raises :class:`DomainError` if any solve
    hits the node limit (callers wanting partial answers use ``BaBSolver``).
    """
    solver = BaBSolver.from_config(network, input_box,
                                   config or VerifyConfig())
    d = network.output_dim
    lows: List[float] = []
    highs: List[float] = []
    lp_solves = 0
    nodes = 0
    for i in range(d):
        c = np.zeros(d)
        c[i] = 1.0
        hi = solver.maximize(c)
        lo = solver.minimize(c)
        lp_solves += hi.lp_solves + lo.lp_solves
        nodes += hi.nodes + lo.nodes
        if hi.status == BAB_NODE_LIMIT or lo.status == BAB_NODE_LIMIT:
            raise DomainError(
                f"branch-and-bound node limit reached on output {i}; "
                "raise node_limit or shrink the input box"
            )
        # ``optimum`` (not ``upper_bound``) so an unexpected off-optimal
        # status raises instead of silently storing a non-tight range.
        highs.append(hi.optimum)
        lows.append(lo.optimum)
    return Box(np.asarray(lows), np.asarray(highs)), lp_solves, nodes


def check_containment(network: Network, input_box: Box, target: Box,
                      method: str = DEFAULT_METHOD,
                      node_limit: int = DEFAULT_NODE_LIMIT,
                      max_boxes: int = DEFAULT_MAX_BOXES,
                      tol: float = DEFAULT_TOL,
                      workers: int = DEFAULT_WORKERS) -> ContainmentResult:
    """Deprecated shim: decide ``∀x ∈ input_box : f(x) ∈ target``.

    Use :class:`repro.api.ContainmentSpec` through the engine instead.
    """
    warn_legacy("check_containment", "ContainmentSpec")
    from repro.api.engine import VerificationEngine
    from repro.api.specs import ContainmentSpec

    config = VerifyConfig(node_limit=node_limit, max_boxes=max_boxes,
                          tol=tol, workers=workers)
    return VerificationEngine(config).verify(
        ContainmentSpec(network=network, input_box=input_box, target=target,
                        method=method)).result


def output_range_exact(network: Network, input_box: Box,
                       node_limit: int = DEFAULT_NODE_LIMIT,
                       tol: float = DEFAULT_TOL,
                       workers: int = DEFAULT_WORKERS) -> Box:
    """Deprecated shim: exact elementwise output range over ``input_box``.

    Use :class:`repro.api.OutputRangeSpec` through the engine instead.
    """
    warn_legacy("output_range_exact", "OutputRangeSpec")
    from repro.api.engine import VerificationEngine
    from repro.api.specs import OutputRangeSpec

    config = VerifyConfig(node_limit=node_limit, tol=tol, workers=workers)
    return VerificationEngine(config).verify(
        OutputRangeSpec(network=network, input_box=input_box)).output_range
