"""Python client for the verification service's HTTP API.

:class:`ServeClient` is deliberately stdlib-only (``http.client``) so any
process with this package importable -- or any other HTTP speaker
following ``docs/wire_protocol.md`` -- can drive a server:

    >>> client = ServeClient("http://127.0.0.1:8717")
    >>> job = client.submit(spec)                 # Spec or wire dict
    >>> record = client.wait(job["job_id"])
    >>> verdict = client.verdict(job["job_id"])   # a repro.api Verdict
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional
from urllib.parse import quote, urlsplit

from repro.errors import (
    QueueFullError,
    RemoteProtocolError,
    RemoteUnreachableError,
    ServeError,
)
from repro.serve.store import TERMINAL_STATES

__all__ = ["ServeClient"]

#: Transport-level failures, already mapped onto the taxonomy by
#: :meth:`ServeClient._request_once`.  Worth one same-request retry -- but
#: only for idempotent GETs: a resend after these may re-run a
#: non-idempotent POST.
_RETRYABLE_NETWORK_ERRORS = (RemoteUnreachableError, RemoteProtocolError)


class ServeClient:
    """Talk to one ``repro serve`` endpoint."""

    def __init__(self, base_url: str = "http://127.0.0.1:8717",
                 timeout: float = 30.0):
        parts = urlsplit(base_url if "//" in base_url
                         else "http://" + base_url)
        if parts.scheme not in ("http", ""):
            raise ServeError(
                f"only http:// endpoints are supported, got {base_url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8717
        self.timeout = timeout

    # -------------------------------------------------------------- plumbing
    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None) -> Dict:
        attempts = 2 if method == "GET" else 1
        for attempt in range(1, attempts + 1):
            try:
                return self._request_once(method, path, payload)
            except _RETRYABLE_NETWORK_ERRORS:
                # ServeError/QueueFullError are *not* in this tuple: a
                # parsed server response must never be retried here.
                if attempt == attempts:
                    raise
                time.sleep(0.05)

    def _request_once(self, method: str, path: str,
                      payload: Optional[Dict] = None) -> Dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload, allow_nan=False)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (ConnectionError, TimeoutError, OSError) as exc:
            # The machine (or its server process) is gone: refused/reset
            # connections, socket timeouts, DNS failures.  One structured
            # class so classify_failure sees a transient, not an unknown
            # URLError in the default bucket.  RemoteDisconnected is a
            # ConnectionResetError, so a mid-request death lands here too.
            raise RemoteUnreachableError(
                f"{self.host}:{self.port} unreachable for {method} {path}: "
                f"{type(exc).__name__}: {exc}") from exc
        except http.client.HTTPException as exc:
            # The connection worked but the response was torn (truncated
            # body, bad status line): the server answered garbage, it did
            # not vanish.
            raise RemoteProtocolError(
                f"{self.host}:{self.port} sent a torn HTTP response for "
                f"{method} {path}: {type(exc).__name__}: {exc}") from exc
        finally:
            conn.close()
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise RemoteProtocolError(
                f"{self.host}:{self.port} returned unparseable JSON for "
                f"{method} {path}: {exc}") from None
        if response.status == 503:
            # Backpressure: surface the server's Retry-After so callers
            # can actually honour it instead of hammering the endpoint.
            try:
                retry_after = float(
                    response.getheader("Retry-After")
                    or data.get("retry_after") or 1.0)
            except (TypeError, ValueError):
                retry_after = 1.0
            raise QueueFullError(
                data.get("error", f"{method} {path} failed (503)"),
                retry_after=retry_after)
        if response.status >= 400:
            raise ServeError(
                data.get("error",
                         f"{method} {path} failed ({response.status})"))
        return data

    # ------------------------------------------------------------------ API
    def submit(self, spec, config=None, priority: int = 0,
               timeout: Optional[float] = None,
               deadline: Optional[float] = None) -> Dict:
        """Submit a Spec (object or wire dict); returns the job record.
        ``deadline`` is the total client budget in seconds from now (the
        server never starts work past it).  Raises
        :class:`~repro.errors.QueueFullError` (with ``retry_after``) when
        the server sheds load."""
        from repro.api.config import VerifyConfig
        from repro.api.specs import Spec, spec_to_dict

        document: Dict = {
            "spec": spec_to_dict(spec) if isinstance(spec, Spec) else spec,
        }
        if config is not None:
            document["config"] = (config.to_dict()
                                  if isinstance(config, VerifyConfig)
                                  else config)
        if priority:
            document["priority"] = int(priority)
        if timeout is not None:
            document["timeout"] = float(timeout)
        if deadline is not None:
            document["deadline"] = float(deadline)
        return self._request("POST", "/jobs", document)

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{quote(job_id)}")

    def jobs(self, state: Optional[str] = None,
             limit: Optional[int] = None) -> List[Dict]:
        filters = []
        if state:
            filters.append(f"state={quote(state)}")
        if limit is not None:
            filters.append(f"limit={int(limit)}")
        path = "/jobs" + ("?" + "&".join(filters) if filters else "")
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> Dict:
        return self._request("DELETE", f"/jobs/{quote(job_id)}")

    def health(self) -> Dict:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/stats")

    def register_worker(self, url: str) -> Dict:
        """Register (or heartbeat) a worker on a coordinator; returns the
        worker's registry record.  Idempotent: re-registering refreshes
        the liveness TTL, which is exactly what a heartbeat is."""
        return self._request("POST", "/workers", {"url": url})

    def workers(self) -> List[Dict]:
        """The coordinator's shard registry (one record per worker)."""
        return self._request("GET", "/workers")["workers"]

    def wait(self, job_id: str, timeout: Optional[float] = 60.0,
             poll: float = 0.05, max_poll: float = 1.0,
             transport_retries: int = 5) -> Dict:
        """Poll until the job is terminal; returns its final record.

        The interval backs off exponentially from ``poll`` to ``max_poll``
        (capped), so short jobs return fast while long solves do not
        busy-hammer the server with a fixed-rate poll loop.

        Two failure modes are kept distinct: a job that *finished badly*
        is still returned as its terminal record (the caller inspects
        ``state``/``error``), while a server that *went away mid-poll* --
        more than ``transport_retries`` consecutive transport failures --
        raises :class:`~repro.serve.resilience.ExecutorUnavailableError`
        carrying the last attempt's context.  The overall ``timeout`` is
        honoured on both paths, so a dead server can never turn a bounded
        wait into an infinite poll loop.
        """
        from repro.serve.resilience import ExecutorUnavailableError

        deadline = None if timeout is None else time.monotonic() + timeout
        delay = poll
        consecutive_transport_failures = 0
        state = "unknown"
        while True:
            try:
                record = self.job(job_id)
            except _RETRYABLE_NETWORK_ERRORS as exc:
                consecutive_transport_failures += 1
                if consecutive_transport_failures > transport_retries:
                    raise ExecutorUnavailableError(
                        f"server at {self.host}:{self.port} went away "
                        f"while polling job {job_id} (last seen state "
                        f"{state!r}): {consecutive_transport_failures} "
                        f"consecutive transport failures, last: "
                        f"{type(exc).__name__}: {exc}") from exc
            else:
                consecutive_transport_failures = 0
                if "state" not in record:
                    # A half-parsed/foreign payload must not masquerade
                    # as a job record.
                    raise RemoteProtocolError(
                        f"server at {self.host}:{self.port} returned a "
                        f"document without a job state for {job_id}: "
                        f"keys {sorted(record)[:8]}")
                state = record["state"]
                if state in TERMINAL_STATES:
                    return record
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state} after {timeout:g}s")
            sleep_for = delay
            if deadline is not None:
                sleep_for = min(sleep_for, max(deadline - time.monotonic(),
                                               0.0))
            time.sleep(sleep_for)
            delay = min(delay * 1.6, max_poll)

    def verdict(self, job_id: str):
        """The finished job's verdict as a :class:`repro.api` object."""
        from repro.api.serialize import verdict_from_dict

        record = self.job(job_id)
        if record.get("verdict") is None:
            raise ServeError(
                f"job {job_id} has no verdict (state {record['state']!r}"
                + (f", error {record['error']!r}" if record.get("error")
                   else "") + ")")
        return verdict_from_dict(record["verdict"])
