"""Subproblem scheduling and the two time-accounting conventions.

The local checks of Propositions 4/5 are independent, so the paper runs
them in parallel and reports the *maximum* subproblem time (Table I,
footnote 3).  This module provides both conventions over any list of
:class:`~repro.core.propositions.SubproblemReport`:

* ``sequential_time`` -- the sum (a single-worker execution);
* ``parallel_time``   -- the max (unbounded workers);
* ``makespan(workers)`` -- LPT-scheduled makespan for a finite pool,
  interpolating between the two.

``run_parallel`` additionally executes callables on a real thread pool;
per-task wall times are measured inside the workers so the accounting stays
meaningful even when threads contend.  Calls share one lazily-created
module-level pool sized from ``os.cpu_count()`` -- spinning up fresh
threads per call costs more than many of the subproblems themselves -- with
a per-call semaphore enforcing the requested ``workers`` concurrency.
Re-entrant calls and requests wider than the machine fall back to a
private per-call pool so they are never starved or silently narrowed.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.core.propositions import SubproblemReport

__all__ = ["sequential_time", "parallel_time", "makespan", "run_parallel",
           "available_width", "effective_workers", "reserved_width"]

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_LOCK = threading.Lock()
_POOL_THREAD_PREFIX = "repro-subproblem"
_POOL_SIZE = max(1, os.cpu_count() or 1)
#: Shared-pool width reserved by in-flight run_parallel calls (guarded by
#: _POOL_LOCK).  Every call reserves its full concurrent width up front, so
#: the sum of reservations never exceeds the pool and no admitted task can
#: queue behind another call's blocked tasks.
_RESERVED = 0


def _shared_pool() -> ThreadPoolExecutor:
    """The module-level executor, created on first use."""
    global _POOL
    if _POOL is None:
        with _POOL_LOCK:
            if _POOL is None:
                _POOL = ThreadPoolExecutor(
                    max_workers=_POOL_SIZE,
                    thread_name_prefix=_POOL_THREAD_PREFIX)
    return _POOL


def effective_workers(workers: int) -> int:
    """The concurrency the shared pool can grant ``workers`` without the
    private per-call fallback: 1 from inside a pool worker (nested calls
    divert anyway), else at most the machine width.  Per-round callers
    (the frontier search) clamp with this so a too-wide request does not
    spin up and tear down a private pool every round."""
    if workers <= 1:
        return 1
    if threading.current_thread().name.startswith(_POOL_THREAD_PREFIX):
        return 1
    return min(int(workers), _POOL_SIZE)


def reserved_width() -> int:
    """Shared-pool width currently reserved by in-flight ``run_parallel``
    calls.  Monitoring/regression hook: must read 0 whenever no call is in
    flight -- a nonzero idle value means a reservation leaked and the shared
    pool will be (silently) bypassed by every future full-width call."""
    with _POOL_LOCK:
        return _RESERVED


def available_width() -> int:
    """Shared-pool width a new ``run_parallel`` call could reserve *right
    now*.  A snapshot, not a promise -- another caller may take the width
    before you use it -- but per-round callers clamp with it so that, while
    someone else holds the pool, they degrade to inline execution instead
    of spinning up a private pool every round."""
    with _POOL_LOCK:
        return max(0, _POOL_SIZE - _RESERVED)


def sequential_time(subproblems: Sequence[SubproblemReport]) -> float:
    """Total single-worker time."""
    return float(sum(s.elapsed for s in subproblems))


def parallel_time(subproblems: Sequence[SubproblemReport]) -> float:
    """Unbounded-worker time: the slowest subproblem (Table I convention)."""
    if not subproblems:
        return 0.0
    return float(max(s.elapsed for s in subproblems))


def makespan(subproblems: Sequence[SubproblemReport], workers: int) -> float:
    """Longest-processing-time-first makespan on ``workers`` machines."""
    if workers <= 0:
        raise ReproError(f"workers must be positive, got {workers}")
    if not subproblems:
        return 0.0
    loads = [0.0] * min(workers, len(subproblems))
    heapq.heapify(loads)
    for t in sorted((s.elapsed for s in subproblems), reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + t)
    return float(max(loads))


def run_parallel(tasks: Sequence[Tuple[str, Callable[[], object]]],
                 workers: int = 4) -> List[Tuple[str, object, float]]:
    """Execute named thunks on a thread pool, timing each inside its worker.

    Returns ``[(name, result, elapsed), ...]`` in submission order.  LP
    solving in HiGHS releases the GIL, so layer checks genuinely overlap.
    """
    global _RESERVED
    if workers <= 0:
        raise ReproError(f"workers must be positive, got {workers}")

    def timed(thunk: Callable[[], object]) -> Tuple[object, float]:
        t0 = time.perf_counter()
        value = thunk()
        return value, time.perf_counter() - t0

    # This call occupies at most min(workers, len(tasks)) pool threads at
    # once (submission is gated below).  Reserve that width atomically with
    # the admission decision; a call the shared pool cannot host in full --
    # re-entrant from a pool task, wider than the machine, or arriving while
    # other calls hold the remaining width -- gets the old per-call pool, so
    # its tasks can never queue behind (and deadlock on) blocked strangers
    # or ancestors.  Private pools carry the same thread-name prefix so
    # arbitrarily deep nesting keeps diverting here.
    width = min(workers, len(tasks))
    nested = threading.current_thread().name.startswith(_POOL_THREAD_PREFIX)
    admitted = False
    if not nested and workers <= _POOL_SIZE:
        with _POOL_LOCK:
            if _RESERVED + width <= _POOL_SIZE:
                _RESERVED += width
                admitted = True
    if not admitted:
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix=_POOL_THREAD_PREFIX) as pool:
            futures = [pool.submit(timed, thunk) for _, thunk in tasks]
            return [(name, *future.result())
                    for (name, _), future in zip(tasks, futures)]

    # From here the reservation is held: *everything* below -- semaphore and
    # pool construction included -- runs under the finally that returns it,
    # so no exception path (worker raise, interrupt during submission, pool
    # failure) can leak width and starve future callers off the shared pool.
    futures = []
    try:
        # The semaphore gates *submission* (released by the worker on
        # completion), so queued tasks never occupy pool threads and the
        # reservation bound holds.
        gate = threading.BoundedSemaphore(workers)

        def gated(thunk: Callable[[], object]) -> Tuple[object, float]:
            try:
                return timed(thunk)
            finally:
                gate.release()

        pool = _shared_pool()
        for _, thunk in tasks:
            gate.acquire()
            try:
                futures.append(pool.submit(gated, thunk))
            except BaseException:
                gate.release()  # submit failed: the slot was never taken
                raise
        results = []
        for (name, _), future in zip(tasks, futures):
            value, elapsed = future.result()
            results.append((name, value, elapsed))
        return results
    finally:
        # Match the per-call pool's shutdown barrier on *every* exit path
        # (including interrupts): no task of this call outlives it, and the
        # reservation is only returned once its threads are actually free.
        futures_wait(futures)
        with _POOL_LOCK:
            _RESERVED -= width
