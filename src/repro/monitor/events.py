"""Event records produced by the runtime monitor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["EnlargementEvent", "summarize_events"]


@dataclass
class EnlargementEvent:
    """One out-of-bound observation.

    ``excess`` is how far (in feature units) the worst dimension escaped the
    calibrated box; ``dimensions`` lists the offending feature indices.
    ``nonfinite`` marks observations rejected because some feature was NaN
    or infinite: they count as out-of-bound (``excess`` is ``inf``,
    ``dimensions`` the non-finite indices) but are *excluded* from the
    enlargement record -- a NaN/inf must never widen ``Din ∪ Δin``.
    """

    step: int
    excess: float
    dimensions: List[int] = field(default_factory=list)
    nonfinite: bool = False


def summarize_events(events: List[EnlargementEvent]) -> dict:
    """Aggregate statistics used by reports and the monitor benchmark."""
    if not events:
        return {"count": 0, "max_excess": 0.0, "dimensions_touched": 0,
                "nonfinite": 0}
    touched = set()
    for event in events:
        touched.update(event.dimensions)
    finite_excesses = [e.excess for e in events if not e.nonfinite]
    return {
        "count": len(events),
        "max_excess": max(finite_excesses) if finite_excesses else 0.0,
        "dimensions_touched": len(touched),
        "nonfinite": sum(1 for e in events if e.nonfinite),
    }
