"""Baseline from-scratch verification, producing reusable proof artifacts.

This is the "original problem" side of every Table I ratio: verify
``φ^f_{Din,Dout}`` with no prior knowledge, and persist the proof artifacts
(state abstractions, Lipschitz constant, optional network abstraction) for
the continuous-verification round that follows.

The verification itself mirrors the paper's setup: a ReluVal-style layered
abstraction provides candidate state abstractions; when its output layer
containment closes, the layered proof stands.  The ``rigor`` knob controls
how much additional exact work the baseline performs:

* ``"abstract"``   -- layered abstraction only (fast, may be inconclusive);
* ``"threshold"``  -- abstract first, exact containment check as decider;
* ``"range"``      -- additionally computes the *tight* exact output range
  (the expensive complete analysis whose cost dominates the original
  verification time, as with the exact tools the paper builds on).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import ArtifactError
from repro.domains.box import Box
from repro.domains.propagate import inductive_states, propagate_network
from repro.exact.verify import check_containment, output_range_exact
from repro.lipschitz.bounds import global_lipschitz_bound
from repro.core.artifacts import (
    LipschitzCertificate,
    ProofArtifacts,
    StateAbstractions,
)
from repro.core.problem import VerificationProblem

__all__ = ["BaselineOutcome", "verify_from_scratch"]

RIGOR_LEVELS = ("abstract", "threshold", "range")


@dataclass
class BaselineOutcome:
    """Result of a from-scratch verification run."""

    holds: Optional[bool]
    artifacts: ProofArtifacts
    elapsed: float
    detail: str = ""


def verify_from_scratch(problem: VerificationProblem,
                        domain: str = "inductive",
                        state_buffer: float = 0.02,
                        rigor: str = "range",
                        lipschitz_ord: float = 2,
                        with_network_abstraction: bool = False,
                        netabs_groups: int = 2,
                        netabs_margin: float = 0.0,
                        node_limit: int = 20000,
                        workers: int = 1) -> BaselineOutcome:
    """Verify ``problem`` from scratch and assemble :class:`ProofArtifacts`.

    ``domain="inductive"`` (default) generates state abstractions with the
    inductive box chain plus a relative ``state_buffer`` -- the only form
    whose single-layer chain conditions hold by construction, as the reuse
    propositions assume.  Other domain names (``"symbolic"``, ``"zonotope"``,
    ``"box"``) store that domain's concretised per-layer boxes instead;
    these are tighter but generally *not* inductive, which the domain
    ablation benchmark quantifies.
    """
    if rigor not in RIGOR_LEVELS:
        raise ArtifactError(f"rigor must be one of {RIGOR_LEVELS}, got {rigor!r}")
    network, din, dout = problem.network, problem.din, problem.dout
    started = time.perf_counter()

    # 1. Layered state abstraction (the ReluVal-style proof attempt).
    if domain == "inductive":
        boxes = inductive_states(network, din, buffer_rel=state_buffer)
    else:
        boxes = propagate_network(network, din, domain=domain)
    states = StateAbstractions(boxes=boxes, domain=domain)
    layered_proof = dout.contains_box(states.output_abstraction)

    holds: Optional[bool] = True if layered_proof else None
    detail = "layered abstraction closed" if layered_proof else ""

    # 2. Exact work according to the rigor level.
    if rigor in ("threshold", "range") and holds is None:
        res = check_containment(network, din, dout, method="exact",
                                node_limit=node_limit, workers=workers)
        holds = res.holds
        detail = f"exact containment: {res.detail or res.holds}"
    output_range: Optional[Box] = None
    if rigor == "range" and holds is not False:
        # The tight certified output range is stored as a *separate*
        # artifact: it is a valid output abstraction (contains f(Din)) and
        # makes Proposition 3 much stronger, but it must not replace S_n
        # inside the layered proof -- that would break the inductive chain
        # property Propositions 1/2 re-enter.
        output_range = output_range_exact(network, din, node_limit=node_limit,
                                          workers=workers)
        if not dout.contains_box(output_range):
            holds = False
            detail = f"exact range {output_range} escapes Dout"
        else:
            holds = True
            detail = detail or f"exact range {output_range} inside Dout"

    # 3. Companion artifacts.
    lipschitz = LipschitzCertificate(
        ell=global_lipschitz_bound(network, ord=lipschitz_ord),
        ord=lipschitz_ord,
    )
    netabs = None
    notes = {}
    if with_network_abstraction:
        from repro.netabs.abstraction import build_abstraction

        netabs = build_abstraction(network, din, num_groups=netabs_groups,
                                   margin=netabs_margin)
        abs_method = domain if domain in ("box", "symbolic", "zonotope") \
            else "symbolic"
        abs_bounds = netabs.output_bounds(din, method=abs_method)
        notes["netabs_proves_safety"] = bool(dout.contains_box(abs_bounds))

    elapsed = time.perf_counter() - started
    artifacts = ProofArtifacts(
        problem=problem,
        states=states,
        lipschitz=lipschitz,
        network_abstraction=netabs,
        output_range=output_range,
        states_prove_safety=bool(layered_proof),
        original_time=elapsed,
        notes=notes,
    )
    return BaselineOutcome(holds=holds, artifacts=artifacts, elapsed=elapsed,
                           detail=detail)
