"""Decomposition-granularity ablation (Propositions 4 vs 5 vs full).

The paper decomposes the network into two parts and reports the maximum
subproblem time under parallel execution.  This ablation sweeps the
granularity -- every boundary reused (Prop 4), a single middle cut
(Prop 5, the paper's choice), coarser cuts, and no reuse at all (full
re-verification) -- and reports the parallel (max-subproblem) and
sequential (sum) costs of each, on the vehicle SVbTV workload.
"""

import pytest

from benchmarks.common import STATE_BUFFER
from repro.core import check_prop4, check_prop5, verify_from_scratch


def _strategies(net):
    n = net.num_blocks
    out = {"prop4 (every layer)": ("prop4", None)}
    if n >= 3:
        out[f"prop5 (cut at {n // 2})"] = ("prop5", [max(1, n // 2)])
    if n >= 4:
        out["prop5 (cuts 1,2)"] = ("prop5", [1, 2])
    out["full re-verification"] = ("full", None)
    return out


def _run(bundle, name, kind, alphas):
    artifacts = bundle.baselines[0].artifacts
    new_net = bundle.nets[1]
    if kind == "prop4":
        res = check_prop4(artifacts, new_net, method="exact", node_limit=20000)
        return res.holds, res.max_subproblem_time, res.total_subproblem_time
    if kind == "prop5":
        res = check_prop5(artifacts, new_net, alphas=alphas, method="exact",
                          node_limit=20000)
        return res.holds, res.max_subproblem_time, res.total_subproblem_time
    # "No reuse" means redoing what the original verification did: the
    # complete, artifact-producing run (not a one-shot threshold check).
    res = verify_from_scratch(bundle.problem(1), state_buffer=STATE_BUFFER,
                              rigor="range", node_limit=120000)
    return res.holds, res.elapsed, res.elapsed


def test_all_granularities_prove_safety(vehicle_bundle):
    for name, (kind, alphas) in _strategies(vehicle_bundle.nets[1]).items():
        holds, _, _ = _run(vehicle_bundle, name, kind, alphas)
        assert holds is True, name


def test_report_decomposition(vehicle_bundle, capsys):
    lines = ["\nDecomposition granularity (SVbTV, version 1 -> 2)",
             f"  {'strategy':>24} | {'max subproblem':>14} | {'sequential':>10}"]
    results = {}
    for name, (kind, alphas) in _strategies(vehicle_bundle.nets[1]).items():
        holds, par, seq = _run(vehicle_bundle, name, kind, alphas)
        results[name] = (par, seq)
        lines.append(f"  {name:>24} | {par * 1e3:>11.2f} ms | {seq * 1e3:>7.2f} ms")
    with capsys.disabled():
        print("\n".join(lines))
    # Reuse-based strategies beat full re-verification in parallel time.
    full_par = results["full re-verification"][0]
    assert results["prop4 (every layer)"][0] < full_par


def test_benchmark_prop4_all_layers(vehicle_bundle, benchmark):
    artifacts = vehicle_bundle.baselines[0].artifacts
    new_net = vehicle_bundle.nets[1]
    benchmark.pedantic(
        lambda: check_prop4(artifacts, new_net, method="exact",
                            node_limit=20000),
        rounds=3, iterations=1)


def test_benchmark_full_reverification(vehicle_bundle, benchmark):
    benchmark.pedantic(
        lambda: verify_from_scratch(vehicle_bundle.problem(1),
                                    state_buffer=STATE_BUFFER, rigor="range",
                                    node_limit=120000),
        rounds=1, iterations=1)
