"""Tests for the runtime box monitor."""

import numpy as np
import pytest

from repro.errors import MonitorError
from repro.monitor import BoxMonitor, summarize_events


class TestCalibration:
    def test_din_covers_samples_with_buffer(self, rng):
        mon = BoxMonitor(buffer=0.1)
        feats = rng.normal(size=(100, 5))
        din = mon.calibrate(feats)
        assert all(din.contains_point(f) for f in feats)
        np.testing.assert_allclose(din.lower, feats.min(axis=0) - 0.1)

    def test_uncalibrated_raises(self):
        mon = BoxMonitor()
        with pytest.raises(MonitorError):
            mon.observe(np.zeros(3))
        with pytest.raises(MonitorError):
            _ = mon.din

    def test_negative_buffer_rejected(self):
        with pytest.raises(MonitorError):
            BoxMonitor(buffer=-1.0)


class TestObservation:
    def test_in_distribution_no_events(self, rng):
        mon = BoxMonitor(buffer=0.5)
        feats = rng.uniform(size=(50, 3))
        mon.calibrate(feats)
        flags = mon.observe_batch(rng.uniform(size=(30, 3)))
        assert flags.all()
        assert mon.out_of_bound_count == 0
        assert mon.enlarged_box() == mon.din
        assert mon.delta_box() is None

    def test_out_of_distribution_detected(self, rng):
        mon = BoxMonitor(buffer=0.0)
        mon.calibrate(rng.uniform(size=(50, 3)))
        outlier = np.array([5.0, 0.5, 0.5])
        assert not mon.observe(outlier)
        assert mon.out_of_bound_count == 1
        event = mon.events[0]
        assert 0 in event.dimensions
        assert event.excess > 3.5

    def test_enlarged_box_contains_outliers(self, rng):
        mon = BoxMonitor(buffer=0.0)
        mon.calibrate(rng.uniform(size=(50, 2)))
        mon.observe(np.array([2.0, 0.5]))
        mon.observe(np.array([0.5, -1.0]))
        big = mon.enlarged_box()
        assert big.contains_box(mon.din)
        assert big.contains_point(np.array([2.0, 0.5]))
        assert big.contains_point(np.array([0.5, -1.0]))

    def test_kappa_positive_after_enlargement(self, rng):
        mon = BoxMonitor(buffer=0.0)
        mon.calibrate(rng.uniform(size=(50, 2)))
        assert mon.kappa() == 0.0
        mon.observe(np.array([3.0, 0.5]))
        assert mon.kappa() > 0.0

    def test_dimension_mismatch(self, rng):
        mon = BoxMonitor()
        mon.calibrate(rng.uniform(size=(10, 3)))
        with pytest.raises(MonitorError):
            mon.observe(np.zeros(4))

    def test_recalibration_resets(self, rng):
        mon = BoxMonitor()
        mon.calibrate(rng.uniform(size=(10, 2)))
        mon.observe(np.array([9.0, 9.0]))
        assert mon.out_of_bound_count == 1
        mon.calibrate(rng.uniform(size=(10, 2)))
        assert mon.out_of_bound_count == 0


class TestNonFiniteFeatures:
    """NaN/inf features: rejected identically by both observation paths,
    counted as out-of-bound, never folded into the enlargement record."""

    @staticmethod
    def _calibrated(rng):
        mon = BoxMonitor(buffer=0.1)
        mon.calibrate(rng.uniform(size=(40, 3)))
        return mon

    def test_observe_rejects_and_counts(self, rng):
        mon = self._calibrated(rng)
        assert not mon.observe(np.array([np.nan, 0.5, 0.5]))
        assert not mon.observe(np.array([0.5, np.inf, -np.inf]))
        assert mon.out_of_bound_count == 2
        assert mon.nonfinite_count == 2
        assert mon.events[0].nonfinite and mon.events[0].dimensions == [0]
        assert mon.events[1].dimensions == [1, 2]
        assert mon.events[1].excess == np.inf

    def test_enlargement_record_stays_finite(self, rng):
        mon = self._calibrated(rng)
        mon.observe(np.array([np.inf, 0.5, 0.5]))
        mon.observe(np.array([2.0, 0.5, 0.5]))  # genuine finite outlier
        big = mon.enlarged_box()
        assert np.isfinite(big.lower).all() and np.isfinite(big.upper).all()
        assert big.contains_point(np.array([2.0, 0.5, 0.5]))

    def test_nonfinite_only_run_keeps_din(self, rng):
        mon = self._calibrated(rng)
        din = mon.din
        mon.observe(np.full(3, np.nan))
        assert mon.out_of_bound_count == 1
        assert mon.delta_box() is None  # no coordinates => no enlargement
        big = mon.enlarged_box()
        np.testing.assert_allclose(big.lower, din.lower)
        np.testing.assert_allclose(big.upper, din.upper)

    def test_batch_matches_scalar_path(self, rng):
        window = np.array([
            [0.5, 0.5, 0.5],
            [np.nan, 0.5, 0.5],
            [3.0, 0.5, 0.5],
            [0.5, -np.inf, np.inf],
        ])
        feats = rng.uniform(size=(40, 3))
        scalar, batched = BoxMonitor(buffer=0.1), BoxMonitor(buffer=0.1)
        scalar.calibrate(feats)
        batched.calibrate(feats)
        flags = [scalar.observe(row) for row in window]
        mask = batched.observe_batch(window)
        assert flags == mask.tolist() == [True, False, False, False]
        key = [(e.step, e.excess, e.dimensions, e.nonfinite)
               for e in scalar.events]
        assert key == [(e.step, e.excess, e.dimensions, e.nonfinite)
                       for e in batched.events]
        assert scalar.out_of_bound_count == batched.out_of_bound_count == 3
        assert scalar.nonfinite_count == batched.nonfinite_count == 2
        big_s, big_b = scalar.enlarged_box(), batched.enlarged_box()
        np.testing.assert_allclose(big_s.lower, big_b.lower)
        np.testing.assert_allclose(big_s.upper, big_b.upper)


class TestEventSummary:
    def test_empty(self):
        assert summarize_events([]) == {
            "count": 0, "max_excess": 0.0, "dimensions_touched": 0,
            "nonfinite": 0}

    def test_aggregates(self, rng):
        mon = BoxMonitor()
        mon.calibrate(rng.uniform(size=(20, 3)))
        mon.observe(np.array([5.0, 0.5, 0.5]))
        mon.observe(np.array([0.5, 0.5, -7.0]))
        s = summarize_events(mon.events)
        assert s["count"] == 2
        assert s["dimensions_touched"] == 2
        assert s["max_excess"] >= 7.0
        assert s["nonfinite"] == 0

    def test_nonfinite_excluded_from_max_excess(self, rng):
        mon = BoxMonitor()
        mon.calibrate(rng.uniform(size=(20, 3)))
        mon.observe(np.array([5.0, 0.5, 0.5]))
        mon.observe(np.array([np.nan, 0.5, 0.5]))
        s = summarize_events(mon.events)
        assert s["count"] == 2
        assert s["nonfinite"] == 1
        assert np.isfinite(s["max_excess"])
