"""Uniform entry point for running any abstract domain over a network.

Every propagator maps an input :class:`~repro.domains.box.Box` to a list of
per-block boxes ``[S_1, ..., S_n]`` -- the state-abstraction format the paper
stores as a proof artifact (each ``S_i`` bounds every neuron of layer ``i``
by lower/upper valuations).  The richer internal states (symbolic equations,
zonotope generators) stay inside their propagators; callers that need them
use the propagator classes directly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import DomainError
from repro.domains.box import Box, BoxPropagator
from repro.domains.batch import (
    BATCHED_PROPAGATORS,
    BoxBatch,
    get_batched_propagator,
    output_box_batch,
    propagate_batch,
)
from repro.domains.deeppoly import DeepPolyPropagator
from repro.domains.symbolic import SymbolicPropagator
from repro.domains.zonotope import ZonotopePropagator
from repro.nn.network import Network

__all__ = [
    "PROPAGATORS",
    "BATCHED_PROPAGATORS",
    "get_propagator",
    "get_batched_propagator",
    "propagate_network",
    "propagate_network_batch",
    "output_box",
    "output_box_batch",
]

PROPAGATORS: Dict[str, type] = {
    BoxPropagator.name: BoxPropagator,
    DeepPolyPropagator.name: DeepPolyPropagator,
    SymbolicPropagator.name: SymbolicPropagator,
    ZonotopePropagator.name: ZonotopePropagator,
}


def get_propagator(domain: str):
    """Instantiate a propagator by name (``"box"``, ``"symbolic"``,
    ``"zonotope"``, ``"deeppoly"``)."""
    try:
        cls = PROPAGATORS[domain]
    except KeyError:
        known = ", ".join(sorted(PROPAGATORS))
        raise DomainError(f"unknown domain {domain!r}; known: {known}") from None
    return cls()


def propagate_network(network: Network, input_box: Box,
                      domain: str = "symbolic") -> List[Box]:
    """Per-block state abstractions ``[S_1, ..., S_n]`` of ``network`` over
    ``input_box``, computed with the chosen abstract domain."""
    return get_propagator(domain).propagate(network, input_box)


def output_box(network: Network, input_box: Box,
               domain: str = "symbolic") -> Box:
    """Sound over-approximation of ``{f(x) : x in input_box}`` (``S_n``)."""
    return propagate_network(network, input_box, domain)[-1]


def propagate_network_batch(network: Network, boxes, domain: str = "box") -> List[BoxBatch]:
    """Batched twin of :func:`propagate_network`: per-block
    :class:`~repro.domains.batch.BoxBatch` abstractions over N input boxes
    in one stacked pass.  ``boxes`` is a :class:`BoxBatch` or a sequence of
    same-dimension :class:`Box` instances."""
    if not isinstance(boxes, BoxBatch):
        boxes = BoxBatch.from_boxes(list(boxes))
    return propagate_batch(network, boxes, domain)


def inductive_states(network: Network, input_box: Box,
                     buffer_rel: float = 0.0,
                     buffer_abs: float = 0.0) -> List[Box]:
    """State abstractions satisfying the paper's *inductive* definition:
    ``∀x_i ∈ S_i : g_{i+1}(x_i) ∈ S_{i+1}`` (plus ``g_1(Din) ⊆ S_1``).

    Interval arithmetic applied to a box is the exact per-neuron image of
    one block, so propagating boxes layer by layer yields the tightest
    inductive box chain.  (Tighter domains like symbolic intervals give
    smaller boxes, but those are *not* inductive -- they exploit input
    correlations a box cannot express, which is exactly why Propositions
    4/5 would reject them even for the unchanged network.)

    ``buffer_rel``/``buffer_abs`` inflate every ``S_i`` during propagation
    (relative to its width / absolutely), keeping the chain inductive *with
    slack*: the headroom that lets a slightly fine-tuned ``g'`` still map
    ``S_i`` into ``S_{i+1}`` -- the paper's "additional buffers".
    """
    if buffer_rel < 0 or buffer_abs < 0:
        raise DomainError("state buffers must be non-negative")
    propagator = BoxPropagator()
    states: List[Box] = []
    current = input_box
    for block in network.blocks():
        current = propagator.propagate_block(block, current)
        if buffer_rel > 0 or buffer_abs > 0:
            current = current.inflate(buffer_rel * current.widths + buffer_abs)
        states.append(current)
    return states
