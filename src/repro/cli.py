"""Command-line interface: ``python -m repro <command>``.

Small demonstrations runnable without writing any code:

* ``fig2``        -- replay the paper's Fig. 2 / Equation 2 worked example;
* ``prop3``       -- replay the Proposition 3 worked example;
* ``vehicle``     -- a quick version of the Section V pipeline (train,
  verify, drift, SVuDC, fine-tune, SVbTV) with a Table-I style summary;
* ``verify``      -- verify a serialized network (``.npz``) on a box domain;
* ``verify-spec`` -- execute a declarative :mod:`repro.api` Spec from a
  JSON file (or stdin with ``-``) through the
  :class:`~repro.api.engine.VerificationEngine`; ``--wire`` emits the full
  verdict wire JSON, which is the executor protocol of :mod:`repro.serve`;
* ``serve``       -- run the asynchronous verification service (persistent
  job store + HTTP API);
* ``submit``      -- queue a spec file on a running server (``--wait``
  blocks for the verdict);
* ``status``      -- one job's record, or the whole queue + server stats;
* ``cancel``      -- cancel a queued (or best-effort running) job.

Every command that touches the exact layer builds one
:class:`~repro.api.VerifyConfig` from the shared engine flags, so every
engine knob (``--workers``, ``--frontier-width``, ``--node-tighten``, ...)
is reachable from the command line and defaults stay in one place.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _add_engine_args(parser: argparse.ArgumentParser,
                     full: bool = False,
                     pool_flag: bool = True) -> None:
    """The shared engine knobs (one :class:`VerifyConfig` per invocation).

    ``full`` adds the solver-tuning flags beyond the pool width; defaults
    are ``None`` so unset flags fall through to the config's single source
    of defaults instead of being re-stated here.  ``pool_flag=False``
    skips ``--workers`` for subcommands that overload the flag (``serve``
    reuses it for the coordinator's worker URL list).
    """
    engine = parser.add_argument_group("engine options")
    if pool_flag:
        engine.add_argument("--workers", type=int, default=None,
                            help="worker-pool width for the exact branch-"
                                 "and-bound legs; >= 2 switches to the "
                                 "parallel frontier search, whose verdicts "
                                 "do not depend on the pool width")
    if not full:
        return
    engine.add_argument("--tol", type=float, default=None,
                        help="optimality/threshold tolerance")
    engine.add_argument("--node-limit", type=int, default=None,
                        help="branch-and-bound node budget for local checks")
    engine.add_argument("--full-node-limit", type=int, default=None,
                        help="node budget for global (from-scratch) solves")
    engine.add_argument("--frontier-width", type=int, default=None,
                        help="nodes expanded per frontier round; 0 resets "
                             "a bundled value back to the solver's fixed "
                             "constant (which keeps verdicts pool-width "
                             "independent)")
    engine.add_argument("--node-tighten",
                        action=argparse.BooleanOptionalAction, default=None,
                        help="feed batched phase-clamped bounds into each "
                             "node LP (tighter relaxations; may change "
                             "the search trajectory); --no-node-tighten "
                             "overrides a bundled true")
    engine.add_argument("--method", default=None,
                        choices=("symbolic", "split", "exact", "auto"),
                        help="containment method cascade")
    engine.add_argument("--domain", default=None,
                        help="abstract domain for layerwise rebuilds")
    engine.add_argument("--lp-form", default=None,
                        choices=("auto", "sparse", "dense"),
                        help="node-LP composition form")


def _config_from_args(args, base=None):
    """Fold the engine flags over ``base`` (default: canonical defaults)."""
    from repro.api import VerifyConfig

    frontier_width = getattr(args, "frontier_width", None)
    config = (base or VerifyConfig()).with_overrides(
        workers=getattr(args, "workers", None),
        tol=getattr(args, "tol", None),
        node_limit=getattr(args, "node_limit", None),
        full_node_limit=getattr(args, "full_node_limit", None),
        frontier_width=frontier_width if frontier_width != 0 else None,
        node_tighten=getattr(args, "node_tighten", None),
        method=getattr(args, "method", None),
        domain=getattr(args, "domain", None),
        lp_form=getattr(args, "lp_form", None),
    )
    if frontier_width == 0:
        # 0 is the explicit "back to the solver default" sentinel (None is
        # "flag not given", which with_overrides must leave alone).
        config = config.replace(frontier_width=None)
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous safety verification of neural networks "
                    "(DATE 2021 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig2", help="paper Fig. 2 / Equation 2 worked example")
    sub.add_parser("prop3", help="paper Proposition 3 worked example")

    vehicle = sub.add_parser("vehicle", help="quick Section V pipeline")
    vehicle.add_argument("--frame-size", type=int, default=24)
    vehicle.add_argument("--samples", type=int, default=200)
    vehicle.add_argument("--epochs", type=int, default=50)
    _add_engine_args(vehicle)

    verify = sub.add_parser("verify", help="verify a saved network on a box")
    verify.add_argument("network", help="path to a network .npz "
                                        "(see repro.nn.save_network)")
    verify.add_argument("--din", type=float, nargs=2, default=(0.0, 1.0),
                        metavar=("LOW", "HIGH"),
                        help="uniform input box bounds (default [0, 1])")
    verify.add_argument("--dout", type=float, nargs=2, default=None,
                        metavar=("LOW", "HIGH"),
                        help="uniform safe output bounds (default: auto "
                             "from the layered abstraction + 25%% slack)")
    verify.add_argument("--artifacts", default=None,
                        help="where to save the proof artifacts (.npz)")
    _add_engine_args(verify, full=True)

    verify_spec = sub.add_parser(
        "verify-spec",
        help="run a declarative repro.api Spec from a JSON file")
    verify_spec.add_argument(
        "spec",
        help='spec JSON: either a bare spec document (with a "type" tag, '
             'see repro.api.spec_to_json) or {"spec": {...}, '
             '"config": {...}} to bundle engine options; "-" reads stdin '
             "(the repro.serve executor wire protocol)")
    verify_spec.add_argument("--json", action="store_true",
                             help="emit a verdict summary as machine-"
                                  "readable JSON instead of prose")
    verify_spec.add_argument("--wire", action="store_true",
                             help="emit the *full* verdict wire JSON "
                                  "(repro.api.verdict_to_json): the form "
                                  "remote executors ship back and "
                                  "verdict_from_json reconstructs")
    verify_spec.add_argument("--certs", default=None, metavar="PATH",
                             help="certificate store path (a repro serve "
                                  "job db): proved threshold solves are "
                                  "recorded there, and later runs against "
                                  "weight-perturbed networks warm-start "
                                  "from the stored frontier (implies "
                                  "certs policy 'reuse' unless the "
                                  "bundled config says otherwise)")
    _add_engine_args(verify_spec, full=True)

    serve = sub.add_parser(
        "serve", help="run the asynchronous verification service")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8717,
                       help="bind port (default 8717; 0 = ephemeral)")
    serve.add_argument("--db", default="repro-jobs.sqlite",
                       help="job-store path (default repro-jobs.sqlite; "
                            '":memory:" for a transient service)')
    serve.add_argument("--executor", default="inprocess",
                       choices=("inprocess", "subprocess"),
                       help="where jobs run: engine threads in this "
                            "process, or verify-spec subprocesses "
                            "speaking the JSON wire form")
    serve.add_argument("--service-workers", type=int, default=2,
                       help="concurrent jobs (default 2); --workers "
                            "below remains the per-solve pool width")
    serve.add_argument("--certs", action="store_true",
                       help="enable the certificate store (policy "
                            "'reuse'): proved threshold jobs record "
                            "their covering frontier in the job db, and "
                            "re-verifying a weight-perturbed network "
                            "warm-starts from it")
    resilience = serve.add_argument_group("resilience options")
    resilience.add_argument(
        "--failover", action="store_true",
        help="append an in-process fallback after the chosen executor "
             "(graceful degradation when its circuit breaker opens)")
    resilience.add_argument(
        "--retry-attempts", type=int, default=None,
        help="total execution attempts per job before a transient "
             "failure becomes terminal (default 3; 1 = never retry)")
    resilience.add_argument(
        "--breaker-threshold", type=int, default=None,
        help="consecutive transient failures that open an executor's "
             "circuit breaker (default 5)")
    resilience.add_argument(
        "--breaker-reset", type=float, default=None,
        help="seconds an open breaker cools down before admitting a "
             "half-open probe (default 5)")
    resilience.add_argument(
        "--queue-limit", type=int, default=None,
        help="max queued jobs before submissions are shed with HTTP 503 "
             "+ Retry-After (default: unbounded)")
    resilience.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="CHAOS TESTING: inject this fraction of deterministic "
             "faults (crash/hang/corrupt wire) into the executor "
             "(default 0 = off)")
    resilience.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for --fault-rate injection (same seed + arrival "
             "order = same fault schedule)")
    distributed = serve.add_argument_group("distributed options")
    distributed.add_argument(
        "--coordinator", action="store_true",
        help="run as a coordinator: jobs are routed to worker machines "
             "by consistent hashing instead of executed locally")
    distributed.add_argument(
        "--workers", default=None, metavar="N|URL,URL,...",
        help="without --coordinator: integer worker-pool width for the "
             "engine (as elsewhere); with --coordinator: comma-separated "
             "worker endpoints to route jobs to (workers can also join "
             "later via --worker registration)")
    distributed.add_argument(
        "--worker", action="store_true",
        help="run as a worker: serve normally and heartbeat the "
             "--coordinator-url so the ring can route jobs here")
    distributed.add_argument(
        "--coordinator-url", default=None,
        help="coordinator endpoint a --worker registers with "
             "(heartbeats every --heartbeat-interval seconds)")
    distributed.add_argument(
        "--advertise-url", default=None,
        help="URL a --worker advertises to the coordinator (default: "
             "the bound address; set when behind NAT or 0.0.0.0)")
    distributed.add_argument(
        "--heartbeat-interval", type=float, default=None,
        help="seconds between coordinator health probes / worker "
             "heartbeats (default 1)")
    distributed.add_argument(
        "--worker-ttl", type=float, default=None,
        help="seconds of silence before a worker is marked dead and "
             "its hash range reroutes (default 5)")
    distributed.add_argument(
        "--ring-replicas", type=int, default=None,
        help="virtual nodes per worker on the consistent-hash ring "
             "(default 64)")
    distributed.add_argument(
        "--reroute-policy", choices=("reroute", "strict"), default=None,
        help="dead shard's hash range: 'reroute' to the next live "
             "shard (default), or 'strict' to park its jobs until the "
             "owner returns")
    _add_engine_args(serve, full=True, pool_flag=False)

    submit = sub.add_parser(
        "submit", help="queue a spec file on a running repro serve")
    submit.add_argument("spec", help='spec JSON file (bare document or '
                                     '{"spec", "config"} bundle); "-" '
                                     "reads stdin")
    submit.add_argument("--url", default="http://127.0.0.1:8717",
                        help="server endpoint (default "
                             "http://127.0.0.1:8717)")
    submit.add_argument("--priority", type=int, default=0,
                        help="scheduling priority (higher runs first; "
                             "FIFO within a priority)")
    submit.add_argument("--job-timeout", type=float, default=None,
                        help="per-attempt wall-clock budget in seconds")
    submit.add_argument("--deadline", type=float, default=None,
                        help="total budget in seconds: the server never "
                             "starts (or restarts) the job after it, and "
                             "clips each attempt's timeout to what is "
                             "left")
    submit.add_argument("--wait", action="store_true",
                        help="block until the verdict is in and print it")
    submit.add_argument("--json", action="store_true",
                        help="print machine-readable JSON (with --wait: "
                             "the full verdict wire JSON)")

    status = sub.add_parser(
        "status", help="job record(s) from a running repro serve")
    status.add_argument("job", nargs="?", default=None,
                        help="job id; omit for the whole queue + stats")
    status.add_argument("--url", default="http://127.0.0.1:8717")
    status.add_argument("--json", action="store_true",
                        help="print machine-readable JSON")

    cancel = sub.add_parser("cancel", help="cancel a job on a running "
                                           "repro serve")
    cancel.add_argument("job", help="job id")
    cancel.add_argument("--url", default="http://127.0.0.1:8717")

    lint = sub.add_parser(
        "lint", help="run the project's static-analysis rules "
                     "(src/ must stay clean; see docs/static_analysis.md)")
    lint.add_argument("paths", nargs="*", default=None,
                      help="files/directories to lint (default: src if it "
                           "exists, else .)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable JSON report")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule names to run exclusively")
    lint.add_argument("--ignore", default=None,
                      help="comma-separated rule names to skip")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    return parser


def _cmd_fig2() -> int:
    from repro.api import MaximizeSpec, VerificationEngine
    from repro.domains import Box, propagate_network
    from repro.nn import fig2_network

    net = fig2_network()
    original = Box(-np.ones(2), np.ones(2))
    enlarged = Box(-np.ones(2), np.array([1.1, 1.1]))
    print("box n4 bound on [-1,1]^2  :",
          propagate_network(net, original, "box")[-1])
    print("box n4 bound on [-1,1.1]^2:",
          propagate_network(net, enlarged, "box")[-1])
    res = VerificationEngine().verify(MaximizeSpec(
        network=net, input_box=enlarged, objective=np.array([1.0]))).result
    print(f"exact max n4 = {res.upper_bound:.4g}  (paper: 6.2 < 12 "
          "=> Proposition 1 reuses the old proof)")
    return 0


def _cmd_prop3() -> int:
    from repro.api import PropositionSpec, VerificationEngine
    from repro.core import (LipschitzCertificate, ProofArtifacts,
                            StateAbstractions, VerificationProblem)
    from repro.domains import Box
    from repro.nn import random_relu_network

    net = random_relu_network([2, 3, 1], seed=0)
    problem = VerificationProblem(
        net, Box(np.ones(2), 2 * np.ones(2)),
        Box(np.array([-10.0]), np.array([10.0])))
    artifacts = ProofArtifacts(
        problem=problem,
        states=StateAbstractions(boxes=[Box(np.zeros(3), np.ones(3)),
                                        Box(np.array([1.0]), np.array([8.0]))]),
        lipschitz=LipschitzCertificate(ell=100.0))
    enlarged = problem.din.inflate(0.01414)
    res = VerificationEngine().verify(PropositionSpec(
        kind=3, artifacts=artifacts, enlarged_din=enlarged)).result
    print(f"Din=[1,2]^2, ell=100, Sn=[1,8], Dout=[-10,10]")
    print(f"enlarged by ~0.014 per side -> {res.detail}")
    print(f"Proposition 3 verdict: {res.holds}  (paper: holds, "
          "inflated set [-1,10] fits in [-10,10])")
    return 0


def _cmd_vehicle(args) -> int:
    from repro.api import VerificationEngine
    from repro.core import (ContinuousVerifier, SVbTV, SVuDC, Table1Row,
                            VerificationProblem, format_table1)
    from repro.domains.propagate import inductive_states
    from repro.monitor import BoxMonitor
    from repro.nn import TrainConfig, fine_tune, train
    from repro.vehicle import (Camera, DriveConfig, Perception,
                               PerceptionConfig, ScenarioConfig, Track,
                               VehiclePlatform, feature_dataset,
                               generate_dataset)

    config = _config_from_args(args)
    engine = VerificationEngine(config)
    track = Track()
    camera = Camera(frame_size=args.frame_size)
    perception = Perception.build(
        PerceptionConfig(frame_size=args.frame_size, hidden_dims=(12, 8)))
    print("training the waypoint head ...")
    data = generate_dataset(track, camera, args.samples, ScenarioConfig(seed=0))
    x, y = feature_dataset(perception.extractor, data)
    train(perception.head, x, y,
          TrainConfig(epochs=args.epochs, learning_rate=3e-3,
                      optimizer="adam"))

    monitor = BoxMonitor(buffer=0.04, lower_floor=0.0)
    din = monitor.calibrate(x)
    sn = inductive_states(perception.head, din, 0.05)[-1]
    dout = sn.inflate(0.25 * float(sn.widths.max()) + 0.05)
    problem = VerificationProblem(perception.head, din, dout)
    print("verifying from scratch ...")
    baseline = engine.baseline(problem, state_buffer=0.05).result
    print(f"  safe={baseline.holds} in {baseline.elapsed:.2f}s")

    VehiclePlatform(track, camera, perception).drive(
        DriveConfig(steps=40, brightness=1.8, disturbance_std=0.8),
        monitor=monitor)
    verifier = ContinuousVerifier(baseline.artifacts, config=config)
    svudc = verifier.verify_domain_change(
        SVuDC(problem, monitor.enlarged_box()))
    tuned = fine_tune(perception.head, x, y, learning_rate=1e-3, epochs=1)
    svbtv = verifier.verify_new_version(SVbTV(problem, tuned),
                                        strategies=("prop4", "prop5"))
    print(f"SVuDC: {svudc.holds} via {svudc.strategy}; "
          f"SVbTV: {svbtv.holds} via {svbtv.strategy}")
    print(format_table1([Table1Row(
        1, svudc.speedup_vs(baseline.elapsed),
        svbtv.speedup_vs(baseline.elapsed))]))
    return 0 if (svudc.holds and svbtv.holds) else 1


def _cmd_verify(args) -> int:
    from repro.api import VerificationEngine
    from repro.core import VerificationProblem, save_artifacts
    from repro.domains import Box
    from repro.domains.propagate import inductive_states
    from repro.nn import load_network

    network = load_network(args.network)
    lo, hi = args.din
    din = Box(np.full(network.input_dim, lo), np.full(network.input_dim, hi))
    if args.dout is not None:
        dlo, dhi = args.dout
        dout = Box(np.full(network.output_dim, dlo),
                   np.full(network.output_dim, dhi))
    else:
        sn = inductive_states(network, din, 0.03)[-1]
        dout = sn.inflate(0.25 * float(sn.widths.max()) + 1e-6)
        print(f"auto Dout: {dout}")
    problem = VerificationProblem(network, din, dout)
    # One VerifyConfig carries *every* engine knob (the historical kwargs
    # path silently dropped --frontier-width / --node-tighten).
    config = _config_from_args(args)
    outcome = VerificationEngine(config).baseline(
        problem, state_buffer=0.03).result
    verdict = {True: "SAFE", False: "UNSAFE", None: "UNKNOWN"}[outcome.holds]
    print(f"{verdict} in {outcome.elapsed:.3f}s  ({outcome.detail})")
    if args.artifacts:
        save_artifacts(outcome.artifacts, args.artifacts)
        print(f"artifacts saved to {args.artifacts}")
    return 0 if outcome.holds else 1


def _load_spec_document(path: str):
    """Read a spec file (or stdin for ``-``): returns ``(spec_doc,
    config_doc_or_None)`` for both the bare and bundled layouts."""
    if path == "-":
        document = json.load(sys.stdin)
    else:
        with open(path) as handle:
            document = json.load(handle)
    if isinstance(document, dict) and "spec" in document:
        return document["spec"], document.get("config")
    return document, None


def _cmd_verify_spec(args) -> int:
    from repro.api import (MaximizeVerdict, RangeVerdict, VerificationEngine,
                           VerifyConfig, spec_from_dict)

    spec_doc, config_doc = _load_spec_document(args.spec)
    config = VerifyConfig.from_dict(config_doc or {})
    # Command-line engine flags override whatever the file bundled
    # (including --no-node-tighten / --frontier-width 0 resets).
    config = _config_from_args(args, base=config)
    spec = spec_from_dict(spec_doc)
    certs = None
    if args.certs:
        from repro.serve.store import JobStore

        certs = JobStore(args.certs)
        if config.certs == "off":
            # --certs without an explicit policy means "use it".
            config = config.replace(certs="reuse")
    try:
        verdict = VerificationEngine(config, certs=certs).verify(spec)
    finally:
        if certs is not None:
            certs.close()
    # A RangeVerdict, or a MaximizeVerdict with no threshold that ran to
    # optimality, is a *value* query: holds is None by design and the
    # computed value is the success.
    value_query = isinstance(verdict, RangeVerdict) or (
        isinstance(verdict, MaximizeVerdict) and verdict.holds is None
        and verdict.result.status == "optimal")
    from repro.api.serialize import verdict_to_dict

    verdict_doc = verdict_to_dict(verdict)
    if args.wire:
        print(json.dumps(verdict_doc, allow_nan=False, sort_keys=True))
    elif args.json:
        record = {
            "spec_type": verdict.spec_type,
            "holds": verdict.holds,
            "detail": verdict.detail,
            "elapsed": verdict.provenance.elapsed,
            "lp_solves": verdict.provenance.lp_solves,
            "nodes": verdict.provenance.nodes,
            "workers": verdict.provenance.workers,
            "encoding_reuse": verdict.provenance.encoding_reuse,
        }
        if verdict.provenance.cert_hit or verdict.provenance.nodes_reused:
            record["cert_hit"] = verdict.provenance.cert_hit
            record["nodes_reused"] = verdict.provenance.nodes_reused
            record["lp_solves_saved"] = verdict.provenance.lp_solves_saved
        if isinstance(verdict, RangeVerdict):
            record["output_range"] = {
                "lower": verdict.output_range.lower.tolist(),
                "upper": verdict.output_range.upper.tolist(),
            }
        if isinstance(verdict, MaximizeVerdict):
            from repro.api.serialize import float_to_jsonable

            record["status"] = verdict.result.status
            record["upper_bound"] = float_to_jsonable(verdict.result.upper_bound)
            record["incumbent"] = float_to_jsonable(verdict.result.incumbent)
            if value_query:
                record["optimum"] = verdict.optimum
        print(json.dumps(record, allow_nan=False))
    else:
        answer = ("COMPUTED" if value_query else
                  {True: "HOLDS", False: "FAILS", None: "INCONCLUSIVE"}[
                      verdict.holds])
        print(f"{verdict.spec_type}: {answer} in "
              f"{verdict.provenance.elapsed:.3f}s  ({verdict.detail})")
        if isinstance(verdict, RangeVerdict):
            print(f"output range: {verdict.output_range}")
        if isinstance(verdict, MaximizeVerdict) and value_query:
            print(f"optimum: {verdict.optimum:.9g}")
    # One exit-code policy shared with `repro submit --wait` (the wire
    # form carries everything the rule needs).
    return _verdict_exit_code(verdict_doc)


def _heartbeat_loop(stop, coordinator_url: str, self_url: str,
                    interval: float) -> None:
    """Register this worker with its coordinator, then keep the TTL
    fresh.  Failures are swallowed: the coordinator being down must not
    kill the worker -- the next beat re-registers when it returns."""
    from repro.serve import ServeClient

    client = ServeClient(coordinator_url)
    while True:
        try:
            client.register_worker(self_url)
        except Exception:  # noqa: BLE001 - heartbeats never crash a worker
            pass
        if stop.wait(interval):
            return


def _cmd_serve(args) -> int:
    import threading

    from repro.api.config import ServeConfig
    from repro.serve import (FaultInjectingExecutor, ShardRouter,
                             VerificationService, make_executor, serve_http)

    if args.coordinator and args.worker:
        print("error: --coordinator and --worker are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.coordinator and args.fault_rate:
        print("error: --fault-rate injects faults into a *local* "
              "executor; on a coordinator, pass it to a worker instead",
              file=sys.stderr)
        return 2
    if args.worker and not args.coordinator_url:
        print("error: --worker needs --coordinator-url to register with",
              file=sys.stderr)
        return 2
    # serve overloads --workers: an engine pool width normally, the
    # worker URL list under --coordinator.  Resolve it before the flag
    # is folded into the engine config.
    worker_urls = []
    if args.coordinator:
        worker_urls = [url.strip() for url in (args.workers or "").split(",")
                       if url.strip()]
        args.workers = None  # the coordinator never solves locally
    elif args.workers is not None:
        try:
            args.workers = int(args.workers)
        except ValueError:
            print("error: --workers takes an integer pool width here "
                  "(a URL list needs --coordinator)", file=sys.stderr)
            return 2
    config = _config_from_args(args)
    if args.certs and config.certs == "off":
        # The certificates live in the job db (--db); the flag only turns
        # the policy on for jobs that do not bundle their own config.
        config = config.replace(certs="reuse")
    serve_config = ServeConfig().with_overrides(
        retry_attempts=args.retry_attempts,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        queue_limit=args.queue_limit,
        heartbeat_interval=args.heartbeat_interval,
        worker_ttl=args.worker_ttl,
        ring_replicas=args.ring_replicas,
        reroute_policy=args.reroute_policy)
    if args.coordinator:
        executor = ShardRouter(worker_urls, serve_config=serve_config)
        executor.check_now()  # probe the fleet before accepting jobs
    else:
        chain = [make_executor(args.executor)]
        if args.fault_rate:
            # Chaos mode: wrap the *primary* only, so a --failover
            # fallback stays healthy and the breaker handoff is
            # observable end-to-end.
            chain[0] = FaultInjectingExecutor(chain[0],
                                              fault_rate=args.fault_rate,
                                              seed=args.fault_seed)
        if args.failover and args.executor != "inprocess":
            chain.append(make_executor("inprocess"))
        executor = chain
    service = VerificationService(
        store=args.db, executor=executor,
        workers=args.service_workers, default_config=config,
        serve_config=serve_config)
    server = serve_http(service, host=args.host, port=args.port)
    service.start()
    heartbeat_stop = threading.Event()
    heartbeat_thread = None
    if args.worker:
        self_url = args.advertise_url or server.url
        heartbeat_thread = threading.Thread(
            target=_heartbeat_loop,
            args=(heartbeat_stop, args.coordinator_url, self_url,
                  serve_config.heartbeat_interval),
            name="repro-worker-heartbeat", daemon=True)
        heartbeat_thread.start()
    if service.store.recovered_jobs:
        print(f"recovered {service.store.recovered_jobs} interrupted "
              "job(s) back into the queue")
    extras = ""
    if args.fault_rate:
        extras += (f", fault_rate={args.fault_rate:g} "
                   f"seed={args.fault_seed}")
    if serve_config.queue_limit is not None:
        extras += f", queue_limit={serve_config.queue_limit}"
    if config.certs != "off":
        extras += f", certs={config.certs}"
    if args.coordinator:
        extras += (f", reroute={serve_config.reroute_policy}, "
                   f"ttl={serve_config.worker_ttl:g}s")
    if args.worker:
        extras += f", coordinator={args.coordinator_url}"
    print(f"repro serve listening on {server.url}  "
          f"(store={args.db}, executor={service.executor.name}, "
          f"service workers={args.service_workers}{extras})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down ...")
    finally:
        heartbeat_stop.set()
        if heartbeat_thread is not None:
            heartbeat_thread.join(timeout=2.0)
        server.shutdown()
        server.server_close()
        service.close()
    return 0


def _print_job_record(record: dict) -> None:
    line = (f"{record['job_id']}  {record['state']:<9}  "
            f"priority={record['priority']}  attempts={record['attempts']}")
    if record.get("cache_hit"):
        line += "  [cache hit]"
    if record.get("error"):
        line += f"  error: {record['error']}"
    print(line)


def _verdict_exit_code(verdict_doc: dict) -> int:
    if verdict_doc.get("verdict") == "failed":
        return 3
    holds = verdict_doc.get("holds")
    if holds is None:
        # Value queries succeed by computing the value -- same rule as
        # verify-spec: a range always has one, a maximize only when the
        # search actually ran to optimality (a node-limited holds=None is
        # inconclusive, exit 2).
        if verdict_doc.get("verdict") == "range":
            return 0
        if verdict_doc.get("verdict") == "maximize" and \
                (verdict_doc.get("result") or {}).get("status") == "optimal":
            return 0
    return {True: 0, False: 1, None: 2}[holds]


def _cmd_submit(args) -> int:
    from repro.serve import ServeClient

    spec_doc, config_doc = _load_spec_document(args.spec)
    client = ServeClient(args.url)
    record = client.submit(spec_doc, config=config_doc,
                           priority=args.priority,
                           timeout=args.job_timeout,
                           deadline=args.deadline)
    if not args.wait:
        if args.json:
            print(json.dumps(record, allow_nan=False))
        else:
            _print_job_record(record)
        return 0
    record = client.wait(record["job_id"], timeout=None)
    if record["state"] != "done":
        if args.json:
            print(json.dumps(record, allow_nan=False))
        else:
            _print_job_record(record)
        return 3 if record["state"] == "failed" else 4
    verdict_doc = record["verdict"]
    if args.json:
        # The full wire form, canonically ordered.  Provenance is per-run
        # (elapsed, cached flag), so comparison with `repro verify-spec
        # --wire` output is byte-exact *after* canonical_verdict_json
        # strips it -- the rule the CI identity gate applies.
        print(json.dumps(verdict_doc, allow_nan=False, sort_keys=True))
    else:
        provenance = verdict_doc.get("provenance", {})
        cached = "  [verdict cache]" if provenance.get("cached") else ""
        print(f"{record['job_id']}: {verdict_doc['spec_type']} "
              f"holds={verdict_doc['holds']}  ({verdict_doc['detail']})"
              + cached)
    return _verdict_exit_code(verdict_doc)


def _cmd_status(args) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.url)
    if args.job is not None:
        record = client.job(args.job)
        if args.json:
            print(json.dumps(record, allow_nan=False))
        else:
            _print_job_record(record)
            if record.get("verdict") is not None:
                verdict_doc = record["verdict"]
                print(f"  verdict: {verdict_doc['spec_type']} "
                      f"holds={verdict_doc['holds']}  "
                      f"({verdict_doc['detail']})")
        return 0
    stats = client.stats()
    records = client.jobs()
    if args.json:
        print(json.dumps({"stats": stats, "jobs": records},
                         allow_nan=False))
        return 0
    counts = " ".join(f"{state}={n}" for state, n in stats["jobs"].items())
    # The durable cache counters (the in-memory ones reset on restart).
    print(f"server: {counts}  cache_entries="
          f"{stats['verdict_cache']['entries']} "
          f"cache_hits={stats['verdict_cache']['hits']}")
    for record in records:
        _print_job_record(record)
    return 0


def _cmd_cancel(args) -> int:
    from repro.serve import ServeClient

    result = ServeClient(args.url).cancel(args.job)
    print(f"{result['job_id']}: {result['state']}")
    return 0 if result["state"] == "cancelled" else 1


def _cmd_lint(args) -> int:
    from repro.analysis import lint_paths, render_json, render_text
    from repro.analysis.core import UNUSED_SUPPRESSION
    from repro.analysis.rules import ALL_RULES
    from repro.errors import AnalysisError

    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.scope) if rule.scope else "everywhere"
            print(f"{rule.name:24} [{scope}]\n    {rule.description}")
        print(f"{UNUSED_SUPPRESSION:24} [everywhere]\n    "
              "a '# repro: disable=' comment must silence a real finding")
        return 0

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        result = lint_paths(paths, select=select, ignore=ignore)
    except AnalysisError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    print(render_json(result) if args.json else render_text(result))
    return 0 if result.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "fig2":
        return _cmd_fig2()
    if args.command == "prop3":
        return _cmd_prop3()
    if args.command == "vehicle":
        return _cmd_vehicle(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "verify-spec":
        return _cmd_verify_spec(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "cancel":
        return _cmd_cancel(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
