"""Property-based tests (hypothesis) for the library's core invariants.

These are the load-bearing soundness contracts:

* abstract transformers over-approximate concrete execution;
* the exact solver brackets brute-force sampling;
* Lipschitz certificates dominate observed slopes;
* box algebra behaves like a lattice;
* network abstraction sandwiches the concrete network;
* proposition verdicts of ``True`` imply sampled safety.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.domains import Box, box_kappa, propagate_network
from repro.exact import maximize_output
from repro.lipschitz import empirical_lipschitz, global_lipschitz_bound, local_lipschitz_bound
from repro.nn import random_relu_network
from repro.netabs import build_abstraction

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


dims = st.tuples(st.integers(2, 4), st.integers(3, 8), st.integers(2, 6))
seeds = st.integers(0, 10_000)


@st.composite
def boxes(draw, dim):
    center = draw(st.lists(st.floats(-2, 2), min_size=dim, max_size=dim))
    radius = draw(st.lists(st.floats(0.01, 1.5), min_size=dim, max_size=dim))
    c, r = np.array(center), np.array(radius)
    return Box(c - r, c + r)


class TestDomainSoundness:
    @SETTINGS
    @given(dims=dims, seed=seeds, domain=st.sampled_from(["box", "symbolic",
                                                          "zonotope"]))
    def test_output_box_contains_samples(self, dims, seed, domain):
        d_in, d_hidden, d_out = dims
        net = random_relu_network([d_in, d_hidden, d_out], seed=seed,
                                  weight_scale=1.0)
        box = Box(-np.ones(d_in), np.ones(d_in))
        out = propagate_network(net, box, domain)[-1]
        xs = box.sample(200, np.random.default_rng(seed))
        ys = np.atleast_2d(net.forward(xs))
        assert np.all(ys >= out.lower - 1e-8)
        assert np.all(ys <= out.upper + 1e-8)

    @SETTINGS
    @given(dims=dims, seed=seeds)
    def test_symbolic_refines_box(self, dims, seed):
        """Symbolic output bounds are never looser than plain intervals."""
        d_in, d_hidden, d_out = dims
        net = random_relu_network([d_in, d_hidden, d_out], seed=seed,
                                  weight_scale=1.0)
        box = Box(-np.ones(d_in), np.ones(d_in))
        sym = propagate_network(net, box, "symbolic")[-1]
        plain = propagate_network(net, box, "box")[-1]
        assert plain.contains_box(sym, tol=1e-8)


class TestExactSolver:
    @SETTINGS
    @given(seed=seeds)
    def test_bab_dominates_sampling(self, seed):
        net = random_relu_network([2, 5, 1], seed=seed, weight_scale=1.0)
        box = Box(-np.ones(2), np.ones(2))
        res = maximize_output(net, box, np.array([1.0]))
        xs = box.sample(500, np.random.default_rng(seed + 1))
        vals = net.forward(xs).reshape(-1)
        assert res.upper_bound >= vals.max() - 1e-7
        # and the witness is genuinely feasible
        assert box.contains_point(res.witness)
        assert net.forward(res.witness)[0] == pytest.approx(
            res.incumbent, abs=1e-7)


class TestLipschitz:
    @SETTINGS
    @given(seed=seeds)
    def test_certificates_dominate_observations(self, seed):
        net = random_relu_network([3, 7, 2], seed=seed)
        box = Box(-np.ones(3), np.ones(3))
        samples = box.sample(60, np.random.default_rng(seed))
        emp = empirical_lipschitz(net, samples)
        local = local_lipschitz_bound(net, box)
        global_ = global_lipschitz_bound(net)
        # Both are certificates; neither dominates the other in general
        # (the interval-Jacobian envelope uses |W| products, whose spectral
        # norm can slightly exceed the product of spectral norms).
        assert emp <= local + 1e-7
        assert emp <= global_ + 1e-7


class TestBoxLattice:
    @SETTINGS
    @given(data=st.data(), dim=st.integers(1, 5))
    def test_union_is_join(self, data, dim):
        a = data.draw(boxes(dim))
        b = data.draw(boxes(dim))
        u = a.union(b)
        assert u.contains_box(a) and u.contains_box(b)

    @SETTINGS
    @given(data=st.data(), dim=st.integers(1, 5))
    def test_intersection_is_meet(self, data, dim):
        a = data.draw(boxes(dim))
        b = data.draw(boxes(dim))
        m = a.intersection(b)
        if m is not None:
            assert a.contains_box(m) and b.contains_box(m)

    @SETTINGS
    @given(data=st.data(), dim=st.integers(1, 4), amount=st.floats(0, 2))
    def test_inflate_monotone(self, data, dim, amount):
        a = data.draw(boxes(dim))
        assert a.inflate(amount).contains_box(a)

    @SETTINGS
    @given(data=st.data(), dim=st.integers(1, 4))
    def test_kappa_bounds_sampled_distances(self, data, dim):
        din = data.draw(boxes(dim))
        extra = data.draw(st.lists(st.floats(0, 1), min_size=dim, max_size=dim))
        enlarged = din.inflate(np.array(extra))
        kappa = box_kappa(din, enlarged)
        xs = enlarged.sample(100, np.random.default_rng(0))
        assert max(din.distance_to_point(x) for x in xs) <= kappa + 1e-9

    @SETTINGS
    @given(data=st.data(), dim=st.integers(1, 4))
    def test_split_partitions(self, data, dim):
        a = data.draw(boxes(dim))
        left, right = a.split()
        assert left.union(right) == a
        xs = a.sample(50, np.random.default_rng(1))
        for x in xs:
            assert left.contains_point(x) or right.contains_point(x)


class TestNetworkAbstraction:
    @SETTINGS
    @given(seed=seeds, groups=st.integers(1, 4))
    def test_sandwich_property(self, seed, groups):
        net = random_relu_network([3, 6, 5, 1], seed=seed)
        din = Box(np.zeros(3), np.ones(3))
        absn = build_abstraction(net, din, num_groups=groups)
        xs = din.sample(150, np.random.default_rng(seed))
        y = net.forward(xs).reshape(-1)
        assert np.all(absn.upper.forward(xs).reshape(-1) >= y - 1e-8)
        assert np.all(absn.lower.forward(xs).reshape(-1) <= y + 1e-8)


class TestTrainingInvariance:
    @SETTINGS
    @given(seed=seeds)
    def test_perturb_zero_scale_is_identity(self, seed):
        net = random_relu_network([3, 5, 2], seed=seed)
        same = net.perturb(0.0, np.random.default_rng(seed))
        assert net.max_weight_delta(same) == 0.0


class TestDeepPoly:
    @SETTINGS
    @given(seed=seeds)
    def test_sound_and_contains_exact_range(self, seed):
        net = random_relu_network([3, 6, 4, 1], seed=seed, weight_scale=0.9)
        box = Box(-np.ones(3), np.ones(3))
        out = propagate_network(net, box, "deeppoly")[-1]
        xs = box.sample(300, np.random.default_rng(seed))
        ys = net.forward(xs).reshape(-1)
        assert ys.min() >= out.lower[0] - 1e-8
        assert ys.max() <= out.upper[0] + 1e-8


class TestBackwardRefinement:
    @SETTINGS
    @given(seed=seeds)
    def test_refined_box_keeps_reaching_points(self, seed):
        from repro.domains import refine_input_box

        net = random_relu_network([3, 6, 1], seed=seed, weight_scale=0.8)
        box = Box(-np.ones(3), np.ones(3))
        xs = box.sample(300, np.random.default_rng(seed))
        ys = net.forward(xs).reshape(-1)
        cut = float(np.quantile(ys, 0.8))
        target = Box(np.array([cut]), np.array([cut + 1e6]))
        res = refine_input_box(net, box, target)
        reaching = xs[ys >= cut]
        if res.empty:
            assert reaching.shape[0] == 0
        else:
            for x in reaching:
                assert res.input_box.contains_point(x, tol=1e-7)


class TestBranchCertificates:
    @SETTINGS
    @given(seed=seeds)
    def test_warm_reproof_matches_cold_verdict(self, seed):
        from repro.exact import certify_threshold, prove_with_certificate

        net = random_relu_network([2, 5, 1], seed=seed, weight_scale=1.0)
        box = Box(-np.ones(2), np.ones(2))
        opt = maximize_output(net, box, np.array([1.0]))
        threshold = opt.upper_bound + 0.1
        _, cert = certify_threshold(net, box, np.array([1.0]), threshold)
        assert cert is not None
        res = prove_with_certificate(net, box, cert)
        assert res.status in ("threshold_proved", "optimal")
        assert res.upper_bound <= threshold + 1e-6
