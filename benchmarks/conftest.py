"""Session-scoped fixtures shared by the benchmark modules."""

import pytest

from benchmarks.common import build_vehicle_bundle


def pytest_configure(config):
    # The benchmarks directory is importable as a package for common.py.
    import sys
    from pathlib import Path

    root = str(Path(__file__).resolve().parent.parent)
    if root not in sys.path:
        sys.path.insert(0, root)


@pytest.fixture(scope="session")
def vehicle_bundle():
    """The full Section V workload (built once; about a minute)."""
    return build_vehicle_bundle()
