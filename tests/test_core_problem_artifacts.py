"""Tests for problem statements and proof artifacts (incl. persistence)."""

import numpy as np
import pytest

from repro.domains import Box
from repro.errors import ArtifactError, DomainError, ShapeError
from repro.nn import random_relu_network
from repro.core import (
    LipschitzCertificate,
    ProofArtifacts,
    SVbTV,
    SVuDC,
    StateAbstractions,
    VerificationProblem,
    load_artifacts,
    save_artifacts,
    verify_from_scratch,
)


@pytest.fixture
def problem(deep_scalar_net, nonneg_box4):
    from repro.domains.propagate import inductive_states

    sn = inductive_states(deep_scalar_net, nonneg_box4, 0.02)[-1]
    return VerificationProblem(deep_scalar_net, nonneg_box4,
                               sn.inflate(0.2 * sn.widths.max() + 0.1))


class TestProblemStatements:
    def test_dim_checks(self, deep_scalar_net):
        with pytest.raises(ShapeError):
            VerificationProblem(deep_scalar_net, Box(np.zeros(3), np.ones(3)),
                                Box(np.zeros(1), np.ones(1)))
        with pytest.raises(ShapeError):
            VerificationProblem(deep_scalar_net, Box(np.zeros(4), np.ones(4)),
                                Box(np.zeros(2), np.ones(2)))

    def test_sample_check_finds_violation(self, deep_scalar_net, nonneg_box4):
        tiny = Box(np.array([0.0]), np.array([1e-9]))
        problem = VerificationProblem(deep_scalar_net, nonneg_box4, tiny)
        cex = problem.sample_check(200, np.random.default_rng(0))
        assert cex is not None
        assert not tiny.contains_point(deep_scalar_net.forward(cex))

    def test_sample_check_none_when_safe(self, problem):
        assert problem.sample_check(200, np.random.default_rng(0)) is None

    def test_svudc_requires_containment(self, problem):
        with pytest.raises(DomainError):
            SVuDC(problem, Box(np.zeros(4), 0.5 * np.ones(4)))

    def test_svudc_new_problem(self, problem):
        enlarged = problem.din.inflate(0.1)
        svudc = SVuDC(problem, enlarged)
        assert svudc.new_problem.din == enlarged

    def test_svbtv_structure_check(self, problem):
        other = random_relu_network([4, 10, 1], seed=0)
        with pytest.raises(ShapeError):
            SVbTV(problem, other)

    def test_svbtv_effective_din(self, problem):
        tuned = problem.network.perturb(0.001, np.random.default_rng(0))
        assert SVbTV(problem, tuned).effective_din == problem.din
        enlarged = problem.din.inflate(0.1)
        assert SVbTV(problem, tuned, enlarged).effective_din == enlarged


class TestArtifacts:
    def test_state_abstraction_accessors(self, problem):
        base = verify_from_scratch(problem, rigor="abstract")
        states = base.artifacts.require_states()
        assert states.num_layers == problem.network.num_blocks
        assert states.matches(problem.network)
        assert states.output_abstraction == states.layer(states.num_layers - 1)

    def test_lipschitz_certificate_validation(self):
        with pytest.raises(ArtifactError):
            LipschitzCertificate(ell=-1.0)
        cert = LipschitzCertificate(ell=10.0)
        assert cert.output_change_bound(0.5) == 5.0
        with pytest.raises(ArtifactError):
            cert.output_change_bound(-0.1)

    def test_missing_artifacts_raise(self, problem):
        artifacts = ProofArtifacts(problem=problem)
        with pytest.raises(ArtifactError):
            artifacts.require_states()
        with pytest.raises(ArtifactError):
            artifacts.require_lipschitz()
        with pytest.raises(ArtifactError):
            artifacts.require_network_abstraction()

    def test_states_mismatch_detected(self, problem):
        bad = StateAbstractions(boxes=[Box(np.zeros(3), np.ones(3))])
        artifacts = ProofArtifacts(problem=problem, states=bad)
        with pytest.raises(ArtifactError):
            artifacts.require_states()

    def test_tightest_output_abstraction_prefers_range(self, problem):
        base = verify_from_scratch(problem, rigor="range")
        tight = base.artifacts.tightest_output_abstraction()
        loose = base.artifacts.states.output_abstraction
        assert loose.contains_box(tight)


class TestPersistence:
    def test_roundtrip_full(self, problem, tmp_path):
        base = verify_from_scratch(problem, rigor="range",
                                   with_network_abstraction=True,
                                   netabs_groups=2, netabs_margin=0.05)
        path = tmp_path / "artifacts.npz"
        save_artifacts(base.artifacts, path)
        loaded = load_artifacts(path)
        assert loaded.states_prove_safety == base.artifacts.states_prove_safety
        assert loaded.original_time == pytest.approx(base.artifacts.original_time)
        assert loaded.lipschitz.ell == pytest.approx(base.artifacts.lipschitz.ell)
        for a, b in zip(loaded.states.boxes, base.artifacts.states.boxes):
            assert a == b
        assert loaded.output_range == base.artifacts.output_range
        assert loaded.network_abstraction is not None
        assert loaded.network_abstraction.margin == pytest.approx(0.05)
        # The reloaded problem is functionally identical.
        x = problem.din.sample(5, np.random.default_rng(0))
        np.testing.assert_array_equal(
            loaded.problem.network.forward(x), problem.network.forward(x))

    def test_roundtrip_minimal(self, problem, tmp_path):
        base = verify_from_scratch(problem, rigor="abstract")
        base.artifacts.network_abstraction = None
        path = tmp_path / "min.npz"
        save_artifacts(base.artifacts, path)
        loaded = load_artifacts(path)
        assert loaded.network_abstraction is None
        assert loaded.states is not None

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, junk=np.zeros(2))
        with pytest.raises(ArtifactError):
            load_artifacts(path)
