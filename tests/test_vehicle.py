"""Tests for the vehicle substrate: geometry, rendering, closed loop."""

import numpy as np
import pytest

from repro.errors import VehicleError
from repro.monitor import BoxMonitor
from repro.nn import TrainConfig, train
from repro.vehicle import (
    Camera,
    CarPose,
    DriveConfig,
    Perception,
    PerceptionConfig,
    ScenarioConfig,
    Track,
    VehiclePlatform,
    feature_dataset,
    generate_dataset,
)


@pytest.fixture(scope="module")
def track():
    return Track(radius=3.0, width=0.6)


@pytest.fixture(scope="module")
def camera():
    return Camera(frame_size=24)


@pytest.fixture(scope="module")
def perception():
    return Perception.build(PerceptionConfig(frame_size=24, hidden_dims=(12, 8)))


class TestTrack:
    def test_position_on_circle(self, track):
        for s in np.linspace(0, track.length, 7):
            assert np.linalg.norm(track.position(s)) == pytest.approx(3.0)

    def test_nearest_arc_roundtrip(self, track):
        for s in [0.0, 2.0, 10.0]:
            p = track.position(s)
            assert track.nearest_arc(p) == pytest.approx(s % track.length, abs=1e-9)

    def test_lateral_error_signs(self, track):
        inside = track.pose(0.0, lateral=-0.1)
        outside = track.pose(0.0, lateral=0.1)
        assert track.lateral_error(inside.position) == pytest.approx(-0.1)
        assert track.lateral_error(outside.position) == pytest.approx(0.1)

    def test_on_track(self, track):
        assert track.on_track(track.position(1.0))
        assert not track.on_track(np.zeros(2))

    def test_waypoint_is_ahead(self, track):
        pose = track.pose(0.0)
        wp = track.waypoint_ahead(pose, 1.0)
        assert (wp - pose.position) @ pose.forward > 0

    def test_colors_brightness(self, track):
        pts = np.array([[3.0, 0.0], [0.0, 0.0]])
        nominal = track.world_colors(pts)
        bright = track.world_colors(pts, brightness=1.3)
        assert np.all(bright >= nominal - 1e-12)

    def test_invalid_geometry(self):
        with pytest.raises(VehicleError):
            Track(radius=1.0, width=2.0)


class TestCamera:
    def test_frame_shape_and_range(self, track, camera):
        frame = camera.render(track, track.pose(0.0))
        assert frame.image.shape == (3, 24, 24)
        assert frame.image.min() >= 0.0 and frame.image.max() <= 1.0

    def test_vout_centered_when_straight_on_centerline(self, track):
        cam = Camera(frame_size=48, lookahead=0.5)
        vout, _ = cam.waypoint_vout(track, track.pose(0.0))
        # short lookahead on a gentle circle: waypoint near image center,
        # slightly left (counterclockwise turn).
        assert 0.3 < vout <= 0.5

    def test_vout_left_right_symmetry(self, track):
        cam = Camera(frame_size=48, lookahead=1.0)
        left_heading = track.pose(0.0, heading_offset=0.4)   # looking left
        right_heading = track.pose(0.0, heading_offset=-0.4)
        v_left, _ = cam.waypoint_vout(track, left_heading)
        v_right, _ = cam.waypoint_vout(track, right_heading)
        # heading rotated left => the waypoint appears on the RIGHT of the
        # image (and vice versa), which is what the steering law corrects.
        assert v_left > 0.5 > v_right

    def test_render_sees_road_ahead(self, track, camera):
        """Bottom-center pixels look at asphalt, not grass."""
        frame = camera.render(track, track.pose(0.0))
        bottom_center = frame.image[:, -1, 12]
        # On the centerline the car sees stripe or asphalt -- never grass.
        grass = np.array([0.13, 0.45, 0.17])
        assert np.linalg.norm(bottom_center - grass) > 0.2

    def test_brightness_drift_changes_pixels(self, track, camera):
        nominal = camera.render(track, track.pose(0.0), brightness=1.0)
        bright = camera.render(track, track.pose(0.0), brightness=1.3)
        assert bright.image.sum() > nominal.image.sum()

    def test_invalid_config(self):
        with pytest.raises(VehicleError):
            Camera(frame_size=4)


class TestPerception:
    def test_feature_dims(self, perception):
        assert perception.extractor.feature_dim >= 4
        feats = perception.extractor.extract(np.zeros((3, 24, 24)))
        assert feats.shape == (perception.extractor.feature_dim,)

    def test_features_nonneg(self, track, camera, perception):
        frame = camera.render(track, track.pose(1.0))
        feats = perception.extractor.extract(frame.image)
        assert np.all(feats >= 0.0)

    def test_batch_extraction(self, perception, rng):
        frames = rng.uniform(size=(5, 3, 24, 24))
        feats = perception.extractor.extract(frames)
        assert feats.shape == (5, perception.extractor.feature_dim)

    def test_predict_clipped(self, perception, rng):
        frames = rng.uniform(size=(4, 3, 24, 24))
        v = perception.predict(frames)
        assert np.all((v >= 0.0) & (v <= 1.0))

    def test_with_head_swaps_only_head(self, perception):
        other = perception.with_head(perception.head.perturb(
            0.1, np.random.default_rng(0)))
        assert other.extractor is perception.extractor
        assert other.head is not perception.head

    def test_waypoint_pixels_formula(self, perception, rng):
        frames = rng.uniform(size=(2, 3, 24, 24))
        pixels = perception.waypoint_pixels(frames)
        for (x, y), v in zip(pixels, perception.predict(frames)):
            assert x == int(24 * v)
            assert y == 8


class TestDatasetAndLoop:
    def test_dataset_labels_in_range(self, track, camera):
        data = generate_dataset(track, camera, 20,
                                ScenarioConfig(seed=1))
        assert len(data) == 20
        assert np.all((data.vout >= 0) & (data.vout <= 1))

    def test_feature_dataset_shapes(self, track, camera, perception):
        data = generate_dataset(track, camera, 10)
        x, y = feature_dataset(perception.extractor, data)
        assert x.shape == (10, perception.extractor.feature_dim)
        assert y.shape == (10, 1)

    def test_trained_car_follows_lane(self, track, camera, perception):
        data = generate_dataset(track, camera, 200, ScenarioConfig(seed=2))
        x, y = feature_dataset(perception.extractor, data)
        head = perception.head.copy()
        train(head, x, y, TrainConfig(epochs=60, learning_rate=3e-3,
                                      optimizer="adam"))
        platform = VehiclePlatform(track, camera, perception.with_head(head))
        log = platform.drive(DriveConfig(steps=120))
        assert log.mean_abs_lateral_error < 0.15
        assert len(log.vout) == 120

    def test_monitor_triggers_on_drift(self, track, camera, perception):
        data = generate_dataset(track, camera, 150, ScenarioConfig(seed=3))
        x, _ = feature_dataset(perception.extractor, data)
        mon = BoxMonitor(buffer=0.02)
        mon.calibrate(x)
        platform = VehiclePlatform(track, camera, perception)
        platform.drive(DriveConfig(steps=60, brightness=1.5,
                                   disturbance_std=0.5), monitor=mon)
        assert mon.out_of_bound_count > 0
        assert mon.kappa() > 0.0

    def test_drive_requires_positive_steps(self, track, camera, perception):
        platform = VehiclePlatform(track, camera, perception)
        with pytest.raises(VehicleError):
            platform.drive(DriveConfig(steps=0))
