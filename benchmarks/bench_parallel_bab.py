"""Parallel frontier branch and bound: wall-clock vs worker count.

Measures the tentpole of the frontier search on a width-64 threshold
workload (the scale where one node LP costs enough for concurrency to
matter): prove ``max c @ f(x) <= threshold`` with

* the historical scalar best-first search (``workers=1``, the baseline);
* the frontier search at ``workers in {1, 2, 4, 8}`` -- ``workers=1``
  isolates the frontier algorithm's own overhead/speculation, the wider
  runs add pure LP concurrency on top (the trajectory is identical across
  worker counts by construction, so their statuses must be byte-identical
  and their optima bitwise equal).

The speedup headline is ``speedup_vs_scalar`` at ``workers=4``; the
acceptance gate of the PR is >= 2x on a multi-core machine.  Wall-clock
numbers are only meaningful with real cores: the record carries
``cpu_count`` so single-core CI smoke runs are not misread as regressions
(the *correctness* cross-checks run everywhere and always assert).

Run standalone for the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_parallel_bab.py [output.json] [--smoke]

(``--smoke`` shrinks the width and node budget to CI-smoke size) or
through pytest for the human-readable report plus the determinism and
parity gates.
"""

import os
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone: make src/ and repo root importable
    _ROOT = Path(__file__).resolve().parent.parent
    for entry in (str(_ROOT / "src"), str(_ROOT)):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from repro.domains import Box
from repro.exact import BaBSolver, NetworkEncoding

from benchmarks.common import emit_json

INPUT_DIM = 8
WIDTH = 64
SMOKE_WIDTH = 16
WORKER_COUNTS = (1, 2, 4, 8)
REPEATS = 3


def _workload(width, probe_limit, seed=1, weight_scale=0.4):
    """The width-``width`` threshold workload: a threshold just above the
    probe run's sound upper bound, so proving it demands search effort
    comparable to the probe's -- and the sweep's 3x node budget guarantees
    every configuration closes with ``threshold_proved``."""
    from repro.nn import random_relu_network

    network = random_relu_network([INPUT_DIM, width, width, 2], seed=seed,
                                  weight_scale=weight_scale)
    box = Box(-np.ones(INPUT_DIM), np.ones(INPUT_DIM))
    c = np.array([1.0, -1.0])
    probe = BaBSolver(network, box, node_limit=probe_limit).maximize(c)
    threshold = probe.upper_bound + max(1e-3, 5e-3 * abs(probe.upper_bound))
    return network, box, c, threshold


def _best_of(fn, repeats=REPEATS):
    best_s = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - start)
    return result, best_s


def run_worker_sweep(width=WIDTH, probe_limit=500, repeats=REPEATS,
                     worker_counts=WORKER_COUNTS):
    """Scalar baseline plus the frontier search per worker count."""
    network, box, c, threshold = _workload(width, probe_limit)
    node_limit = 3 * probe_limit

    def solve(workers, frontier):
        # A cold encoding per run keeps base assembly inside the timed
        # region for every configuration equally.
        encoding = NetworkEncoding(network, box)
        solver = BaBSolver(network, box, encoding=encoding,
                           node_limit=node_limit, workers=workers,
                           frontier=frontier)
        return solver.maximize(c, threshold=threshold)

    scalar, scalar_s = _best_of(lambda: solve(1, False), repeats)
    rows = [{
        "mode": "scalar",
        "workers": 1,
        "status": scalar.status,
        "upper_bound": scalar.upper_bound,
        "lp_solves": scalar.lp_solves,
        "nodes": scalar.nodes,
        "rounds": scalar.rounds,
        "max_batch": scalar.max_batch,
        "wall_s": scalar_s,
        "speedup_vs_scalar": 1.0,
    }]
    for workers in worker_counts:
        res, wall_s = _best_of(lambda w=workers: solve(w, True), repeats)
        rows.append({
            "mode": "frontier",
            "workers": workers,
            "status": res.status,
            "upper_bound": res.upper_bound,
            "lp_solves": res.lp_solves,
            "nodes": res.nodes,
            "rounds": res.rounds,
            "max_batch": res.max_batch,
            "mean_batch": res.mean_batch,
            "wall_s": wall_s,
            "speedup_vs_scalar": scalar_s / wall_s if wall_s > 0
            else float("inf"),
        })
    return {
        "width": width,
        "threshold": threshold,
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }


def check_determinism(record):
    """The correctness gates every run must satisfy, any machine."""
    rows = record["rows"]
    frontier = [r for r in rows if r["mode"] == "frontier"]
    scalar = next(r for r in rows if r["mode"] == "scalar")
    # Byte-identical verdicts and bitwise-identical bounds across worker
    # counts (the trajectory does not depend on the pool width) ...
    assert len({r["status"] for r in frontier}) == 1, frontier
    assert len({r["upper_bound"] for r in frontier}) == 1, frontier
    assert len({r["lp_solves"] for r in frontier}) == 1, frontier
    # ... and agreement with the scalar search.  Scalar vs frontier is a
    # *different algorithm* (best-first vs width-K rounds), so near the
    # node budget the two can legitimately land on different closing
    # statuses; accept any pair of sound "proof closed" verdicts, and
    # require bound agreement only when both ran to optimality.  (At
    # "threshold_proved" the bound's *value* at proof time is
    # trajectory-dependent -- both must merely sit below the threshold.)
    closed = {"threshold_proved", "optimal"}
    s, f = scalar["status"], frontier[0]["status"]
    assert s == f or (s in closed and f in closed), (s, f)
    if s == f == "optimal":
        assert abs(frontier[0]["upper_bound"] - scalar["upper_bound"]) <= 1e-6
    for r in (scalar, frontier[0]):
        if r["status"] == "threshold_proved":
            assert r["upper_bound"] <= record["threshold"] + 1e-6, r


def test_report_parallel_bab(capsys):
    record = run_worker_sweep(width=SMOKE_WIDTH, probe_limit=60, repeats=1,
                              worker_counts=(1, 2, 4))
    lines = [f"\nParallel frontier BaB, width {record['width']} "
             f"(cpu_count={record['cpu_count']})",
             f"  {'mode':>8} | {'workers':>7} | {'status':>17} | "
             f"{'lp_solves':>9} | {'wall [ms]':>9} | {'speedup':>7}"]
    for r in record["rows"]:
        lines.append(
            f"  {r['mode']:>8} | {r['workers']:>7} | {r['status']:>17} | "
            f"{r['lp_solves']:>9} | {1e3 * r['wall_s']:>9.1f} | "
            f"{r['speedup_vs_scalar']:>6.2f}x")
    with capsys.disabled():
        print("\n".join(lines))
    check_determinism(record)


def main(path=None, smoke=False):
    record = run_worker_sweep(
        width=SMOKE_WIDTH if smoke else WIDTH,
        probe_limit=60 if smoke else 500,
        repeats=1 if smoke else REPEATS,
        worker_counts=(1, 2, 4) if smoke else WORKER_COUNTS,
    )
    check_determinism(record)
    payload = {"smoke": smoke, "worker_sweep": record}
    emit_json("bench_parallel_bab", payload, path=path)


if __name__ == "__main__":
    argv = [a for a in sys.argv[1:]]
    smoke = "--smoke" in argv
    argv = [a for a in argv if a != "--smoke"]
    main(argv[0] if argv else None, smoke=smoke)
