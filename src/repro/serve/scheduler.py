"""The verification service: a scheduler over the job store + executors.

:class:`VerificationService` accepts Specs (objects or wire dicts),
fingerprints them against the verdict cache, queues misses in the
persistent :class:`~repro.serve.store.JobStore`, and drains the queue
with a pool of worker threads, each handing claimed jobs to the
configured executor (in-process engine or ``verify-spec`` subprocess),
always wrapped in a :class:`~repro.serve.resilience.SupervisedExecutor`
(circuit breaker per link, optional failover chain).

Scheduling is priority-then-FIFO (the store's ``claim_next`` order),
cancellation is immediate for queued jobs and best-effort for running
ones (the result is discarded and never cached), and per-job timeouts are
enforced by the executor (preemptively for subprocesses, post-hoc for
in-process runs).  A cache hit never touches an executor: the job is
recorded ``done`` at submission with the cached verdict, its provenance
re-marked ``cached: true`` so clients can see no new solve happened.

Fault tolerance (PR 6), driven by one :class:`~repro.api.config
.ServeConfig`:

* every executor failure is classified against the taxonomy in
  :mod:`repro.errors` and persisted per attempt in the store's
  ``attempts`` table;
* *transient* failures (crash, hang, malformed wire reply) are retried
  with exponential backoff + deterministic jitter until the per-job
  attempt budget runs out; *permanent* failures (bad specs, solver
  rejections) fail terminally on first sight;
* when every breaker in the executor chain is open, workers stop
  claiming, and a job caught mid-flight is parked *without* charging its
  attempt budget;
* a queue-depth limit rejects submissions with
  :class:`~repro.errors.QueueFullError` (HTTP 503 + ``Retry-After``);
* a client deadline travels submit -> store -> executor: expired jobs are
  failed at claim time instead of started, and the executor's timeout is
  clipped to the remaining deadline so work never outlives its use.

Certificate reuse (PR 9): when the service default config's ``certs``
policy is not ``"off"``, in-process executor links are handed the
service's own :class:`JobStore` as their certificate provider (wrapped in
:class:`_CertProvider` for hit/miss/stored counters).  A proved threshold
job records its covering frontier under its weight-tolerant certificate
key; re-verifying a perturbed network finds it and warm-starts.  Two
invariants guard the store's existing guarantees: a warm-started verdict
is **never** written to the verdict cache (its provenance depends on
store state, while the cache promises that matching job fingerprints
yield identical verdict documents), and the verdict *decision* is
re-derived in full by the solver either way, so cert state can never
change an answer.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import QueueFullError, ServeError
from repro.serve.executors import make_executor
from repro.serve.resilience import (
    ExecutorUnavailableError,
    SupervisedExecutor,
    classify_failure,
)
from repro.serve.store import (
    JOB_QUEUED,
    JOB_RUNNING,
    AttemptRecord,
    JobRecord,
    JobStore,
    job_fingerprint,
)

__all__ = ["VerificationService"]


class VerificationService:
    """Asynchronous verification: submit Specs now, collect Verdicts later.

    ``store`` is a :class:`JobStore` or a path for one (``":memory:"``
    for a transient service); ``executor`` an executor instance, a name
    (``"inprocess"`` / ``"subprocess"``), or a *sequence* of either --
    a failover chain, tried in order (e.g. ``("subprocess", "inprocess")``
    degrades gracefully when subprocess spawning breaks); ``workers`` the
    number of concurrent jobs; ``default_config`` the
    :class:`~repro.api.config.VerifyConfig` applied to submissions that
    do not bundle their own; ``serve_config`` the
    :class:`~repro.api.config.ServeConfig` resilience knobs (retry
    policy, circuit breakers, backpressure).
    """

    def __init__(self, store: Union[JobStore, str] = ":memory:",
                 executor: Union[str, object, Sequence] = "inprocess",
                 workers: int = 1,
                 default_config=None,
                 poll_interval: float = 0.05,
                 serve_config=None):
        if workers < 1:
            raise ServeError(f"workers must be positive, got {workers}")
        from repro.api.config import ServeConfig, VerifyConfig

        self.serve_config = serve_config or ServeConfig()
        self.retry_policy = self.serve_config.retry_policy()
        if isinstance(store, JobStore):
            self.store = store
        else:
            # The store's crash-loop ceiling must cover the retry budget,
            # or claim_next would give a job up before its last retry.
            self.store = JobStore(
                store,
                max_attempts=max(3, self.serve_config.retry_attempts))
        self.workers = int(workers)
        self.default_config = default_config or VerifyConfig()
        # Built after default_config: executor links pick up the cert
        # provider when the service-level policy enables reuse.
        self.executor = self._build_executor(executor)
        self.poll_interval = float(poll_interval)
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._threads: List[threading.Thread] = []
        self._cancel_lock = threading.Lock()
        self._cancel_requested: set = set()  # guarded-by: self._cancel_lock
        self._stats_lock = threading.Lock()
        self.executed_jobs = 0        # guarded-by: self._stats_lock
        self.cache_hits = 0           # guarded-by: self._stats_lock
        self.worker_errors = 0        # guarded-by: self._stats_lock
        self.retries = 0              # guarded-by: self._stats_lock
        self.rejected_jobs = 0        # guarded-by: self._stats_lock
        self.parked_unavailable = 0   # guarded-by: self._stats_lock
        self.cert_hits = 0            # guarded-by: self._stats_lock
        self.cert_misses = 0          # guarded-by: self._stats_lock
        self.cert_stored = 0          # guarded-by: self._stats_lock
        self.cert_reused = 0          # guarded-by: self._stats_lock
        # guarded-by: self._stats_lock
        self.failures_by_type: Dict[str, int] = {}

    def _build_executor(self, executor):
        """Resolve names/instances into one supervised failover chain.
        Executors that carry their own supervision (``supervised = True``,
        e.g. the coordinator's :class:`~repro.serve.remote.ShardRouter`
        with one breaker per shard) pass through unwrapped."""
        if isinstance(executor, SupervisedExecutor) or \
                getattr(executor, "supervised", False):
            return executor
        links = (list(executor) if isinstance(executor, (list, tuple))
                 else [executor])
        if not links:
            raise ServeError("executor chain must not be empty")

        def _link(spec):
            if spec == "subprocess":
                from repro.serve.executors import SubprocessExecutor

                return SubprocessExecutor(
                    kill_grace=self.serve_config.kill_grace)
            link = make_executor(spec)
            # In-process links get the service's own store as their
            # certificate provider (subprocess children have no handle
            # into this process and simply solve cold -- sound either
            # way).  Gated on the *service* policy: per-job configs can
            # tighten to "off" but cannot conjure a provider.
            if self.default_config.certs != "off" and \
                    getattr(link, "certs", "absent") is None:
                link.certs = _CertProvider(self)
            return link

        return SupervisedExecutor(
            [_link(link) for link in links],
            failure_threshold=self.serve_config.breaker_threshold,
            reset_timeout=self.serve_config.breaker_reset)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "VerificationService":
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return self
        self._stop.clear()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{i}", daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def close(self, wait: bool = True) -> None:
        """Stop the workers (in-flight jobs finish first) and close the
        store.  The store stays crash-consistent either way; ``close`` is
        the polite shutdown, a kill is the recovery test."""
        self._stop.set()
        self._wake.set()
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads = []
        closer = getattr(self.executor, "close", None)
        if callable(closer):  # e.g. the ShardRouter's health checker
            closer()
        self.store.close()

    def __enter__(self) -> "VerificationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------- submission
    def submit(self, spec, config=None, priority: int = 0,
               timeout: Optional[float] = None,
               deadline: Optional[float] = None) -> JobRecord:
        """Accept one verification request; returns its job record.

        ``spec`` is a Spec object or its wire dict; ``config`` a
        VerifyConfig, its dict form, or ``None`` for the service default;
        ``timeout`` the per-attempt wall-clock budget; ``deadline`` the
        *total* client budget in seconds from now -- after it passes the
        job is failed instead of (re)started, and the executor timeout is
        clipped to the remaining deadline.
        An identical ``(spec, config)`` already answered by this store is
        served from the verdict cache instantly -- the returned record is
        already ``done`` with ``cache_hit`` set and the verdict's
        provenance marked ``cached``.  When the queue-depth limit is hit,
        raises :class:`~repro.errors.QueueFullError` (cache hits are
        exempt: they queue nothing).
        """
        from repro.api.config import VerifyConfig
        from repro.api.specs import Spec, spec_from_dict, spec_to_json

        if isinstance(spec, Spec):
            spec_obj = spec
        elif isinstance(spec, dict):
            spec_obj = spec_from_dict(spec)  # validates + normalises
        else:
            raise ServeError(
                f"submit needs a Spec or its wire dict, got "
                f"{type(spec).__name__}")
        if config is None:
            cfg = self.default_config
        elif isinstance(config, VerifyConfig):
            cfg = config
        elif isinstance(config, dict):
            cfg = VerifyConfig.from_dict(config)
        else:
            raise ServeError(
                f"submit needs a VerifyConfig or its dict form, got "
                f"{type(config).__name__}")
        for name, value in (("timeout", timeout), ("deadline", deadline)):
            if value is not None and \
                    not (value > 0 and math.isfinite(value)):
                # The executors disagree on a non-positive budget (instant
                # subprocess kill vs full solve discarded late), and an
                # inf cannot survive the strict-JSON record; reject at the
                # door.
                raise ServeError(
                    f"job {name} must be positive and finite, got "
                    f"{value!r}")

        from repro.api.serialize import config_to_json

        fingerprint = job_fingerprint(spec_obj, cfg)
        spec_json = spec_to_json(spec_obj, sort_keys=True)
        config_json = config_to_json(cfg)

        cached = self.store.cache_get(fingerprint)
        if cached is not None:
            with self._stats_lock:
                self.cache_hits += 1
            return self.store.submit(
                spec_json, config_json, fingerprint, priority=priority,
                timeout=timeout, verdict_json=_mark_cached(cached),
                cache_hit=True)
        limit = self.serve_config.queue_limit
        if limit is not None:
            depth = self.store.queue_depth()
            if depth >= limit:
                with self._stats_lock:
                    self.rejected_jobs += 1
                raise QueueFullError(
                    f"queue full ({depth} queued >= limit {limit}); "
                    "retry later",
                    retry_after=self.serve_config.retry_after)
        record = self.store.submit(
            spec_json, config_json, fingerprint, priority=priority,
            timeout=timeout,
            deadline=None if deadline is None else time.time() + deadline)
        self._wake.set()
        return record

    # -------------------------------------------------------------- queries
    def job(self, job_id: str) -> JobRecord:
        return self.store.get(job_id)

    def jobs(self, state: Optional[str] = None,
             limit: Optional[int] = None) -> List[JobRecord]:
        return self.store.list_jobs(state=state, limit=limit)

    def attempt_log(self, job_id: str) -> List[AttemptRecord]:
        """Every recorded execution attempt of one job, oldest first."""
        self.store.get(job_id)  # raises for unknown jobs
        return self.store.attempt_log(job_id)

    # ---------------------------------------------------- coordinator fleet
    def register_worker(self, url: str) -> Dict:
        """Register (or heartbeat) a worker shard -- coordinator mode
        only (the executor must be a shard router)."""
        add = getattr(self.executor, "add_worker", None)
        if not callable(add):
            raise ServeError(
                "this server is not a coordinator (start it with "
                "repro serve --coordinator to accept worker registration)")
        return add(url)

    def worker_states(self) -> List[Dict]:
        """Per-shard registry records -- coordinator mode only."""
        registry = getattr(self.executor, "registry", None)
        if registry is None:
            raise ServeError(
                "this server is not a coordinator (no worker registry)")
        return registry.states()

    def wait(self, job_id: str, timeout: Optional[float] = 60.0,
             poll: float = 0.02) -> JobRecord:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = poll
        while True:
            record = self.store.get(job_id)
            if record.terminal:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.state} after {timeout:g}s")
            time.sleep(delay)
            # Capped exponential backoff: cheap while jobs are short,
            # polite while they are long.
            delay = min(delay * 1.5, 0.5)

    def verdict(self, job_id: str):
        """The finished job's :class:`~repro.api.verdict.Verdict` object."""
        from repro.api.serialize import verdict_from_json

        record = self.store.get(job_id)
        if record.verdict_json is None:
            raise ServeError(
                f"job {job_id} has no verdict (state {record.state!r}"
                + (f", error {record.error!r}" if record.error else "") + ")")
        return verdict_from_json(record.verdict_json)

    def cancel(self, job_id: str) -> str:
        """Cancel a job; returns its state afterwards.  Queued jobs
        (including ones parked between retry attempts) are cancelled
        immediately; running jobs best-effort (the executor is not
        interrupted, but the result is discarded and never cached)."""
        # Two passes cover the retry race: a job read as ``running`` may
        # be requeued for backoff before the flag lands -- the second
        # pass then cancels it in the queue.
        for _ in range(2):
            state = self.store.cancel_queued(job_id)
            if state != JOB_RUNNING:
                return state
            with self._cancel_lock:
                self._cancel_requested.add(job_id)
            current = self.store.get(job_id).state
            if current == JOB_RUNNING:
                return JOB_RUNNING
            # The job left ``running`` between the state read and the
            # flag: the worker's own cleanup has then already run (or the
            # job is queued again for a retry), so drop the flag here and
            # handle the real state.
            self._clear_cancel(job_id)
            if current != JOB_QUEUED:
                return current
        return self.store.get(job_id).state

    def stats(self) -> Dict:
        counts = self.store.counts()
        with self._stats_lock:
            executed, cache_hits = self.executed_jobs, self.cache_hits
            worker_errors = self.worker_errors
            resilience = {
                "retries": self.retries,
                "rejected_jobs": self.rejected_jobs,
                "parked_unavailable": self.parked_unavailable,
                "failures_by_type": dict(self.failures_by_type),
            }
            certificates = {
                "policy": self.default_config.certs,
                "hits": self.cert_hits,
                "misses": self.cert_misses,
                "stored": self.cert_stored,
                "reused": self.cert_reused,
            }
        certificates["store"] = self.store.cert_stats()
        resilience["retry_policy"] = {
            "max_attempts": self.retry_policy.max_attempts,
            "base_delay": self.retry_policy.base_delay,
            "max_delay": self.retry_policy.max_delay,
        }
        resilience["queue_limit"] = self.serve_config.queue_limit
        resilience["executor"] = self.executor.stats()
        return {
            "jobs": counts,
            "queued": counts[JOB_QUEUED],
            "running": counts[JOB_RUNNING],
            "executed_jobs": executed,
            "cache_hits": cache_hits,
            "worker_errors": worker_errors,
            "verdict_cache": self.store.cache_stats(),
            "certificates": certificates,
            "recovered_jobs": self.store.recovered_jobs,
            "workers": self.workers,
            "executor": self.executor.name,
            "resilience": resilience,
        }

    # -------------------------------------------------------------- workers
    def _executor_shard(self) -> Optional[str]:
        """Which shard the calling thread's last execute call routed to
        (``None`` for non-routing executors)."""
        last = getattr(self.executor, "last_shard", None)
        return last() if callable(last) else None

    def _cancelled(self, job_id: str) -> bool:
        with self._cancel_lock:
            return job_id in self._cancel_requested

    def _clear_cancel(self, job_id: str) -> None:
        with self._cancel_lock:
            self._cancel_requested.discard(job_id)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            if not self.executor.available():
                # Every breaker is open: claiming would only burn attempt
                # budgets.  Sleep until the next half-open probe window.
                self._stop.wait(self.poll_interval)
                continue
            try:
                record = self.store.claim_next()
            except Exception:
                # A transient store error (sqlite busy, disk hiccup) must
                # not kill the worker -- a dead thread would silently
                # degrade the service while /healthz still reports ok.
                # Count it and back off (mid-shutdown: bow out quietly).
                if self._stop.is_set():
                    return
                with self._stats_lock:
                    self.worker_errors += 1
                self._stop.wait(self.poll_interval)
                continue
            if record is None:
                self._wake.wait(self.poll_interval)
                self._wake.clear()
                continue
            try:
                self._run_job(record)
            except Exception:
                # _run_job contains per-job errors itself; reaching here
                # means a *store transition* failed.  Same policy: count,
                # back off, keep the worker alive.
                if self._stop.is_set():
                    return
                with self._stats_lock:
                    self.worker_errors += 1
                self._stop.wait(self.poll_interval)

    def _run_job(self, record: JobRecord) -> None:
        job_id = record.job_id
        terminal = False
        try:
            if self._cancelled(job_id):
                self.store.mark_cancelled(job_id)
                terminal = True
                return
            # A duplicate of a job that *finished while this one queued*
            # is answered from the cache here instead of re-solving (the
            # submit-time check can only see verdicts that existed then;
            # concurrently-running duplicates still race — acceptable:
            # first writer wins the cache either way).
            cached = self.store.cache_get(record.fingerprint)
            if cached is not None:
                with self._stats_lock:
                    self.cache_hits += 1
                self.store.finish(job_id, _mark_cached(cached),
                                  cache_hit=True)
                terminal = True
                return
            started = time.time()
            timeout = record.timeout
            if record.deadline is not None:
                remaining = record.deadline - started
                if remaining <= 0:
                    # claim_next races the clock; re-check before working.
                    self.store.fail(job_id,
                                    "deadline exceeded before execution",
                                    error_type="JobDeadlineError")
                    terminal = True
                    return
                timeout = (remaining if timeout is None
                           else min(timeout, remaining))
            try:
                verdict_dict = self.executor.execute(
                    record.spec_json, record.config_json, timeout=timeout)
            except ExecutorUnavailableError:
                # Nothing ever ran this job (all breakers opened between
                # the availability check and the call): park it without
                # charging its attempt budget, aligned to the next
                # half-open probe window.
                delay = max(self.poll_interval,
                            min(self.serve_config.breaker_reset, 1.0))
                self.store.requeue(job_id, not_before=time.time() + delay,
                                   uncount=True)
                with self._stats_lock:
                    self.parked_unavailable += 1
                return
            except Exception as exc:  # noqa: BLE001 - classified below
                terminal = self._handle_failure(record, exc, started)
                return
            with self._stats_lock:
                self.executed_jobs += 1
            self.store.record_attempt(job_id, record.attempts, "ok",
                                      started_at=started,
                                      shard=self._executor_shard())
            verdict_json = json.dumps(verdict_dict, allow_nan=False,
                                      sort_keys=True)
            if self._cancelled(job_id):
                # Cancelled while running: discard, crucially never cache.
                self.store.mark_cancelled(job_id)
                terminal = True
                return
            self.store.finish(job_id, verdict_json)
            provenance = verdict_dict.get("provenance") or {}
            if provenance.get("cert_hit"):
                # A warm-started verdict's provenance (cert_hit, reuse
                # counters, lp_solves) depends on what the certificate
                # store happened to contain, while the verdict cache
                # promises that one fingerprint maps to one verdict
                # document.  The job is answered; only the cache write is
                # skipped -- the next identical submission re-solves (and
                # warm-starts again).
                with self._stats_lock:
                    self.cert_reused += 1
            else:
                self.store.cache_put(record.fingerprint, verdict_json)
            terminal = True
        finally:
            # Drop any cancel flag once the job is terminal.  A job
            # *parked* for a retry (or breaker cool-down) keeps its flag,
            # so the next claim cancels it immediately instead of
            # re-running it.
            if terminal:
                self._clear_cancel(job_id)

    def _handle_failure(self, record: JobRecord, exc: Exception,
                        started: float) -> bool:
        """Classify, persist, and route one failed attempt.  Returns True
        when the job went terminal (vs parked for a retry)."""
        job_id = record.job_id
        error_type, transient = classify_failure(exc)
        attempt = record.attempts  # the claim already bumped it
        self.store.record_attempt(job_id, attempt, error_type,
                                  error=str(exc), transient=transient,
                                  started_at=started,
                                  shard=self._executor_shard())
        with self._stats_lock:
            self.executed_jobs += 1
            self.failures_by_type[error_type] = \
                self.failures_by_type.get(error_type, 0) + 1
        if self._cancelled(job_id):
            self.store.mark_cancelled(job_id)
            return True
        if transient and self.retry_policy.should_retry(attempt, transient):
            delay = self.retry_policy.delay(job_id, attempt)
            if record.deadline is not None and \
                    time.time() + delay >= record.deadline:
                self.store.fail(
                    job_id,
                    f"{error_type}: {exc} (deadline leaves no room to "
                    "retry)",
                    error_type="JobDeadlineError")
                return True
            self.store.requeue(job_id, not_before=time.time() + delay)
            with self._stats_lock:
                self.retries += 1
            return False
        suffix = ("" if not transient
                  else f" (gave up after {attempt} attempts)")
        self.store.fail(job_id, f"{error_type}: {exc}{suffix}",
                        error_type=error_type)
        return True


class _CertProvider:
    """The engine-facing certificate provider for in-process executor
    links: the service's own :class:`~repro.serve.store.JobStore`,
    instrumented with the scheduler's hit/miss/stored counters.  Speaks
    wire strings only (``cert_json`` in and out), per cert-discipline."""

    def __init__(self, service: VerificationService):
        self._service = service

    def cert_get(self, cert_key: str):
        cert_json = self._service.store.cert_get(cert_key)
        with self._service._stats_lock:
            if cert_json is None:
                self._service.cert_misses += 1
            else:
                self._service.cert_hits += 1
        return cert_json

    def cert_put(self, cert_key: str, cert_json: str) -> None:
        self._service.store.cert_put(cert_key, cert_json)
        with self._service._stats_lock:
            self._service.cert_stored += 1


def _mark_cached(verdict_json: str) -> str:
    """Re-mark a cached verdict's provenance before replaying it."""
    data = json.loads(verdict_json)
    provenance = data.setdefault("provenance", {})
    provenance["cached"] = True
    return json.dumps(data, allow_nan=False, sort_keys=True)
