"""Backward interval reasoning: preimage-constrained box refinement.

The paper's closing remarks name "symbolic reasoning using both forward and
backward propagation in a continuous verification setup" as a direction.
This module implements the backward half for box domains: given an input
box and an *output* constraint, it shrinks the per-layer (and input) boxes
to the part that can actually reach the constrained outputs -- interval
constraint propagation in the HC4-revise style:

* forward sweep: ordinary interval propagation records pre/post boxes;
* backward sweep: the output box is intersected into the last layer, each
  activation is inverted interval-wise (``ReLU^{-1}([l, u])`` keeps the
  negative part only when ``l <= 0``), and each affine layer refines its
  inputs row by row (solving ``z_i = Σ w_ij x_j + b_i`` for each ``x_j``
  given interval bounds on everything else);
* sweeps repeat until a fixed point (or the iteration budget).

Uses in continuous verification: shrinking an enlarged input domain to the
sub-region that could possibly violate ``Dout`` before handing it to the
exact solver, and diagnosing *which* monitor dimensions matter for a
reported enlargement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import UnsupportedLayerError
from repro.domains.box import Box, BoxPropagator
from repro.nn.layers import LeakyReLU, ReLU
from repro.nn.network import Network

__all__ = ["BackwardRefinement", "refine_input_box"]


@dataclass
class BackwardRefinement:
    """Result of forward/backward refinement.

    ``input_box`` is ``None`` when the analysis proves that *no* point of
    the original input box reaches the output constraint (the constrained
    region is empty -- e.g. no violation is reachable).
    """

    input_box: Optional[Box]
    layer_boxes: List[Optional[Box]]
    iterations: int
    empty: bool

    @property
    def volume_ratio(self) -> float:
        """Refined / original input volume (0 when proven empty)."""
        return self._ratio

    _ratio: float = 1.0


def _invert_activation(act, post: Box, pre: Box) -> Optional[Box]:
    """Intersect ``pre`` with the preimage of ``post`` under ``act``."""
    if act is None:
        return pre.intersection(post)
    if isinstance(act, ReLU):
        slope = 0.0
    elif isinstance(act, LeakyReLU):
        slope = act.alpha
    else:
        raise UnsupportedLayerError(
            f"backward analysis supports ReLU/LeakyReLU, not {type(act).__name__}")
    lo = np.empty(post.dim)
    hi = np.empty(post.dim)
    for i in range(post.dim):
        pl, pu = post.lower[i], post.upper[i]
        # y = max(z, slope*z).  Invert on the two linear pieces.
        # Positive piece: z in [max(pl,0), pu] when pu >= 0.
        # Negative piece: z in [pl/slope, min(pu,0)/slope] (slope>0) or
        # z in (-inf, 0] when slope == 0 and pl <= 0 <= pu covers y=0.
        cand_lo, cand_hi = np.inf, -np.inf
        if pu >= 0.0:
            cand_lo = min(cand_lo, max(pl, 0.0))
            cand_hi = max(cand_hi, pu)
        if slope > 0.0:
            neg_hi = min(pu, 0.0)
            if pl <= neg_hi:
                cand_lo = min(cand_lo, pl / slope)
                cand_hi = max(cand_hi, neg_hi / slope)
        elif pl <= 0.0 <= pu:
            # ReLU outputs 0 for every non-positive pre-activation.
            cand_lo = -np.inf
            cand_hi = max(cand_hi, 0.0) if cand_hi == -np.inf else cand_hi
        if cand_lo > cand_hi:
            return None  # empty preimage for this neuron
        lo[i] = max(pre.lower[i], cand_lo)
        hi[i] = min(pre.upper[i], cand_hi)
        if lo[i] > hi[i]:
            return None
    return Box(lo, hi)


def _backward_affine(weight: np.ndarray, bias: np.ndarray,
                     z_box: Box, x_box: Box) -> Optional[Box]:
    """Refine ``x_box`` given ``z = W x + b`` with ``z`` in ``z_box``
    (one HC4-revise sweep over the rows)."""
    lo = x_box.lower.copy()
    hi = x_box.upper.copy()
    for i in range(weight.shape[0]):
        row = weight[i]
        zl = z_box.lower[i] - bias[i]
        zu = z_box.upper[i] - bias[i]
        # interval of sum_j row_j x_j restricted to [zl, zu]
        contrib_lo = np.where(row >= 0, row * lo, row * hi)
        contrib_hi = np.where(row >= 0, row * hi, row * lo)
        total_lo, total_hi = contrib_lo.sum(), contrib_hi.sum()
        if total_lo > zu + 1e-12 or total_hi < zl - 1e-12:
            return None  # row constraint unsatisfiable within x_box
        for j in np.flatnonzero(np.abs(row) > 1e-12):
            rest_lo = total_lo - contrib_lo[j]
            rest_hi = total_hi - contrib_hi[j]
            # row_j * x_j must lie in [zl - rest_hi, zu - rest_lo]
            term_lo = zl - rest_hi
            term_hi = zu - rest_lo
            if row[j] > 0:
                new_lo, new_hi = term_lo / row[j], term_hi / row[j]
            else:
                new_lo, new_hi = term_hi / row[j], term_lo / row[j]
            if new_lo > lo[j]:
                lo[j] = min(new_lo, hi[j])
            if new_hi < hi[j]:
                hi[j] = max(new_hi, lo[j])
            if lo[j] > hi[j]:
                return None
    return Box(lo, hi)


def refine_input_box(network: Network, input_box: Box, output_box: Box,
                     iterations: int = 3) -> BackwardRefinement:
    """Shrink ``input_box`` to the region that can reach ``output_box``.

    Sound over-approximation of ``{x in input_box : f(x) in output_box}``;
    returns ``empty=True`` when that set is proven empty.  Typical use:
    ``output_box`` = the *complement-side* band of a safety bound, so an
    ``empty`` verdict proves safety and a small refined box focuses the
    exact solver.
    """
    propagator = BoxPropagator()
    current_in = input_box
    layer_post: List[Box] = []
    iters = 0
    for iters in range(1, iterations + 1):
        # ---- forward sweep -------------------------------------------------
        pre_boxes: List[Box] = []
        post_boxes: List[Box] = []
        cur = current_in
        for block in network.blocks():
            from repro.domains.box import affine_bounds

            pre = affine_bounds(block.dense.weight, block.dense.bias, cur)
            post = (pre if block.activation is None
                    else propagator.propagate_activation(block.activation, pre))
            pre_boxes.append(pre)
            post_boxes.append(post)
            cur = post
        # ---- backward sweep ------------------------------------------------
        constraint: Optional[Box] = post_boxes[-1].intersection(output_box)
        if constraint is None:
            return BackwardRefinement(None, [], iters, True, _ratio=0.0)
        new_in = current_in
        for k in range(network.num_blocks - 1, -1, -1):
            block = network.blocks()[k]
            pre_refined = _invert_activation(block.activation, constraint,
                                             pre_boxes[k])
            if pre_refined is None:
                return BackwardRefinement(None, [], iters, True, _ratio=0.0)
            source = current_in if k == 0 else post_boxes[k - 1]
            refined = _backward_affine(block.dense.weight, block.dense.bias,
                                       pre_refined, source)
            if refined is None:
                return BackwardRefinement(None, [], iters, True, _ratio=0.0)
            if k == 0:
                new_in = refined
            else:
                post_boxes[k - 1] = refined
                constraint = refined
                continue
        layer_post = post_boxes
        if np.allclose(new_in.lower, current_in.lower) and \
                np.allclose(new_in.upper, current_in.upper):
            current_in = new_in
            break
        current_in = new_in
    ratio = (current_in.volume() / input_box.volume()
             if input_box.volume() > 0 else 1.0)
    return BackwardRefinement(current_in, list(layer_post), iters, False,
                              _ratio=float(ratio))
