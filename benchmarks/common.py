"""Shared workload construction for the benchmark suite.

Builds the Section V scenario once per session: a trained vehicle
perception head, its monitor-calibrated input domain, a sequence of four
fine-tuned versions (the paper's "totally we generate four networks from
the first in the incremental tuning process"), and four domain
enlargements recorded by the runtime monitor under increasing drift.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core import (
    BaselineOutcome,
    VerificationProblem,
    verify_from_scratch,
)
from repro.domains import Box
from repro.domains.propagate import inductive_states
from repro.monitor import BoxMonitor
from repro.nn import Network, TrainConfig, fine_tune, train
from repro.vehicle import (
    Camera,
    DriveConfig,
    Perception,
    PerceptionConfig,
    ScenarioConfig,
    Track,
    VehiclePlatform,
    feature_dataset,
    generate_dataset,
)

#: Number of incremental tuning steps (Table I has four cases).
NUM_CASES = 4


def emit_json(name: str, results, path: Optional[str] = None) -> str:
    """Emit one machine-readable benchmark record.

    Wraps ``results`` (any JSON-serialisable structure) with the benchmark
    name, a timestamp, and enough environment fingerprint to compare runs
    across PRs; prints the record to stdout and optionally writes it to
    ``path``.  Returns the serialised text so callers can post-process.
    """
    record = {
        "benchmark": name,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    text = json.dumps(record, indent=2, sort_keys=True)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(text)
    return text

#: State-abstraction buffer used by every baseline verification.
STATE_BUFFER = 0.05


@dataclass
class VehicleBundle:
    """Everything the benchmarks need, built once."""

    track: Track
    camera: Camera
    perception: Perception
    features: np.ndarray
    labels: np.ndarray
    din: Box
    dout: Box
    #: nets[0] is the originally verified head; nets[i] the i-th tuning.
    nets: List[Network] = field(default_factory=list)
    #: baselines[i] = from-scratch verification of nets[i] (with artifacts).
    baselines: List[BaselineOutcome] = field(default_factory=list)
    #: enlarged[i] = Din ∪ Δin recorded while operating nets[i].
    enlarged: List[Box] = field(default_factory=list)

    def problem(self, i: int) -> VerificationProblem:
        return VerificationProblem(self.nets[i], self.din, self.dout)


def build_vehicle_bundle(seed: int = 0) -> VehicleBundle:
    """Construct the full Table I workload (about a minute of compute)."""
    track = Track(radius=3.0, width=0.6)
    camera = Camera(frame_size=32)
    perception = Perception.build(PerceptionConfig(hidden_dims=(16, 12)))

    data = generate_dataset(track, camera, 400, ScenarioConfig(seed=seed))
    x, y = feature_dataset(perception.extractor, data)
    train(perception.head, x, y,
          TrainConfig(epochs=80, learning_rate=3e-3, optimizer="adam",
                      seed=seed))

    # Post-ReLU features are non-negative: floor Din at zero so every
    # downstream analysis (notably first-layer abstraction merging) keeps
    # the non-negative-input property.
    monitor = BoxMonitor(buffer=0.04, lower_floor=0.0)
    din = monitor.calibrate(x)
    sn = inductive_states(perception.head, din, buffer_rel=STATE_BUFFER)[-1]
    dout = sn.inflate(0.25 * float(sn.widths.max()) + 0.05)

    bundle = VehicleBundle(
        track=track, camera=camera, perception=perception,
        features=x, labels=y, din=din, dout=dout,
    )

    # --- the tuning sequence (frozen extractor, small-lr head tuning) ------
    bundle.nets.append(perception.head)
    rng = np.random.default_rng(seed + 1)
    for i in range(NUM_CASES):
        jitter = rng.normal(0.0, 0.01, size=y.shape)
        tuned = fine_tune(bundle.nets[-1], x, y + jitter,
                          learning_rate=1e-3, epochs=1, seed=seed + i)
        bundle.nets.append(tuned)

    # --- baselines: from-scratch verification per version ------------------
    for i in range(NUM_CASES):
        outcome = verify_from_scratch(
            bundle.problem(i), state_buffer=STATE_BUFFER, rigor="range",
            node_limit=120000)
        if outcome.holds is not True or not outcome.artifacts.states_prove_safety:
            raise RuntimeError(
                f"baseline verification of version {i} did not close: "
                f"{outcome.detail}")
        bundle.baselines.append(outcome)

    # --- monitored drift scenarios producing Δin per case ------------------
    for i in range(NUM_CASES):
        run_monitor = BoxMonitor(buffer=0.04)
        run_monitor.calibrate(x)
        platform = VehiclePlatform(
            track, camera, perception.with_head(bundle.nets[i]))
        platform.drive(
            DriveConfig(steps=50, brightness=1.6 + 0.1 * i,
                        disturbance_std=0.6 + 0.1 * i, seed=seed + i),
            monitor=run_monitor)
        enlarged = run_monitor.enlarged_box()
        if run_monitor.out_of_bound_count == 0:
            # Extremely tame run: fall back to a synthetic enlargement so
            # the SVuDC case still exists (documented in EXPERIMENTS.md).
            enlarged = din.inflate(0.002 * (i + 1))
        bundle.enlarged.append(enlarged)

    return bundle
