"""Proposition 3 in action: Lipschitz-based proof reuse.

First replays the paper's worked numeric example (Din=[1,2]^2, ell=100,
kappa=0.02, Sn=[1,8], Dout=[-10,10] -> inflated set [-1,10] fits), then
shows the same mechanism on a real trained network, sweeping the domain
enlargement until the Lipschitz argument stops applying -- the point where
the orchestrator would move on to Proposition 1's exact local check.

Run:  python examples/lipschitz_reuse.py
"""

import numpy as np

from repro.core import (
    ContinuousVerifier,
    LipschitzCertificate,
    ProofArtifacts,
    StateAbstractions,
    SVuDC,
    VerificationProblem,
    check_prop3,
    verify_from_scratch,
)
from repro.domains import Box, box_kappa
from repro.domains.propagate import inductive_states
from repro.lipschitz import empirical_lipschitz, global_lipschitz_bound
from repro.nn import TrainConfig, random_relu_network, train


def paper_example() -> None:
    print("== the paper's worked example ==")
    net = random_relu_network([2, 3, 1], seed=0)  # stand-in body
    problem = VerificationProblem(
        net, Box(np.ones(2), 2 * np.ones(2)),
        Box(np.array([-10.0]), np.array([10.0])))
    artifacts = ProofArtifacts(
        problem=problem,
        states=StateAbstractions(boxes=[Box(np.zeros(3), np.ones(3)),
                                        Box(np.array([1.0]), np.array([8.0]))]),
        lipschitz=LipschitzCertificate(ell=100.0),
    )
    enlarged = problem.din.inflate(0.01)
    kappa = box_kappa(problem.din, enlarged)
    print(f"Din=[1,2]^2, ring 0.01 per side -> kappa = {kappa:.4f} "
          "(paper rounds to 0.02)")
    res = check_prop3(artifacts, enlarged)
    print(f"ell*kappa = {100 * kappa:.3g}; inflate Sn=[1,8] -> "
          f"[{1 - 100 * kappa:.3g}, {8 + 100 * kappa:.3g}] ⊆ [-10,10]: "
          f"{res.holds}")


def trained_example() -> None:
    print("\n== on a trained network ==")
    rng = np.random.default_rng(0)
    net = random_relu_network([4, 14, 10, 1], seed=1)
    x = rng.uniform(size=(300, 4))
    y = (x @ np.array([0.6, -0.4, 0.8, 0.1]))[:, None]
    train(net, x, y, TrainConfig(epochs=40, learning_rate=3e-3,
                                 optimizer="adam"))
    din = Box(np.zeros(4), np.ones(4))
    sn = inductive_states(net, din, 0.03)[-1]
    problem = VerificationProblem(net, din, sn.inflate(0.5))
    baseline = verify_from_scratch(problem, state_buffer=0.03)
    ell = baseline.artifacts.lipschitz.ell
    print(f"certified ell = {ell:.4g}  "
          f"(empirical witness {empirical_lipschitz(net, din.sample(200, rng)):.4g}, "
          f"recomputed {global_lipschitz_bound(net):.4g})")

    verifier = ContinuousVerifier(baseline.artifacts)
    print(f"{'ring':>8}  {'kappa':>8}  strategy used")
    for ring in (1e-4, 1e-3, 5e-3, 2e-2, 1e-1):
        enlarged = din.inflate(ring)
        result = verifier.verify_domain_change(SVuDC(problem, enlarged))
        kappa = box_kappa(din, enlarged)
        print(f"{ring:>8.0e}  {kappa:>8.2e}  {result.strategy} "
              f"({'safe' if result.holds else 'not proved'})")


if __name__ == "__main__":
    paper_example()
    trained_example()
