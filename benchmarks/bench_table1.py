"""Table I: time savings from incremental verification.

Reproduces the paper's only results table.  For each of the four tuning
steps (case IDs 1-4):

* **SVuDC** -- the deployed network ``nets[i]``, previously verified on
  ``Din``, must be re-verified on the monitor-recorded ``Din ∪ Δin``.
  Incremental strategy: Proposition 1's exact two-layer head check (with
  Proposition 3 as the free arithmetic pre-check, mirroring the paper's
  "verification stops in the SVuDC case once the first part preserves the
  state abstraction").
* **SVbTV** -- the network fine-tuned into ``nets[i+1]`` must be verified.
  Incremental strategy: the paper's two-part decomposition (Proposition 5
  with one cut), whose two subproblems run in parallel; per footnote 3 the
  reported time is the **maximum subproblem time**.

Both are reported relative to the *original* (from-scratch, complete)
verification time of the previously solved problem -- exactly Table I's
``incremental time / original time`` columns.
"""

import pytest

from benchmarks.common import NUM_CASES
from repro.core import (
    Table1Row,
    check_prop1,
    check_prop3,
    check_prop5,
    format_table1,
    verify_from_scratch,
)
from benchmarks.common import STATE_BUFFER


def _svudc_incremental(bundle, case: int):
    """The SVuDC reuse cascade for one case; returns (holds, par_time)."""
    artifacts = bundle.baselines[case].artifacts
    enlarged = bundle.enlarged[case]
    pre = check_prop3(artifacts, enlarged)
    if pre.holds:
        return True, pre.max_subproblem_time
    res = check_prop1(artifacts, enlarged, method="exact", node_limit=20000)
    return res.holds, pre.max_subproblem_time + res.max_subproblem_time


def _svbtv_incremental(bundle, case: int):
    """The SVbTV two-part decomposition; returns (holds, max_subproblem)."""
    artifacts = bundle.baselines[case].artifacts
    new_net = bundle.nets[case + 1]
    cut = max(1, new_net.num_blocks // 2)
    res = check_prop5(artifacts, new_net, alphas=[cut], method="exact",
                      node_limit=20000)
    return res.holds, res.max_subproblem_time


@pytest.mark.parametrize("case", range(NUM_CASES))
def test_svudc_incremental_holds(vehicle_bundle, case):
    holds, _ = _svudc_incremental(vehicle_bundle, case)
    assert holds is True


@pytest.mark.parametrize("case", range(NUM_CASES))
def test_svbtv_incremental_holds(vehicle_bundle, case):
    holds, _ = _svbtv_incremental(vehicle_bundle, case)
    assert holds is True


def test_benchmark_original_verification(vehicle_bundle, benchmark):
    """The denominator: complete from-scratch verification of version 1."""
    problem = vehicle_bundle.problem(0)
    benchmark.pedantic(
        lambda: verify_from_scratch(problem, state_buffer=STATE_BUFFER,
                                    rigor="range", node_limit=120000),
        rounds=1, iterations=1)


def test_benchmark_svudc_incremental(vehicle_bundle, benchmark):
    """The SVuDC numerator for case 1."""
    benchmark.pedantic(lambda: _svudc_incremental(vehicle_bundle, 0),
                       rounds=3, iterations=1)


def test_benchmark_svbtv_incremental(vehicle_bundle, benchmark):
    """The SVbTV numerator for case 1."""
    benchmark.pedantic(lambda: _svbtv_incremental(vehicle_bundle, 0),
                       rounds=3, iterations=1)


def test_report_table1(vehicle_bundle, capsys):
    """Assemble and print the reproduced Table I."""
    rows = []
    for case in range(NUM_CASES):
        original = vehicle_bundle.baselines[case].elapsed
        svudc_holds, svudc_time = _svudc_incremental(vehicle_bundle, case)
        svbtv_holds, svbtv_time = _svbtv_incremental(vehicle_bundle, case)
        assert svudc_holds and svbtv_holds
        rows.append(Table1Row(
            case_id=case + 1,
            svudc_ratio=100.0 * svudc_time / original,
            svbtv_ratio=100.0 * svbtv_time / original,
        ))
    table = format_table1(rows)
    with capsys.disabled():
        print("\n" + table)
        print("(paper: SVuDC 0.16%-5.27%, SVbTV 4.19%-37.52%; both columns "
              "far below 100% -- see EXPERIMENTS.md)")
    # Shape assertions: every incremental run is far cheaper than the
    # original, the paper's headline claim ("less than ten percent").
    for row in rows:
        assert row.svudc_ratio < 10.0
        assert row.svbtv_ratio < 10.0
