"""Synthetic forward-facing camera: ground-plane projective rendering.

Replaces the physical RGB camera of the paper's testbed.  A pinhole camera
at height ``h`` above the ground looks forward along the car's heading;
pixels below the horizon are inverse-projected onto the ground plane and
colored by the track's material at that point, producing ``(3, H, W)``
frames (channel-first, float in [0, 1]) and -- crucially for training
labels -- the *visual waypoint*: the horizontal image position of the
centerline ``lookahead`` meters ahead, normalised to ``vout ∈ [0, 1]``
exactly as the paper reconstructs ``(x, y) = (int(224 * vout), 75)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import VehicleError
from repro.vehicle.track import CarPose, Track

__all__ = ["Camera", "RenderedFrame"]


@dataclass
class RenderedFrame:
    """One rendered observation: image plus its ground-truth label."""

    image: np.ndarray          # (3, H, W) float in [0, 1]
    vout: float                # normalised waypoint column in [0, 1]
    waypoint_world: np.ndarray
    pose: CarPose


class Camera:
    """Pinhole-over-ground-plane renderer."""

    def __init__(self, frame_size: int = 32, height: float = 0.25,
                 focal: Optional[float] = None, horizon_frac: float = 0.35,
                 lookahead: float = 1.0, noise_std: float = 0.0,
                 seed: int = 0):
        if frame_size < 8:
            raise VehicleError(f"frame_size too small: {frame_size}")
        if height <= 0 or lookahead <= 0:
            raise VehicleError("camera height and lookahead must be positive")
        self.frame_size = int(frame_size)
        self.height = float(height)
        self.focal = float(focal) if focal is not None else 0.9 * frame_size
        self.horizon_row = int(horizon_frac * frame_size)
        self.lookahead = float(lookahead)
        self.noise_std = float(noise_std)
        self._rng = np.random.default_rng(seed)
        self._grid_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------ projection
    def _pixel_ground_grid(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-pixel (forward, lateral) ground coordinates in the car frame
        for rows below the horizon.  Cached: the grid is pose-independent."""
        if self._grid_cache is not None:
            return self._grid_cache
        size = self.frame_size
        rows = np.arange(self.horizon_row + 1, size)
        cols = np.arange(size)
        # Row v maps to ground depth d = f*h / (v - horizon).
        depth = self.focal * self.height / (rows - self.horizon_row)
        lateral = (cols - size / 2.0 + 0.5)[None, :] * depth[:, None] / self.focal
        forward = np.broadcast_to(depth[:, None], lateral.shape)
        self._grid_cache = (forward, lateral)
        return self._grid_cache

    def render(self, track: Track, pose: CarPose,
               brightness: float = 1.0) -> RenderedFrame:
        """Render the scene from ``pose`` and compute the waypoint label."""
        size = self.frame_size
        image = np.empty((3, size, size))
        # Sky above the horizon.
        image[0, : self.horizon_row + 1] = 0.55
        image[1, : self.horizon_row + 1] = 0.70
        image[2, : self.horizon_row + 1] = 0.90
        forward, lateral = self._pixel_ground_grid()
        fwd, right = pose.forward, pose.right
        world = (pose.position[None, None, :]
                 + forward[..., None] * fwd[None, None, :]
                 + lateral[..., None] * right[None, None, :])
        colors = track.world_colors(world, brightness=brightness)
        image[:, self.horizon_row + 1:, :] = np.moveaxis(colors, -1, 0)
        if self.noise_std > 0:
            image = np.clip(
                image + self._rng.normal(0.0, self.noise_std, size=image.shape),
                0.0, 1.0)
        vout, wp = self.waypoint_vout(track, pose)
        return RenderedFrame(image=image, vout=vout, waypoint_world=wp, pose=pose)

    def waypoint_vout(self, track: Track, pose: CarPose) -> Tuple[float, np.ndarray]:
        """Normalised image column of the lookahead centerline point."""
        wp = track.waypoint_ahead(pose, self.lookahead)
        rel = wp - pose.position
        depth = float(rel @ pose.forward)
        lateral = float(rel @ pose.right)
        if depth < 1e-3:
            # Waypoint behind the image plane: saturate to the nearer edge.
            return (0.0 if lateral < 0 else 1.0), wp
        size = self.frame_size
        u = size / 2.0 + self.focal * lateral / depth
        return float(np.clip(u / size, 0.0, 1.0)), wp
