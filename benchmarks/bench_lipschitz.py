"""Lipschitz estimation quality and its effect on Proposition 3.

Compares the global operator-norm product bound against the local
interval-Jacobian (Fast-Lip style) bound on the vehicle head and random
networks: tightness vs an empirical lower witness, computation time, and --
the quantity that matters for continuous verification -- the maximum domain
enlargement each certificate lets Proposition 3 absorb (``(slack in Dout) /
ℓ`` per dimension).
"""

import numpy as np
import pytest

from repro.domains import Box
from repro.lipschitz import (
    empirical_lipschitz,
    global_lipschitz_bound,
    local_lipschitz_bound,
)
from repro.nn import random_relu_network


@pytest.fixture(scope="module")
def nets():
    return [random_relu_network([6, 16, 12, 1], seed=s, weight_scale=0.6)
            for s in range(4)]


def test_certificates_dominate_empirical(nets, rng=np.random.default_rng(0)):
    box = Box(np.zeros(6), np.ones(6))
    for net in nets:
        emp = empirical_lipschitz(net, box.sample(150, rng))
        assert emp <= global_lipschitz_bound(net) + 1e-9
        assert emp <= local_lipschitz_bound(net, box) + 1e-9


def test_local_tightens_on_small_boxes(nets):
    """Shrinking the box stabilises neurons: the local bound improves
    monotonically (in practice) while the global bound cannot."""
    for net in nets:
        big = local_lipschitz_bound(net, Box(np.zeros(6), np.ones(6)))
        small = local_lipschitz_bound(net, Box(0.45 * np.ones(6),
                                               0.55 * np.ones(6)))
        assert small <= big + 1e-9


def test_report_lipschitz(vehicle_bundle, capsys, rng=np.random.default_rng(1)):
    head = vehicle_bundle.nets[0]
    din = vehicle_bundle.din
    glob = global_lipschitz_bound(head)
    local = local_lipschitz_bound(head, din)
    emp = empirical_lipschitz(head, din.sample(150, rng))
    # Prop-3 absorbable enlargement: Dout slack / ell (per dimension,
    # using the tightest stored output abstraction).
    artifacts = vehicle_bundle.baselines[0].artifacts
    slack = float(np.min(np.minimum(
        artifacts.tightest_output_abstraction().lower - vehicle_bundle.dout.lower,
        vehicle_bundle.dout.upper - artifacts.tightest_output_abstraction().upper,
    )))
    with capsys.disabled():
        print("\nLipschitz certificates (vehicle head)")
        print(f"  empirical witness : {emp:10.4g}")
        print(f"  local (fastlip)   : {local:10.4g}")
        print(f"  global (product)  : {glob:10.4g}")
        print(f"  Dout slack        : {slack:10.4g}")
        print(f"  Prop-3 absorbable kappa: global {slack / glob:.3e}, "
              f"local {slack / local:.3e}")
    assert emp <= min(local, glob) + 1e-9
    assert slack > 0


def test_benchmark_global_bound(vehicle_bundle, benchmark):
    benchmark(lambda: global_lipschitz_bound(vehicle_bundle.nets[0]))


def test_benchmark_local_bound(vehicle_bundle, benchmark):
    benchmark(lambda: local_lipschitz_bound(vehicle_bundle.nets[0],
                                            vehicle_bundle.din))
