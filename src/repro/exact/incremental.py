"""Solver-level proof reuse: warm-starting branch and bound across versions.

Section VI of the paper asks "how exact solvers based on MILP or SMT can be
engineered to enable proof reuse".  This module implements the natural
answer for ReLU branch and bound: the *branching certificate*.

When a threshold proof completes, the set of settled leaves -- each a
partial phase assignment -- jointly covers the whole input region.  For the
*modified* problem (fine-tuned weights and/or enlarged domain, same
architecture), each leaf's LP can simply be re-solved under the new
encoding:

* if every leaf's relaxation stays below the threshold, the new property is
  proved immediately -- the expensive part of the search (discovering which
  neurons to branch on) is fully reused;
* leaves that no longer close seed a fresh search *from that leaf only*,
  so work is proportional to how much the problem actually changed.

Soundness: phase constraints are region restrictions (``z >= 0`` /
``z <= 0``), so they transfer verbatim to any network with the same block
shapes; a covering set of regions for the old problem covers the new one
too (the input box may even grow -- each leaf's LP is re-built over the new
box).  The same idea is why the paper observes that MILP *cuts* do NOT
transfer under domain enlargement: a cut is a consequence of the old
feasible set, while a branching decision is a partition -- partitions
survive, consequences do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ArtifactError
from repro.api.config import (
    DEFAULT_FULL_NODE_LIMIT,
    DEFAULT_TOL,
    DEFAULT_WORKERS,
    VerifyConfig,
    warn_legacy,
)
from repro.domains.box import Box
from repro.exact.bab import BaBResult, BaBSolver
from repro.exact.encoding import NetworkEncoding, PhaseMap
from repro.nn.network import Network

__all__ = ["BranchCertificate", "prove_with_certificate", "certify_threshold"]


@dataclass
class BranchCertificate:
    """A covering set of settled branch-and-bound leaves.

    ``block_dims`` pins the architecture the phase maps refer to;
    ``threshold`` and ``objective`` record what was proved.
    """

    objective: np.ndarray
    threshold: float
    leaves: List[PhaseMap] = field(default_factory=list)
    block_dims: List[int] = field(default_factory=list)
    #: Optimal node-LP dual multipliers captured during the proving solve,
    #: keyed by canonical phase-map items -- advisory bookkeeping for
    #: certificate recording (:mod:`repro.certs`), never consulted when
    #: re-proving from the leaves alone.
    leaf_duals: Optional[dict] = None

    @property
    def num_leaves(self) -> int:
        return len(self.leaves)

    def compatible_with(self, network: Network) -> bool:
        return network.block_dims() == self.block_dims


def _certify_threshold(network: Network, input_box: Box, c: np.ndarray,
                       threshold: float,
                       encoding: Optional[NetworkEncoding] = None,
                       config: Optional[VerifyConfig] = None,
                       collect_duals: Optional[dict] = None) -> tuple:
    """Internal threshold certification (no deprecation): the engine path.

    Returns ``(BaBResult, BranchCertificate | None)`` -- the certificate is
    ``None`` unless the proof succeeded.  ``encoding`` lets a caller supply
    a pre-built :class:`NetworkEncoding`; by default one is drawn per the
    config's encoding-cache policy, so certifying several thresholds or
    objectives over one ``(network, box)`` pair builds the LP base exactly
    once.  ``config.workers > 1`` runs the parallel frontier search; its
    settled leaves form exactly the same kind of covering certificate.
    ``collect_duals`` (a caller-owned dict) additionally captures each
    node LP's optimal dual multipliers and rides back on the returned
    certificate's ``leaf_duals`` -- the raw material certificate
    recording (:mod:`repro.certs`) persists.
    """
    config = config or VerifyConfig()
    # Certificates are global proofs: run under the full budget.
    solver = BaBSolver.from_config(
        network, input_box,
        config.replace(node_limit=config.effective_full_node_limit),
        encoding=encoding)
    leaves: List[PhaseMap] = []
    result = solver.maximize(np.asarray(c, dtype=np.float64),
                             threshold=threshold, collect_leaves=leaves,
                             collect_duals=collect_duals)
    if result.status not in ("threshold_proved", "optimal") or \
            result.upper_bound > threshold + config.tol:
        return result, None
    certificate = BranchCertificate(
        objective=np.asarray(c, dtype=np.float64).copy(),
        threshold=float(threshold),
        leaves=leaves,
        block_dims=network.block_dims(),
        leaf_duals=collect_duals,
    )
    return result, certificate


def certify_threshold(network: Network, input_box: Box, c: np.ndarray,
                      threshold: float,
                      node_limit: int = DEFAULT_FULL_NODE_LIMIT,
                      tol: float = DEFAULT_TOL,
                      encoding: Optional[NetworkEncoding] = None,
                      workers: int = DEFAULT_WORKERS) -> tuple:
    """Deprecated shim: prove ``max c @ f(x) <= threshold`` with certificate.

    Use :class:`repro.api.ThresholdSpec` through the engine instead (the
    verdict carries the :class:`BranchCertificate`).
    """
    warn_legacy("certify_threshold", "ThresholdSpec")
    config = VerifyConfig(node_limit=node_limit, full_node_limit=node_limit,
                          tol=tol, workers=workers)
    if encoding is not None:
        # A caller-supplied encoding cannot ride through the declarative
        # spec; honour it on the internal path with the same config.
        return _certify_threshold(network, input_box, c, threshold,
                                  encoding=encoding, config=config)
    from repro.api.engine import VerificationEngine
    from repro.api.specs import ThresholdSpec

    verdict = VerificationEngine(config).verify(
        ThresholdSpec(network=network, input_box=input_box, objective=c,
                      threshold=threshold))
    return verdict.result, verdict.certificate


def prove_with_certificate(network: Network, input_box: Box,
                           certificate: BranchCertificate,
                           threshold: Optional[float] = None,
                           node_limit: int = DEFAULT_FULL_NODE_LIMIT,
                           tol: float = DEFAULT_TOL,
                           encoding: Optional[NetworkEncoding] = None,
                           workers: int = DEFAULT_WORKERS,
                           config: Optional[VerifyConfig] = None) -> BaBResult:
    """Re-prove the threshold on a *modified* problem, warm-started from the
    certificate's leaves.

    ``network`` may be a fine-tuned version (same block shapes) and
    ``input_box`` an enlarged domain.  ``threshold`` defaults to the
    certified one.

    Every leaf LP is a *delta* on one shared encoding (phase rows over the
    cached phase-free base), and the encoding itself is memoised across
    calls: when the continuous-verification loop re-proves with the same
    weights and box -- only phases or the threshold changed -- neither
    symbolic propagation nor base assembly is repeated.  A leaf whose phase
    now contradicts the new network's static stability names an empty
    region and settles as an immediately-infeasible LP.
    """
    if not certificate.compatible_with(network):
        raise ArtifactError(
            "branch certificate was built for a different architecture")
    threshold = certificate.threshold if threshold is None else float(threshold)
    if config is None:
        config = VerifyConfig(node_limit=node_limit,
                              full_node_limit=node_limit,
                              tol=tol, workers=workers)
    solver = BaBSolver.from_config(
        network, input_box,
        config.replace(node_limit=config.effective_full_node_limit),
        encoding=encoding)
    # With workers > 1 the leaf re-solve is the frontier warm start: every
    # certificate leaf is screened in one batched pass and the surviving
    # leaf LPs are solved concurrently against the (possibly new) encoding.
    return solver.maximize(certificate.objective, threshold=threshold,
                           initial_nodes=certificate.leaves)
