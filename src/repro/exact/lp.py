"""Thin wrapper around ``scipy.optimize.linprog`` (HiGHS backend).

Normalises the solver interface the rest of :mod:`repro.exact` builds on:
explicit statuses, consistent ``None`` handling for absent constraint
groups, and a :class:`SolverError` for genuine backend failures (as opposed
to the ordinary *infeasible* / *unbounded* verdicts, which are results).

Constraint matrices may be dense ``np.ndarray`` or ``scipy.sparse``; sparse
systems are handed to HiGHS as-is (no densification), except for *tiny*
systems where the sparse bookkeeping costs more than it saves -- those are
densified first (``DENSE_FALLBACK_VARS`` variables or fewer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.errors import SolverError

__all__ = ["LPResult", "solve_lp", "solve_system",
           "LP_OPTIMAL", "LP_INFEASIBLE", "LP_UNBOUNDED",
           "DENSE_FALLBACK_VARS"]

LP_OPTIMAL = "optimal"
LP_INFEASIBLE = "infeasible"
LP_UNBOUNDED = "unbounded"

_STATUS_MAP = {0: LP_OPTIMAL, 2: LP_INFEASIBLE, 3: LP_UNBOUNDED}

#: Systems at or below this many variables are solved dense: HiGHS's sparse
#: ingestion overhead only pays for itself on real widths (measured
#: crossover is between ~100 and ~250 variables on the bench_lp workloads).
DENSE_FALLBACK_VARS = 128


def _prepare_matrix(matrix, num_vars: int):
    """Normalise one constraint matrix for HiGHS: CSR for genuinely sparse
    systems, dense for tiny ones."""
    if matrix is None or not sp.issparse(matrix):
        return matrix
    if num_vars <= DENSE_FALLBACK_VARS:
        return matrix.toarray()
    return matrix.tocsr() if matrix.format != "csr" else matrix


@dataclass
class LPResult:
    """Outcome of one LP solve.

    ``value`` and ``x`` are only meaningful when ``status == LP_OPTIMAL``.
    ``dual_ub`` / ``dual_eq`` are the optimal row multipliers (sign
    convention: ``lambda >= 0`` for the ``<=`` rows of a minimisation),
    populated only when the solve was asked for them.
    """

    status: str
    value: float
    x: Optional[np.ndarray]
    dual_ub: Optional[np.ndarray] = None
    dual_eq: Optional[np.ndarray] = None

    @property
    def optimal(self) -> bool:
        return self.status == LP_OPTIMAL


def solve_lp(c: np.ndarray,
             a_ub=None,
             b_ub: Optional[np.ndarray] = None,
             a_eq=None,
             b_eq: Optional[np.ndarray] = None,
             bounds: Optional[Sequence[Tuple[Optional[float], Optional[float]]]] = None,
             label: str = "",
             want_duals: bool = False,
             ) -> LPResult:
    """Minimise ``c @ x`` subject to ``a_ub x <= b_ub``, ``a_eq x == b_eq``
    and variable ``bounds`` (default: free variables).

    ``a_ub`` / ``a_eq`` may be dense or ``scipy.sparse`` matrices.

    Raises :class:`SolverError` if HiGHS reports a numerical failure or an
    iteration/time limit -- conditions a verification result must never be
    silently built on.  ``label`` names the solve in that error (essential
    when many node LPs run concurrently and one fails: the exception must
    say *which* region's relaxation broke).

    ``want_duals`` additionally extracts the optimal row multipliers into
    ``LPResult.dual_ub`` / ``dual_eq`` -- no extra solver work, HiGHS
    computes them anyway; off by default so the hot node-LP path carries
    nothing it does not use.

    Thread-safety: ``linprog``/HiGHS holds no module state and releases the
    GIL inside the solve, so concurrent calls from the shared worker pool
    (:func:`repro.core.parallel.run_parallel`) are safe and genuinely
    overlap -- the property the parallel frontier search relies on.
    """
    c = np.asarray(c, dtype=np.float64)
    if bounds is None:
        bounds = [(None, None)] * c.size
    res = linprog(
        c,
        A_ub=_prepare_matrix(a_ub, c.size), b_ub=b_ub,
        A_eq=_prepare_matrix(a_eq, c.size), b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    status = _STATUS_MAP.get(res.status)
    if status is None:
        where = f" [{label}]" if label else ""
        raise SolverError(
            f"linprog failed{where}: status={res.status} "
            f"message={res.message!r}")
    if status == LP_OPTIMAL:
        dual_ub = dual_eq = None
        if want_duals:
            # HiGHS marginals are d(fun)/d(rhs); for a minimisation over
            # ``A_ub x <= b_ub`` that is ``-lambda``, so negate to get the
            # conventional nonnegative multipliers (certificate reuse
            # evaluates them as a Lagrangian bound -- repro.certs.reuse).
            if a_ub is not None:
                dual_ub = -np.asarray(res.ineqlin.marginals, dtype=np.float64)
            if a_eq is not None:
                dual_eq = -np.asarray(res.eqlin.marginals, dtype=np.float64)
        return LPResult(status=status, value=float(res.fun),
                        x=np.asarray(res.x), dual_ub=dual_ub, dual_eq=dual_eq)
    return LPResult(status=status, value=float("nan"), x=None)


def solve_system(c: np.ndarray, system, label: str = "") -> LPResult:
    """Solve ``min c @ x`` over a :class:`~repro.exact.encoding.LinearSystem`
    (its integer mask, if any, is relaxed -- this is the LP relaxation)."""
    return solve_lp(c, system.a_ub, system.b_ub, system.a_eq, system.b_eq,
                    system.bounds, label=label)
