"""The asynchronous verification service: job store, scheduler, verdict
cache, crash recovery, HTTP front end, executors, and the CLI twins."""

import json
import threading
import time

import numpy as np
import pytest

from repro.api import (
    ContainmentSpec,
    MaximizeSpec,
    ThresholdSpec,
    VerificationEngine,
    VerifyConfig,
    canonical_verdict_json,
    config_to_json,
    spec_to_dict,
    spec_to_json,
    verdict_decision_json,
    verdict_from_dict,
)
from repro.cli import main as cli_main
from repro.domains import Box
from repro.errors import ServeError
from repro.serve import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobStore,
    ServeClient,
    SubprocessExecutor,
    VerificationService,
    job_fingerprint,
    serve_http,
)


@pytest.fixture
def maximize_spec(fig2, enlarged_box2):
    return MaximizeSpec(network=fig2, input_box=enlarged_box2,
                        objective=np.array([1.0]))


@pytest.fixture
def bad_spec(fig2):
    """Deserializes fine but raises at solve time (dim mismatch)."""
    return ContainmentSpec(network=fig2,
                           input_box=Box(-np.ones(5), np.ones(5)),
                           target=Box(-np.ones(1), np.ones(1)))


def _wire(spec):
    return spec_to_json(spec, sort_keys=True)


_CONFIG_JSON = config_to_json(VerifyConfig())


def _queue_job(store, spec, priority=0, timeout=None, config=_CONFIG_JSON):
    return store.submit(_wire(spec), config,
                        job_fingerprint(spec, VerifyConfig()),
                        priority=priority, timeout=timeout)


class TestJobFingerprint:
    def test_same_request_same_fingerprint(self, maximize_spec):
        config = VerifyConfig()
        assert job_fingerprint(maximize_spec, config) == \
            job_fingerprint(maximize_spec, config)
        # The wire dict fingerprints identically to the Spec object.
        assert job_fingerprint(spec_to_dict(maximize_spec), config) == \
            job_fingerprint(maximize_spec, config)

    def test_config_changes_fingerprint(self, maximize_spec):
        assert job_fingerprint(maximize_spec, VerifyConfig()) != \
            job_fingerprint(maximize_spec, VerifyConfig(workers=2))

    def test_spec_changes_fingerprint(self, maximize_spec, fig2,
                                      unit_box2):
        other = MaximizeSpec(network=fig2, input_box=unit_box2,
                             objective=np.array([1.0]))
        assert job_fingerprint(maximize_spec, VerifyConfig()) != \
            job_fingerprint(other, VerifyConfig())


class TestJobStore:
    def test_submit_get_roundtrip(self, maximize_spec):
        with JobStore() as store:
            record = _queue_job(store, maximize_spec, priority=5,
                                timeout=30.0)
            assert record.state == JOB_QUEUED
            assert record.priority == 5
            assert record.timeout == 30.0
            assert record.attempts == 0
            clone = store.get(record.job_id)
            assert clone == record

    def test_unknown_job_raises(self):
        with JobStore() as store:
            with pytest.raises(ServeError, match="unknown job"):
                store.get("job-99999999")

    def test_claim_priority_then_fifo(self, maximize_spec):
        with JobStore() as store:
            low1 = _queue_job(store, maximize_spec, priority=0)
            high = _queue_job(store, maximize_spec, priority=9)
            low2 = _queue_job(store, maximize_spec, priority=0)
            order = [store.claim_next().job_id for _ in range(3)]
            assert order == [high.job_id, low1.job_id, low2.job_id]
            assert store.claim_next() is None

    def test_claim_marks_running_and_attempts(self, maximize_spec):
        with JobStore() as store:
            record = _queue_job(store, maximize_spec)
            claimed = store.claim_next()
            assert claimed.job_id == record.job_id
            assert claimed.state == JOB_RUNNING
            assert claimed.attempts == 1
            assert claimed.started_at is not None

    def test_finish_and_fail_transitions(self, maximize_spec):
        with JobStore() as store:
            a = _queue_job(store, maximize_spec)
            b = _queue_job(store, maximize_spec)
            store.claim_next()
            store.claim_next()
            store.finish(a.job_id, '{"verdict": "maximize"}')
            store.fail(b.job_id, "boom")
            assert store.get(a.job_id).state == JOB_DONE
            assert store.get(a.job_id).verdict_json == \
                '{"verdict": "maximize"}'
            failed = store.get(b.job_id)
            assert failed.state == JOB_FAILED
            assert failed.error == "boom"
            counts = store.counts()
            assert counts[JOB_DONE] == 1 and counts[JOB_FAILED] == 1

    def test_invalid_transition_raises(self, maximize_spec):
        with JobStore() as store:
            record = _queue_job(store, maximize_spec)
            with pytest.raises(ServeError, match="not 'running'"):
                store.finish(record.job_id, "{}")

    def test_cancel_queued_only(self, maximize_spec):
        with JobStore() as store:
            record = _queue_job(store, maximize_spec)
            assert store.cancel_queued(record.job_id) == JOB_CANCELLED
            # Terminal states are left untouched.
            assert store.cancel_queued(record.job_id) == JOB_CANCELLED
            running = _queue_job(store, maximize_spec)
            store.claim_next()
            assert store.cancel_queued(running.job_id) == JOB_RUNNING

    def test_list_jobs_filter_validates(self, maximize_spec):
        with JobStore() as store:
            _queue_job(store, maximize_spec)
            assert len(store.list_jobs(state=JOB_QUEUED)) == 1
            assert store.list_jobs(state=JOB_DONE) == []
            with pytest.raises(ServeError, match="unknown job state"):
                store.list_jobs(state="paused")

    def test_verdict_cache(self):
        with JobStore() as store:
            assert store.cache_get("fp") is None
            store.cache_put("fp", '{"verdict": "x"}')
            assert store.cache_get("fp") == '{"verdict": "x"}'
            store.cache_put("fp", '{"verdict": "y"}')  # first writer wins
            assert store.cache_get("fp") == '{"verdict": "x"}'
            assert store.cache_stats() == {"entries": 1, "hits": 2}

    def test_crash_loop_gives_up_at_max_attempts(self, tmp_path,
                                                 maximize_spec):
        path = str(tmp_path / "jobs.sqlite")
        with JobStore(path, max_attempts=2) as store:
            record = _queue_job(store, maximize_spec)
        for _ in range(2):  # two crashes mid-running
            with JobStore(path, max_attempts=2) as store:
                assert store.claim_next().job_id == record.job_id
        with JobStore(path, max_attempts=2) as store:
            assert store.claim_next() is None
            failed = store.get(record.job_id)
            assert failed.state == JOB_FAILED
            assert "gave up" in failed.error


class TestCrashRecovery:
    """Satellite: kill a store mid-``running``, reopen, requeue once."""

    def test_running_jobs_requeued_exactly_once(self, tmp_path,
                                                maximize_spec):
        path = str(tmp_path / "jobs.sqlite")
        store = JobStore(path)
        running = _queue_job(store, maximize_spec)
        untouched = _queue_job(store, maximize_spec)
        assert store.claim_next().job_id == running.job_id
        store.close()  # simulated crash: the running job was in flight

        reopened = JobStore(path)
        assert reopened.recovered_jobs == 1
        recovered = reopened.get(running.job_id)
        assert recovered.state == JOB_QUEUED
        assert recovered.started_at is None
        assert recovered.attempts == 1  # the crashed claim stays counted
        assert reopened.get(untouched.job_id).state == JOB_QUEUED
        reopened.close()

        # A second clean reopen finds nothing to recover: exactly once.
        again = JobStore(path)
        assert again.recovered_jobs == 0
        assert again.get(running.job_id).state == JOB_QUEUED
        again.close()

    def test_crash_leaves_verdict_cache_unpoisoned(self, tmp_path,
                                                   maximize_spec):
        path = str(tmp_path / "jobs.sqlite")
        store = JobStore(path)
        record = _queue_job(store, maximize_spec)
        store.claim_next()
        store.close()  # crash before any verdict existed

        reopened = JobStore(path)
        assert reopened.cache_stats()["entries"] == 0
        assert reopened.cache_get(record.fingerprint) is None
        reopened.close()

    def test_terminal_jobs_survive_restart(self, tmp_path, maximize_spec):
        path = str(tmp_path / "jobs.sqlite")
        with JobStore(path) as store:
            record = _queue_job(store, maximize_spec)
            store.claim_next()
            store.finish(record.job_id, '{"verdict": "maximize"}')
            store.cache_put(record.fingerprint, '{"verdict": "maximize"}')
        with JobStore(path) as store:
            assert store.recovered_jobs == 0
            clone = store.get(record.job_id)
            assert clone.state == JOB_DONE
            assert clone.verdict_json == '{"verdict": "maximize"}'
            assert store.cache_get(record.fingerprint) is not None


class TestVerificationService:
    def test_served_verdict_matches_direct_engine(self, maximize_spec):
        direct = VerificationEngine(VerifyConfig()).verify(maximize_spec)
        with VerificationService(workers=2) as service:
            job = service.submit(maximize_spec)
            record = service.wait(job.job_id, timeout=30)
            assert record.state == JOB_DONE
            served = service.verdict(job.job_id)
        assert canonical_verdict_json(served) == \
            canonical_verdict_json(direct)
        assert served.provenance.cached is False

    def test_resubmission_hits_verdict_cache(self, maximize_spec):
        with VerificationService(workers=1) as service:
            first = service.submit(maximize_spec)
            service.wait(first.job_id, timeout=30)
            executed_before = service.stats()["executed_jobs"]
            second = service.submit(maximize_spec)
            # Answered at submission: already done, no executor involved.
            assert second.state == JOB_DONE
            assert second.cache_hit is True
            verdict = service.verdict(second.job_id)
            assert verdict.provenance.cached is True
            assert service.stats()["executed_jobs"] == executed_before
            assert canonical_verdict_json(verdict) == \
                canonical_verdict_json(service.verdict(first.job_id))

    def test_cache_respects_config_identity(self, maximize_spec):
        with VerificationService(workers=1) as service:
            first = service.submit(maximize_spec)
            service.wait(first.job_id, timeout=30)
            other = service.submit(maximize_spec,
                                   config=VerifyConfig(workers=2))
            assert other.cache_hit is False

    def test_failed_spec_reported_not_cached(self, bad_spec):
        with VerificationService(workers=1) as service:
            job = service.submit(bad_spec)
            record = service.wait(job.job_id, timeout=30)
            assert record.state == JOB_FAILED
            assert "ShapeError" in record.error
            assert service.store.cache_stats()["entries"] == 0
            with pytest.raises(ServeError, match="no verdict"):
                service.verdict(job.job_id)

    def test_submit_validates_inputs(self, maximize_spec):
        with VerificationService() as service:
            with pytest.raises(ServeError, match="Spec or its wire dict"):
                service.submit("not-a-spec")
            with pytest.raises(ServeError, match="VerifyConfig"):
                service.submit(maximize_spec, config="fast please")

    def test_cancel_queued_job_never_runs(self, maximize_spec):
        service = VerificationService(workers=1)  # not started
        job = service.submit(maximize_spec)
        assert service.cancel(job.job_id) == JOB_CANCELLED
        service.start()
        time.sleep(0.2)
        record = service.job(job.job_id)
        assert record.state == JOB_CANCELLED
        assert service.stats()["executed_jobs"] == 0
        service.close()

    def test_priority_orders_execution(self, fig2, enlarged_box2):
        specs = [MaximizeSpec(network=fig2, input_box=enlarged_box2,
                              objective=np.array([float(k)]))
                 for k in (1, 2, 3)]
        service = VerificationService(workers=1)  # queue first, run later
        low = service.submit(specs[0], priority=0)
        mid = service.submit(specs[1], priority=1)
        high = service.submit(specs[2], priority=2)
        service.start()
        records = [service.wait(job.job_id, timeout=30)
                   for job in (low, mid, high)]
        service.close()
        finished = {r.job_id: r.finished_at for r in records}
        assert finished[high.job_id] <= finished[mid.job_id] \
            <= finished[low.job_id]

    def test_in_process_timeout_fails_job(self, maximize_spec):
        with VerificationService(workers=1) as service:
            # The smallest positive budget: any real solve exceeds 1 ns.
            job = service.submit(maximize_spec, timeout=1e-9)
            record = service.wait(job.job_id, timeout=30)
            assert record.state == JOB_FAILED
            assert "TimeoutError" in record.error
            # Timed-out work must never poison the verdict cache.
            assert service.store.cache_stats()["entries"] == 0

    def test_non_positive_timeout_rejected_at_submit(self, maximize_spec):
        with VerificationService(workers=1) as service:
            with pytest.raises(ServeError, match="positive"):
                service.submit(maximize_spec, timeout=0.0)
            with pytest.raises(ServeError, match="positive"):
                service.submit(maximize_spec, timeout=-5.0)
            with pytest.raises(ServeError, match="finite"):
                service.submit(maximize_spec, timeout=float("inf"))

    def test_queued_duplicate_resolved_from_cache_at_claim(self,
                                                           maximize_spec):
        """Two identical jobs queued before either runs: the second must
        be answered from the cache at claim time, not re-solved."""
        service = VerificationService(workers=1)  # queue first, run later
        first = service.submit(maximize_spec)
        second = service.submit(maximize_spec)
        assert second.cache_hit is False  # no verdict existed at submit
        with service:
            a = service.wait(first.job_id, timeout=30)
            b = service.wait(second.job_id, timeout=30)
            assert a.state == JOB_DONE and b.state == JOB_DONE
            assert service.stats()["executed_jobs"] == 1  # one real solve
            assert a.cache_hit is False
            assert b.cache_hit is True  # claim-time hits are recorded too
            va, vb = (service.verdict(first.job_id),
                      service.verdict(second.job_id))
            assert vb.provenance.cached is True
            assert canonical_verdict_json(va) == canonical_verdict_json(vb)

    def test_transient_store_error_does_not_kill_workers(self,
                                                         maximize_spec):
        """A sqlite hiccup in claim_next must be absorbed (counted in
        stats), not terminate the only worker thread."""
        import sqlite3

        service = VerificationService(workers=1)
        real_claim = service.store.claim_next
        failures = {"left": 2}

        def flaky_claim():
            if failures["left"] > 0:
                failures["left"] -= 1
                raise sqlite3.OperationalError("database is locked")
            return real_claim()

        service.store.claim_next = flaky_claim
        with service:
            job = service.submit(maximize_spec)
            record = service.wait(job.job_id, timeout=30)
            assert record.state == JOB_DONE
            assert service.stats()["worker_errors"] >= 1

    def test_restart_mid_queue_loses_no_jobs(self, tmp_path, fig2,
                                             enlarged_box2):
        path = str(tmp_path / "jobs.sqlite")
        specs = [MaximizeSpec(network=fig2, input_box=enlarged_box2,
                              objective=np.array([float(k)]))
                 for k in (1, 2, 3)]
        first = VerificationService(store=path, workers=1)  # never started
        ids = [first.submit(spec).job_id for spec in specs]
        first.close()

        with VerificationService(store=path, workers=2) as second:
            for job_id in ids:
                record = second.wait(job_id, timeout=60)
                assert record.state == JOB_DONE
                assert second.verdict(job_id).result.status == "optimal"


class TestRestartMidRetry:
    """Satellite (PR 6): a store restart in the middle of a retry cycle
    must preserve the attempt budget and history, and still requeue an
    in-flight attempt exactly once."""

    def test_backoff_parked_job_survives_restart(self, tmp_path,
                                                 maximize_spec):
        path = str(tmp_path / "jobs.sqlite")
        with JobStore(path) as store:
            record = _queue_job(store, maximize_spec)
            claimed = store.claim_next()
            assert claimed.attempts == 1
            store.record_attempt(record.job_id, 1, "ExecutorCrashError",
                                 error="boom", transient=True)
            store.requeue(record.job_id, not_before=time.time() + 30.0)

        with JobStore(path) as reopened:
            # The job was *queued* (parked), not running: nothing to
            # recover, and the backoff parking + attempt count survive.
            assert reopened.recovered_jobs == 0
            parked = reopened.get(record.job_id)
            assert parked.state == JOB_QUEUED
            assert parked.attempts == 1
            assert parked.not_before is not None
            assert reopened.claim_next() is None  # still parked
            log = reopened.attempt_log(record.job_id)
            assert [(a.attempt, a.outcome) for a in log] == \
                [(1, "ExecutorCrashError")]

    def test_crash_during_retry_attempt_requeues_once(self, tmp_path,
                                                      maximize_spec):
        path = str(tmp_path / "jobs.sqlite")
        with JobStore(path) as store:
            record = _queue_job(store, maximize_spec)
            store.claim_next()
            store.record_attempt(record.job_id, 1, "JobTimeoutError",
                                 error="slow", transient=True)
            store.requeue(record.job_id)  # retry, immediately eligible
            claimed = store.claim_next()
            assert claimed.attempts == 2
            # crash here: the process dies mid-attempt-2

        with JobStore(path) as reopened:
            assert reopened.recovered_jobs == 1
            recovered = reopened.get(record.job_id)
            assert recovered.state == JOB_QUEUED
            assert recovered.attempts == 2  # the crashed claim stays paid
            assert recovered.not_before is None
        with JobStore(path) as again:
            assert again.recovered_jobs == 0  # exactly once per crash

    def test_uncounted_requeue_refunds_the_attempt(self, maximize_spec):
        """Breaker-open parking must not charge the job's budget."""
        with JobStore() as store:
            record = _queue_job(store, maximize_spec)
            assert store.claim_next().attempts == 1
            store.requeue(record.job_id, not_before=time.time() - 1.0,
                          uncount=True)
            assert store.get(record.job_id).attempts == 0
            assert store.claim_next().attempts == 1  # same budget as new

    def test_service_resumes_retry_cycle_after_restart(self, tmp_path,
                                                       maximize_spec):
        """End-to-end: fail transiently, kill the service before the
        retry runs, restart with a healthy executor -- the job completes
        with its full cross-restart attempt history."""
        from repro.api import ServeConfig
        from repro.serve import FaultInjectingExecutor, InProcessExecutor

        path = str(tmp_path / "jobs.sqlite")
        slow_retry = ServeConfig(retry_base_delay=5.0, retry_max_delay=5.0)
        injector = FaultInjectingExecutor(InProcessExecutor(),
                                          faults=["crash"] * 10)
        with VerificationService(store=path, executor=injector,
                                 serve_config=slow_retry,
                                 poll_interval=0.01) as first:
            job_id = first.submit(maximize_spec).job_id
            deadline = time.monotonic() + 30
            while not first.attempt_log(job_id):  # attempt 1 has failed
                assert time.monotonic() < deadline
                time.sleep(0.01)
        # The retry was parked ~5s out; the restart must not need to wait
        # for it (recovery clears nothing here -- the job is queued) but a
        # healthy service should pick it up as soon as it is eligible.
        with VerificationService(store=path, poll_interval=0.01) as second:
            parked = second.job(job_id)
            assert parked.state == JOB_QUEUED
            assert parked.attempts == 1
            # Make it immediately eligible instead of sleeping 5s.
            with second.store._lock:
                second.store._conn.execute(
                    "UPDATE jobs SET not_before = NULL WHERE job_id = ?",
                    (job_id,))
                second.store._conn.commit()
            second._wake.set()
            record = second.wait(job_id, timeout=30)
            assert record.state == JOB_DONE
            log = second.attempt_log(job_id)
            assert [a.outcome for a in log] == ["ExecutorCrashError", "ok"]


class TestHTTPAndClient:
    @pytest.fixture
    def server(self):
        service = VerificationService(workers=2).start()
        server = serve_http(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_http_submit_matches_direct_engine(self, server, maximize_spec):
        direct = VerificationEngine(VerifyConfig()).verify(maximize_spec)
        client = ServeClient(server.url)
        job = client.submit(maximize_spec)
        assert job["state"] in (JOB_QUEUED, JOB_RUNNING, JOB_DONE)
        record = client.wait(job["job_id"], timeout=30)
        assert record["state"] == JOB_DONE
        assert canonical_verdict_json(client.verdict(job["job_id"])) == \
            canonical_verdict_json(direct)

    def test_http_cache_hit_round_trip(self, server, maximize_spec):
        client = ServeClient(server.url)
        first = client.submit(maximize_spec)
        client.wait(first["job_id"], timeout=30)
        second = client.submit(maximize_spec)
        assert second["state"] == JOB_DONE
        assert second["cache_hit"] is True
        assert second["verdict"]["provenance"]["cached"] is True

    def test_http_list_health_stats(self, server, maximize_spec):
        client = ServeClient(server.url)
        job = client.submit(maximize_spec)
        client.wait(job["job_id"], timeout=30)
        listed = client.jobs()
        assert any(r["job_id"] == job["job_id"] for r in listed)
        assert "verdict" not in listed[0]  # list view elides payloads
        assert client.jobs(state=JOB_DONE)
        health = client.health()
        assert health["ok"] is True and health["workers"] == 2
        stats = client.stats()
        assert stats["executor"] == "inprocess"
        assert stats["jobs"][JOB_DONE] >= 1

    def test_http_cancel_and_errors(self, server, maximize_spec):
        client = ServeClient(server.url)
        with pytest.raises(ServeError, match="unknown job"):
            client.job("job-99999999")
        with pytest.raises(ServeError, match='"spec"'):
            client._request("POST", "/jobs", {"priority": 1})
        with pytest.raises(ServeError, match="unknown spec type"):
            client._request("POST", "/jobs", {"spec": {"type": "nope"}})
        with pytest.raises(ServeError, match="unknown path"):
            client._request("GET", "/teapot")
        job = client.submit(maximize_spec)
        result = client.cancel(job["job_id"])
        assert result["state"] in (JOB_CANCELLED, JOB_RUNNING, JOB_DONE)

    def test_http_rejects_junk_scheduling_fields(self, server,
                                                 maximize_spec):
        """Bad priority/timeout types must come back as a 400 JSON error
        at submission, not crash the handler or fail the job later."""
        client = ServeClient(server.url)
        spec_doc = spec_to_dict(maximize_spec)
        with pytest.raises(ServeError, match="priority must be"):
            client._request("POST", "/jobs",
                            {"spec": spec_doc, "priority": "high"})
        with pytest.raises(ServeError, match="timeout must be"):
            client._request("POST", "/jobs",
                            {"spec": spec_doc, "timeout": "soon"})
        with pytest.raises(ServeError, match="timeout must be"):
            client._request("POST", "/jobs",
                            {"spec": spec_doc, "timeout": True})
        with pytest.raises(ServeError, match="timeout must be"):
            client._request("POST", "/jobs",
                            {"spec": spec_doc, "timeout": -1})

    def _raw_post(self, server, body: bytes):
        import http.client

        target = ServeClient(server.url)
        conn = http.client.HTTPConnection(target.host, target.port)
        try:
            conn.request("POST", "/jobs", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_http_rejects_nonfinite_timeout_and_json_tokens(
            self, server, maximize_spec):
        # The stdlib client refuses to *emit* these, so ship raw bytes:
        # a hand-rolled peer absolutely can send them.
        spec_json = json.dumps(spec_to_dict(maximize_spec))
        # 1e999 parses to inf without tripping parse_constant: it must be
        # stopped by the finiteness validation, or the stored record
        # could never be re-encoded as strict JSON again.
        status, payload = self._raw_post(
            server, f'{{"spec": {spec_json}, "timeout": 1e999}}'.encode())
        assert status == 400
        assert "timeout must be" in payload["error"]
        status, payload = self._raw_post(
            server,
            f'{{"spec": {spec_json}, "timeout": Infinity}}'.encode())
        assert status == 400
        assert "non-standard JSON" in payload["error"]

    def test_http_bad_state_filter_is_400_not_404(self, server):
        import http.client

        conn = http.client.HTTPConnection(
            ServeClient(server.url).host, ServeClient(server.url).port)
        try:
            conn.request("GET", "/jobs?state=bogus")
            response = conn.getresponse()
            assert response.status == 400
            assert "unknown job state" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_http_rejects_malformed_arrays_with_400(self, server,
                                                    maximize_spec):
        """A structurally-plausible spec whose arrays are ragged must be
        a 400, not a crashed handler / dropped connection."""
        client = ServeClient(server.url)
        spec_doc = spec_to_dict(maximize_spec)
        spec_doc["input_box"] = {"lower": [[0.0, 1.0], [2.0]],
                                 "upper": [1.0, 1.0]}
        with pytest.raises(ServeError):
            client._request("POST", "/jobs", {"spec": spec_doc})
        assert client.health()["ok"] is True  # the server survived

    def test_http_error_responses_close_the_connection(self, server):
        """An error before the body is read would desync a keep-alive
        connection (leftover bytes parsed as the next request line)."""
        import http.client

        target = ServeClient(server.url)
        conn = http.client.HTTPConnection(target.host, target.port)
        try:
            # Declare a body far over the cap; the server must reject it
            # without reading and tell the client the connection is done.
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(10 ** 12))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
        finally:
            conn.close()

    def test_http_jobs_limit_filter(self, server, fig2, enlarged_box2):
        client = ServeClient(server.url)
        for k in (1, 2, 3):
            client.submit(MaximizeSpec(network=fig2,
                                       input_box=enlarged_box2,
                                       objective=np.array([float(k)])))
        assert len(client.jobs(limit=2)) == 2
        with pytest.raises(ServeError):
            client._request("GET", "/jobs?limit=soon")


class TestSubprocessExecutor:
    def test_ships_job_over_verify_spec_wire(self, maximize_spec):
        direct = VerificationEngine(VerifyConfig()).verify(maximize_spec)
        executor = SubprocessExecutor()
        verdict_doc = executor.execute(_wire(maximize_spec), _CONFIG_JSON,
                                       timeout=300)
        served = verdict_from_dict(verdict_doc)
        assert canonical_verdict_json(served) == \
            canonical_verdict_json(direct)

    def test_timeout_kills_the_child(self, maximize_spec):
        executor = SubprocessExecutor()
        with pytest.raises(TimeoutError, match="killed"):
            executor.execute(_wire(maximize_spec), _CONFIG_JSON,
                             timeout=0.05)

    def test_crashed_child_surfaces_real_error(self, bad_spec):
        """A child that dies on an uncaught exception also exits 1 (the
        'verdict fails' code); the executor must report the stderr
        diagnosis, not 'unparseable output'."""
        executor = SubprocessExecutor()
        with pytest.raises(ServeError, match="ShapeError"):
            executor.execute(_wire(bad_spec), _CONFIG_JSON, timeout=300)


class TestServeCLI:
    @pytest.fixture
    def server(self):
        service = VerificationService(workers=1).start()
        server = serve_http(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_submit_wait_matches_verify_spec_wire(self, server, tmp_path,
                                                  maximize_spec, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"spec": spec_to_dict(maximize_spec)}))
        assert cli_main(["verify-spec", str(path), "--wire"]) == 0
        direct_doc = json.loads(capsys.readouterr().out)
        assert cli_main(["submit", str(path), "--url", server.url,
                         "--wait", "--json"]) == 0
        served_doc = json.loads(capsys.readouterr().out)
        assert canonical_verdict_json(verdict_from_dict(served_doc)) == \
            canonical_verdict_json(verdict_from_dict(direct_doc))

    def test_submit_status_cancel_round_trip(self, server, tmp_path,
                                             maximize_spec, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"spec": spec_to_dict(maximize_spec)}))
        assert cli_main(["submit", str(path), "--url", server.url,
                         "--json"]) == 0
        job_id = json.loads(capsys.readouterr().out)["job_id"]
        assert cli_main(["status", job_id, "--url", server.url,
                         "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["job_id"] == job_id
        assert cli_main(["status", "--url", server.url, "--json"]) == 0
        overview = json.loads(capsys.readouterr().out)
        assert any(r["job_id"] == job_id for r in overview["jobs"])
        # cancel exits 0 only when the job was still cancellable
        code = cli_main(["cancel", job_id, "--url", server.url])
        assert code in (0, 1)

    def test_submit_exit_code_matches_verify_spec_semantics(self):
        from repro.cli import _verdict_exit_code

        # Value queries: range always computed; maximize only at optimal.
        assert _verdict_exit_code({"verdict": "range", "holds": None}) == 0
        assert _verdict_exit_code({"verdict": "maximize", "holds": None,
                                   "result": {"status": "optimal"}}) == 0
        # A node-limited maximize has no optimum: inconclusive, exit 2.
        assert _verdict_exit_code({"verdict": "maximize", "holds": None,
                                   "result": {"status": "node_limit"}}) == 2
        assert _verdict_exit_code({"verdict": "containment",
                                   "holds": True}) == 0
        assert _verdict_exit_code({"verdict": "containment",
                                   "holds": False}) == 1
        assert _verdict_exit_code({"verdict": "failed", "holds": None}) == 3

    def test_verify_spec_reads_stdin(self, maximize_spec, capsys,
                                     monkeypatch):
        import io

        document = json.dumps({"spec": spec_to_dict(maximize_spec)})
        monkeypatch.setattr("sys.stdin", io.StringIO(document))
        assert cli_main(["verify-spec", "-", "--wire"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["verdict"] == "maximize"


# The serve-side schema as it stood before the certificates table (and the
# resilience columns), verbatim: what a long-lived ``--db`` from an old
# deployment actually contains when new code opens it.
_PRE_CERT_SCHEMA = """
CREATE TABLE jobs (
    seq          INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id       TEXT UNIQUE NOT NULL,
    fingerprint  TEXT NOT NULL,
    spec_json    TEXT NOT NULL,
    config_json  TEXT NOT NULL,
    state        TEXT NOT NULL,
    priority     INTEGER NOT NULL DEFAULT 0,
    timeout      REAL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    verdict_json TEXT,
    error        TEXT,
    cache_hit    INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE verdict_cache (
    fingerprint  TEXT PRIMARY KEY,
    verdict_json TEXT NOT NULL,
    created_at   REAL NOT NULL,
    hits         INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE attempts (
    job_id       TEXT NOT NULL,
    attempt      INTEGER NOT NULL,
    started_at   REAL,
    finished_at  REAL NOT NULL,
    outcome      TEXT NOT NULL,
    transient    INTEGER NOT NULL DEFAULT 0,
    error        TEXT,
    PRIMARY KEY (job_id, attempt)
);
"""


class TestCertificateStore:
    """PR 9: the certificates table rides the JobStore migration path."""

    def test_old_db_gains_certificates_table(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "old.db")
        conn = sqlite3.connect(path)
        conn.executescript(_PRE_CERT_SCHEMA)
        conn.commit()
        conn.close()
        with JobStore(path) as store:
            assert store.cert_get("missing") is None
            store.cert_put("k1", '{"cert": 1}', structural_fp="fp")
            assert store.cert_get("k1") == '{"cert": 1}'
            assert store.cert_stats() == {"entries": 1, "hits": 1}

    def test_crash_recovery_keeps_certificates(self, tmp_path,
                                               maximize_spec):
        path = str(tmp_path / "jobs.sqlite")
        store = JobStore(path)
        _queue_job(store, maximize_spec)
        store.claim_next()
        store.cert_put("k1", '{"cert": 1}')
        store.close()  # crash with the job mid-running

        with JobStore(path) as reopened:
            assert reopened.recovered_jobs == 1
            assert reopened.cert_get("k1") == '{"cert": 1}'
            assert reopened.cert_stats()["entries"] == 1

    def test_put_replaces_latest_and_hits_accumulate(self):
        with JobStore() as store:
            store.cert_put("k", '{"v": 1}')
            assert store.cert_get("k") == '{"v": 1}'
            store.cert_put("k", '{"v": 2}')
            assert store.cert_get("k") == '{"v": 2}'
            assert store.cert_stats() == {"entries": 1, "hits": 2}


class TestCertificatesOverHTTP:
    """End-to-end: cert hit/miss/stored/reused counters over the wire."""

    @pytest.fixture
    def server(self):
        service = VerificationService(
            workers=2,
            default_config=VerifyConfig(certs="reuse")).start()
        server = serve_http(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_stats_and_healthz_count_cert_traffic(self, server, fig2):
        client = ServeClient(server.url)
        box = Box(-np.ones(2), np.ones(2))
        c = np.array([1.0])
        cfg = VerifyConfig(certs="reuse")
        opt = VerificationEngine(VerifyConfig()).verify(
            MaximizeSpec(network=fig2, input_box=box,
                         objective=c)).result.upper_bound
        spec = ThresholdSpec(network=fig2, input_box=box, objective=c,
                             threshold=opt + 1.0)
        job = client.submit(spec, config=cfg)
        client.wait(job["job_id"], timeout=30)
        stats = client.stats()
        certs = stats["certificates"]
        assert certs["policy"] == "reuse"
        assert certs["misses"] >= 1
        assert certs["stored"] >= 1
        assert certs["store"]["entries"] == 1

        perturbed = fig2.perturb(0.002, rng=np.random.default_rng(3))
        warm_spec = ThresholdSpec(network=perturbed, input_box=box,
                                  objective=c, threshold=opt + 1.0)
        job2 = client.submit(warm_spec, config=cfg)
        record = client.wait(job2["job_id"], timeout=30)
        assert record["state"] == JOB_DONE
        warm = client.verdict(job2["job_id"])
        cold = VerificationEngine(VerifyConfig()).verify(warm_spec)
        assert verdict_decision_json(warm) == verdict_decision_json(cold)
        assert warm.provenance.cert_hit is True

        stats = client.stats()
        assert stats["certificates"]["hits"] >= 1
        assert stats["certificates"]["reused"] >= 1
        # Warm-started verdicts stay out of the verdict cache: their
        # provenance depends on certificate state, not request identity.
        assert stats["verdict_cache"]["entries"] == 1
        health = client.health()
        assert health["certificates"]["policy"] == "reuse"
